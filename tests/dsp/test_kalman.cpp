#include "locble/dsp/kalman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "locble/common/rng.hpp"
#include "locble/common/stats.hpp"

namespace locble::dsp {
namespace {

TEST(ScalarKalmanTest, FirstMeasurementInitializesState) {
    ScalarKalman kf(0.01, 1.0);
    EXPECT_FALSE(kf.initialized());
    EXPECT_DOUBLE_EQ(kf.update(-65.0), -65.0);
    EXPECT_TRUE(kf.initialized());
}

TEST(ScalarKalmanTest, ConvergesToConstant) {
    ScalarKalman kf(0.001, 4.0);
    locble::Rng rng(1);
    double last = 0.0;
    for (int i = 0; i < 300; ++i) last = kf.update(-70.0 + rng.gaussian(0.0, 2.0));
    EXPECT_NEAR(last, -70.0, 0.5);
}

TEST(ScalarKalmanTest, SmoothsNoise) {
    ScalarKalman kf(0.01, 9.0);
    locble::Rng rng(2);
    locble::RunningStats in_dev, out_dev;
    for (int i = 0; i < 2000; ++i) {
        const double z = rng.gaussian(-70.0, 3.0);
        const double y = kf.update(z);
        in_dev.add(z);
        out_dev.add(y);
    }
    EXPECT_LT(out_dev.stddev(), in_dev.stddev() / 2.0);
}

TEST(ScalarKalmanTest, CovarianceShrinksWithEvidence) {
    ScalarKalman kf(0.0, 1.0, 10.0);
    kf.update(0.0);
    const double p1 = kf.covariance();
    for (int i = 0; i < 20; ++i) kf.update(0.0);
    EXPECT_LT(kf.covariance(), p1);
}

TEST(ScalarKalmanTest, ResetForgetsState) {
    ScalarKalman kf(0.01, 1.0);
    kf.update(5.0);
    kf.reset();
    EXPECT_FALSE(kf.initialized());
    EXPECT_DOUBLE_EQ(kf.update(9.0), 9.0);
}

TEST(ScalarKalmanTest, LowerRMeasurementPullsHarder) {
    ScalarKalman a(0.01, 100.0);
    ScalarKalman b(0.01, 100.0);
    a.update(0.0);
    b.update(0.0);
    a.update_with_r(10.0, 0.01);   // trusted measurement
    b.update_with_r(10.0, 100.0);  // distrusted measurement
    EXPECT_GT(a.state(), b.state());
}

TEST(AdaptiveKalmanTest, TracksStepFasterThanPlainLowNoiseTrust) {
    // Feed a step through both the AKF (raw + delayed filtered input) and a
    // conservative plain Kalman; the AKF must reach the new level sooner.
    AdaptiveKalman akf;
    ScalarKalman plain(0.02, 16.0);
    std::vector<double> raw(200, -80.0);
    std::fill(raw.begin() + 100, raw.end(), -60.0);

    // Simulated "filtered" input lags by 12 samples (like the 6th-order BF).
    auto filtered_at = [&](std::size_t i) {
        return i < 112 ? -80.0 : -60.0;
    };

    int akf_reach = -1, plain_reach = -1;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const double a = akf.update(raw[i], filtered_at(i));
        const double p = plain.update(raw[i]);
        if (akf_reach < 0 && i >= 100 && a > -65.0) akf_reach = static_cast<int>(i);
        if (plain_reach < 0 && i >= 100 && p > -65.0) plain_reach = static_cast<int>(i);
    }
    ASSERT_GT(akf_reach, 0);
    ASSERT_GT(plain_reach, 0);
    EXPECT_LT(akf_reach, plain_reach);
}

TEST(AdaptiveKalmanTest, SmootherThanRawOnStationaryNoise) {
    AdaptiveKalman akf;
    locble::Rng rng(3);
    locble::RunningStats in_dev, out_dev;
    // Stationary level with noise; "filtered" = true level.
    for (int i = 0; i < 1000; ++i) {
        const double z = rng.gaussian(-70.0, 3.0);
        const double y = akf.update(z, -70.0);
        if (i > 50) {
            in_dev.add(z);
            out_dev.add(y);
        }
    }
    EXPECT_LT(out_dev.stddev(), in_dev.stddev() / 2.0);
}

TEST(AdaptiveKalmanTest, ResetRestartsCleanly) {
    AdaptiveKalman akf;
    akf.update(-60.0, -60.0);
    akf.reset();
    EXPECT_DOUBLE_EQ(akf.update(-90.0, -90.0), -90.0);
}

}  // namespace
}  // namespace locble::dsp
