#include "locble/dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/dsp/butterworth.hpp"

namespace locble::dsp {
namespace {

TEST(BiquadTest, IdentityByDefault) {
    Biquad b;
    EXPECT_DOUBLE_EQ(b.process(1.5), 1.5);
    EXPECT_DOUBLE_EQ(b.process(-2.0), -2.0);
    EXPECT_DOUBLE_EQ(b.dc_gain(), 1.0);
}

TEST(BiquadTest, PureGainSection) {
    Biquad b({2.0, 0.0, 0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(b.process(3.0), 6.0);
    EXPECT_DOUBLE_EQ(b.dc_gain(), 2.0);
}

TEST(BiquadTest, FirDifferenceImplementsEquation) {
    // y[n] = x[n] - x[n-1]
    Biquad b({1.0, -1.0, 0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(b.process(1.0), 1.0);
    EXPECT_DOUBLE_EQ(b.process(1.0), 0.0);
    EXPECT_DOUBLE_EQ(b.process(4.0), 3.0);
}

TEST(BiquadTest, ResetClearsHistory) {
    Biquad b({1.0, -1.0, 0.0, 0.0, 0.0});
    b.process(10.0);
    b.reset();
    EXPECT_DOUBLE_EQ(b.process(1.0), 1.0);
}

TEST(BiquadTest, PrimeEliminatesTransient) {
    // A one-pole smoother primed at x0 must output exactly x0 * dc_gain.
    Biquad b({0.25, 0.0, 0.0, -0.75, 0.0});  // y = 0.25 x + 0.75 y[n-1], DC gain 1
    b.prime(-70.0);
    for (int i = 0; i < 5; ++i) EXPECT_NEAR(b.process(-70.0), -70.0, 1e-12);
}

TEST(BiquadCascadeTest, EmptyCascadeIsIdentity) {
    BiquadCascade c;
    EXPECT_DOUBLE_EQ(c.process(3.5), 3.5);
    EXPECT_DOUBLE_EQ(c.dc_gain(), 1.0);
    EXPECT_EQ(c.order(), 0u);
}

TEST(BiquadCascadeTest, PrimePropagatesThroughSections) {
    auto c = design_butterworth_lowpass(6, 1.0, 10.0);
    c.prime(42.0);
    for (int i = 0; i < 10; ++i) EXPECT_NEAR(c.process(42.0), 42.0, 1e-9);
}

TEST(BiquadCascadeTest, ResetAllSections) {
    auto c = design_butterworth_lowpass(4, 1.0, 10.0);
    for (int i = 0; i < 20; ++i) c.process(100.0);
    c.reset();
    // After reset the first output of a low-pass is small (no history).
    EXPECT_LT(std::abs(c.process(1.0)), 1.0);
}

}  // namespace
}  // namespace locble::dsp
