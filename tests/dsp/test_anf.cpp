#include "locble/dsp/anf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "locble/common/rng.hpp"
#include "locble/common/stats.hpp"

namespace locble::dsp {
namespace {

locble::TimeSeries noisy_level(double level, double noise, std::size_t n,
                               std::uint64_t seed) {
    locble::Rng rng(seed);
    locble::TimeSeries ts;
    for (std::size_t i = 0; i < n; ++i)
        ts.push_back({0.1 * static_cast<double>(i), level + rng.gaussian(0.0, noise)});
    return ts;
}

TEST(AnfTest, FirstOutputNearFirstSample) {
    Anf anf;
    EXPECT_NEAR(anf.process(-72.0), -72.0, 1e-9);
}

TEST(AnfTest, ReducesNoiseVariance) {
    Anf anf;
    const auto raw = noisy_level(-70.0, 4.0, 400, 11);
    const auto out = anf.process(raw);
    ASSERT_EQ(out.size(), raw.size());
    std::vector<double> raw_tail, out_tail;
    for (std::size_t i = 100; i < raw.size(); ++i) {
        raw_tail.push_back(raw[i].value);
        out_tail.push_back(out[i].value);
    }
    EXPECT_LT(locble::variance(out_tail), locble::variance(raw_tail) / 4.0);
}

TEST(AnfTest, PreservesTimestamps) {
    Anf anf;
    const auto raw = noisy_level(-70.0, 1.0, 50, 3);
    const auto out = anf.process(raw);
    for (std::size_t i = 0; i < raw.size(); ++i) EXPECT_DOUBLE_EQ(out[i].t, raw[i].t);
}

TEST(AnfTest, FollowsSlowTrend) {
    // RSS decaying as the user walks away: ANF must track the trend.
    Anf anf;
    locble::Rng rng(5);
    locble::TimeSeries raw;
    for (int i = 0; i < 300; ++i)
        raw.push_back({0.1 * i, -60.0 - 0.05 * i + rng.gaussian(0.0, 2.5)});
    const auto out = anf.process(raw);
    // Late in the trace, output should be near the true trend.
    for (std::size_t i = 150; i < out.size(); ++i)
        EXPECT_NEAR(out[i].value, -60.0 - 0.05 * static_cast<double>(i), 3.0);
}

TEST(AnfTest, RespondsToStepFasterThanButterworthAlone) {
    locble::TimeSeries raw;
    for (int i = 0; i < 200; ++i) raw.push_back({0.1 * i, i < 100 ? -85.0 : -65.0});

    Anf anf;
    const auto fused = anf.process(raw);
    const auto bf = butterworth_only(raw);

    auto reach_time = [&](const locble::TimeSeries& ts) {
        for (std::size_t i = 100; i < ts.size(); ++i)
            if (ts[i].value > -70.0) return static_cast<int>(i);
        return -1;
    };
    const int t_fused = reach_time(fused);
    const int t_bf = reach_time(bf);
    ASSERT_GT(t_fused, 0);
    ASSERT_GT(t_bf, 0);
    EXPECT_LT(t_fused, t_bf);  // AKF restores responsiveness (Fig. 4)
}

TEST(AnfTest, SmootherThanRawOnFadingLikeSignal) {
    // Sinusoidal fading + noise around a level.
    locble::Rng rng(8);
    locble::TimeSeries raw;
    for (int i = 0; i < 400; ++i) {
        const double fade = 3.0 * std::sin(2.0 * std::numbers::pi * 2.7 * i / 10.0);
        raw.push_back({0.1 * i, -75.0 + fade + rng.gaussian(0.0, 2.0)});
    }
    Anf anf;
    const auto out = anf.process(raw);
    std::vector<double> tail;
    for (std::size_t i = 100; i < out.size(); ++i) tail.push_back(out[i].value);
    EXPECT_NEAR(locble::mean(tail), -75.0, 1.0);
    EXPECT_LT(std::sqrt(locble::variance(tail)), 2.0);
}

TEST(AnfTest, ResetRestarts) {
    Anf anf;
    anf.process(-60.0);
    anf.reset();
    EXPECT_NEAR(anf.process(-90.0), -90.0, 1e-9);
}

TEST(AnfTest, LastBfOutputExposed) {
    Anf anf;
    anf.process(-70.0);
    EXPECT_NEAR(anf.last_bf_output(), -70.0, 1.0);
}

TEST(AnfTest, ButterworthOnlyMatchesConfigOrder) {
    Anf::Config cfg;
    cfg.butterworth_order = 2;
    const auto raw = noisy_level(-70.0, 2.0, 100, 9);
    const auto out = butterworth_only(raw, cfg);
    ASSERT_EQ(out.size(), raw.size());
}

}  // namespace
}  // namespace locble::dsp
