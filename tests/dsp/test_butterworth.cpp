#include "locble/dsp/butterworth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace locble::dsp {
namespace {

/// Magnitude response of a cascade at frequency f (Hz) for sample rate fs.
double magnitude_at(const BiquadCascade& cascade, double f, double fs) {
    const std::complex<double> z = std::polar(1.0, 2.0 * std::numbers::pi * f / fs);
    std::complex<double> h = 1.0;
    for (const auto& s : cascade.sections()) {
        const auto& c = s.coeffs();
        h *= (c.b0 + c.b1 / z + c.b2 / (z * z)) / (1.0 + c.a1 / z + c.a2 / (z * z));
    }
    return std::abs(h);
}

TEST(Butterworth, UnityDcGain) {
    for (int order : {1, 2, 3, 4, 6, 8}) {
        const auto f = design_butterworth_lowpass(order, 1.0, 10.0);
        EXPECT_NEAR(f.dc_gain(), 1.0, 1e-9) << "order " << order;
    }
}

TEST(Butterworth, MinusThreeDbAtCutoff) {
    for (int order : {2, 4, 6}) {
        const auto f = design_butterworth_lowpass(order, 1.0, 10.0);
        const double mag = magnitude_at(f, 1.0, 10.0);
        EXPECT_NEAR(20.0 * std::log10(mag), -3.0103, 0.05) << "order " << order;
    }
}

TEST(Butterworth, MonotoneRolloff) {
    const auto f = design_butterworth_lowpass(6, 1.0, 10.0);
    double prev = magnitude_at(f, 0.05, 10.0);
    for (double freq = 0.1; freq < 4.9; freq += 0.1) {
        const double mag = magnitude_at(f, freq, 10.0);
        EXPECT_LE(mag, prev + 1e-9) << "at " << freq << " Hz";
        prev = mag;
    }
}

TEST(Butterworth, SixthOrderRolloffRate) {
    // 6th order: about -36 dB/octave past cutoff. The bilinear transform
    // compresses frequencies toward Nyquist, so the digital slope is a bit
    // steeper than analog; assert it is 6th-order steep, not 2nd-order.
    const auto f = design_butterworth_lowpass(6, 0.5, 10.0);
    const double m1 = 20.0 * std::log10(magnitude_at(f, 1.0, 10.0));
    const double m2 = 20.0 * std::log10(magnitude_at(f, 2.0, 10.0));
    EXPECT_GT(m1 - m2, 32.0);
    EXPECT_LT(m1 - m2, 50.0);
}

TEST(Butterworth, SectionCounts) {
    EXPECT_EQ(design_butterworth_lowpass(3, 1.0, 10.0).sections().size(), 2u);
    EXPECT_EQ(design_butterworth_lowpass(6, 1.0, 10.0).sections().size(), 3u);
    EXPECT_EQ(design_butterworth_lowpass(1, 1.0, 10.0).sections().size(), 1u);
}

TEST(Butterworth, InvalidParamsThrow) {
    EXPECT_THROW(design_butterworth_lowpass(0, 1.0, 10.0), std::invalid_argument);
    EXPECT_THROW(design_butterworth_lowpass(4, 0.0, 10.0), std::invalid_argument);
    EXPECT_THROW(design_butterworth_lowpass(4, 5.0, 10.0), std::invalid_argument);
    EXPECT_THROW(design_butterworth_lowpass(4, -1.0, 10.0), std::invalid_argument);
}

TEST(Butterworth, StableImpulseResponse) {
    auto f = design_butterworth_lowpass(6, 1.0, 10.0);
    f.process(1.0);
    double late_energy = 0.0;
    for (int i = 0; i < 500; ++i) {
        const double v = f.process(0.0);
        if (i > 400) late_energy += v * v;
    }
    EXPECT_LT(late_energy, 1e-12);
}

TEST(Butterworth, FilterSignalSuppressesToneKeepsMean) {
    std::vector<double> input;
    for (int i = 0; i < 400; ++i)
        input.push_back(-70.0 +
                        5.0 * std::sin(2.0 * std::numbers::pi * 4.0 * i / 10.0));
    const auto filt = design_butterworth_lowpass(6, 0.7, 10.0);
    const auto out = filter_signal(filt, input);
    ASSERT_EQ(out.size(), input.size());
    for (std::size_t i = 100; i < out.size(); ++i) EXPECT_NEAR(out[i], -70.0, 0.2);
}

TEST(Butterworth, FiltFiltZeroPhaseOnRamp) {
    std::vector<double> input;
    for (int i = 0; i < 200; ++i) input.push_back(0.05 * i);
    const auto filt = design_butterworth_lowpass(4, 1.0, 10.0);
    const auto out = filtfilt(filt, input);
    ASSERT_EQ(out.size(), input.size());
    for (std::size_t i = 30; i + 30 < out.size(); ++i)
        EXPECT_NEAR(out[i], input[i], 0.05);
}

TEST(Butterworth, CausalFilterLagsBehindStep) {
    // The 6th-order BF visibly delays a step: that is the delay AKF fixes.
    std::vector<double> input(100, -80.0);
    std::fill(input.begin() + 50, input.end(), -60.0);
    const auto filt = design_butterworth_lowpass(6, 0.7, 10.0);
    const auto out = filter_signal(filt, input);
    EXPECT_LT(out[53], -75.0);       // barely moved right after the step
    EXPECT_NEAR(out.back(), -60.0, 0.5);  // converges eventually
}

}  // namespace
}  // namespace locble::dsp
