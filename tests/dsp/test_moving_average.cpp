#include "locble/dsp/moving_average.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace locble::dsp {
namespace {

TEST(MovingAverageTest, WarmupAveragesAvailableSamples) {
    MovingAverage ma(3);
    EXPECT_DOUBLE_EQ(ma.process(3.0), 3.0);
    EXPECT_DOUBLE_EQ(ma.process(5.0), 4.0);
    EXPECT_DOUBLE_EQ(ma.process(7.0), 5.0);
}

TEST(MovingAverageTest, SlidesWindow) {
    MovingAverage ma(2);
    ma.process(1.0);
    ma.process(3.0);
    EXPECT_DOUBLE_EQ(ma.process(5.0), 4.0);  // (3+5)/2
    EXPECT_DOUBLE_EQ(ma.process(7.0), 6.0);  // (5+7)/2
}

TEST(MovingAverageTest, ZeroWindowThrows) {
    EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

TEST(MovingAverageTest, ResetClears) {
    MovingAverage ma(4);
    ma.process(10.0);
    ma.reset();
    EXPECT_DOUBLE_EQ(ma.process(2.0), 2.0);
}

TEST(CenteredMovingAverageTest, ConstantSignalUnchanged) {
    const std::vector<double> v(10, 3.0);
    const auto out = centered_moving_average(v, 2);
    ASSERT_EQ(out.size(), v.size());
    for (double x : out) EXPECT_DOUBLE_EQ(x, 3.0);
}

TEST(CenteredMovingAverageTest, PreservesPeakLocation) {
    // Triangular peak at index 10: smoothing must not move the maximum.
    std::vector<double> v(21, 0.0);
    for (int i = 0; i < 21; ++i) v[i] = 10.0 - std::abs(i - 10);
    const auto out = centered_moving_average(v, 2);
    // Peak stays centered at index 10 after smoothing.
    std::size_t argmax = 0;
    for (std::size_t i = 1; i < out.size(); ++i)
        if (out[i] > out[argmax]) argmax = i;
    EXPECT_EQ(argmax, 10u);
}

TEST(CenteredMovingAverageTest, EdgesUseShrunkWindows) {
    const std::vector<double> v{1.0, 2.0, 3.0};
    const auto out = centered_moving_average(v, 5);
    // Every output is the mean of the full (clipped) vector here.
    for (double x : out) EXPECT_DOUBLE_EQ(x, 2.0);
}

TEST(CenteredMovingAverageTest, EmptyInput) {
    EXPECT_TRUE(centered_moving_average({}, 3).empty());
}

}  // namespace
}  // namespace locble::dsp
