#include "locble/imu/trajectory.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <stdexcept>

namespace locble::imu {
namespace {

using locble::Vec2;

TEST(TrajectoryTest, EmptyWaypointsThrow) {
    EXPECT_THROW(Trajectory(std::vector<Vec2>{}), std::invalid_argument);
}

TEST(TrajectoryTest, SinglePointStaysPut) {
    const Trajectory t({Vec2{2.0, 3.0}});
    EXPECT_GT(t.duration(), 0.0);  // initial + final pause
    const Pose p = t.pose_at(t.duration() / 2.0);
    EXPECT_EQ(p.position, Vec2(2.0, 3.0));
    EXPECT_FALSE(p.walking);
}

TEST(TrajectoryTest, StartsAndEndsAtWaypoints) {
    const Trajectory t({Vec2{0, 0}, Vec2{4, 0}, Vec2{4, 3}});
    EXPECT_EQ(t.pose_at(0.0).position, Vec2(0, 0));
    EXPECT_EQ(t.pose_at(t.duration()).position, Vec2(4, 3));
}

TEST(TrajectoryTest, WalkSpeedHonored) {
    Trajectory::Config cfg;
    cfg.walk_speed = 2.0;
    cfg.initial_pause = 1.0;
    const Trajectory t({Vec2{0, 0}, Vec2{4, 0}}, cfg);
    // During the leg, 0.5 s after the pause ends -> 1 m progressed.
    const Pose p = t.pose_at(1.5);
    EXPECT_NEAR(p.position.x, 1.0, 1e-9);
    EXPECT_TRUE(p.walking);
    EXPECT_DOUBLE_EQ(p.speed, 2.0);
}

TEST(TrajectoryTest, PausesAreNotWalking) {
    const Trajectory t({Vec2{0, 0}, Vec2{2, 0}});
    EXPECT_FALSE(t.pose_at(0.1).walking);                  // initial pause
    EXPECT_FALSE(t.pose_at(t.duration() - 0.1).walking);   // final pause
}

TEST(TrajectoryTest, TurnRotatesHeadingInPlace) {
    const Trajectory t({Vec2{0, 0}, Vec2{3, 0}, Vec2{3, 3}});
    // Find a moment mid-turn: position pinned at the corner, heading between
    // 0 and pi/2.
    bool saw_mid_turn = false;
    for (double tt = 0.0; tt < t.duration(); tt += 0.01) {
        const Pose p = t.pose_at(tt);
        if (!p.walking && p.position == Vec2(3, 0) && p.heading > 0.3 &&
            p.heading < 1.2) {
            saw_mid_turn = true;
            break;
        }
    }
    EXPECT_TRUE(saw_mid_turn);
}

TEST(TrajectoryTest, WalkedDistanceSumsLegs) {
    const Trajectory t({Vec2{0, 0}, Vec2{3, 0}, Vec2{3, 4}});
    EXPECT_DOUBLE_EQ(t.walked_distance(), 7.0);
}

TEST(TrajectoryTest, TurnAnglesSigned) {
    const Trajectory left({Vec2{0, 0}, Vec2{3, 0}, Vec2{3, 3}});
    ASSERT_EQ(left.turn_angles().size(), 1u);
    EXPECT_NEAR(left.turn_angles()[0], std::numbers::pi / 2.0, 1e-9);
    const Trajectory right({Vec2{0, 0}, Vec2{3, 0}, Vec2{3, -3}});
    EXPECT_NEAR(right.turn_angles()[0], -std::numbers::pi / 2.0, 1e-9);
}

TEST(TrajectoryTest, PoseClampedOutsideDuration) {
    const Trajectory t({Vec2{0, 0}, Vec2{1, 0}});
    EXPECT_EQ(t.pose_at(-5.0).position, Vec2(0, 0));
    EXPECT_EQ(t.pose_at(1e9).position, Vec2(1, 0));
}

TEST(MakeLShape, GeometryMatchesSpec) {
    const Trajectory t = make_l_shape({1.0, 1.0}, 0.0, 3.0, 2.0,
                                      std::numbers::pi / 2.0);
    ASSERT_EQ(t.waypoints().size(), 3u);
    EXPECT_EQ(t.waypoints()[0], Vec2(1, 1));
    EXPECT_NEAR(t.waypoints()[1].x, 4.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[1].y, 1.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[2].x, 4.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[2].y, 3.0, 1e-9);
}

TEST(MakeLShape, RespectsInitialHeading) {
    const Trajectory t = make_l_shape({0.0, 0.0}, std::numbers::pi / 2.0, 2.0, 1.0,
                                      std::numbers::pi / 2.0);
    EXPECT_NEAR(t.waypoints()[1].x, 0.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[1].y, 2.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[2].x, -1.0, 1e-9);
    EXPECT_NEAR(t.waypoints()[2].y, 2.0, 1e-9);
}

TEST(MakeStraight, SimpleLeg) {
    const Trajectory t = make_straight({0.0, 0.0}, 0.0, 5.0);
    ASSERT_EQ(t.waypoints().size(), 2u);
    EXPECT_NEAR(t.waypoints()[1].x, 5.0, 1e-9);
    EXPECT_DOUBLE_EQ(t.walked_distance(), 5.0);
}

TEST(MakeRandomWalk, StaysInsideBounds) {
    locble::Rng rng(1);
    for (int run = 0; run < 10; ++run) {
        const Trajectory t = make_random_walk(10.0, 8.0, 5, 1.0, 3.0, rng);
        for (const auto& wp : t.waypoints()) {
            EXPECT_GE(wp.x, 0.0);
            EXPECT_LE(wp.x, 10.0);
            EXPECT_GE(wp.y, 0.0);
            EXPECT_LE(wp.y, 8.0);
        }
    }
}

TEST(MakeRandomWalk, RequestedLegCount) {
    locble::Rng rng(2);
    const Trajectory t = make_random_walk(20.0, 20.0, 4, 1.0, 2.0, rng);
    // Every leg should be realizable in a large area.
    EXPECT_EQ(t.waypoints().size(), 5u);
}

TEST(MakeRandomWalk, InvalidLegCountThrows) {
    locble::Rng rng(3);
    EXPECT_THROW(make_random_walk(10.0, 10.0, 0, 1.0, 2.0, rng),
                 std::invalid_argument);
}

}  // namespace
}  // namespace locble::imu
