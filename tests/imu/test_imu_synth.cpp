#include "locble/imu/imu_synth.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "locble/common/stats.hpp"

namespace locble::imu {
namespace {

using locble::Vec2;

TEST(GaitModelTest, SpeedFrequencyConsistency) {
    const GaitModel g{};
    for (double v : {0.6, 1.0, 1.4}) {
        const double f = g.frequency_for_speed(v);
        EXPECT_GT(f, 0.0);
        // speed = frequency * length(frequency)
        EXPECT_NEAR(f * g.length_for_frequency(f), v, 1e-9);
    }
}

TEST(GaitModelTest, ZeroSpeedZeroFrequency) {
    EXPECT_DOUBLE_EQ(GaitModel{}.frequency_for_speed(0.0), 0.0);
}

TEST(GaitModelTest, FasterWalkLongerSteps) {
    const GaitModel g{};
    const double f_slow = g.frequency_for_speed(0.7);
    const double f_fast = g.frequency_for_speed(1.5);
    EXPECT_GT(f_fast, f_slow);
    EXPECT_GT(g.length_for_frequency(f_fast), g.length_for_frequency(f_slow));
}

TEST(ImuSynthesizerTest, StreamsCoverDuration) {
    const Trajectory walk({Vec2{0, 0}, Vec2{5, 0}});
    locble::Rng rng(1);
    const ImuTrace trace = ImuSynthesizer().synthesize(walk, rng);
    ASSERT_FALSE(trace.accel_vertical.empty());
    EXPECT_EQ(trace.accel_vertical.size(), trace.gyro_z.size());
    EXPECT_EQ(trace.accel_vertical.size(), trace.mag_heading.size());
    EXPECT_NEAR(trace.accel_vertical.back().t, walk.duration(), 0.05);
}

TEST(ImuSynthesizerTest, GaitOscillationOnlyWhileWalking) {
    Trajectory::Config tcfg;
    tcfg.initial_pause = 2.0;
    const Trajectory walk({Vec2{0, 0}, Vec2{6, 0}}, tcfg);
    locble::Rng rng(2);
    const ImuTrace trace = ImuSynthesizer().synthesize(walk, rng);
    std::vector<double> idle, moving;
    for (const auto& s : trace.accel_vertical) {
        if (s.t < 1.8)
            idle.push_back(s.value);
        else if (s.t > 2.5 && s.t < 6.0)
            moving.push_back(s.value);
    }
    EXPECT_GT(locble::variance(moving), 8.0 * locble::variance(idle));
}

TEST(ImuSynthesizerTest, TrueStepsMatchGaitModel) {
    const Trajectory walk({Vec2{0, 0}, Vec2{10, 0}});
    locble::Rng rng(3);
    const ImuSynthesizer synth;
    const ImuTrace trace = synth.synthesize(walk, rng);
    const GaitModel& gait = synth.config().gait;
    const double f = gait.frequency_for_speed(Trajectory::Config{}.walk_speed);
    const double expected_steps = 10.0 / gait.length_for_frequency(f);
    EXPECT_NEAR(trace.true_steps, expected_steps, 1.0);
}

TEST(ImuSynthesizerTest, GyroShowsTurnBump) {
    const Trajectory walk({Vec2{0, 0}, Vec2{3, 0}, Vec2{3, 3}});
    locble::Rng rng(4);
    const ImuTrace trace = ImuSynthesizer().synthesize(walk, rng);
    double peak = 0.0;
    for (const auto& s : trace.gyro_z) peak = std::max(peak, s.value);
    // Default turn rate is 1.8 rad/s; noise is far below that.
    EXPECT_GT(peak, 1.0);
}

TEST(ImuSynthesizerTest, MagHeadingTracksTrajectoryHeading) {
    const Trajectory walk({Vec2{0, 0}, Vec2{4, 0}, Vec2{4, 4}});
    locble::Rng rng(5);
    const ImuTrace trace = ImuSynthesizer().synthesize(walk, rng);
    // Early heading ~0, late heading ~pi/2 (within disturbance bounds).
    std::vector<double> early, late;
    for (const auto& s : trace.mag_heading) {
        if (s.t < 0.4) early.push_back(s.value);
        if (s.t > walk.duration() - 0.4) late.push_back(s.value);
    }
    ASSERT_FALSE(early.empty());
    ASSERT_FALSE(late.empty());
    EXPECT_NEAR(locble::mean(early), 0.0, 0.35);
    EXPECT_NEAR(locble::mean(late), std::numbers::pi / 2.0, 0.35);
}

TEST(ImuSynthesizerTest, DeterministicForSameSeed) {
    const Trajectory walk({Vec2{0, 0}, Vec2{3, 0}});
    locble::Rng a(7), b(7);
    const ImuTrace ta = ImuSynthesizer().synthesize(walk, a);
    const ImuTrace tb = ImuSynthesizer().synthesize(walk, b);
    ASSERT_EQ(ta.accel_vertical.size(), tb.accel_vertical.size());
    for (std::size_t i = 0; i < ta.accel_vertical.size(); ++i)
        EXPECT_DOUBLE_EQ(ta.accel_vertical[i].value, tb.accel_vertical[i].value);
}

TEST(ImuSynthesizerTest, SampleRateHonored) {
    ImuSynthesizer::Config cfg;
    cfg.sample_rate_hz = 50.0;
    const Trajectory walk({Vec2{0, 0}, Vec2{2, 0}});
    locble::Rng rng(8);
    const ImuTrace trace = ImuSynthesizer(cfg).synthesize(walk, rng);
    ASSERT_GT(trace.accel_vertical.size(), 2u);
    EXPECT_NEAR(trace.accel_vertical[1].t - trace.accel_vertical[0].t, 0.02, 1e-9);
}

}  // namespace
}  // namespace locble::imu
