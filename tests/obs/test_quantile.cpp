// Unit tests for the exact fixed-resolution quantile sketch (ISSUE 7):
// the bucketing math, the merge-by-bucket-sum determinism contract, and
// the registry Quantile handle + LOCBLE_QUANTILE macro plumbing.

#include "locble/obs/quantile.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "locble/obs/metrics.hpp"
#include "locble/obs/obs.hpp"

namespace locble::obs {
namespace {

TEST(QuantileSketchTest, BucketEdgesAreRightClosed) {
    // upper 10, resolution 10: bucket i covers (i, i+1].
    EXPECT_EQ(sketch_bucket(-1.0, 10.0, 10), 0u);
    EXPECT_EQ(sketch_bucket(0.0, 10.0, 10), 0u);
    EXPECT_EQ(sketch_bucket(0.5, 10.0, 10), 0u);
    EXPECT_EQ(sketch_bucket(1.0, 10.0, 10), 0u);   // right edge inclusive
    EXPECT_EQ(sketch_bucket(1.0001, 10.0, 10), 1u);
    EXPECT_EQ(sketch_bucket(9.5, 10.0, 10), 9u);
    EXPECT_EQ(sketch_bucket(10.0, 10.0, 10), 9u);  // == upper: last bounded
    EXPECT_EQ(sketch_bucket(10.5, 10.0, 10), 10u);  // overflow bucket
    EXPECT_EQ(sketch_bucket(std::numeric_limits<double>::quiet_NaN(), 10.0, 10),
              10u);

    EXPECT_DOUBLE_EQ(sketch_edge(0, 10.0, 10), 1.0);
    EXPECT_DOUBLE_EQ(sketch_edge(9, 10.0, 10), 10.0);
    EXPECT_DOUBLE_EQ(sketch_edge(10, 10.0, 10), 10.0);  // overflow saturates
}

TEST(QuantileSketchTest, NearestRankQuantiles) {
    QuantileSketch s(10.0, 10);
    for (int i = 1; i <= 100; ++i) s.record(i * 0.1);  // 0.1 .. 10.0
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);   // rank clamps to 1 -> edge(0)
    EXPECT_DOUBLE_EQ(s.quantile(0.50), 5.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.95), 10.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);  // max is exact, not an edge
}

TEST(QuantileSketchTest, OverflowSaturatesAtUpperButMaxIsExact) {
    QuantileSketch s(1.0, 4);
    s.record(50.0);
    s.record(0.1);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 1.0);  // reported edge saturates
    EXPECT_DOUBLE_EQ(s.max(), 50.0);
    EXPECT_EQ(s.buckets().back(), 1u);  // one sample in the overflow bucket
}

TEST(QuantileSketchTest, EmptyAndUnconfiguredAreInert) {
    QuantileSketch empty(5.0, 5);
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    QuantileSketch unconfigured;
    EXPECT_FALSE(unconfigured.configured());
    unconfigured.record(3.0);  // no-op, no crash
    EXPECT_EQ(unconfigured.count(), 0u);

    // Merging into an unconfigured sketch adopts the source's config.
    QuantileSketch src(5.0, 5);
    src.record(2.0);
    unconfigured.merge(src);
    EXPECT_TRUE(unconfigured.configured());
    EXPECT_EQ(unconfigured.count(), 1u);

    EXPECT_THROW(QuantileSketch(5.0, 0), std::invalid_argument);
    EXPECT_THROW(QuantileSketch(0.0, 5), std::invalid_argument);
    QuantileSketch other(6.0, 5);
    EXPECT_THROW(unconfigured.merge(other), std::logic_error);
}

TEST(QuantileSketchTest, MergeEqualsSingleSketchWhateverTheSplit) {
    // The determinism contract: recording N samples through any partition
    // of sketches and merging yields byte-identical buckets, hence
    // identical quantiles.
    std::vector<double> samples;
    for (int i = 0; i < 500; ++i)
        samples.push_back(std::fmod(i * 0.7137, 12.0));  // some overflow 10

    QuantileSketch whole(10.0, 40);
    for (const double v : samples) whole.record(v);

    for (const std::size_t parts : {2u, 3u, 8u}) {
        std::vector<QuantileSketch> shard(parts, QuantileSketch(10.0, 40));
        for (std::size_t i = 0; i < samples.size(); ++i)
            shard[i % parts].record(samples[i]);
        QuantileSketch merged;
        // Merge in reverse order too: bucket sums are order-invariant.
        for (std::size_t p = parts; p-- > 0;) merged.merge(shard[p]);
        EXPECT_EQ(merged.buckets(), whole.buckets());
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_DOUBLE_EQ(merged.max(), whole.max());
        for (const double q : {0.5, 0.95, 0.99})
            EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q));
    }
}

#if LOCBLE_OBS
TEST(QuantileRegistryTest, MacroRecordsIntoSnapshotAcrossThreads) {
    Registry& reg = Registry::global();
    reg.reset();
    reg.set_enabled(true);
    const auto worker = [](int offset) {
        for (int i = 0; i < 100; ++i)
            LOCBLE_QUANTILE("test.q.latency", (offset + i) * 0.01, 4.0, 16u);
    };
    std::thread a(worker, 0), b(worker, 100);
    a.join();
    b.join();
    reg.set_enabled(false);

    bool found = false;
    for (const auto& m : reg.snapshot()) {
        if (m.name != "test.q.latency") continue;
        found = true;
        EXPECT_EQ(m.kind, MetricKind::quantile);
        EXPECT_EQ(m.count, 200u);
        EXPECT_DOUBLE_EQ(m.upper_bound, 4.0);
        ASSERT_EQ(m.buckets.size(), 17u);
        // Snapshot quantiles agree with a locally-built reference sketch.
        QuantileSketch ref(4.0, 16);
        for (int i = 0; i < 200; ++i) ref.record(i * 0.01);
        for (const double q : {0.5, 0.95, 0.99})
            EXPECT_DOUBLE_EQ(snapshot_quantile(m, q), ref.quantile(q));
    }
    EXPECT_TRUE(found);
    reg.reset();
}

TEST(QuantileRegistryTest, ReRegistrationMustMatchConfiguration) {
    Registry& reg = Registry::global();
    reg.reset();
    reg.set_enabled(true);
    (void)reg.quantile("test.q.dup", 8.0, 32);
    (void)reg.quantile("test.q.dup", 8.0, 32);  // identical: fine
    EXPECT_THROW((void)reg.quantile("test.q.dup", 9.0, 32), std::logic_error);
    EXPECT_THROW((void)reg.quantile("test.q.dup", 8.0, 16), std::logic_error);
    EXPECT_THROW((void)reg.quantile("test.q.bad", 8.0, 0), std::invalid_argument);
    EXPECT_THROW((void)reg.quantile("test.q.bad", 0.0, 4), std::invalid_argument);
    reg.set_enabled(false);
    reg.reset();
}
#endif

}  // namespace
}  // namespace locble::obs
