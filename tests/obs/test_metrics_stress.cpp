// Concurrency stress tests for the sharded obs metrics registry, aimed at
// ThreadSanitizer (tools/san, ISSUE 4). The registry's contract: recording
// threads write only their own shard (no locks), registration/snapshot take
// the registry mutex, and snapshot() is called only at quiescent points.
// These tests drive every cross-thread edge of that contract — concurrent
// registration racing recording, shard creation bursts, and the 1-vs-8
// thread merge identity under real contention.

#include "locble/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "locble/runtime/trial_runner.hpp"

namespace locble::obs {
namespace {

const MetricSnapshot* find(const std::vector<MetricSnapshot>& snap,
                           const std::string& name) {
    for (const auto& m : snap)
        if (m.name == name) return &m;
    return nullptr;
}

/// The recording workload shared by the merge-identity test: a pure function
/// of the trial index, so any thread count must merge to the same totals.
void record_trial(Registry& reg, int trial) {
    const Counter c = reg.counter("stress.ops");
    const GaugeMax g = reg.gauge_max("stress.peak");
    const Histogram h =
        reg.histogram("stress.latency", {1.0, 2.0, 4.0, 8.0, 16.0});
    for (int i = 0; i < 200; ++i) {
        c.add(static_cast<std::uint64_t>(trial % 3 + 1));
        g.record(static_cast<double>((trial * 31 + i * 7) % 97));
        h.record(static_cast<double>((trial * 13 + i) % 20));
    }
}

std::vector<MetricSnapshot> run_with_threads(unsigned threads) {
    Registry reg;
    reg.set_enabled(true);
    runtime::TrialRunner runner(threads);
    runner.run(32, 7u, [&](int trial, locble::Rng&) {
        record_trial(reg, trial);
        return 0;
    });
    return reg.snapshot();
}

TEST(MetricsStressTest, MergeIdentical1Vs8ThreadsUnderContention) {
    const auto serial = run_with_threads(1);
    const auto parallel = run_with_threads(8);

    for (const char* name : {"stress.ops", "stress.peak", "stress.latency"}) {
        const auto* a = find(serial, name);
        const auto* b = find(parallel, name);
        ASSERT_NE(a, nullptr) << name;
        ASSERT_NE(b, nullptr) << name;
        EXPECT_EQ(a->count, b->count) << name;
        EXPECT_EQ(a->value, b->value) << name;  // max is order-invariant
        EXPECT_EQ(a->buckets, b->buckets) << name;
    }
    const auto* ops = find(serial, "stress.ops");
    // Sum over trials of 200 * (trial % 3 + 1), computable in closed form:
    // trials 0..29 → 10 full (1+2+3) cycles, plus trials 30,31 → 1+2.
    EXPECT_EQ(ops->count, 200u * (10u * 6u + 3u));
}

TEST(MetricsStressTest, ConcurrentRegistrationAndRecording) {
    // Half the threads register brand-new metrics (forcing cell-plane
    // growth) while the other half record into already-registered handles
    // whose shards must then grow lazily via ensure_capacity().
    Registry reg;
    reg.set_enabled(true);
    const Counter warm = reg.counter("churn.warm");

    constexpr int kThreads = 8;
    constexpr int kRounds = 60;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {}
            for (int r = 0; r < kRounds; ++r) {
                if (t % 2 == 0) {
                    const Counter fresh = reg.counter(
                        "churn.t" + std::to_string(t) + "." + std::to_string(r));
                    fresh.add(1);
                } else {
                    warm.add(1);
                }
                const Histogram h = reg.histogram("churn.hist", {0.5, 1.5});
                h.record(static_cast<double>(r % 3));
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    const auto snap = reg.snapshot();
    const auto* w = find(snap, "churn.warm");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->count, static_cast<std::uint64_t>(kThreads / 2 * kRounds));
    const auto* h = find(snap, "churn.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads * kRounds));
    // Every per-round registration must have landed exactly once.
    for (int t = 0; t < kThreads; t += 2)
        for (int r = 0; r < kRounds; ++r) {
            const auto* fresh =
                find(snap, "churn.t" + std::to_string(t) + "." + std::to_string(r));
            ASSERT_NE(fresh, nullptr);
            EXPECT_EQ(fresh->count, 1u);
        }
}

TEST(MetricsStressTest, ManyThreadsOneCounterNoLostUpdates) {
    Registry reg;
    reg.set_enabled(true);
    const Counter c = reg.counter("burst.count");
    constexpr int kThreads = 12;
    constexpr int kAdds = 5000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < kAdds; ++i) c.add(1);
        });
    for (auto& th : threads) th.join();
    const auto snap = reg.snapshot();
    const auto* m = find(snap, "burst.count");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count, static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsStressTest, ResetBetweenParallelRoundsStaysConsistent) {
    Registry reg;
    reg.set_enabled(true);
    runtime::TrialRunner runner(8);
    for (int round = 0; round < 3; ++round) {
        reg.reset();  // quiescent: the previous round fully joined
        runner.run(16, static_cast<std::uint64_t>(round + 1), [&](int trial, locble::Rng&) {
            record_trial(reg, trial);
            return 0;
        });
        const auto snap = reg.snapshot();
        const auto* ops = find(snap, "stress.ops");
        ASSERT_NE(ops, nullptr);
        // 16 trials: 5 full (1+2+3) cycles plus trial 15 → 1.
        EXPECT_EQ(ops->count, 200u * (5u * 6u + 1u)) << "round " << round;
    }
}

}  // namespace
}  // namespace locble::obs
