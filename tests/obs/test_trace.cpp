#include "locble/obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "locble/obs/obs.hpp"

namespace locble::obs {
namespace {

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + needle.size()))
        ++n;
    return n;
}

/// Minimal structural JSON check: quotes escape nothing in our output, so
/// brace/bracket balance outside strings is a faithful validity proxy.
bool balanced_json(const std::string& text) {
    int brace = 0, bracket = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\') ++i;
            else if (c == '"') in_string = false;
            continue;
        }
        if (c == '"') in_string = true;
        else if (c == '{') ++brace;
        else if (c == '}') --brace;
        else if (c == '[') ++bracket;
        else if (c == ']') --bracket;
        if (brace < 0 || bracket < 0) return false;
    }
    return brace == 0 && bracket == 0 && !in_string;
}

class TraceTest : public ::testing::Test {
protected:
    void SetUp() override {
        Tracer::global().stop();
        Tracer::global().reset();
    }
    void TearDown() override {
        Tracer::global().stop();
        Tracer::global().reset();
    }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
    { ScopedSpan span("test.span"); }
    EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TraceTest, NestedSpansEmitProperlyNestedCompleteEvents) {
    Tracer::global().start();
    {
        ScopedSpan outer("outer");
        { ScopedSpan inner("inner"); }
    }
    Tracer::global().stop();
    // ScopedSpan is a library type, present (and functional) in every build;
    // only the LOCBLE_SPAN macro sites compile away under LOCBLE_OBS=0.
    ASSERT_EQ(Tracer::global().event_count(), 2u);
    const std::string json = Tracer::global().to_json();
    EXPECT_TRUE(balanced_json(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
    // Parent precedes child in the sorted stream: same tid, earlier (or
    // equal) ts, and when equal the longer duration first.
    const std::size_t outer_pos = json.find("\"outer\"");
    const std::size_t inner_pos = json.find("\"inner\"");
    ASSERT_NE(outer_pos, std::string::npos);
    ASSERT_NE(inner_pos, std::string::npos);
    EXPECT_LT(outer_pos, inner_pos);
}

TEST_F(TraceTest, TimestampsAreEpochRelative) {
    Tracer::global().start();
    { ScopedSpan span("test.span"); }
    Tracer::global().stop();
    const std::string json = Tracer::global().to_json();
    // A fresh epoch means the sole span starts within a second of 0 — far
    // below any wall-clock-derived microsecond count.
    const std::size_t ts = json.find("\"ts\":");
    ASSERT_NE(ts, std::string::npos);
    const double ts_us = std::stod(json.substr(ts + 5));
    EXPECT_GE(ts_us, 0.0);
    EXPECT_LT(ts_us, 1e6);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
    Tracer::global().start();
    {
        ScopedSpan main_span("main.span");
        std::thread worker([] { ScopedSpan span("worker.span"); });
        worker.join();
    }
    Tracer::global().stop();
    ASSERT_EQ(Tracer::global().event_count(), 2u);
    const std::string json = Tracer::global().to_json();
    // The two spans must land in different per-thread buffers.
    const auto tid_after = [&](const char* name) {
        const std::size_t at = json.find(name);
        EXPECT_NE(at, std::string::npos) << name;
        const std::size_t tid = json.find("\"tid\":", at);
        EXPECT_NE(tid, std::string::npos);
        return std::stoul(json.substr(tid + 6));
    };
    EXPECT_NE(tid_after("main.span"), tid_after("worker.span"));
}

TEST_F(TraceTest, ResetDiscardsEvents) {
    Tracer::global().start();
    { ScopedSpan span("test.span"); }
    Tracer::global().reset();
    EXPECT_EQ(Tracer::global().event_count(), 0u);
    EXPECT_EQ(count_occurrences(Tracer::global().to_json(), "\"ph\""), 0u);
}

TEST_F(TraceTest, WriteRoundTripsToDisk) {
    Tracer::global().start();
    { ScopedSpan span("test.span"); }
    Tracer::global().stop();
    const std::string path = ::testing::TempDir() + "locble_trace_test.json";
    Tracer::global().write(path);
    std::ifstream file(path);
    ASSERT_TRUE(file.good());
    std::stringstream buf;
    buf << file.rdbuf();
    EXPECT_EQ(buf.str(), Tracer::global().to_json());
    std::remove(path.c_str());
}

TEST_F(TraceTest, CounterEventsSerializeAsCounterPhase) {
    Tracer::global().start();
    Tracer::global().counter("queue.depth", 3.0);
    { ScopedSpan span("test.span"); }
    Tracer::global().counter("queue.depth", 7.5);
    Tracer::global().stop();
    ASSERT_EQ(Tracer::global().event_count(), 3u);
    const std::string json = Tracer::global().to_json();
    EXPECT_TRUE(balanced_json(json)) << json;
    // Counter samples carry ph:"C" and an args.value payload — no "dur".
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 2u);
    EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 1u);
    EXPECT_NE(json.find("\"args\":{\"value\":3}"), std::string::npos) << json;
    EXPECT_NE(json.find("\"args\":{\"value\":7.5}"), std::string::npos) << json;
    // The complete-event keeps its duration; counters never emit one.
    EXPECT_EQ(count_occurrences(json, "\"dur\":"), 1u);
}

TEST_F(TraceTest, CounterIgnoredWhileDisabled) {
    Tracer::global().counter("queue.depth", 1.0);
    EXPECT_EQ(Tracer::global().event_count(), 0u);
    Tracer::global().start();
    LOCBLE_TRACE_COUNTER("queue.depth", 2.0);
    Tracer::global().stop();
#if LOCBLE_OBS
    EXPECT_EQ(Tracer::global().event_count(), 1u);
#else
    EXPECT_EQ(Tracer::global().event_count(), 0u);
#endif
}

TEST_F(TraceTest, SpanMacroCompilesAwayWhenDisabled) {
    Tracer::global().start();
    { LOCBLE_SPAN("test.macro.span"); }
    Tracer::global().stop();
#if LOCBLE_OBS
    EXPECT_EQ(Tracer::global().event_count(), 1u);
#else
    EXPECT_EQ(Tracer::global().event_count(), 0u);
#endif
}

}  // namespace
}  // namespace locble::obs
