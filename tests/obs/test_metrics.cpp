#include "locble/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "locble/obs/obs.hpp"
#include "locble/runtime/trial_runner.hpp"

namespace locble::obs {
namespace {

const MetricSnapshot* find(const std::vector<MetricSnapshot>& snap,
                           const std::string& name) {
    for (const auto& m : snap)
        if (m.name == name) return &m;
    return nullptr;
}

TEST(MetricsTest, CounterAccumulates) {
    Registry reg;
    reg.set_enabled(true);
    const Counter c = reg.counter("test.counter");
    c.add();
    c.add(41);
    const auto snap = reg.snapshot();
    const auto* m = find(snap, "test.counter");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::counter);
    EXPECT_TRUE(m->deterministic);
    EXPECT_EQ(m->count, 42u);
}

TEST(MetricsTest, DisabledRegistryRecordsNothing) {
    Registry reg;  // enabled defaults to false
    const Counter c = reg.counter("test.counter");
    c.add(7);
    const auto snap = reg.snapshot();
    const auto* m = find(snap, "test.counter");
    ASSERT_NE(m, nullptr);  // registered, but never incremented
    EXPECT_EQ(m->count, 0u);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
    Registry reg;
    reg.set_enabled(true);
    const Counter c = reg.counter("test.counter");
    const GaugeMax g = reg.gauge_max("test.gauge");
    c.add(5);
    g.record(3.5);
    reg.reset();
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(find(snap, "test.counter")->count, 0u);
    EXPECT_EQ(find(snap, "test.gauge")->value, 0.0);
    c.add(1);  // handles stay valid across reset
    const auto after = reg.snapshot();
    EXPECT_EQ(find(after, "test.counter")->count, 1u);
}

TEST(MetricsTest, SameNameSharesOneMetric) {
    Registry reg;
    reg.set_enabled(true);
    const Counter a = reg.counter("test.shared");
    const Counter b = reg.counter("test.shared");
    a.add(2);
    b.add(3);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].count, 5u);
}

TEST(MetricsTest, KindMismatchThrows) {
    Registry reg;
    reg.counter("test.name");
    EXPECT_THROW(reg.gauge_max("test.name"), std::logic_error);
    EXPECT_THROW(reg.histogram("test.name", {1.0}), std::logic_error);
}

TEST(MetricsTest, GaugeMaxKeepsHighWaterMark) {
    Registry reg;
    reg.set_enabled(true);
    const GaugeMax g = reg.gauge_max("test.gauge");
    g.record(3.0);
    g.record(-1.0);
    g.record(7.5);
    g.record(7.0);
    const auto snap = reg.snapshot();
    EXPECT_EQ(find(snap, "test.gauge")->value, 7.5);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpper) {
    Registry reg;
    reg.set_enabled(true);
    const Histogram h = reg.histogram("test.hist", {1.0, 2.0, 4.0});
    h.record(0.5);   // bucket 0
    h.record(1.0);   // bucket 0 (edge is inclusive)
    h.record(1.001); // bucket 1
    h.record(4.0);   // bucket 2 (last edge, inclusive)
    h.record(100.0); // overflow
    const auto snap = reg.snapshot();
    const auto* m = find(snap, "test.hist");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind, MetricKind::histogram);
    ASSERT_EQ(m->buckets.size(), 4u);  // 3 bounds + overflow
    EXPECT_EQ(m->buckets[0], 2u);
    EXPECT_EQ(m->buckets[1], 1u);
    EXPECT_EQ(m->buckets[2], 1u);
    EXPECT_EQ(m->buckets[3], 1u);
    EXPECT_EQ(m->count, 5u);
    EXPECT_DOUBLE_EQ(m->sum, 0.5 + 1.0 + 1.001 + 4.0 + 100.0);
    EXPECT_EQ(m->bounds, (std::vector<double>{1.0, 2.0, 4.0}));
}

TEST(MetricsTest, HistogramNanGoesToOverflowWithoutPoisoningSum) {
    Registry reg;
    reg.set_enabled(true);
    const Histogram h = reg.histogram("test.hist", {1.0});
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(0.5);
    const auto snap = reg.snapshot();
    const auto* m = find(snap, "test.hist");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->buckets[0], 1u);
    EXPECT_EQ(m->buckets[1], 1u);  // NaN lands in overflow
    EXPECT_EQ(m->count, 2u);
    EXPECT_DOUBLE_EQ(m->sum, 0.5);  // NaN contributed 0
}

TEST(MetricsTest, SnapshotSortedByName) {
    Registry reg;
    reg.counter("z.last");
    reg.counter("a.first");
    reg.counter("m.middle");
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.middle");
    EXPECT_EQ(snap[2].name, "z.last");
}

/// The PR-1 determinism contract extended to obs: the merged snapshot must
/// be identical whether trials ran on 1 thread or 8.
TEST(MetricsTest, MergedSnapshotIdentical1Vs8Threads) {
    const auto run_with = [](unsigned threads) {
        Registry reg;
        reg.set_enabled(true);
        const Counter events = reg.counter("trial.events");
        const Histogram values = reg.histogram("trial.values", {10.0, 20.0, 40.0});
        const GaugeMax peak = reg.gauge_max("trial.peak");
        runtime::TrialRunner runner(threads);
        runner.run(64, /*seed=*/7, [&](int t, locble::Rng& rng) {
            // Per-trial work is a pure function of the trial's stream.
            const int n = 1 + t % 5;
            events.add(static_cast<std::uint64_t>(n));
            for (int i = 0; i < n; ++i) values.record(rng.uniform(0.0, 50.0));
            peak.record(static_cast<double>(t % 13));
            return 0;
        });
        return reg.snapshot();
    };

    const auto s1 = run_with(1);
    const auto s8 = run_with(8);
    ASSERT_EQ(s1.size(), s8.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i].name, s8[i].name);
        EXPECT_EQ(s1[i].count, s8[i].count) << s1[i].name;
        EXPECT_EQ(s1[i].value, s8[i].value) << s1[i].name;
        EXPECT_EQ(s1[i].buckets, s8[i].buckets) << s1[i].name;
    }
}

TEST(MetricsTest, FormatSummaryNamesEveryMetric) {
    Registry reg;
    reg.set_enabled(true);
    reg.counter("test.counter").add(3);
    reg.histogram("test.hist", {1.0}).record(0.5);
    const std::string text = format_summary(reg.snapshot());
    EXPECT_NE(text.find("test.counter"), std::string::npos);
    EXPECT_NE(text.find("test.hist"), std::string::npos);
}

// The macro layer: under LOCBLE_OBS=1 it records into the global registry;
// under LOCBLE_OBS=0 the very same code must record nothing even while the
// registry is enabled (the sites compile away).
TEST(MetricsTest, MacroLayerRespectsCompileTimeToggle) {
    Registry& reg = Registry::global();
    reg.reset();
    reg.set_enabled(true);
    LOCBLE_COUNT("test.macro.counter", 2);
    LOCBLE_HISTOGRAM("test.macro.hist", 1.5, 1.0, 2.0);
    const auto snap = reg.snapshot();
    const auto* c = find(snap, "test.macro.counter");
#if LOCBLE_OBS
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 2u);
    const auto* h = find(snap, "test.macro.hist");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 1u);
    EXPECT_EQ(h->buckets[1], 1u);  // 1.5 -> (1, 2] bucket
#else
    EXPECT_EQ(c, nullptr);  // the macro left no trace at all
#endif
    reg.set_enabled(false);
    reg.reset();
}

TEST(MetricsTest, MacroLayerIsNoOpWhileRuntimeDisabled) {
    Registry& reg = Registry::global();
    reg.reset();
    reg.set_enabled(false);
    LOCBLE_COUNT("test.macro.disabled", 1);
    const auto snap = reg.snapshot();
    EXPECT_EQ(find(snap, "test.macro.disabled"), nullptr);
}

}  // namespace
}  // namespace locble::obs
