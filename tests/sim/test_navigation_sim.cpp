#include "locble/sim/navigation_sim.hpp"

#include <gtest/gtest.h>

namespace locble::sim {
namespace {

TEST(NavigationSimulatorTest, ConvergesInOffice) {
    const Scenario sc = scenario(1);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    NavigationSimulator sim;
    locble::Rng rng(1);
    const NavigationRun run =
        sim.run(sc, beacon, sc.observer_start, sc.observer_heading, rng);
    EXPECT_FALSE(run.rounds.empty());
    // Paper Fig. 10(b): max overall error < 3 m in office navigation.
    EXPECT_LT(run.final_distance_m, 4.0);
}

TEST(NavigationSimulatorTest, ApproachesDistantTarget) {
    const Scenario sc = scenario(9);
    BeaconPlacement beacon;
    beacon.position = {12.0, 11.0};
    NavigationSimulator sim;
    locble::Rng rng(2);
    const NavigationRun run = sim.run(sc, beacon, {2.0, 2.0}, 0.5, rng);
    ASSERT_FALSE(run.rounds.empty());
    // Started ~13.5 m out; navigation must close most of that gap.
    EXPECT_LT(run.final_distance_m, run.rounds.front().distance_to_target_m / 2.0);
}

TEST(NavigationSimulatorTest, RoundsBounded) {
    const Scenario sc = scenario(7);  // hard NLOS site
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    NavigationSimulator::Config cfg;
    cfg.max_rounds = 3;
    NavigationSimulator sim(cfg);
    locble::Rng rng(3);
    const NavigationRun run =
        sim.run(sc, beacon, sc.observer_start, sc.observer_heading, rng);
    EXPECT_LE(run.rounds.size(), 3u);
}

TEST(NavigationSimulatorTest, RecordsErrorsPerRound) {
    const Scenario sc = scenario(9);
    BeaconPlacement beacon;
    beacon.position = {12.0, 11.0};
    NavigationSimulator sim;
    locble::Rng rng(4);
    const NavigationRun run = sim.run(sc, beacon, {2.0, 2.0}, 0.5, rng);
    for (const auto& rec : run.rounds) {
        EXPECT_GE(rec.distance_to_target_m, 0.0);
        if (rec.measured) {
            EXPECT_GE(rec.estimate_error_m, 0.0);
        }
    }
}

}  // namespace
}  // namespace locble::sim
