#include "locble/sim/heatmap.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "locble/sim/scenarios.hpp"

namespace locble::sim {
namespace {

TEST(HeatmapTest, DimensionsCoverSite) {
    const Scenario sc = scenario(1);  // 5x5 m
    locble::Rng rng(1);
    const auto map = rssi_heatmap(sc.site, sc.default_beacon, -59.0, 0.5, rng);
    EXPECT_EQ(map.cols, 10u);
    EXPECT_EQ(map.rows, 10u);
    EXPECT_EQ(map.rssi_dbm.size(), 100u);
}

TEST(HeatmapTest, StrongestNearTheBeacon) {
    const Scenario sc = scenario(9);  // open outdoor lot
    locble::Rng rng(2);
    const auto map = rssi_heatmap(sc.site, sc.default_beacon, -59.0, 0.5, rng);
    double best = -1e300;
    locble::Vec2 best_pos;
    for (std::size_t r = 0; r < map.rows; ++r)
        for (std::size_t c = 0; c < map.cols; ++c)
            if (map.at(c, r) > best) {
                best = map.at(c, r);
                best_pos = map.center(c, r);
            }
    EXPECT_LT(locble::Vec2::distance(best_pos, sc.default_beacon), 1.5);
}

TEST(HeatmapTest, WallCarvesShadow) {
    // A wall between the beacon and the far half of the site: cells behind
    // it must average weaker than mirror cells on the open side.
    channel::SiteModel site;
    site.width_m = 10.0;
    site.height_m = 10.0;
    site.shadowing_scale = 0.0;  // deterministic comparison
    site.walls.push_back(
        {{5.0, 0.0}, {5.0, 10.0}, channel::BlockageClass::heavy, 12.0, "wall"});
    locble::Rng rng(3);
    const auto map = rssi_heatmap(site, {2.5, 5.0}, -59.0, 0.5, rng);

    double open = 0.0, shadow = 0.0;
    int n = 0;
    for (std::size_t r = 0; r < map.rows; ++r) {
        // Mirror pair around the beacon: x = 1.25 (open) vs x = 8.75 would
        // be asymmetric; compare equidistant cells at x = 0.25 and x = 4.75+4.5.
        open += map.at(2, r);          // ~1.25 m west of the beacon's column
        shadow += map.at(map.cols - 3, r);  // east, behind the wall
        ++n;
    }
    EXPECT_GT(open / n, shadow / n + 8.0);
}

TEST(HeatmapTest, CoverageMonotoneInFloor) {
    const Scenario sc = scenario(6);
    locble::Rng rng(4);
    const auto map = rssi_heatmap(sc.site, sc.default_beacon, -59.0, 0.5, rng);
    EXPECT_GE(map.coverage(-100.0), map.coverage(-80.0));
    EXPECT_GE(map.coverage(-80.0), map.coverage(-60.0));
    EXPECT_DOUBLE_EQ(map.coverage(-1000.0), 1.0);
}

TEST(HeatmapTest, AsciiRendersOneRowPerCellRow) {
    const Scenario sc = scenario(1);
    locble::Rng rng(5);
    const auto map = rssi_heatmap(sc.site, sc.default_beacon, -59.0, 1.0, rng);
    const std::string art = map.ascii();
    std::size_t newlines = 0;
    for (char ch : art)
        if (ch == '\n') ++newlines;
    EXPECT_EQ(newlines, map.rows);
}

TEST(HeatmapTest, InvalidCellThrows) {
    const Scenario sc = scenario(1);
    locble::Rng rng(6);
    EXPECT_THROW(rssi_heatmap(sc.site, sc.default_beacon, -59.0, 0.0, rng),
                 std::invalid_argument);
}

}  // namespace
}  // namespace locble::sim
