#include <gtest/gtest.h>

#include <cmath>

#include "locble/baseline/ranging.hpp"
#include "locble/common/cdf.hpp"
#include "locble/sim/harness.hpp"

namespace locble::sim {
namespace {

/// Mean error over several seeded runs of the default measurement in one
/// scenario.
double mean_error(int scenario_index, int runs, std::uint64_t seed_base,
                  const MeasurementConfig& cfg = {}) {
    const Scenario sc = scenario(scenario_index);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    std::vector<double> errors;
    for (int r = 0; r < runs; ++r) {
        locble::Rng rng(seed_base + static_cast<std::uint64_t>(r));
        const auto out = measure_stationary(sc, beacon, cfg, rng);
        errors.push_back(out.ok ? out.error_m : 8.0);
    }
    return locble::EmpiricalCdf(errors).mean();
}

TEST(EndToEnd, MeetingRoomAccuracyNearPaper) {
    // Table 1: meeting room 0.8 +- 0.2 m. Allow slack for the simulated
    // substrate but demand the same sub-2 m class of accuracy.
    EXPECT_LT(mean_error(1, 10, 100), 2.0);
}

TEST(EndToEnd, OutdoorAccuracyNearPaper) {
    // Table 1: parking lot 1.2 +- 0.5 m.
    EXPECT_LT(mean_error(9, 10, 200), 2.4);
}

TEST(EndToEnd, EasySitesBeatHardSites) {
    // Table 1's ordering: meeting room (LOS) clearly better than labs
    // (heavy NLOS).
    const double easy = mean_error(1, 12, 300);
    const double hard = mean_error(7, 12, 300);
    EXPECT_LT(easy, hard);
}

TEST(EndToEnd, AllScenariosProduceFixes) {
    // Every environment yields a usable estimate for most seeds.
    for (int idx = 1; idx <= 9; ++idx) {
        const Scenario sc = scenario(idx);
        BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        int ok = 0;
        const int runs = 6;
        for (int r = 0; r < runs; ++r) {
            locble::Rng rng(400 + static_cast<std::uint64_t>(idx * 10 + r));
            const MeasurementConfig cfg;
            if (measure_stationary(sc, beacon, cfg, rng).ok) ++ok;
        }
        EXPECT_GE(ok, runs - 1) << sc.name;
    }
}

TEST(EndToEnd, LocBleBeatsFixedModelRanging) {
    // The Fig. 11(a) headline: LocBLE's ranging error is ~30% below the
    // fixed-model (Dartle-style) baseline. Compare |distance| errors across
    // the first six environments.
    double locble_err = 0.0, baseline_err = 0.0;
    int count = 0;
    for (int idx = 1; idx <= 6; ++idx) {
        const Scenario sc = scenario(idx);
        BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        for (int r = 0; r < 5; ++r) {
            locble::Rng rng(500 + static_cast<std::uint64_t>(idx * 10 + r));
            MeasurementConfig cfg;
            const auto out = measure_stationary(sc, beacon, cfg, rng);
            if (!out.ok) continue;

            // Compare range estimates at the walk's end, where the baseline
            // takes its averaged reading.
            const auto walk = default_l_walk(sc, cfg.lshape);
            const double end_dist = locble::Vec2::distance(
                walk.pose_at(walk.duration()).position, beacon.position);
            const locble::Vec2 end_obs = site_to_observer(
                walk.pose_at(walk.duration()).position, sc.observer_start,
                sc.observer_heading);
            const double locble_range =
                locble::Vec2::distance(out.estimate_observer_frame, end_obs);
            locble_err += std::abs(locble_range - end_dist);

            // Baseline: fixed-model ranging on the same capture's RSS.
            locble::Rng rng2(500 + static_cast<std::uint64_t>(idx * 10 + r));
            const CaptureRunner runner(cfg.capture);
            const auto cap = runner.run(sc.site, {beacon}, walk, rng2);
            baseline::FixedModelRanger ranger;
            const double base_est = ranger.estimate_distance(cap.rss.at(beacon.id));
            baseline_err += std::abs(base_est - end_dist);
            ++count;
        }
    }
    ASSERT_GT(count, 20);
    EXPECT_LT(locble_err, baseline_err);
}

}  // namespace
}  // namespace locble::sim
