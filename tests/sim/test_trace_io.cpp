#include "locble/sim/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "locble/sim/harness.hpp"

namespace locble::sim {
namespace {

WalkCapture sample_capture(bool moving_target) {
    const Scenario sc = scenario(1);
    std::vector<BeaconPlacement> beacons(2);
    beacons[0].id = 1;
    beacons[0].position = sc.default_beacon;
    beacons[1].id = 7;
    if (moving_target)
        beacons[1].motion = imu::make_straight({3.0, 3.0}, 1.0, 2.0);
    else
        beacons[1].position = {2.0, 4.0};
    locble::Rng rng(5);
    return CaptureRunner().run(sc.site, beacons, default_l_walk(sc), rng);
}

std::string temp_prefix(const char* name) {
    return testing::TempDir() + "/locble_trace_" + name;
}

void cleanup(const std::string& prefix) {
    for (const char* suffix : {"_rss.csv", "_imu.csv", "_target_imu.csv"})
        std::remove((prefix + suffix).c_str());
}

TEST(TraceIoTest, RoundTripStationary) {
    const WalkCapture cap = sample_capture(false);
    const std::string prefix = temp_prefix("stationary");
    save_capture(prefix, cap);
    const WalkCapture back = load_capture(prefix);

    ASSERT_EQ(back.rss.size(), cap.rss.size());
    for (const auto& [id, series] : cap.rss) {
        ASSERT_TRUE(back.rss.count(id));
        ASSERT_EQ(back.rss.at(id).size(), series.size());
        for (std::size_t i = 0; i < series.size(); ++i) {
            EXPECT_NEAR(back.rss.at(id)[i].t, series[i].t, 1e-6);
            EXPECT_NEAR(back.rss.at(id)[i].value, series[i].value, 1e-6);
        }
    }
    ASSERT_EQ(back.observer_imu.accel_vertical.size(),
              cap.observer_imu.accel_vertical.size());
    EXPECT_TRUE(back.target_imu.empty());
    cleanup(prefix);
}

TEST(TraceIoTest, RoundTripMovingTargetImu) {
    const WalkCapture cap = sample_capture(true);
    const std::string prefix = temp_prefix("moving");
    save_capture(prefix, cap);
    const WalkCapture back = load_capture(prefix);
    ASSERT_TRUE(back.target_imu.count(7));
    ASSERT_EQ(back.target_imu.at(7).accel_vertical.size(),
              cap.target_imu.at(7).accel_vertical.size());
    EXPECT_NEAR(back.target_imu.at(7).mag_heading.front().value,
                cap.target_imu.at(7).mag_heading.front().value, 1e-6);
    cleanup(prefix);
}

TEST(TraceIoTest, ReplayedCaptureLocatesLikeLive) {
    // The whole point of record/replay: running the pipeline on a reloaded
    // capture must give the identical result.
    const Scenario sc = scenario(1);
    BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = sc.default_beacon;
    locble::Rng rng(9);
    const WalkCapture cap =
        CaptureRunner().run(sc.site, {beacon}, default_l_walk(sc), rng);

    const std::string prefix = temp_prefix("replay");
    save_capture(prefix, cap);
    const WalkCapture back = load_capture(prefix);

    const motion::DeadReckoner reckoner;
    core::LocBle::Config cfg;
    cfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
    const core::LocBle pipeline(cfg, shared_envaware());

    const auto live =
        pipeline.locate(cap.rss.at(1), reckoner.track(cap.observer_imu));
    const auto replay =
        pipeline.locate(back.rss.at(1), reckoner.track(back.observer_imu));
    ASSERT_EQ(live.fit.has_value(), replay.fit.has_value());
    if (live.fit) {
        // The exponent-grid model averaging has include/exclude thresholds,
        // so last-ulp CSV rounding can shift the result by ~1e-4 m; that is
        // far below the estimator's metre-scale accuracy.
        EXPECT_NEAR(live.fit->location.x, replay.fit->location.x, 5e-3);
        EXPECT_NEAR(live.fit->location.y, replay.fit->location.y, 5e-3);
    }
    cleanup(prefix);
}

TEST(TraceIoTest, MissingFilesThrow) {
    EXPECT_THROW(load_capture("/nonexistent/prefix"), std::runtime_error);
}

}  // namespace
}  // namespace locble::sim
