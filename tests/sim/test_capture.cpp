#include "locble/sim/capture.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/stats.hpp"
#include "locble/sim/scenarios.hpp"

namespace locble::sim {
namespace {

TEST(CaptureRunnerTest, ProducesRssAndImu) {
    const Scenario sc = scenario(1);
    const imu::Trajectory walk = imu::make_l_shape(sc.observer_start,
                                                   sc.observer_heading, 2.5, 2.0,
                                                   1.5707963);
    BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = sc.default_beacon;
    locble::Rng rng(1);
    const WalkCapture cap = CaptureRunner().run(sc.site, {beacon}, walk, rng);

    ASSERT_TRUE(cap.rss.count(1));
    const auto& rss = cap.rss.at(1);
    // ~10 Hz advertising, one report per event modulo loss, over ~7 s walk.
    EXPECT_GT(rss.size(), 30u);
    EXPECT_FALSE(cap.observer_imu.accel_vertical.empty());
    EXPECT_TRUE(cap.target_imu.empty());  // stationary target
    EXPECT_GT(cap.duration_s, 4.0);
}

TEST(CaptureRunnerTest, RssValuesPlausible) {
    const Scenario sc = scenario(1);
    const imu::Trajectory walk = imu::make_l_shape(sc.observer_start,
                                                   sc.observer_heading, 2.5, 2.0,
                                                   1.5707963);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    locble::Rng rng(2);
    const WalkCapture cap = CaptureRunner().run(sc.site, {beacon}, walk, rng);
    for (const auto& s : cap.rss.at(beacon.id)) {
        EXPECT_GT(s.value, -110.0);
        EXPECT_LT(s.value, -30.0);
    }
}

TEST(CaptureRunnerTest, TimestampsSortedWithinStream) {
    const Scenario sc = scenario(2);
    const imu::Trajectory walk = imu::make_straight(sc.observer_start, 0.0, 4.0);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    locble::Rng rng(3);
    const WalkCapture cap = CaptureRunner().run(sc.site, {beacon}, walk, rng);
    const auto& rss = cap.rss.at(beacon.id);
    for (std::size_t i = 1; i < rss.size(); ++i) EXPECT_GE(rss[i].t, rss[i - 1].t);
}

TEST(CaptureRunnerTest, MultipleBeaconsSeparateStreams) {
    const Scenario sc = scenario(1);
    const imu::Trajectory walk = imu::make_straight(sc.observer_start, 0.0, 3.0);
    std::vector<BeaconPlacement> beacons(3);
    for (std::size_t i = 0; i < 3; ++i) {
        beacons[i].id = i + 1;
        beacons[i].position = {1.0 + static_cast<double>(i), 3.0};
    }
    locble::Rng rng(4);
    const WalkCapture cap = CaptureRunner().run(sc.site, beacons, walk, rng);
    EXPECT_EQ(cap.rss.size(), 3u);
    for (const auto& [id, rss] : cap.rss) EXPECT_GT(rss.size(), 10u) << id;
}

TEST(CaptureRunnerTest, MovingBeaconGetsImu) {
    const Scenario sc = scenario(9);
    const imu::Trajectory walk = imu::make_straight(sc.observer_start, 0.5, 4.0);
    BeaconPlacement beacon;
    beacon.id = 7;
    beacon.motion = imu::make_straight({9.0, 9.0}, 2.0, 3.0);
    locble::Rng rng(5);
    const WalkCapture cap = CaptureRunner().run(sc.site, {beacon}, walk, rng);
    EXPECT_TRUE(cap.target_imu.count(7));
    EXPECT_FALSE(cap.target_imu.at(7).accel_vertical.empty());
}

TEST(CaptureRunnerTest, DeterministicForSeed) {
    const Scenario sc = scenario(1);
    const imu::Trajectory walk = imu::make_straight(sc.observer_start, 0.0, 3.0);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    locble::Rng a(6), b(6);
    const WalkCapture ca = CaptureRunner().run(sc.site, {beacon}, walk, a);
    const WalkCapture cb = CaptureRunner().run(sc.site, {beacon}, walk, b);
    ASSERT_EQ(ca.rss.at(beacon.id).size(), cb.rss.at(beacon.id).size());
    for (std::size_t i = 0; i < ca.rss.at(beacon.id).size(); ++i)
        EXPECT_DOUBLE_EQ(ca.rss.at(beacon.id)[i].value, cb.rss.at(beacon.id)[i].value);
}

TEST(CaptureRunnerTest, FartherBeaconWeaker) {
    const Scenario sc = scenario(9);  // open outdoor site
    const imu::Trajectory walk = imu::make_straight({2.0, 2.0}, 0.5, 3.0);
    BeaconPlacement near_b, far_b;
    near_b.id = 1;
    near_b.position = {4.0, 4.0};
    far_b.id = 2;
    far_b.position = {14.0, 13.0};
    locble::Rng rng(7);
    const WalkCapture cap = CaptureRunner().run(sc.site, {near_b, far_b}, walk, rng);
    const double near_mean = locble::mean(locble::values_of(cap.rss.at(1)));
    const double far_mean = locble::mean(locble::values_of(cap.rss.at(2)));
    EXPECT_GT(near_mean, far_mean + 6.0);
}

TEST(InitialMagHeadingTest, ReadsWalkDirection) {
    const imu::Trajectory walk = imu::make_straight({0.0, 0.0}, 0.9, 4.0);
    locble::Rng rng(8);
    const auto trace = imu::ImuSynthesizer().synthesize(walk, rng);
    EXPECT_NEAR(initial_mag_heading(trace), 0.9, 0.3);
}

TEST(InitialMagHeadingTest, EmptyThrows) {
    EXPECT_THROW(initial_mag_heading(imu::ImuTrace{}), std::invalid_argument);
}

}  // namespace
}  // namespace locble::sim
