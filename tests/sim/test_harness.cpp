#include "locble/sim/harness.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace locble::sim {
namespace {

TEST(FrameConversionTest, RoundTrip) {
    const locble::Vec2 start{2.0, 3.0};
    const double heading = 0.7;
    const locble::Vec2 p{4.4, -1.2};
    const locble::Vec2 site = observer_to_site(p, start, heading);
    const locble::Vec2 back = site_to_observer(site, start, heading);
    EXPECT_NEAR(back.x, p.x, 1e-12);
    EXPECT_NEAR(back.y, p.y, 1e-12);
}

TEST(FrameConversionTest, KnownTransform) {
    // Observer at (1,1) heading +y: observer-frame (2,0) is site (1,3).
    const locble::Vec2 site =
        observer_to_site({2.0, 0.0}, {1.0, 1.0}, std::numbers::pi / 2.0);
    EXPECT_NEAR(site.x, 1.0, 1e-12);
    EXPECT_NEAR(site.y, 3.0, 1e-12);
}

TEST(SharedEnvAwareTest, TrainedSingleton) {
    const auto& env = shared_envaware();
    EXPECT_TRUE(env.trained());
    // Same object each call.
    EXPECT_EQ(&env, &shared_envaware());
}

TEST(DefaultLWalkTest, AnchoredAtScenarioStart) {
    const Scenario sc = scenario(1);
    const auto walk = default_l_walk(sc);
    EXPECT_EQ(walk.pose_at(0.0).position, sc.observer_start);
    EXPECT_NEAR(walk.pose_at(0.0).heading, sc.observer_heading, 1e-9);
    EXPECT_NEAR(walk.walked_distance(), sc.lshape.leg1_m + sc.lshape.leg2_m, 1e-9);
}

TEST(DefaultLWalkTest, WalkStaysInsideEverySite) {
    for (const auto& sc : all_scenarios()) {
        const auto walk = default_l_walk(sc);
        for (double t = 0.0; t <= walk.duration(); t += 0.2) {
            const auto p = walk.pose_at(t).position;
            EXPECT_GE(p.x, 0.0) << sc.name;
            EXPECT_LE(p.x, sc.site.width_m) << sc.name;
            EXPECT_GE(p.y, 0.0) << sc.name;
            EXPECT_LE(p.y, sc.site.height_m) << sc.name;
        }
    }
}

TEST(MeasureStationaryTest, ProducesEstimateInEasyScenario) {
    const Scenario sc = scenario(1);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    MeasurementConfig cfg;
    locble::Rng rng(1);
    const MeasurementOutcome out = measure_stationary(sc, beacon, cfg, rng);
    ASSERT_TRUE(out.ok);
    EXPECT_LT(out.error_m, 3.5);
    // Consistency between the two frames of the same estimate.
    const locble::Vec2 recon = observer_to_site(
        out.estimate_observer_frame, sc.observer_start, sc.observer_heading);
    EXPECT_NEAR(recon.x, out.estimate_site.x, 1e-9);
    EXPECT_NEAR(recon.y, out.estimate_site.y, 1e-9);
}

TEST(MeasureStationaryTest, ErrorDecomposition) {
    const Scenario sc = scenario(1);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    MeasurementConfig cfg;
    locble::Rng rng(2);
    const MeasurementOutcome out = measure_stationary(sc, beacon, cfg, rng);
    ASSERT_TRUE(out.ok);
    // x/h errors bound the straight-line error.
    const double recombined =
        std::hypot(out.estimate_observer_frame.x - out.truth_observer_frame.x,
                   out.estimate_observer_frame.y - out.truth_observer_frame.y);
    EXPECT_NEAR(recombined, out.error_m, 1e-9);
    EXPECT_LE(out.x_error_m, out.error_m + 1e-9);
    EXPECT_LE(out.h_error_m, out.error_m + 1e-9);
}

TEST(MeasureMovingTest, RequiresTrajectory) {
    const Scenario sc = scenario(9);
    BeaconPlacement beacon;  // no motion set
    MeasurementConfig cfg;
    locble::Rng rng(3);
    const auto walk = default_l_walk(sc, cfg.lshape);
    EXPECT_THROW(measure_moving(sc, beacon, walk, cfg, rng), std::invalid_argument);
}

TEST(MeasureMovingTest, EstimatesInitialPosition) {
    const Scenario sc = scenario(9);
    BeaconPlacement beacon;
    beacon.id = 2;
    beacon.motion = imu::make_straight({9.0, 9.5}, -2.0, 3.0);
    MeasurementConfig cfg;
    locble::Rng rng(4);
    const auto walk = default_l_walk(sc, cfg.lshape);
    const MeasurementOutcome out = measure_moving(sc, beacon, walk, cfg, rng);
    EXPECT_EQ(out.truth_site, locble::Vec2(9.0, 9.5));
    if (out.ok) {
        EXPECT_LT(out.error_m, 8.0);  // sanity bound, not accuracy
    }
}

TEST(MeasureWithClusterTest, ReturnsBothEstimates) {
    const Scenario sc = scenario(7);
    BeaconPlacement target;
    target.id = 1;
    target.position = sc.default_beacon;
    std::vector<BeaconPlacement> neighbors;
    for (std::uint64_t i = 0; i < 2; ++i) {
        BeaconPlacement nb;
        nb.id = 10 + i;
        nb.position =
            sc.default_beacon + locble::Vec2{0.25 * (static_cast<double>(i) + 1.0), 0.1};
        neighbors.push_back(nb);
    }
    MeasurementConfig cfg;
    locble::Rng rng(5);
    const ClusteredOutcome out = measure_with_cluster(sc, target, neighbors, cfg, rng);
    // The cluster always contains the target itself.
    EXPECT_GE(out.cluster.members.size(), 1u);
    if (out.single.ok) {
        EXPECT_TRUE(out.calibrated.ok);
    }
}

TEST(MeasureStationaryTest, DeterministicForSeed) {
    const Scenario sc = scenario(1);
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    MeasurementConfig cfg;
    locble::Rng a(6), b(6);
    const auto ra = measure_stationary(sc, beacon, cfg, a);
    const auto rb = measure_stationary(sc, beacon, cfg, b);
    ASSERT_EQ(ra.ok, rb.ok);
    if (ra.ok) {
        EXPECT_DOUBLE_EQ(ra.error_m, rb.error_m);
    }
}

}  // namespace
}  // namespace locble::sim
