#include "locble/sim/scenarios.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace locble::sim {
namespace {

TEST(ScenariosTest, AllNineExist) {
    const auto all = all_scenarios();
    ASSERT_EQ(all.size(), 9u);
    for (int i = 0; i < 9; ++i) EXPECT_EQ(all[i].index, i + 1);
}

TEST(ScenariosTest, OutOfRangeThrows) {
    EXPECT_THROW(scenario(0), std::out_of_range);
    EXPECT_THROW(scenario(10), std::out_of_range);
}

TEST(ScenariosTest, NamesMatchTable1) {
    EXPECT_EQ(scenario(1).name, "Meeting room");
    EXPECT_EQ(scenario(2).name, "Hallway");
    EXPECT_EQ(scenario(6).name, "Store");
    EXPECT_EQ(scenario(9).name, "Parking lot");
}

TEST(ScenariosTest, DimensionsMatchTable1) {
    EXPECT_DOUBLE_EQ(scenario(1).site.width_m, 5.0);
    EXPECT_DOUBLE_EQ(scenario(1).site.height_m, 5.0);
    EXPECT_DOUBLE_EQ(scenario(2).site.width_m, 8.0);
    EXPECT_DOUBLE_EQ(scenario(2).site.height_m, 3.0);
    EXPECT_DOUBLE_EQ(scenario(9).site.width_m, 16.0);
    EXPECT_DOUBLE_EQ(scenario(9).site.height_m, 15.0);
}

TEST(ScenariosTest, PaperAccuraciesRecorded) {
    EXPECT_DOUBLE_EQ(scenario(1).paper_accuracy_m, 0.8);
    EXPECT_DOUBLE_EQ(scenario(7).paper_accuracy_m, 2.3);
    EXPECT_DOUBLE_EQ(scenario(9).paper_accuracy_m, 1.2);
}

TEST(ScenariosTest, GeometryInsideBounds) {
    for (const auto& sc : all_scenarios()) {
        EXPECT_GE(sc.default_beacon.x, 0.0) << sc.name;
        EXPECT_LE(sc.default_beacon.x, sc.site.width_m) << sc.name;
        EXPECT_GE(sc.default_beacon.y, 0.0) << sc.name;
        EXPECT_LE(sc.default_beacon.y, sc.site.height_m) << sc.name;
        EXPECT_GE(sc.observer_start.x, 0.0) << sc.name;
        EXPECT_LE(sc.observer_start.x, sc.site.width_m) << sc.name;
    }
}

TEST(ScenariosTest, HardEnvironmentsHaveHeavyBlockage) {
    // Labs (#7) and Hall (#8) are the paper's NLOS clustering testbeds.
    auto has_heavy = [](const Scenario& sc) {
        for (const auto& w : sc.site.walls)
            if (w.blockage == channel::BlockageClass::heavy) return true;
        for (const auto& b : sc.site.blockers)
            if (b.blockage == channel::BlockageClass::heavy) return true;
        return false;
    };
    EXPECT_TRUE(has_heavy(scenario(7)));
    EXPECT_TRUE(has_heavy(scenario(8)));
    EXPECT_FALSE(has_heavy(scenario(1)));
    EXPECT_FALSE(has_heavy(scenario(9)));
}

TEST(ScenariosTest, OutdoorIsCleanest) {
    const auto outdoor = scenario(9);
    for (int i = 1; i <= 8; ++i) {
        EXPECT_LE(outdoor.site.clutter_factor, scenario(i).site.clutter_factor);
        EXPECT_LE(outdoor.site.interference_noise_db,
                  scenario(i).site.interference_noise_db);
    }
}

}  // namespace
}  // namespace locble::sim
