#include "locble/common/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
    TextTable t({"env", "error"});
    t.add_row({"meeting room", "0.85"});
    t.add_row("hallway", {1.42});
    const std::string s = t.str();
    EXPECT_NE(s.find("env"), std::string::npos);
    EXPECT_NE(s.find("meeting room"), std::string::npos);
    EXPECT_NE(s.find("1.42"), std::string::npos);
    // Header separator row present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTableTest, RejectsWidthMismatch) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
    EXPECT_THROW(t.add_row("label", {1.0, 2.0}), std::invalid_argument);
}

TEST(TextTableTest, FmtPrecision) {
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.0, 0), "1");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(TextTableTest, ColumnsAlign) {
    TextTable t({"x", "yyyyy"});
    t.add_row({"aaaa", "1"});
    const std::string s = t.str();
    // Every line has the same length when columns are padded.
    std::size_t first_len = s.find('\n');
    std::size_t pos = first_len + 1;
    while (pos < s.size()) {
        const std::size_t next = s.find('\n', pos);
        EXPECT_EQ(next - pos, first_len);
        pos = next + 1;
    }
}

}  // namespace
}  // namespace locble
