#include "locble/common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

namespace locble {
namespace {

TEST(Csv, RoundTripThroughText) {
    CsvTable t;
    t.header = {"t", "rssi"};
    t.rows = {{0.0, -60.5}, {0.1, -61.25}};
    const CsvTable parsed = parse_csv(to_csv(t));
    ASSERT_EQ(parsed.header, t.header);
    ASSERT_EQ(parsed.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.rows[1][1], -61.25);
}

TEST(Csv, ColumnLookup) {
    CsvTable t;
    t.header = {"a", "b"};
    t.rows = {{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(t.column("b"), 1u);
    EXPECT_EQ(t.column_values("b"), (std::vector<double>{2.0, 4.0}));
    EXPECT_THROW(t.column("missing"), std::out_of_range);
}

TEST(Csv, RejectsRaggedRows) {
    EXPECT_THROW(parse_csv("a,b\n1.0\n"), std::runtime_error);
}

TEST(Csv, RejectsNonNumericCell) {
    EXPECT_THROW(parse_csv("a\nhello\n"), std::runtime_error);
    EXPECT_THROW(parse_csv("a\n1.5x\n"), std::runtime_error);
}

TEST(Csv, SkipsBlankLines) {
    const CsvTable t = parse_csv("a,b\n\n1,2\n\n3,4\n");
    EXPECT_EQ(t.rows.size(), 2u);
}

TEST(Csv, FileRoundTrip) {
    CsvTable t;
    t.header = {"x"};
    t.rows = {{42.0}};
    const std::string path = testing::TempDir() + "/locble_csv_test.csv";
    write_csv_file(path, t);
    const CsvTable back = read_csv_file(path);
    ASSERT_EQ(back.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(back.rows[0][0], 42.0);
    std::remove(path.c_str());
}

TEST(Csv, MissingFileThrows) {
    EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace locble
