#include "locble/common/vec2.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace locble {
namespace {

TEST(Vec2, ArithmeticOperators) {
    const Vec2 a{1.0, 2.0};
    const Vec2 b{3.0, -1.0};
    EXPECT_EQ(a + b, Vec2(4.0, 1.0));
    EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
    EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
    EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
    EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
    EXPECT_EQ(-a, Vec2(-1.0, -2.0));
}

TEST(Vec2, CompoundAssignment) {
    Vec2 v{1.0, 1.0};
    v += {2.0, 3.0};
    EXPECT_EQ(v, Vec2(3.0, 4.0));
    v -= {1.0, 1.0};
    EXPECT_EQ(v, Vec2(2.0, 3.0));
}

TEST(Vec2, NormAndDistance) {
    const Vec2 v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
    EXPECT_DOUBLE_EQ(Vec2::distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
}

TEST(Vec2, DotAndCross) {
    const Vec2 a{1.0, 0.0};
    const Vec2 b{0.0, 1.0};
    EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
    EXPECT_DOUBLE_EQ(a.cross(b), 1.0);  // b is CCW of a
    EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormalizedHandlesZero) {
    EXPECT_EQ(Vec2(0.0, 0.0).normalized(), Vec2(0.0, 0.0));
    const Vec2 n = Vec2{0.0, 5.0}.normalized();
    EXPECT_DOUBLE_EQ(n.x, 0.0);
    EXPECT_DOUBLE_EQ(n.y, 1.0);
}

TEST(Vec2, RotationQuarterTurn) {
    const Vec2 v{1.0, 0.0};
    const Vec2 r = v.rotated(std::numbers::pi / 2.0);
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
}

TEST(Vec2, RotationRoundTrip) {
    const Vec2 v{2.5, -1.75};
    const Vec2 r = v.rotated(0.7).rotated(-0.7);
    EXPECT_NEAR(r.x, v.x, 1e-12);
    EXPECT_NEAR(r.y, v.y, 1e-12);
}

TEST(Vec2, AngleOfAxes) {
    EXPECT_NEAR(Vec2(1.0, 0.0).angle(), 0.0, 1e-12);
    EXPECT_NEAR(Vec2(0.0, 1.0).angle(), std::numbers::pi / 2.0, 1e-12);
    EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), std::numbers::pi, 1e-12);
}

TEST(Angles, WrapAngleStaysInRange) {
    for (double a = -20.0; a <= 20.0; a += 0.37) {
        const double w = wrap_angle(a);
        EXPECT_GT(w, -std::numbers::pi - 1e-12);
        EXPECT_LE(w, std::numbers::pi + 1e-12);
        // Same direction modulo 2 pi.
        EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
        EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
    }
}

TEST(Angles, AngleDiffShortestPath) {
    EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
    // Crossing the +-pi seam takes the short way.
    EXPECT_NEAR(angle_diff(std::numbers::pi - 0.05, -std::numbers::pi + 0.05), -0.1,
                1e-9);
}

TEST(Angles, UnitFromAngle) {
    const Vec2 u = unit_from_angle(std::numbers::pi / 4.0);
    EXPECT_NEAR(u.x, std::sqrt(0.5), 1e-12);
    EXPECT_NEAR(u.y, std::sqrt(0.5), 1e-12);
}

}  // namespace
}  // namespace locble
