#include "locble/common/cdf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace locble {
namespace {

TEST(EmpiricalCdfTest, AtBoundaries) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    const EmpiricalCdf cdf(v);
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdfTest, PercentilesAndSummary) {
    const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
    const EmpiricalCdf cdf(v);
    EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
    EXPECT_DOUBLE_EQ(cdf.max(), 4.0);
    EXPECT_DOUBLE_EQ(cdf.median(), 2.5);
    EXPECT_DOUBLE_EQ(cdf.mean(), 2.5);
    EXPECT_EQ(cdf.count(), 4u);
}

TEST(EmpiricalCdfTest, EmptyThrows) {
    const std::vector<double> empty;
    EXPECT_THROW(EmpiricalCdf{empty}, std::invalid_argument);
}

TEST(EmpiricalCdfTest, CurveIsMonotone) {
    const std::vector<double> v{5.0, 1.0, 2.0, 9.0, 3.0, 3.0};
    const EmpiricalCdf cdf(v);
    const auto curve = cdf.curve(15);
    ASSERT_EQ(curve.size(), 15u);
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_GE(curve[i].first, curve[i - 1].first);
        EXPECT_GE(curve[i].second, curve[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdfTest, FormatTableContainsSeriesNames) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{2.0, 4.0};
    const std::vector<double> percentiles{0.5, 0.75};
    const std::string table = format_cdf_table(
        {{"first", EmpiricalCdf(a)}, {"second", EmpiricalCdf(b)}}, percentiles);
    EXPECT_NE(table.find("first"), std::string::npos);
    EXPECT_NE(table.find("second"), std::string::npos);
    EXPECT_NE(table.find("p50"), std::string::npos);
    EXPECT_NE(table.find("p75"), std::string::npos);
}

}  // namespace
}  // namespace locble
