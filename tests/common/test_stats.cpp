#include "locble/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace locble {
namespace {

TEST(Stats, MeanAndVariance) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_DOUBLE_EQ(variance(v), 1.25);
}

TEST(Stats, EmptyInputThrows) {
    const std::vector<double> empty;
    EXPECT_THROW(mean(empty), std::invalid_argument);
    EXPECT_THROW(variance(empty), std::invalid_argument);
    EXPECT_THROW(summarize(empty), std::invalid_argument);
    EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
}

TEST(Stats, QuantileInterpolation) {
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(quantile(v, 0.25), 17.5);
}

TEST(Stats, QuantileRejectsBadQ) {
    const std::vector<double> v{1.0};
    EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
    EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
}

TEST(Stats, QuantileUnsortedInput) {
    const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
}

TEST(Stats, SummarizeSymmetricData) {
    const std::vector<double> v{-2.0, -1.0, 0.0, 1.0, 2.0};
    const WindowSummary s = summarize(v);
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
    EXPECT_DOUBLE_EQ(s.variance, 2.0);
    EXPECT_NEAR(s.skewness, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min, -2.0);
    EXPECT_DOUBLE_EQ(s.max, 2.0);
    EXPECT_DOUBLE_EQ(s.median, 0.0);
    EXPECT_DOUBLE_EQ(s.q1, -1.0);
    EXPECT_DOUBLE_EQ(s.q3, 1.0);
}

TEST(Stats, SkewnessSignReflectsTail) {
    // Long right tail -> positive skew.
    const std::vector<double> right{1.0, 1.0, 1.0, 1.0, 10.0};
    EXPECT_GT(summarize(right).skewness, 0.5);
    const std::vector<double> left{10.0, 10.0, 10.0, 10.0, 1.0};
    EXPECT_LT(summarize(left).skewness, -0.5);
}

TEST(Stats, ConstantWindowHasZeroHigherMoments) {
    const std::vector<double> v{5.0, 5.0, 5.0};
    const WindowSummary s = summarize(v);
    EXPECT_DOUBLE_EQ(s.variance, 0.0);
    EXPECT_DOUBLE_EQ(s.skewness, 0.0);
    EXPECT_DOUBLE_EQ(s.kurtosis, 0.0);
}

TEST(Stats, KurtosisOfUniformNegative) {
    // Uniform distributions have negative excess kurtosis (-1.2).
    std::vector<double> v;
    for (int i = 0; i < 10000; ++i) v.push_back(static_cast<double>(i));
    EXPECT_NEAR(summarize(v).kurtosis, -1.2, 0.01);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
    const std::vector<double> v{3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0};
    RunningStats rs;
    for (double x : v) rs.add(x);
    EXPECT_EQ(rs.count(), v.size());
    EXPECT_NEAR(rs.mean(), mean(v), 1e-12);
    EXPECT_NEAR(rs.variance(), variance(v), 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), -9.0);
    EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStatsTest, SampleVarianceUsesNMinusOne) {
    RunningStats rs;
    rs.add(1.0);
    rs.add(3.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 1.0);
    EXPECT_DOUBLE_EQ(rs.sample_variance(), 2.0);
}

TEST(RunningStatsTest, ResetClearsState) {
    RunningStats rs;
    rs.add(1.0);
    rs.reset();
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(Stats, RmseBasics) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
    const std::vector<double> c{2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(rmse(a, c), 1.0);
}

TEST(Stats, RmseValidatesShapes) {
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{1.0};
    EXPECT_THROW(rmse(a, b), std::invalid_argument);
    const std::vector<double> empty;
    EXPECT_THROW(rmse(empty, empty), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> neg(b.rbegin(), b.rend());
    EXPECT_NEAR(pearson(a, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> c{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(pearson(a, c), 0.0);
}

}  // namespace
}  // namespace locble
