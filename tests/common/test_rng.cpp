#include "locble/common/rng.hpp"

#include <gtest/gtest.h>

#include "locble/common/stats.hpp"

namespace locble {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
    EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(RngTest, UniformIntInclusive) {
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
    Rng rng(99);
    RunningStats rs;
    for (int i = 0; i < 20000; ++i) rs.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(rs.mean(), 5.0, 0.1);
    EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
}

TEST(RngTest, RayleighMean) {
    // Rayleigh mean = sigma * sqrt(pi/2) ~= 1.2533 sigma.
    Rng rng(5);
    RunningStats rs;
    for (int i = 0; i < 20000; ++i) rs.add(rng.rayleigh(1.0));
    EXPECT_NEAR(rs.mean(), 1.2533, 0.05);
}

TEST(RngTest, ChanceProbability) {
    Rng rng(3);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.chance(0.3)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ForkIndependentButDeterministic) {
    Rng a(42), b(42);
    Rng fa = a.fork();
    Rng fb = b.fork();
    // Forks of identical generators agree...
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
    // ...and differ from their parents' subsequent stream.
    EXPECT_NE(a.uniform(0.0, 1.0), fa.uniform(0.0, 1.0));
}

}  // namespace
}  // namespace locble
