#include "locble/common/linalg.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "locble/common/rng.hpp"

namespace locble {
namespace {

TEST(SolveLinear, TwoByTwo) {
    // x + y = 3, x - y = 1 -> x = 2, y = 1
    const auto x = solve_linear({{1.0, 1.0}, {1.0, -1.0}}, {3.0, 1.0});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting) {
    // Leading zero forces a row swap.
    const auto x = solve_linear({{0.0, 1.0}, {1.0, 0.0}}, {5.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 5.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
    EXPECT_THROW(solve_linear({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
                 std::runtime_error);
}

TEST(SolveLinear, ShapeValidation) {
    EXPECT_THROW(solve_linear({}, {}), std::invalid_argument);
    EXPECT_THROW(solve_linear({{1.0, 2.0}}, {1.0}), std::invalid_argument);
    EXPECT_THROW(solve_linear({{1.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(LeastSquares, ExactSystemRecovered) {
    // y = 2 a + 3 b with 4 consistent rows.
    const Matrix x{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
    const std::vector<double> y{2.0, 3.0, 5.0, 7.0};
    const auto beta = least_squares(x, y);
    ASSERT_EQ(beta.size(), 2u);
    EXPECT_NEAR(beta[0], 2.0, 1e-10);
    EXPECT_NEAR(beta[1], 3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedNoisyFit) {
    Rng rng(1);
    Matrix x;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-5.0, 5.0);
        const double b = rng.uniform(-5.0, 5.0);
        x.push_back({a, b, 1.0});
        y.push_back(1.5 * a - 2.5 * b + 4.0 + rng.gaussian(0.0, 0.01));
    }
    const auto beta = least_squares(x, y);
    EXPECT_NEAR(beta[0], 1.5, 0.01);
    EXPECT_NEAR(beta[1], -2.5, 0.01);
    EXPECT_NEAR(beta[2], 4.0, 0.01);
}

TEST(LeastSquares, BadlyScaledColumnsStillSolve) {
    // One column ~1e7 larger than the other; scaling keeps this solvable.
    Matrix x;
    std::vector<double> y;
    for (int i = 1; i <= 50; ++i) {
        const double a = 1e7 * i;
        const double b = 0.001 * i * i;
        x.push_back({a, b});
        y.push_back(3.0 * a + 2000.0 * b);
    }
    const auto beta = least_squares(x, y);
    EXPECT_NEAR(beta[0], 3.0, 1e-6);
    EXPECT_NEAR(beta[1], 2000.0, 1e-3);
}

TEST(LeastSquares, RankDeficientThrows) {
    // Second column is a multiple of the first.
    const Matrix x{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
    const std::vector<double> y{1.0, 2.0, 3.0};
    EXPECT_THROW(least_squares(x, y), std::runtime_error);
}

TEST(LeastSquares, ShapeValidation) {
    EXPECT_THROW(least_squares({}, {}), std::invalid_argument);
    EXPECT_THROW(least_squares({{1.0, 2.0}}, {1.0}), std::invalid_argument);  // n < m
    EXPECT_THROW(least_squares({{1.0}, {2.0}}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace locble
