#include "locble/common/vec3.hpp"

#include <gtest/gtest.h>

namespace locble {
namespace {

TEST(Vec3Test, Arithmetic) {
    const Vec3 a{1.0, 2.0, 3.0};
    const Vec3 b{0.5, -1.0, 2.0};
    EXPECT_EQ(a + b, Vec3(1.5, 1.0, 5.0));
    EXPECT_EQ(a - b, Vec3(0.5, 3.0, 1.0));
    EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 6.0));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(a / 2.0, Vec3(0.5, 1.0, 1.5));
}

TEST(Vec3Test, NormAndDistance) {
    const Vec3 v{2.0, 3.0, 6.0};
    EXPECT_DOUBLE_EQ(v.norm(), 7.0);
    EXPECT_DOUBLE_EQ(v.norm2(), 49.0);
    EXPECT_DOUBLE_EQ(Vec3::distance({0, 0, 0}, v), 7.0);
}

TEST(Vec3Test, DotProduct) {
    EXPECT_DOUBLE_EQ(Vec3(1, 2, 3).dot({4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(Vec3(1, 0, 0).dot({0, 1, 0}), 0.0);
}

TEST(Vec3Test, XyProjectionAndLift) {
    const Vec2 planar{3.0, 4.0};
    const Vec3 lifted{planar, 1.5};
    EXPECT_EQ(lifted.xy(), planar);
    EXPECT_DOUBLE_EQ(lifted.z, 1.5);
}

TEST(Vec3Test, CompoundAdd) {
    Vec3 v{1, 1, 1};
    v += {1, 2, 3};
    EXPECT_EQ(v, Vec3(2, 3, 4));
}

}  // namespace
}  // namespace locble
