#include "locble/common/timeseries.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble {
namespace {

TimeSeries ramp() {
    // value == 10 * t on t = 0, 0.5, 1.0, 1.5, 2.0
    TimeSeries ts;
    for (int i = 0; i <= 4; ++i) ts.push_back({0.5 * i, 5.0 * i});
    return ts;
}

TEST(TimeSeriesTest, ValuesAndTimes) {
    const TimeSeries ts = ramp();
    EXPECT_EQ(values_of(ts), (std::vector<double>{0.0, 5.0, 10.0, 15.0, 20.0}));
    EXPECT_EQ(times_of(ts), (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0}));
}

TEST(TimeSeriesTest, InterpolateInside) {
    const TimeSeries ts = ramp();
    EXPECT_DOUBLE_EQ(interpolate(ts, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(interpolate(ts, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(interpolate(ts, 1.75), 17.5);
}

TEST(TimeSeriesTest, InterpolateClampsOutside) {
    const TimeSeries ts = ramp();
    EXPECT_DOUBLE_EQ(interpolate(ts, -1.0), 0.0);
    EXPECT_DOUBLE_EQ(interpolate(ts, 99.0), 20.0);
}

TEST(TimeSeriesTest, InterpolateEmptyThrows) {
    const TimeSeries empty;
    EXPECT_THROW(interpolate(empty, 0.0), std::invalid_argument);
}

TEST(TimeSeriesTest, ResampleUniformGrid) {
    const TimeSeries ts = ramp();
    const TimeSeries r = resample(ts, 4.0);  // dt = 0.25
    ASSERT_EQ(r.size(), 9u);
    EXPECT_DOUBLE_EQ(r[1].t, 0.25);
    EXPECT_DOUBLE_EQ(r[1].value, 2.5);
    EXPECT_DOUBLE_EQ(r.back().t, 2.0);
}

TEST(TimeSeriesTest, ResampleRejectsBadRate) {
    const TimeSeries ts = ramp();
    EXPECT_THROW(resample(ts, 0.0), std::invalid_argument);
    EXPECT_THROW(resample(TimeSeries{}, 1.0), std::invalid_argument);
}

TEST(TimeSeriesTest, ResampleAtTargets) {
    const TimeSeries ts = ramp();
    const std::vector<double> targets{0.1, 0.9, 3.0};
    const TimeSeries r = resample_at(ts, targets);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_NEAR(r[0].value, 1.0, 1e-12);
    EXPECT_NEAR(r[1].value, 9.0, 1e-12);
    EXPECT_DOUBLE_EQ(r[2].value, 20.0);  // clamped
}

TEST(TimeSeriesTest, SliceInclusive) {
    const TimeSeries ts = ramp();
    const TimeSeries s = slice(ts, 0.5, 1.5);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s.front().t, 0.5);
    EXPECT_DOUBLE_EQ(s.back().t, 1.5);
}

TEST(TimeSeriesTest, DifferentiateRamp) {
    const TimeSeries d = differentiate(ramp());
    ASSERT_EQ(d.size(), 4u);
    for (const auto& s : d) EXPECT_DOUBLE_EQ(s.value, 5.0);
    EXPECT_DOUBLE_EQ(d.front().t, 0.5);  // stamped at the later sample
}

TEST(TimeSeriesTest, DifferentiateShortSeries) {
    EXPECT_TRUE(differentiate(TimeSeries{}).empty());
    EXPECT_TRUE(differentiate(TimeSeries{{0.0, 1.0}}).empty());
}

TEST(TimeSeriesTest, DecimateHalvesRate) {
    TimeSeries ts;
    for (int i = 0; i < 20; ++i) ts.push_back({0.1 * i, static_cast<double>(i)});
    const TimeSeries d = decimate(ts, 5.0);  // from 10 Hz to 5 Hz
    ASSERT_FALSE(d.empty());
    for (std::size_t i = 1; i < d.size(); ++i)
        EXPECT_GE(d[i].t - d[i - 1].t, 0.2 - 1e-9);
    EXPECT_NEAR(static_cast<double>(d.size()), 10.0, 1.0);
}

TEST(TimeSeriesTest, DecimateRejectsBadRate) {
    EXPECT_THROW(decimate(ramp(), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace locble
