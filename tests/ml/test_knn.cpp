#include "locble/ml/knn.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "locble/ml/metrics.hpp"

namespace locble::ml {
namespace {

Dataset blobs(locble::Rng& rng, int per_class) {
    Dataset d;
    const double centers[3][2] = {{0.0, 0.0}, {5.0, 0.0}, {2.5, 4.5}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < per_class; ++i)
            d.add({rng.gaussian(centers[c][0], 0.6), rng.gaussian(centers[c][1], 0.6)},
                  c);
    return d;
}

TEST(KnnTest, ClassifiesSeparatedBlobs) {
    locble::Rng rng(1);
    const Dataset train = blobs(rng, 60);
    const Dataset test = blobs(rng, 25);
    KnnClassifier knn;
    knn.fit(train);
    const auto report = evaluate_classification(test.y, knn.predict(test));
    EXPECT_GT(report.accuracy, 0.95);
}

TEST(KnnTest, KOneMemorizesTrainingSet) {
    locble::Rng rng(2);
    const Dataset train = blobs(rng, 20);
    KnnClassifier::Config cfg;
    cfg.k = 1;
    KnnClassifier knn(cfg);
    knn.fit(train);
    const auto pred = knn.predict(train);
    EXPECT_EQ(pred, train.y);
}

TEST(KnnTest, DistanceWeightingBreaksTies) {
    // Two far class-1 points vs one adjacent class-0 point, k=3: uniform
    // voting says 1, distance weighting says 0.
    Dataset d;
    d.add({0.0, 0.0}, 0);
    d.add({10.0, 0.0}, 1);
    d.add({10.0, 0.1}, 1);
    KnnClassifier::Config weighted;
    weighted.k = 3;
    weighted.distance_weighted = true;
    KnnClassifier::Config uniform;
    uniform.k = 3;
    uniform.distance_weighted = false;
    KnnClassifier kw(weighted), ku(uniform);
    kw.fit(d);
    ku.fit(d);
    EXPECT_EQ(kw.predict(std::vector<double>{0.1, 0.0}), 0);
    EXPECT_EQ(ku.predict(std::vector<double>{0.1, 0.0}), 1);
}

TEST(KnnTest, KLargerThanDatasetClamped) {
    Dataset d;
    d.add({0.0}, 0);
    d.add({1.0}, 1);
    KnnClassifier::Config cfg;
    cfg.k = 50;
    KnnClassifier knn(cfg);
    knn.fit(d);
    EXPECT_NO_THROW(knn.predict(std::vector<double>{0.4}));
}

TEST(KnnTest, Validation) {
    KnnClassifier knn;
    EXPECT_THROW(knn.predict(std::vector<double>{0.0}), std::logic_error);
    EXPECT_THROW(knn.fit(Dataset{}), std::invalid_argument);
    KnnClassifier::Config zero;
    zero.k = 0;
    Dataset d;
    d.add({0.0}, 0);
    KnnClassifier bad(zero);
    EXPECT_THROW(bad.fit(d), std::invalid_argument);
    knn.fit(d);
    EXPECT_THROW(knn.predict(std::vector<double>{0.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace locble::ml
