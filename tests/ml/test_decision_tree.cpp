#include "locble/ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "locble/ml/metrics.hpp"

namespace locble::ml {
namespace {

Dataset xor_dataset(locble::Rng& rng, int n) {
    // XOR: not linearly separable, easy for trees.
    Dataset d;
    for (int i = 0; i < n; ++i) {
        const double x = rng.uniform(-1.0, 1.0);
        const double y = rng.uniform(-1.0, 1.0);
        d.add({x, y}, (x > 0.0) != (y > 0.0) ? 1 : 0);
    }
    return d;
}

TEST(DecisionTreeTest, FitsXor) {
    locble::Rng rng(1);
    const Dataset d = xor_dataset(rng, 400);
    DecisionTree tree;
    tree.fit(d);
    const auto report = evaluate_classification(d.y, tree.predict(d));
    EXPECT_GT(report.accuracy, 0.95);
}

TEST(DecisionTreeTest, PureLeafShortcut) {
    Dataset d;
    for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, 1);
    DecisionTree tree;
    tree.fit(d);
    EXPECT_EQ(tree.node_count(), 1u);  // all-one-class: a single leaf
    EXPECT_EQ(tree.predict(std::vector<double>{5.0}), 1);
}

TEST(DecisionTreeTest, DepthLimitRespected) {
    locble::Rng rng(2);
    const Dataset d = xor_dataset(rng, 400);
    DecisionTree::Config cfg;
    cfg.max_depth = 1;
    DecisionTree stump(cfg);
    stump.fit(d);
    // Depth 1 -> at most 3 nodes.
    EXPECT_LE(stump.node_count(), 3u);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
    locble::Rng rng(3);
    Dataset d = xor_dataset(rng, 40);
    DecisionTree::Config cfg;
    cfg.min_samples_leaf = 20;
    DecisionTree tree(cfg);
    tree.fit(d);
    // 40 samples with min 20 per leaf allows at most one split.
    EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTreeTest, PredictBeforeFitThrows) {
    DecisionTree tree;
    EXPECT_THROW(tree.predict(std::vector<double>{0.0}), std::logic_error);
}

TEST(DecisionTreeTest, EmptyRowsThrow) {
    Dataset d;
    d.add({1.0}, 0);
    DecisionTree tree;
    EXPECT_THROW(tree.fit(d, {}), std::invalid_argument);
}

TEST(DecisionTreeTest, ThreeClasses) {
    locble::Rng rng(4);
    Dataset d;
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < 50; ++i)
            d.add({rng.gaussian(3.0 * c, 0.4)}, c);
    DecisionTree tree;
    tree.fit(d);
    EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0);
    EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 1);
    EXPECT_EQ(tree.predict(std::vector<double>{6.0}), 2);
}

TEST(RandomForestTest, FitsXorBetterThanStump) {
    locble::Rng rng(5);
    const Dataset train = xor_dataset(rng, 500);
    const Dataset test = xor_dataset(rng, 200);
    RandomForest forest;
    forest.fit(train);
    const auto report = evaluate_classification(test.y, forest.predict(test));
    EXPECT_GT(report.accuracy, 0.9);
    EXPECT_EQ(forest.size(), RandomForest::Config{}.num_trees);
}

TEST(RandomForestTest, DeterministicAcrossRuns) {
    locble::Rng rng(6);
    const Dataset d = xor_dataset(rng, 200);
    RandomForest a, b;
    a.fit(d);
    b.fit(d);
    for (const auto& row : d.x) EXPECT_EQ(a.predict(row), b.predict(row));
}

TEST(RandomForestTest, PredictBeforeFitThrows) {
    RandomForest forest;
    EXPECT_THROW(forest.predict(std::vector<double>{0.0}), std::logic_error);
}

}  // namespace
}  // namespace locble::ml
