#include "locble/ml/svm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "locble/common/rng.hpp"
#include "locble/ml/metrics.hpp"

namespace locble::ml {
namespace {

Dataset linearly_separable_binary(locble::Rng& rng, int n_per_class) {
    // Class 0 around (-2, -2), class 1 around (+2, +2).
    Dataset d;
    for (int i = 0; i < n_per_class; ++i) {
        d.add({rng.gaussian(-2.0, 0.5), rng.gaussian(-2.0, 0.5)}, 0);
        d.add({rng.gaussian(2.0, 0.5), rng.gaussian(2.0, 0.5)}, 1);
    }
    return d;
}

TEST(LinearSvmTest, SeparatesCleanBinaryData) {
    locble::Rng rng(1);
    const Dataset d = linearly_separable_binary(rng, 50);
    LinearSvm svm;
    svm.fit(d);
    const auto report = evaluate_classification(d.y, svm.predict(d));
    EXPECT_GT(report.accuracy, 0.98);
}

TEST(LinearSvmTest, BinaryDecisionValuesAntisymmetric) {
    locble::Rng rng(2);
    const Dataset d = linearly_separable_binary(rng, 30);
    LinearSvm svm;
    svm.fit(d);
    const auto dv = svm.decision_values({1.0, 1.0});
    ASSERT_EQ(dv.size(), 2u);
    EXPECT_NEAR(dv[0], -dv[1], 1e-9);
}

TEST(LinearSvmTest, ThreeClassOneVsRest) {
    locble::Rng rng(3);
    Dataset d;
    const double centers[3][2] = {{0.0, 4.0}, {-4.0, -2.0}, {4.0, -2.0}};
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < 60; ++i)
            d.add({rng.gaussian(centers[c][0], 0.7), rng.gaussian(centers[c][1], 0.7)},
                  c);
    LinearSvm svm;
    svm.fit(d);
    EXPECT_EQ(svm.num_classes(), 3);
    const auto report = evaluate_classification(d.y, svm.predict(d));
    EXPECT_GT(report.accuracy, 0.95);
}

TEST(LinearSvmTest, BiasTermLearned) {
    // Both classes on the same side of the origin: separation needs a bias.
    locble::Rng rng(4);
    Dataset d;
    for (int i = 0; i < 60; ++i) {
        d.add({rng.gaussian(3.0, 0.3)}, 0);
        d.add({rng.gaussian(6.0, 0.3)}, 1);
    }
    LinearSvm svm;
    svm.fit(d);
    EXPECT_EQ(svm.predict(std::vector<double>{3.0}), 0);
    EXPECT_EQ(svm.predict(std::vector<double>{6.0}), 1);
}

TEST(LinearSvmTest, DeterministicAcrossRuns) {
    locble::Rng rng(5);
    const Dataset d = linearly_separable_binary(rng, 40);
    LinearSvm a, b;
    a.fit(d);
    b.fit(d);
    for (std::size_t j = 0; j < a.weights(1).size(); ++j)
        EXPECT_DOUBLE_EQ(a.weights(1)[j], b.weights(1)[j]);
}

TEST(LinearSvmTest, ToleratesLabelNoise) {
    locble::Rng rng(6);
    Dataset d = linearly_separable_binary(rng, 100);
    // Flip 5% of labels.
    for (std::size_t i = 0; i < d.size(); i += 20) d.y[i] = 1 - d.y[i];
    LinearSvm svm;
    svm.fit(d);
    const auto report = evaluate_classification(d.y, svm.predict(d));
    EXPECT_GT(report.accuracy, 0.9);
}

TEST(LinearSvmTest, PredictBeforeFitThrows) {
    LinearSvm svm;
    EXPECT_THROW(svm.predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(LinearSvmTest, DimensionMismatchThrows) {
    locble::Rng rng(7);
    const Dataset d = linearly_separable_binary(rng, 10);
    LinearSvm svm;
    svm.fit(d);
    EXPECT_THROW(svm.predict(std::vector<double>{1.0, 2.0, 3.0}),
                 std::invalid_argument);
}

TEST(LinearSvmTest, RejectsDegenerateDatasets) {
    LinearSvm svm;
    EXPECT_THROW(svm.fit(Dataset{}), std::invalid_argument);
    Dataset single;
    single.add({1.0}, 0);
    single.add({2.0}, 0);
    EXPECT_THROW(svm.fit(single), std::invalid_argument);  // one class
}

TEST(LinearSvmTest, RegularizationAffectsMargin) {
    // With tiny C the weights shrink toward zero.
    locble::Rng rng(8);
    const Dataset d = linearly_separable_binary(rng, 50);
    LinearSvm::Config strong;
    strong.c = 100.0;
    LinearSvm::Config weak;
    weak.c = 1e-4;
    LinearSvm s(strong), w(weak);
    s.fit(d);
    w.fit(d);
    double norm_s = 0.0, norm_w = 0.0;
    for (double v : s.weights(1)) norm_s += v * v;
    for (double v : w.weights(1)) norm_w += v * v;
    EXPECT_GT(norm_s, norm_w);
}

}  // namespace
}  // namespace locble::ml
