#include "locble/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::ml {
namespace {

Dataset small_dataset() {
    Dataset d;
    d.add({0.0, 0.0}, 0);
    d.add({1.0, 1.0}, 1);
    d.add({2.0, 2.0}, 1);
    d.add({3.0, 3.0}, 2);
    return d;
}

TEST(DatasetTest, SizeDimsClasses) {
    const Dataset d = small_dataset();
    EXPECT_EQ(d.size(), 4u);
    EXPECT_EQ(d.dims(), 2u);
    EXPECT_EQ(d.num_classes(), 3);
}

TEST(DatasetTest, ValidateCatchesRaggedRows) {
    Dataset d = small_dataset();
    d.x.push_back({1.0});
    d.y.push_back(0);
    EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(DatasetTest, ValidateCatchesCountMismatch) {
    Dataset d = small_dataset();
    d.y.pop_back();
    EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(DatasetTest, ValidateCatchesNegativeLabel) {
    Dataset d = small_dataset();
    d.y[0] = -1;
    EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(TrainTestSplitTest, PartitionSizes) {
    Dataset d;
    for (int i = 0; i < 100; ++i) d.add({static_cast<double>(i)}, i % 2);
    locble::Rng rng(1);
    auto [train, test] = train_test_split(d, 0.3, rng);
    EXPECT_EQ(test.size(), 30u);
    EXPECT_EQ(train.size(), 70u);
}

TEST(TrainTestSplitTest, NoSampleLostOrDuplicated) {
    Dataset d;
    for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, 0);
    locble::Rng rng(2);
    auto [train, test] = train_test_split(d, 0.5, rng);
    std::vector<double> all;
    for (const auto& r : train.x) all.push_back(r[0]);
    for (const auto& r : test.x) all.push_back(r[0]);
    std::sort(all.begin(), all.end());
    for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(all[i], i);
}

TEST(TrainTestSplitTest, BadFractionThrows) {
    Dataset d = small_dataset();
    locble::Rng rng(1);
    EXPECT_THROW(train_test_split(d, -0.1, rng), std::invalid_argument);
    EXPECT_THROW(train_test_split(d, 1.5, rng), std::invalid_argument);
}

TEST(KFoldTest, CoversAllIndicesOnce) {
    locble::Rng rng(3);
    const auto folds = kfold_indices(23, 5, rng);
    ASSERT_EQ(folds.size(), 5u);
    std::vector<std::size_t> all;
    for (const auto& f : folds) all.insert(all.end(), f.begin(), f.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(), 23u);
    for (std::size_t i = 0; i < 23; ++i) EXPECT_EQ(all[i], i);
}

TEST(KFoldTest, BadKThrows) {
    locble::Rng rng(1);
    EXPECT_THROW(kfold_indices(5, 0, rng), std::invalid_argument);
    EXPECT_THROW(kfold_indices(5, 6, rng), std::invalid_argument);
}

TEST(StandardScalerTest, TransformsToZeroMeanUnitVar) {
    Dataset d;
    d.add({10.0, 100.0}, 0);
    d.add({20.0, 200.0}, 0);
    d.add({30.0, 300.0}, 0);
    StandardScaler scaler;
    scaler.fit(d);
    const Dataset t = scaler.transform(d);
    for (std::size_t j = 0; j < 2; ++j) {
        double m = 0.0, v = 0.0;
        for (const auto& r : t.x) m += r[j];
        m /= 3.0;
        for (const auto& r : t.x) v += (r[j] - m) * (r[j] - m);
        v /= 3.0;
        EXPECT_NEAR(m, 0.0, 1e-12);
        EXPECT_NEAR(v, 1.0, 1e-12);
    }
}

TEST(StandardScalerTest, ConstantFeatureMapsToZero) {
    Dataset d;
    d.add({5.0}, 0);
    d.add({5.0}, 1);
    StandardScaler scaler;
    scaler.fit(d);
    EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{5.0})[0], 0.0);
    EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{7.0})[0], 0.0);
}

TEST(StandardScalerTest, DimensionMismatchThrows) {
    Dataset d = small_dataset();
    StandardScaler scaler;
    scaler.fit(d);
    EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(StandardScalerTest, EmptyFitThrows) {
    StandardScaler scaler;
    EXPECT_THROW(scaler.fit(Dataset{}), std::invalid_argument);
    EXPECT_FALSE(scaler.fitted());
}

}  // namespace
}  // namespace locble::ml
