#include "locble/ml/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::ml {
namespace {

TEST(MetricsTest, PerfectPrediction) {
    const std::vector<int> y{0, 1, 2, 0, 1, 2};
    const auto r = evaluate_classification(y, y);
    EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
    EXPECT_DOUBLE_EQ(r.macro_precision, 1.0);
    EXPECT_DOUBLE_EQ(r.macro_recall, 1.0);
    EXPECT_DOUBLE_EQ(r.macro_f1, 1.0);
}

TEST(MetricsTest, ConfusionMatrixLayout) {
    // truth 0 predicted as 1 -> confusion[0][1].
    const std::vector<int> truth{0, 0, 1};
    const std::vector<int> pred{1, 0, 1};
    const auto r = evaluate_classification(truth, pred);
    EXPECT_EQ(r.confusion[0][1], 1u);
    EXPECT_EQ(r.confusion[0][0], 1u);
    EXPECT_EQ(r.confusion[1][1], 1u);
    EXPECT_NEAR(r.accuracy, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PrecisionRecallAsymmetric) {
    // Class 1: 1 TP, 1 FP, 0 FN -> precision 0.5, recall 1.0
    const std::vector<int> truth{1, 0, 0};
    const std::vector<int> pred{1, 1, 0};
    const auto r = evaluate_classification(truth, pred);
    EXPECT_DOUBLE_EQ(r.precision[1], 0.5);
    EXPECT_DOUBLE_EQ(r.recall[1], 1.0);
    EXPECT_NEAR(r.f1[1], 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, AbsentPredictedClassZeroPrecision) {
    // Class 1 never predicted.
    const std::vector<int> truth{0, 1};
    const std::vector<int> pred{0, 0};
    const auto r = evaluate_classification(truth, pred);
    EXPECT_DOUBLE_EQ(r.precision[1], 0.0);
    EXPECT_DOUBLE_EQ(r.recall[1], 0.0);
    EXPECT_DOUBLE_EQ(r.f1[1], 0.0);
}

TEST(MetricsTest, SizeMismatchThrows) {
    EXPECT_THROW(evaluate_classification({0, 1}, {0}), std::invalid_argument);
    EXPECT_THROW(evaluate_classification({}, {}), std::invalid_argument);
}

TEST(MetricsTest, ReportStringContainsNames) {
    const std::vector<int> y{0, 1, 0, 1};
    const auto r = evaluate_classification(y, y);
    const std::string s = r.str({"LOS", "NLOS"});
    EXPECT_NE(s.find("LOS"), std::string::npos);
    EXPECT_NE(s.find("NLOS"), std::string::npos);
    EXPECT_NE(s.find("accuracy"), std::string::npos);
}

}  // namespace
}  // namespace locble::ml
