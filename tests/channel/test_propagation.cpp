#include "locble/channel/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/stats.hpp"

namespace locble::channel {
namespace {

SiteModel open_site() {
    SiteModel s;
    s.width_m = 20.0;
    s.height_m = 20.0;
    s.interference_noise_db = 0.0;
    s.channel_offset_spread_db = 0.0;
    return s;
}

TEST(LinkSimulatorTest, RssiDecaysWithDistance) {
    const SiteModel site = open_site();
    LinkSimulator link(site, -59.0, locble::Rng(1));
    // Average many samples at 2 m vs 10 m.
    locble::RunningStats near_rssi, far_rssi;
    for (int i = 0; i < 300; ++i)
        near_rssi.add(link.rssi({0, 0}, {2.0 + 0.001 * i, 0}, 0.1 * i,
                                ble::AdvChannel::ch37));
    for (int i = 0; i < 300; ++i)
        far_rssi.add(link.rssi({0, 0}, {10.0 + 0.001 * i, 0}, 30.0 + 0.1 * i,
                               ble::AdvChannel::ch37));
    // LOS exponent 2: ~14 dB drop from 2 m to 10 m.
    EXPECT_NEAR(near_rssi.mean() - far_rssi.mean(), 14.0, 4.0);
}

TEST(LinkSimulatorTest, ClassTracksGeometry) {
    SiteModel site = open_site();
    site.walls.push_back(
        {{5.0, -5.0}, {5.0, 5.0}, BlockageClass::heavy, 12.0, "wall"});
    LinkSimulator link(site, -59.0, locble::Rng(2));
    link.rssi({0, 0}, {3, 0}, 0.0, ble::AdvChannel::ch37);
    EXPECT_EQ(link.last_class(), PropagationClass::los);
    link.rssi({0, 0}, {8, 0}, 1.0, ble::AdvChannel::ch37);
    EXPECT_EQ(link.last_class(), PropagationClass::nlos);
}

TEST(LinkSimulatorTest, BlockageCostsPower) {
    SiteModel blocked = open_site();
    blocked.walls.push_back(
        {{2.0, -5.0}, {2.0, 5.0}, BlockageClass::heavy, 12.0, "wall"});
    const SiteModel clear = open_site();
    LinkSimulator link_clear(clear, -59.0, locble::Rng(3));
    LinkSimulator link_blocked(blocked, -59.0, locble::Rng(3));
    locble::RunningStats rs_clear, rs_blocked;
    for (int i = 0; i < 400; ++i) {
        const locble::Vec2 rx{4.0 + 0.002 * i, 0.0};
        rs_clear.add(link_clear.rssi({0, 0}, rx, 0.1 * i, ble::AdvChannel::ch38));
        rs_blocked.add(link_blocked.rssi({0, 0}, rx, 0.1 * i, ble::AdvChannel::ch38));
    }
    // Wall insertion loss + steeper NLOS exponent: >= 10 dB weaker.
    EXPECT_LT(rs_blocked.mean(), rs_clear.mean() - 10.0);
}

TEST(LinkSimulatorTest, StationaryLinkIsSteady) {
    const SiteModel site = open_site();
    LinkSimulator link(site, -59.0, locble::Rng(4));
    locble::RunningStats rs;
    for (int i = 0; i < 200; ++i)
        rs.add(link.rssi({0, 0}, {5, 0}, 0.1 * i, ble::AdvChannel::ch37));
    // No movement: fading/shadowing frozen, so variance is tiny.
    EXPECT_LT(rs.stddev(), 0.5);
}

TEST(LinkSimulatorTest, MovingLinkFluctuates) {
    const SiteModel site = open_site();
    LinkSimulator link(site, -59.0, locble::Rng(5));
    locble::RunningStats rs;
    for (int i = 0; i < 200; ++i) {
        // Walk tangentially (constant distance 5 m) so path loss is constant
        // and all variation comes from fading.
        const double angle = 0.02 * i;
        const locble::Vec2 rx{5.0 * std::cos(angle), 5.0 * std::sin(angle)};
        rs.add(link.rssi({0, 0}, rx, 0.1 * i, ble::AdvChannel::ch37));
    }
    EXPECT_GT(rs.stddev(), 1.0);
}

TEST(LinkSimulatorTest, ChannelOffsetsDifferentiateChannels) {
    SiteModel site = open_site();
    site.channel_offset_spread_db = 3.0;
    LinkSimulator link(site, -59.0, locble::Rng(6));
    locble::RunningStats ch37, ch39;
    for (int i = 0; i < 300; ++i) {
        ch37.add(link.rssi({0, 0}, {5, 0}, 0.1 * i, ble::AdvChannel::ch37));
        ch39.add(link.rssi({0, 0}, {5, 0}, 0.1 * i, ble::AdvChannel::ch39));
    }
    EXPECT_GT(std::abs(ch37.mean() - ch39.mean()), 0.5);
}

TEST(ApplyReceiverTest, OffsetShiftsReading) {
    ble::ReceiverProfile rx;
    rx.rssi_offset_db = -6.0;
    rx.rssi_noise_db = 0.0;
    rx.quantization_db = 0.0;
    locble::Rng rng(7);
    EXPECT_DOUBLE_EQ(apply_receiver(-70.0, rx, rng), -76.0);
}

TEST(ApplyReceiverTest, QuantizationSnapsToGrid) {
    ble::ReceiverProfile rx;
    rx.rssi_offset_db = 0.0;
    rx.rssi_noise_db = 0.0;
    rx.quantization_db = 1.0;
    locble::Rng rng(8);
    EXPECT_DOUBLE_EQ(apply_receiver(-70.4, rx, rng), -70.0);
    EXPECT_DOUBLE_EQ(apply_receiver(-70.6, rx, rng), -71.0);
}

TEST(ApplyReceiverTest, NoiseHasConfiguredSpread) {
    ble::ReceiverProfile rx;
    rx.rssi_noise_db = 2.0;
    rx.quantization_db = 0.0;
    locble::Rng rng(9);
    locble::RunningStats rs;
    for (int i = 0; i < 20000; ++i) rs.add(apply_receiver(-70.0, rx, rng));
    EXPECT_NEAR(rs.stddev(), 2.0, 0.1);
    EXPECT_NEAR(rs.mean(), -70.0, 0.1);
}

TEST(RssiFromClassTest, NlosWeakerThanLos) {
    const LogDistanceModel base{-59.0, 2.0};
    const auto los_params = params_for(PropagationClass::los);
    const auto nlos_params = params_for(PropagationClass::nlos);
    FadingProcess f1(los_params.rician_k_db, 0.06, locble::Rng(10));
    FadingProcess f2(nlos_params.rician_k_db, 0.06, locble::Rng(10));
    ShadowingProcess s1(los_params.shadowing_sigma_db, 4.0, locble::Rng(11));
    ShadowingProcess s2(nlos_params.shadowing_sigma_db, 4.0, locble::Rng(11));
    locble::RunningStats rs_los, rs_nlos;
    for (int i = 0; i < 500; ++i) {
        rs_los.add(rssi_from_class(base, 5.0, los_params, f1, s1, 0.1));
        rs_nlos.add(rssi_from_class(base, 5.0, nlos_params, f2, s2, 0.1));
    }
    EXPECT_LT(rs_nlos.mean(), rs_los.mean() - 8.0);
    EXPECT_GT(rs_nlos.stddev(), rs_los.stddev());
}

}  // namespace
}  // namespace locble::channel
