#include "locble/channel/obstacles.hpp"

#include <gtest/gtest.h>

namespace locble::channel {
namespace {

using locble::Vec2;

TEST(SegmentsIntersect, CrossingSegments) {
    EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(SegmentsIntersect, ParallelNonTouching) {
    EXPECT_FALSE(segments_intersect({0, 0}, {2, 0}, {0, 1}, {2, 1}));
}

TEST(SegmentsIntersect, TouchingAtEndpoint) {
    EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
    EXPECT_TRUE(segments_intersect({0, 0}, {3, 0}, {1, 0}, {2, 0}));
}

TEST(SegmentsIntersect, CollinearDisjoint) {
    EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(SegmentsIntersect, NearMiss) {
    EXPECT_FALSE(segments_intersect({0, 0}, {2, 2}, {0, 2.01}, {2, 4}));
}

TEST(SegmentHitsDisk, ThroughCenter) {
    EXPECT_TRUE(segment_hits_disk({0, 0}, {4, 0}, {2, 0}, 0.5));
}

TEST(SegmentHitsDisk, GrazingEdge) {
    EXPECT_TRUE(segment_hits_disk({0, 0}, {4, 0}, {2, 0.5}, 0.5));
    EXPECT_FALSE(segment_hits_disk({0, 0}, {4, 0}, {2, 0.51}, 0.5));
}

TEST(SegmentHitsDisk, DiskBeyondSegmentEnd) {
    EXPECT_FALSE(segment_hits_disk({0, 0}, {1, 0}, {3, 0}, 0.5));
    // But touching the nearest endpoint counts.
    EXPECT_TRUE(segment_hits_disk({0, 0}, {1, 0}, {1.4, 0}, 0.5));
}

TEST(SegmentHitsDisk, DegenerateSegmentIsPoint) {
    EXPECT_TRUE(segment_hits_disk({1, 1}, {1, 1}, {1, 1.2}, 0.3));
    EXPECT_FALSE(segment_hits_disk({1, 1}, {1, 1}, {2, 2}, 0.3));
}

TEST(ClassifyPath, ClearPathIsLos) {
    const auto b = classify_path({0, 0}, {5, 5}, 0.0, {}, {});
    EXPECT_EQ(b.propagation, PropagationClass::los);
    EXPECT_DOUBLE_EQ(b.total_attenuation_db, 0.0);
}

TEST(ClassifyPath, LightWallMakesPlos) {
    const std::vector<Wall> walls{
        {{2, -1}, {2, 1}, BlockageClass::light, 3.0, "glass"}};
    const auto b = classify_path({0, 0}, {4, 0}, 0.0, walls, {});
    EXPECT_EQ(b.propagation, PropagationClass::plos);
    EXPECT_DOUBLE_EQ(b.total_attenuation_db, 3.0);
    EXPECT_EQ(b.light_crossings, 1);
}

TEST(ClassifyPath, HeavyWallMakesNlos) {
    const std::vector<Wall> walls{
        {{2, -1}, {2, 1}, BlockageClass::heavy, 12.0, "concrete"}};
    const auto b = classify_path({0, 0}, {4, 0}, 0.0, walls, {});
    EXPECT_EQ(b.propagation, PropagationClass::nlos);
    EXPECT_EQ(b.heavy_crossings, 1);
}

TEST(ClassifyPath, HeavyDominatesLight) {
    const std::vector<Wall> walls{
        {{1, -1}, {1, 1}, BlockageClass::light, 3.0, "glass"},
        {{2, -1}, {2, 1}, BlockageClass::heavy, 12.0, "concrete"}};
    const auto b = classify_path({0, 0}, {4, 0}, 0.0, walls, {});
    EXPECT_EQ(b.propagation, PropagationClass::nlos);
    EXPECT_DOUBLE_EQ(b.total_attenuation_db, 15.0);
}

TEST(ClassifyPath, TimedBlockerOnlyWhenActive) {
    std::vector<DiskBlocker> blockers{
        {{2.0, 0.0}, 0.4, BlockageClass::light, 3.0, 5.0, 8.0, "person"}};
    EXPECT_EQ(classify_path({0, 0}, {4, 0}, 2.0, {}, blockers).propagation,
              PropagationClass::los);
    EXPECT_EQ(classify_path({0, 0}, {4, 0}, 6.0, {}, blockers).propagation,
              PropagationClass::plos);
    EXPECT_EQ(classify_path({0, 0}, {4, 0}, 9.0, {}, blockers).propagation,
              PropagationClass::los);
}

TEST(ClassifyPath, PathMissingObstaclesStaysLos) {
    const std::vector<Wall> walls{
        {{2, 1}, {2, 3}, BlockageClass::heavy, 12.0, "wall"}};
    const auto b = classify_path({0, 0}, {4, 0}, 0.0, walls, {});
    EXPECT_EQ(b.propagation, PropagationClass::los);
}

}  // namespace
}  // namespace locble::channel
