#include "locble/channel/fading.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/stats.hpp"
#include "locble/common/units.hpp"

namespace locble::channel {
namespace {

TEST(FadingProcessTest, StationaryLinkBarelyChanges) {
    FadingProcess f(9.0, 0.06, locble::Rng(1));
    const double first = f.step(0.0);
    for (int i = 0; i < 50; ++i) EXPECT_NEAR(f.step(0.0), first, 1e-9);
}

TEST(FadingProcessTest, MovementDecorrelates) {
    FadingProcess f(9.0, 0.06, locble::Rng(2));
    locble::RunningStats deltas;
    double prev = f.step(0.0);
    for (int i = 0; i < 200; ++i) {
        const double v = f.step(0.12);  // two coherence distances per step
        deltas.add(std::abs(v - prev));
        prev = v;
    }
    EXPECT_GT(deltas.mean(), 0.3);  // fades move when the user moves
}

TEST(FadingProcessTest, RicianMeanPowerNearUnity) {
    // Average linear power over many decorrelated samples ~ 1 (0 dB).
    FadingProcess f(6.0, 0.06, locble::Rng(3));
    double power_sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        power_sum += locble::db_to_ratio(f.step(1.0));
    EXPECT_NEAR(power_sum / n, 1.0, 0.08);
}

TEST(FadingProcessTest, RayleighFadesDeeperThanRician) {
    FadingProcess rician(9.0, 0.06, locble::Rng(4));
    FadingProcess rayleigh(-100.0, 0.06, locble::Rng(4));
    locble::RunningStats rs_rician, rs_rayleigh;
    for (int i = 0; i < 5000; ++i) {
        rs_rician.add(rician.step(1.0));
        rs_rayleigh.add(rayleigh.step(1.0));
    }
    EXPECT_GT(rs_rician.min(), rs_rayleigh.min());       // fewer deep fades
    EXPECT_LT(rs_rician.stddev(), rs_rayleigh.stddev());  // tighter spread
}

TEST(FadingProcessTest, DeepFadeFloorApplied) {
    FadingProcess f(-100.0, 0.06, locble::Rng(5));
    for (int i = 0; i < 20000; ++i) EXPECT_GE(f.step(1.0), -60.0 - 1e-9);
}

TEST(ShadowingProcessTest, StationaryHoldsValue) {
    ShadowingProcess s(3.0, 4.0, locble::Rng(6));
    const double first = s.step(0.0);
    for (int i = 0; i < 20; ++i) EXPECT_NEAR(s.step(0.0), first, 1e-9);
}

TEST(ShadowingProcessTest, LongRunStdMatchesSigma) {
    ShadowingProcess s(3.0, 4.0, locble::Rng(7));
    locble::RunningStats rs;
    for (int i = 0; i < 30000; ++i) rs.add(s.step(8.0));  // decorrelated draws
    EXPECT_NEAR(rs.stddev(), 3.0, 0.2);
    EXPECT_NEAR(rs.mean(), 0.0, 0.15);
}

TEST(ShadowingProcessTest, CorrelatedOverShortMoves) {
    ShadowingProcess s(3.0, 4.0, locble::Rng(8));
    // 5 cm per step << 4 m decorrelation distance: per-step innovation std is
    // sigma * sqrt(1 - rho^2) ~= 0.47 dB, far below the 3 dB marginal std.
    double prev = s.step(0.0);
    locble::RunningStats step_sizes;
    for (int i = 0; i < 500; ++i) {
        const double v = s.step(0.05);
        step_sizes.add(std::abs(v - prev));
        prev = v;
    }
    EXPECT_LT(step_sizes.mean(), 0.8);
}

TEST(ChannelOffsetsTest, ZeroMeanAcrossChannels) {
    locble::Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const auto o = draw_channel_offsets(1.5, rng);
        EXPECT_NEAR(o[0] + o[1] + o[2], 0.0, 1e-9);
    }
}

TEST(ChannelOffsetsTest, SpreadScalesWithParameter) {
    locble::Rng a(10), b(10);
    locble::RunningStats small, large;
    for (int i = 0; i < 500; ++i) {
        for (double v : draw_channel_offsets(0.5, a)) small.add(v);
        for (double v : draw_channel_offsets(3.0, b)) large.add(v);
    }
    EXPECT_LT(small.stddev(), large.stddev() / 2.0);
}

}  // namespace
}  // namespace locble::channel
