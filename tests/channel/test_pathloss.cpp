#include "locble/channel/pathloss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace locble::channel {
namespace {

TEST(LogDistanceModelTest, GammaIsRssiAtOneMetre) {
    const LogDistanceModel m{-59.0, 2.0};
    EXPECT_DOUBLE_EQ(m.rssi_at(1.0), -59.0);
}

TEST(LogDistanceModelTest, TenMetresLosesTenNDb) {
    const LogDistanceModel m{-59.0, 2.0};
    EXPECT_NEAR(m.rssi_at(10.0), -79.0, 1e-9);
    const LogDistanceModel steep{-59.0, 3.3};
    EXPECT_NEAR(steep.rssi_at(10.0), -92.0, 1e-9);
}

TEST(LogDistanceModelTest, InverseRoundTrip) {
    const LogDistanceModel m{-62.0, 2.7};
    for (double d : {0.5, 1.0, 3.7, 9.2, 15.0}) {
        EXPECT_NEAR(m.distance_for(m.rssi_at(d)), d, 1e-9) << "d=" << d;
    }
}

TEST(LogDistanceModelTest, NearFieldClamped) {
    const LogDistanceModel m{-59.0, 2.0};
    EXPECT_DOUBLE_EQ(m.rssi_at(0.0), m.rssi_at(0.1));
    EXPECT_DOUBLE_EQ(m.rssi_at(0.05), m.rssi_at(0.1));
}

TEST(LogDistanceModelTest, MonotoneDecreasing) {
    const LogDistanceModel m{-59.0, 2.5};
    double prev = m.rssi_at(0.2);
    for (double d = 0.4; d < 20.0; d += 0.2) {
        EXPECT_LT(m.rssi_at(d), prev);
        prev = m.rssi_at(d);
    }
}

TEST(PropagationClassTest, Names) {
    EXPECT_EQ(std::string(to_string(PropagationClass::los)), "LOS");
    EXPECT_EQ(std::string(to_string(PropagationClass::plos)), "p-LOS");
    EXPECT_EQ(std::string(to_string(PropagationClass::nlos)), "NLOS");
}

TEST(PropagationParamsTest, SeverityOrdering) {
    const auto los = params_for(PropagationClass::los);
    const auto plos = params_for(PropagationClass::plos);
    const auto nlos = params_for(PropagationClass::nlos);
    // Path loss exponent grows with blockage severity.
    EXPECT_LT(los.exponent, plos.exponent);
    EXPECT_LT(plos.exponent, nlos.exponent);
    // So do attenuation and shadowing spread.
    EXPECT_LT(los.extra_attenuation_db, plos.extra_attenuation_db);
    EXPECT_LT(plos.extra_attenuation_db, nlos.extra_attenuation_db);
    EXPECT_LT(los.shadowing_sigma_db, nlos.shadowing_sigma_db);
    // Rician K degrades toward Rayleigh.
    EXPECT_GT(los.rician_k_db, plos.rician_k_db);
    EXPECT_GT(plos.rician_k_db, nlos.rician_k_db);
}

}  // namespace
}  // namespace locble::channel
