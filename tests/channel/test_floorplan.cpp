#include "locble/channel/floorplan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::channel {
namespace {

TEST(MakeRoomTest, SolidRoomHasFourWalls) {
    RoomSpec spec;
    spec.origin = {1.0, 1.0};
    spec.width = 4.0;
    spec.height = 3.0;
    const auto walls = make_room(spec);
    EXPECT_EQ(walls.size(), 4u);
}

TEST(MakeRoomTest, DoorSplitsItsWall) {
    RoomSpec spec;
    spec.origin = {0.0, 0.0};
    spec.width = 4.0;
    spec.height = 3.0;
    spec.door_offset[0] = 1.5;  // bottom wall door
    const auto walls = make_room(spec);
    EXPECT_EQ(walls.size(), 5u);
}

TEST(MakeRoomTest, DoorAtWallStartEmitsSingleSegment) {
    RoomSpec spec;
    spec.door_offset[3] = 0.0;  // left wall, door flush with the corner
    const auto walls = make_room(spec);
    EXPECT_EQ(walls.size(), 4u);  // zero-length stub suppressed
}

TEST(MakeRoomTest, PathThroughDoorIsClear) {
    RoomSpec spec;
    spec.origin = {2.0, 2.0};
    spec.width = 4.0;
    spec.height = 4.0;
    spec.door_offset[0] = 1.5;  // door on the bottom wall at x in [3.5, 4.4]
    const auto walls = make_room(spec);

    // Through the door: LOS; through the wall next to it: blocked.
    const auto through_door =
        classify_path({4.0, 0.5}, {4.0, 4.0}, 0.0, walls, {});
    const auto through_wall =
        classify_path({2.5, 0.5}, {2.5, 4.0}, 0.0, walls, {});
    EXPECT_EQ(through_door.propagation, PropagationClass::los);
    EXPECT_EQ(through_wall.propagation, PropagationClass::nlos);
}

TEST(MakeRoomTest, Validation) {
    RoomSpec bad;
    bad.width = -1.0;
    EXPECT_THROW(make_room(bad), std::invalid_argument);
    RoomSpec wide_door;
    wide_door.width = 2.0;
    wide_door.door_offset[0] = 1.5;
    wide_door.door_width = 1.0;  // 1.5 + 1.0 > 2.0
    EXPECT_THROW(make_room(wide_door), std::invalid_argument);
}

TEST(MakeShelfRowTest, SegmentsAndGaps) {
    const auto shelves =
        make_shelf_row({0.0, 3.0}, {10.0, 3.0}, 4, 0.25, 7.0, "rack");
    ASSERT_EQ(shelves.size(), 4u);
    // Each shelf spans 75% of its 2.5 m pitch.
    for (const auto& w : shelves) {
        EXPECT_NEAR(locble::Vec2::distance(w.a, w.b), 2.5 * 0.75, 1e-9);
        EXPECT_EQ(w.blockage, BlockageClass::heavy);
    }
    // A path through an aisle gap is clear.
    const auto gap = classify_path({2.1, 0.0}, {2.1, 6.0}, 0.0, shelves, {});
    EXPECT_EQ(gap.propagation, PropagationClass::los);
    // A path through a shelf is not.
    const auto blocked = classify_path({1.0, 0.0}, {1.0, 6.0}, 0.0, shelves, {});
    EXPECT_EQ(blocked.propagation, PropagationClass::nlos);
}

TEST(MakeShelfRowTest, Validation) {
    EXPECT_THROW(make_shelf_row({0, 0}, {1, 0}, 0, 0.2, 5.0, "x"),
                 std::invalid_argument);
    EXPECT_THROW(make_shelf_row({0, 0}, {1, 0}, 2, 1.0, 5.0, "x"),
                 std::invalid_argument);
}

TEST(ScatterFurnitureTest, StaysInsideMargins) {
    locble::Rng rng(5);
    const auto furniture = scatter_furniture(8.0, 6.0, 12, 1.0, rng);
    ASSERT_EQ(furniture.size(), 12u);
    for (const auto& d : furniture) {
        EXPECT_GE(d.center.x, 1.0);
        EXPECT_LE(d.center.x, 7.0);
        EXPECT_GE(d.center.y, 1.0);
        EXPECT_LE(d.center.y, 5.0);
        EXPECT_EQ(d.blockage, BlockageClass::light);
    }
}

TEST(ScatterFurnitureTest, DeterministicPerSeed) {
    locble::Rng a(9), b(9);
    const auto fa = scatter_furniture(8.0, 6.0, 5, 0.5, a);
    const auto fb = scatter_furniture(8.0, 6.0, 5, 0.5, b);
    for (std::size_t i = 0; i < fa.size(); ++i)
        EXPECT_EQ(fa[i].center, fb[i].center);
}

}  // namespace
}  // namespace locble::channel
