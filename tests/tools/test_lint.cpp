// Unit tests for the determinism linter's rule engine (tools/lint).

#include "lint_core.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace locble::lint {
namespace {

std::vector<std::string> rules_hit(const std::string& path, const std::string& src) {
    std::vector<std::string> out;
    for (const auto& f : lint_source(path, src)) out.push_back(f.rule);
    return out;
}

TEST(LintTest, FlagsAmbientRandomness) {
    EXPECT_EQ(rules_hit("src/locble/core/foo.cpp", "int x = rand();\n"),
              std::vector<std::string>{"rand"});
    EXPECT_EQ(rules_hit("src/locble/core/foo.cpp", "std::random_device rd;\n"),
              std::vector<std::string>{"rand"});
    EXPECT_EQ(rules_hit("src/locble/core/foo.cpp", "std::mt19937_64 eng(1);\n"),
              std::vector<std::string>{"rand"});
}

TEST(LintTest, RngHomeIsExemptFromRandRule) {
    EXPECT_TRUE(rules_hit("src/locble/common/rng.hpp", "std::mt19937_64 engine_;\n")
                    .empty());
}

TEST(LintTest, IdentifiersContainingRandDoNotMatch) {
    EXPECT_TRUE(rules_hit("src/a.cpp", "double operand = 1.0;\n").empty());
    EXPECT_TRUE(rules_hit("src/a.cpp", "int rando_count = 0;\n").empty());
}

TEST(LintTest, FlagsWallClockReads) {
    EXPECT_EQ(rules_hit("src/a.cpp", "auto t = std::chrono::system_clock::now();\n"),
              std::vector<std::string>{"wallclock"});
    EXPECT_EQ(rules_hit("src/a.cpp", "time_t t = time(nullptr);\n"),
              std::vector<std::string>{"wallclock"});
    EXPECT_EQ(rules_hit("src/a.cpp",
                        "auto t = std::chrono::high_resolution_clock::now();\n"),
              std::vector<std::string>{"wallclock"});
}

TEST(LintTest, SteadyClockIsAllowed) {
    EXPECT_TRUE(
        rules_hit("bench/b.cpp", "auto t = std::chrono::steady_clock::now();\n")
            .empty());
    // `clock::now()` via an alias is not the libc clock() call.
    EXPECT_TRUE(rules_hit("bench/b.cpp",
                          "using clock = std::chrono::steady_clock;\n"
                          "auto t = clock::now();\n")
                    .empty());
}

TEST(LintTest, FlagsUnorderedContainersAndVolatile) {
    EXPECT_EQ(rules_hit("src/a.cpp", "std::unordered_map<int, int> m;\n"),
              std::vector<std::string>{"unordered"});
    EXPECT_EQ(rules_hit("bench/b.cpp", "volatile double sink = 0.0;\n"),
              std::vector<std::string>{"volatile"});
}

TEST(LintTest, RawNewOnlyPolicesSolverHotPath) {
    EXPECT_EQ(rules_hit("src/locble/core/location_solver.cpp",
                        "double* buf = new double[n];\n"),
              std::vector<std::string>{"raw-new"});
    EXPECT_EQ(rules_hit("src/locble/core/location_solver.cpp", "delete[] buf;\n"),
              std::vector<std::string>{"raw-new"});
    // Deleted special members are declarations, not allocation.
    EXPECT_TRUE(rules_hit("src/locble/core/location_solver.hpp",
                          "Session(const Session&) = delete;\n")
                    .empty());
    // Outside the hot path, new/delete are the other rules' business.
    EXPECT_TRUE(rules_hit("src/locble/sim/harness.cpp", "auto* p = new int(3);\n")
                    .empty());
}

TEST(LintTest, FlagsUnguardedObsGlobalsInSrcOnly) {
    EXPECT_EQ(rules_hit("src/locble/core/pipeline.cpp",
                        "obs::Registry::global().counter(\"x\");\n"),
              std::vector<std::string>{"obs-guard"});
    EXPECT_TRUE(rules_hit("src/locble/obs/metrics.cpp",
                          "Registry& Registry::global() { return instance; }\n")
                    .empty());
    EXPECT_TRUE(rules_hit("bench/bench_util.cpp",
                          "auto snap = obs::Registry::global().snapshot();\n")
                    .empty());
}

TEST(LintTest, TestsGetOnlyReproducibilityRules) {
    // tests/ paths: rand and wallclock still fire...
    EXPECT_EQ(rules_hit("tests/core/test_foo.cpp", "int x = rand();\n"),
              std::vector<std::string>{"rand"});
    EXPECT_EQ(rules_hit("tests/core/test_foo.cpp",
                        "auto t = std::chrono::system_clock::now();\n"),
              std::vector<std::string>{"wallclock"});
    // ...but the structural rules do not — tests legitimately exercise
    // unordered containers, volatile, raw new and the obs registry.
    EXPECT_TRUE(rules_hit("tests/obs/test_metrics.cpp",
                          "std::unordered_map<int, int> m;\n"
                          "volatile int sink = 0;\n"
                          "obs::Registry::global().snapshot();\n")
                    .empty());
    EXPECT_TRUE(rules_hit("tests/core/location_solver_helper.hpp",
                          "auto* p = new int[3];\n")
                    .empty());
    // An absolute path containing /tests/ is gated the same way.
    EXPECT_TRUE(rules_hit("/repo/tests/obs/test_metrics.cpp",
                          "Tracer::global().reset();\n")
                    .empty());
}

TEST(LintTest, CommentsAndStringsDoNotTrigger) {
    EXPECT_TRUE(rules_hit("src/a.cpp", "// the new solver avoids rand()\n").empty());
    EXPECT_TRUE(rules_hit("src/a.cpp", "/* time( and volatile in prose */\n").empty());
    EXPECT_TRUE(
        rules_hit("src/a.cpp", "const char* s = \"unordered_map time( rand\";\n")
            .empty());
}

TEST(LintTest, AllowPragmaSuppressesSameAndNextLine) {
    EXPECT_TRUE(rules_hit("src/a.cpp",
                          "int x = rand();  // locble-lint: allow(rand)\n")
                    .empty());
    EXPECT_TRUE(rules_hit("src/a.cpp",
                          "// locble-lint: allow(rand, wallclock)\n"
                          "int x = rand() + time(nullptr);\n")
                    .empty());
    // The pragma names a different rule: the finding stands.
    EXPECT_EQ(rules_hit("src/a.cpp",
                        "int x = rand();  // locble-lint: allow(volatile)\n"),
              std::vector<std::string>{"rand"});
    // And it only reaches one line down.
    EXPECT_EQ(rules_hit("src/a.cpp",
                        "// locble-lint: allow(rand)\n"
                        "int ok = rand();\n"
                        "int bad = rand();\n"),
              std::vector<std::string>{"rand"});
}

TEST(LintTest, LineNumbersAreOneBasedAndAccurate) {
    const auto findings = lint_source("src/a.cpp",
                                      "int a = 0;\n"
                                      "int b = rand();\n"
                                      "volatile int c = 0;\n");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_EQ(findings[0].rule, "rand");
    EXPECT_EQ(findings[1].line, 3);
    EXPECT_EQ(findings[1].rule, "volatile");
}

TEST(LintTest, BaselineParsesAndBudgetsFindings) {
    const auto baseline = parse_baseline(
        "# comment\n"
        "src/a.cpp:rand:2\n"
        "\n"
        "bench/b.cpp:volatile:1  # trailing comment\n");
    ASSERT_EQ(baseline.size(), 2u);
    EXPECT_EQ(baseline.at("src/a.cpp:rand"), 2);
    EXPECT_EQ(baseline.at("bench/b.cpp:volatile"), 1);

    const std::vector<Finding> findings = {
        {"src/a.cpp", 1, "rand", "x"},
        {"src/a.cpp", 2, "rand", "y"},
        {"src/a.cpp", 3, "rand", "z"},  // 3rd exceeds the budget of 2
        {"src/c.cpp", 4, "unordered", "w"},
    };
    std::vector<std::string> stale;
    const auto failing = apply_baseline(findings, baseline, stale);
    ASSERT_EQ(failing.size(), 2u);
    EXPECT_EQ(failing[0].line, 3);
    EXPECT_EQ(failing[1].file, "src/c.cpp");
    ASSERT_EQ(stale.size(), 1u);  // the volatile budget went unused
    EXPECT_EQ(stale[0], "bench/b.cpp:volatile");
}

TEST(LintTest, RawStringLiteralsAreStripped) {
    EXPECT_TRUE(rules_hit("src/a.cpp",
                          "const char* s = R\"(rand() volatile time())\";\n")
                    .empty());
}

TEST(LintTest, FlagsFloatReductions) {
    EXPECT_EQ(rules_hit("src/a.cpp", "std::atomic<double> sum{0.0};\n"),
              std::vector<std::string>{"float-reduce"});
    EXPECT_EQ(rules_hit("src/a.cpp", "std::atomic< float > acc;\n"),
              std::vector<std::string>{"float-reduce"});
    EXPECT_EQ(rules_hit("bench/b.cpp",
                        "auto s = std::reduce(std::execution::par, v.begin(), "
                        "v.end(), 0.0);\n"),
              std::vector<std::string>{"float-reduce"});
    EXPECT_EQ(rules_hit("src/a.cpp",
                        "#pragma omp parallel for reduction(+:sum)\n"),
              std::vector<std::string>{"float-reduce"});
    // Integer atomics and serial reduce are the deterministic idiom.
    EXPECT_TRUE(rules_hit("src/a.cpp", "std::atomic<std::uint64_t> n{0};\n")
                    .empty());
    EXPECT_TRUE(rules_hit("src/a.cpp",
                          "auto s = std::reduce(v.begin(), v.end(), 0.0);\n")
                    .empty());
    // tests/ may build whatever accumulators they like.
    EXPECT_TRUE(rules_hit("tests/core/test_foo.cpp",
                          "std::atomic<double> sum{0.0};\n")
                    .empty());
}

TEST(LintTest, RuleIdListIsStable) {
    const auto ids = rule_ids();
    ASSERT_EQ(ids.size(), 7u);
    EXPECT_EQ(ids[0], "rand");
    EXPECT_EQ(ids[5], "obs-guard");
    EXPECT_EQ(ids[6], "float-reduce");
}

}  // namespace
}  // namespace locble::lint
