#include "locble/core/features.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace locble::core {
namespace {

TEST(FeaturesTest, DimensionIsNine) {
    static_assert(kEnvFeatureDims == 9);
    const std::vector<double> window{-70.0, -71.0, -69.5, -72.0, -70.5};
    EXPECT_EQ(extract_env_features_vec(window).size(), kEnvFeatureDims);
}

TEST(FeaturesTest, OrderingMatchesPaperList) {
    // mean, variance, skewness, min, q1, median, q3, max, kurtosis
    const std::vector<double> window{1.0, 2.0, 3.0, 4.0, 5.0};
    const auto f = extract_env_features(window);
    EXPECT_DOUBLE_EQ(f[0], 3.0);   // mean
    EXPECT_DOUBLE_EQ(f[1], 2.0);   // population variance
    EXPECT_DOUBLE_EQ(f[2], 0.0);   // skewness (symmetric)
    EXPECT_DOUBLE_EQ(f[3], 1.0);   // min
    EXPECT_DOUBLE_EQ(f[4], 2.0);   // q1
    EXPECT_DOUBLE_EQ(f[5], 3.0);   // median
    EXPECT_DOUBLE_EQ(f[6], 4.0);   // q3
    EXPECT_DOUBLE_EQ(f[7], 5.0);   // max
}

TEST(FeaturesTest, EmptyWindowThrows) {
    EXPECT_THROW(extract_env_features(std::vector<double>{}), std::invalid_argument);
}

TEST(FeaturesTest, ConstantWindowFinite) {
    const std::vector<double> window(20, -65.0);
    const auto f = extract_env_features(window);
    EXPECT_DOUBLE_EQ(f[0], -65.0);
    EXPECT_DOUBLE_EQ(f[1], 0.0);
    EXPECT_DOUBLE_EQ(f[2], 0.0);  // no NaN from zero variance
    EXPECT_DOUBLE_EQ(f[8], 0.0);
}

TEST(FeaturesTest, VarianceSeparatesCalmFromFading) {
    std::vector<double> calm, fading;
    for (int i = 0; i < 20; ++i) {
        calm.push_back(-65.0 + 0.2 * (i % 2));
        fading.push_back(-75.0 + 6.0 * (i % 3 - 1));
    }
    EXPECT_LT(extract_env_features(calm)[1], extract_env_features(fading)[1]);
}

}  // namespace
}  // namespace locble::core
