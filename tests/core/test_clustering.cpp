#include "locble/core/clustering.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/channel/fading.hpp"
#include "locble/channel/obstacles.hpp"
#include "locble/common/rng.hpp"

namespace locble::core {
namespace {

/// Shared-environment trace generator: every beacon's RSS sees the same
/// shadowing field and the same passer-by blockage events (as the channel
/// simulator produces), plus per-device offset and independent noise —
/// the setting Sec. 6.1's clustering operates in.
struct MiniWorld {
    locble::Rng rng;
    channel::ShadowingField field;
    std::vector<channel::DiskBlocker> people;

    explicit MiniWorld(std::uint64_t seed)
        : rng(seed), field(2.0, locble::Rng(seed * 7 + 1)) {
        for (int k = 0; k < 3; ++k) {
            channel::DiskBlocker p;
            p.center = {rng.uniform(2.0, 6.0), rng.uniform(1.0, 6.0)};
            p.radius = 0.3;
            p.blockage = channel::BlockageClass::light;
            p.attenuation_db = rng.uniform(3.0, 6.0);
            p.t_start = rng.uniform(0.0, 6.5);
            p.t_end = p.t_start + rng.uniform(1.0, 2.5);
            people.push_back(p);
        }
    }

    locble::TimeSeries trace(const locble::Vec2& pos, double offset_db,
                             std::uint64_t noise_seed) {
        locble::Rng noise(noise_seed);
        locble::TimeSeries ts;
        double t = 0.0;
        for (int i = 0; i < 80; ++i, t += 0.1) {
            const locble::Vec2 obs = i < 40
                                         ? locble::Vec2{0.1 * i, 0.0}
                                         : locble::Vec2{4.0, 0.075 * (i - 40)};
            const double l = std::max(locble::Vec2::distance(pos, obs), 0.1);
            const auto blockage = channel::classify_path(obs, pos, t, {}, people);
            ts.push_back({t, -59.0 + offset_db - 20.0 * std::log10(l) -
                                 blockage.total_attenuation_db +
                                 field.link_shadow_db(pos, obs, 2.0) +
                                 noise.gaussian(0.0, 0.6)});
        }
        return ts;
    }
};

ClusterCandidate candidate(MiniWorld& world, std::uint64_t id, const locble::Vec2& pos,
                           double offset, double confidence,
                           const locble::Vec2& fit_loc) {
    ClusterCandidate c;
    c.id = id;
    c.rss = world.trace(pos, offset, id * 31 + 5);
    c.fit.location = fit_loc;
    c.fit.confidence = confidence;
    return c;
}

TEST(ClusteringCalibratorTest, CoLocatedBeaconsUsuallyJoinCluster) {
    // Across seeds, co-located beacons (0.3 m apart, different chipset
    // offsets) should usually pass the DTW vote.
    int joined = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        MiniWorld world(seed);
        const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.6, {6.1, 5.1});
        const std::vector<ClusterCandidate> neighbors{
            candidate(world, 2, {6.2, 5.1}, -4.0, 0.7, {6.0, 4.8})};
        const auto result = ClusteringCalibrator().calibrate(target, neighbors);
        joined += static_cast<int>(result.members.size() == 2);
        ++runs;
    }
    EXPECT_GE(joined, 7) << "of " << runs;
}

TEST(ClusteringCalibratorTest, DistantBeaconUsuallyRejectedByDtw) {
    // A beacon far away sees different events/shadowing; even when its fit
    // is forged to sit near the target's (so the distance gate passes), the
    // DTW vote should usually reject it.
    int rejected = 0, runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        MiniWorld world(seed);
        const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.6, {6.1, 5.1});
        const std::vector<ClusterCandidate> neighbors{
            candidate(world, 2, {1.0, 8.0}, 2.0, 0.7, {6.0, 4.9})};
        const auto result = ClusteringCalibrator().calibrate(target, neighbors);
        rejected += static_cast<int>(result.rejected == 1);
        ++runs;
    }
    EXPECT_GE(rejected, 6) << "of " << runs;
}

TEST(ClusteringCalibratorTest, DistanceGateRejectsFarFits) {
    // Sec. 6 preconditions clustering on "similar location estimation":
    // a neighbor whose own fit is far away never enters the cluster.
    MiniWorld world(3);
    const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.6, {6.1, 5.1});
    const std::vector<ClusterCandidate> neighbors{
        candidate(world, 2, {6.2, 5.1}, 0.0, 0.9, {1.0, 8.0})};  // fit far away
    const auto result = ClusteringCalibrator().calibrate(target, neighbors);
    EXPECT_EQ(result.members.size(), 1u);
    EXPECT_EQ(result.rejected, 1u);
    EXPECT_NEAR(result.calibrated.x, 6.1, 1e-9);
    EXPECT_NEAR(result.calibrated.y, 5.1, 1e-9);
}

TEST(ClusteringCalibratorTest, WeightedSumFollowsConfidence) {
    MiniWorld world(4);
    const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.2, {5.0, 5.0});
    std::vector<ClusterCandidate> neighbors{
        candidate(world, 2, {6.05, 5.02}, -2.0, 0.8, {7.0, 5.0})};
    const auto result = ClusteringCalibrator().calibrate(target, neighbors);
    if (result.members.size() == 2) {
        // Weighted mean of 5.0 (w 0.2) and 7.0 (w 0.8) = 6.6.
        EXPECT_NEAR(result.calibrated.x, 6.6, 0.01);
        EXPECT_DOUBLE_EQ(result.combined_confidence, 0.8);
    } else {
        // DTW vote may reject in a bad seed; then calibration is identity.
        EXPECT_NEAR(result.calibrated.x, 5.0, 0.01);
    }
}

TEST(ClusteringCalibratorTest, EmptyNeighborListIsIdentity) {
    MiniWorld world(5);
    const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.6, {6.2, 5.1});
    const auto result = ClusteringCalibrator().calibrate(target, {});
    EXPECT_EQ(result.members.size(), 1u);
    EXPECT_NEAR(result.calibrated.x, 6.2, 1e-9);
}

TEST(ClusteringCalibratorTest, TooShortNeighborTraceRejected) {
    MiniWorld world(6);
    const auto target = candidate(world, 1, {6.0, 5.0}, 0.0, 0.6, {6.2, 5.1});
    ClusterCandidate stub;
    stub.id = 9;
    stub.rss = {{0.0, -70.0}};  // single sample
    stub.fit.location = {6.2, 5.1};
    stub.fit.confidence = 0.9;
    const auto result = ClusteringCalibrator().calibrate(target, {stub});
    EXPECT_EQ(result.rejected, 1u);
}

TEST(TrendSignalTest, RemovesDeviceOffset) {
    // Identical geometry and noise stream, +-8 dB chipset offsets: the trend
    // signals must agree exactly.
    MiniWorld world(7);
    const auto a = world.trace({6.0, 5.0}, 8.0, 42);
    const auto b = world.trace({6.0, 5.0}, -8.0, 42);
    const auto times = locble::times_of(a);
    const auto ta = ClusteringCalibrator::trend_signal(a, times, 4, 5);
    const auto tb = ClusteringCalibrator::trend_signal(b, times, 4, 5);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) EXPECT_NEAR(ta[i], tb[i], 1e-9);
}

TEST(TrendSignalTest, ZScored) {
    MiniWorld world(8);
    const auto a = world.trace({6.0, 5.0}, 0.0, 9);
    const auto times = locble::times_of(a);
    const auto trend = ClusteringCalibrator::trend_signal(a, times, 4, 5);
    ASSERT_EQ(trend.size(), times.size() - 5);
    double mean = 0.0, var = 0.0;
    for (double v : trend) mean += v;
    mean /= static_cast<double>(trend.size());
    for (double v : trend) var += (v - mean) * (v - mean);
    var /= static_cast<double>(trend.size());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
}

TEST(TrendSignalTest, HandlesResampling) {
    MiniWorld world(9);
    const auto a = world.trace({6.0, 5.0}, 0.0, 10);
    locble::TimeSeries slower;
    for (std::size_t i = 0; i < a.size(); i += 2) slower.push_back(a[i]);
    const auto times = locble::times_of(a);
    const auto trend = ClusteringCalibrator::trend_signal(slower, times, 4, 5);
    EXPECT_EQ(trend.size(), times.size() - 5);
}

}  // namespace
}  // namespace locble::core
