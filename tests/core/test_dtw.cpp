#include "locble/core/dtw.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "locble/common/rng.hpp"

namespace locble::core {
namespace {

std::vector<double> sine(std::size_t n, double freq, double phase = 0.0,
                         double amp = 1.0) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = amp * std::sin(2.0 * std::numbers::pi * freq *
                                    static_cast<double>(i) / 10.0 +
                                phase);
    return out;
}

TEST(DtwDistanceTest, IdenticalSequencesZeroCost) {
    const auto s = sine(30, 0.7);
    EXPECT_NEAR(dtw_distance(s, s), 0.0, 1e-12);
}

TEST(DtwDistanceTest, EmptyThrows) {
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    EXPECT_THROW(dtw_distance(empty, one), std::invalid_argument);
    EXPECT_THROW(dtw_distance(one, empty), std::invalid_argument);
}

TEST(DtwDistanceTest, ToleratesTimeShift) {
    // Euclidean distance of shifted sines is large; DTW realigns them.
    const auto a = sine(40, 0.8);
    const auto b = sine(40, 0.8, 0.6);
    double euclid = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) euclid += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_LT(dtw_distance(a, b), euclid / 3.0);
}

TEST(DtwDistanceTest, SeparatesDifferentShapes) {
    const auto a = sine(40, 0.8);
    const auto b = sine(40, 2.4);  // 3x frequency
    const auto c = sine(40, 0.8, 0.3);
    EXPECT_GT(dtw_distance(a, b), 3.0 * dtw_distance(a, c));
}

TEST(DtwDistanceTest, WindowConstraintIncreasesCost) {
    const auto a = sine(40, 0.8);
    const auto b = sine(40, 0.8, 1.2);  // needs large warp
    EXPECT_GE(dtw_distance(a, b, 2), dtw_distance(a, b, 0) - 1e-12);
}

TEST(DtwDistanceTest, DifferentLengthsSupported) {
    const auto a = sine(30, 0.8);
    const auto b = sine(45, 0.8);
    EXPECT_GE(dtw_distance(a, b), 0.0);  // band auto-widens to |n-m|
}

TEST(DtwCostMatrixTest, CumulativeCostsConsistent) {
    const auto a = sine(10, 0.8);
    const auto b = sine(10, 0.9);
    const auto m = dtw_cost_matrix(a, b);
    ASSERT_EQ(m.size(), 10u);
    ASSERT_EQ(m[0].size(), 10u);
    // Every cell's cumulative cost is at least the cheapest predecessor's
    // (point costs are non-negative).
    for (std::size_t i = 1; i < 10; ++i) {
        for (std::size_t j = 1; j < 10; ++j) {
            const double pred = std::min({m[i - 1][j], m[i][j - 1], m[i - 1][j - 1]});
            EXPECT_GE(m[i][j] + 1e-12, pred);
        }
    }
    EXPECT_DOUBLE_EQ(m[9][9], dtw_distance(a, b));
}

TEST(WarpingEnvelopeTest, BoundsContainSequence) {
    const auto s = sine(25, 1.1);
    const auto env = warping_envelope(s, 3);
    for (std::size_t i = 0; i < s.size(); ++i) {
        EXPECT_LE(env.lower[i], s[i]);
        EXPECT_GE(env.upper[i], s[i]);
    }
}

TEST(LbKeoghTest, LowerBoundsTrueDtw) {
    locble::Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> a(20), b(20);
        for (int i = 0; i < 20; ++i) {
            a[i] = rng.gaussian(0.0, 1.0);
            b[i] = rng.gaussian(0.0, 1.0);
        }
        const std::size_t w = 3;
        EXPECT_LE(lb_keogh(a, b, w), dtw_distance(a, b, w) + 1e-9);
    }
}

TEST(LbKeoghTest, ZeroForContainedCandidate) {
    const auto target = sine(20, 0.8, 0.0, 2.0);
    const auto inside = sine(20, 0.8, 0.0, 0.5);  // within the envelope almost surely
    EXPECT_LT(lb_keogh(target, inside, 5), 1.0);
}

TEST(LbKeoghTest, LengthMismatchThrows) {
    const std::vector<double> a{1.0, 2.0};
    const std::vector<double> b{1.0};
    EXPECT_THROW(lb_keogh(a, b, 1), std::invalid_argument);
}

TEST(SegmentedDtwMatcherTest, MatchesSimilarTrends) {
    locble::Rng rng(2);
    std::vector<double> target, candidate;
    for (int i = 0; i < 60; ++i) {
        const double trend = std::sin(0.2 * i);
        target.push_back(trend + rng.gaussian(0.0, 0.1));
        candidate.push_back(trend + rng.gaussian(0.0, 0.1));
    }
    const auto r = SegmentedDtwMatcher().match(target, candidate);
    EXPECT_TRUE(r.matched);
    EXPECT_EQ(r.segments_total, 6u);
    EXPECT_GT(r.segments_matched, 3u);
}

TEST(SegmentedDtwMatcherTest, RejectsUnrelatedSequences) {
    locble::Rng rng(3);
    std::vector<double> target, candidate;
    for (int i = 0; i < 60; ++i) {
        target.push_back(std::sin(0.2 * i) + rng.gaussian(0.0, 0.1));
        candidate.push_back(3.0 * std::sin(0.9 * i + 1.5) + rng.gaussian(0.0, 0.4));
    }
    const auto r = SegmentedDtwMatcher().match(target, candidate);
    EXPECT_FALSE(r.matched);
}

TEST(SegmentedDtwMatcherTest, LbGateRejectsCheaply) {
    // Wildly offset candidate: every segment should die at the LB gate,
    // never reaching full DTW.
    std::vector<double> target(50, 0.0), candidate(50, 10.0);
    const auto r = SegmentedDtwMatcher().match(target, candidate);
    EXPECT_FALSE(r.matched);
    EXPECT_EQ(r.lb_rejections, r.segments_total);
}

TEST(SegmentedDtwMatcherTest, ShortInputNoSegments) {
    const std::vector<double> tiny{1.0, 2.0, 3.0};
    const auto r = SegmentedDtwMatcher().match(tiny, tiny);
    EXPECT_FALSE(r.matched);
    EXPECT_EQ(r.segments_total, 0u);
}

TEST(SegmentedDtwMatcherTest, MajorityRuleExactBoundary) {
    // 2 segments: exactly 1 match is NOT a majority (needs > half).
    SegmentedDtwMatcher::Config cfg;
    cfg.segment_length = 10;
    cfg.threshold = 0.5;
    std::vector<double> target(20, 0.0), candidate(20, 0.0);
    for (int i = 10; i < 20; ++i) candidate[i] = 5.0;  // 2nd segment differs
    const auto r = SegmentedDtwMatcher(cfg).match(target, candidate);
    EXPECT_EQ(r.segments_total, 2u);
    EXPECT_EQ(r.segments_matched, 1u);
    EXPECT_FALSE(r.matched);
}

}  // namespace
}  // namespace locble::core
