#include "locble/core/straight_walk.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <stdexcept>

namespace locble::core {
namespace {

LocationFit ambiguous_at(double x, double h) {
    LocationFit f;
    f.location = {x, h};
    f.ambiguous = true;
    f.confidence = 0.7;
    return f;
}

TEST(MirrorHypothesisTrackerTest, RequiresAmbiguousFit) {
    LocationFit f;
    f.ambiguous = false;
    EXPECT_THROW(MirrorHypothesisTracker{f}, std::invalid_argument);
}

TEST(MirrorHypothesisTrackerTest, StartsWithBothMirrors) {
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    EXPECT_FALSE(t.resolved());
    const auto h = t.hypotheses();
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[0], locble::Vec2(4.0, 2.0));
    EXPECT_EQ(h[1], locble::Vec2(4.0, -2.0));
    EXPECT_EQ(t.best(), locble::Vec2(4.0, 2.0));  // +h convention
}

TEST(MirrorHypothesisTrackerTest, OnAxisTargetIsAlreadyResolved) {
    MirrorHypothesisTracker t(ambiguous_at(4.0, 0.0));
    EXPECT_TRUE(t.resolved());
    EXPECT_EQ(t.hypotheses().size(), 1u);
}

TEST(MirrorHypothesisTrackerTest, SecondFitFromRotatedFrameResolves) {
    // Truth at (4, 2). Second measurement taken after walking to (4, 0) and
    // turning to face +y (heading pi/2): in that frame the target is at
    // (2, 0) — no mirror confusion about it.
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    LocationFit second;
    second.location = {2.0, 0.0};
    second.ambiguous = false;
    t.update_with_fit(second, {4.0, 0.0}, std::numbers::pi / 2.0);
    EXPECT_TRUE(t.resolved());
    EXPECT_EQ(t.best(), locble::Vec2(4.0, 2.0));
}

TEST(MirrorHypothesisTrackerTest, AmbiguousSecondFitCanStillDiscriminate) {
    // Second ambiguous fit from a rotated frame: its own mirror pair lands
    // near only one of our hypotheses.
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    LocationFit second;
    second.location = {1.9, 0.3};  // near-frame coordinates
    second.ambiguous = true;
    t.update_with_fit(second, {4.0, 0.0}, std::numbers::pi / 2.0);
    // Candidates map to ~(3.7, 1.9) and ~(4.3, 1.9): both near (4, 2), far
    // from (4, -2) -> resolved toward +h.
    EXPECT_TRUE(t.resolved());
    EXPECT_EQ(t.best(), locble::Vec2(4.0, 2.0));
}

TEST(MirrorHypothesisTrackerTest, EquidistantEvidenceIsIgnored) {
    // A new estimate on the walk axis is equidistant from both mirrors and
    // must not resolve anything.
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    LocationFit second;
    second.location = {5.0, 0.0};
    second.ambiguous = false;
    t.update_with_fit(second, {0.0, 0.0}, 0.0);
    EXPECT_FALSE(t.resolved());
}

TEST(MirrorHypothesisTrackerTest, FallingRssKillsApproachedMirror) {
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    // Walked 2 m toward the -h mirror; RSS dropped 3 dB -> that mirror dies.
    t.update_with_rss_trend({4.0, -2.0}, 2.0, -3.0);
    EXPECT_TRUE(t.resolved());
    EXPECT_EQ(t.best(), locble::Vec2(4.0, 2.0));
}

TEST(MirrorHypothesisTrackerTest, RisingRssIsNotEvidence) {
    // Approaching either mirror raises RSS if the target is anywhere ahead;
    // only a *drop* is discriminative.
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    t.update_with_rss_trend({4.0, 2.0}, 2.0, +4.0);
    EXPECT_FALSE(t.resolved());
}

TEST(MirrorHypothesisTrackerTest, TinyMovesCarryNoTrendInformation) {
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    t.update_with_rss_trend({4.0, -2.0}, 0.2, -5.0);
    EXPECT_FALSE(t.resolved());
}

TEST(MirrorHypothesisTrackerTest, NeverKillsLastHypothesis) {
    MirrorHypothesisTracker t(ambiguous_at(4.0, 2.0));
    t.update_with_rss_trend({4.0, 2.0}, 2.0, -3.0);   // kills +h
    t.update_with_rss_trend({4.0, -2.0}, 2.0, -3.0);  // must keep something
    EXPECT_EQ(t.hypotheses().size(), 1u);
}

}  // namespace
}  // namespace locble::core
