#include "locble/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "locble/common/cdf.hpp"
#include "locble/common/rng.hpp"

namespace locble::core {
namespace {

using locble::Vec2;

/// Hand-built motion estimate for an ideal L-shaped walk: leg1 4 m along
/// +x over t in [0,4], leg2 3 m along +y over t in [5,8].
motion::MotionEstimate ideal_l_motion() {
    motion::MotionEstimate m;
    for (int i = 0; i <= 40; ++i) m.path.push_back({0.1 * i, {0.1 * i, 0.0}});
    for (int i = 0; i <= 30; ++i) m.path.push_back({5.0 + 0.1 * i, {4.0, 0.1 * i}});
    return m;
}

/// RSS series for a stationary target at `target` along that walk.
locble::TimeSeries rss_for(const Vec2& target, double gamma, double n,
                           double noise_db, std::uint64_t seed) {
    const auto motion = ideal_l_motion();
    locble::Rng rng(seed);
    locble::TimeSeries ts;
    for (double t = 0.0; t <= 8.0; t += 0.1) {
        const Vec2 obs = motion.position_at(t);
        const double l = std::max(locble::Vec2::distance(target, obs), 0.1);
        ts.push_back({t, gamma - 10.0 * n * std::log10(l) +
                             (noise_db > 0 ? rng.gaussian(0.0, noise_db) : 0.0)});
    }
    return ts;
}

LocBle::Config no_env_config() {
    LocBle::Config cfg;
    cfg.use_envaware = false;
    return cfg;
}

TEST(LocBleTest, RequiresTrainedEnvAwareWhenEnabled) {
    LocBle::Config cfg;
    cfg.use_envaware = true;
    EXPECT_THROW(LocBle(cfg, std::nullopt), std::invalid_argument);
    EXPECT_THROW(LocBle(cfg, EnvAware{}), std::invalid_argument);  // untrained
}

TEST(LocBleTest, LocatesStationaryTargetCleanSignal) {
    const Vec2 target{5.0, 2.5};
    const LocBle pipeline(no_env_config());
    const auto result =
        pipeline.locate(rss_for(target, -59.0, 2.0, 0.0, 1), ideal_l_motion());
    ASSERT_TRUE(result.fit.has_value());
    EXPECT_NEAR(result.fit->location.x, 5.0, 0.3);
    EXPECT_NEAR(result.fit->location.y, 2.5, 0.3);
    EXPECT_EQ(result.regression_restarts, 0);
    EXPECT_GT(result.samples_used, 50u);
}

TEST(LocBleTest, LocatesUnderNoise) {
    const Vec2 target{6.0, 3.0};
    const LocBle pipeline(no_env_config());
    double errsum = 0.0;
    int count = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto result =
            pipeline.locate(rss_for(target, -59.0, 2.0, 2.5, seed), ideal_l_motion());
        ASSERT_TRUE(result.fit.has_value());
        errsum += locble::Vec2::distance(result.fit->location, target);
        ++count;
    }
    EXPECT_LT(errsum / count, 2.1);  // ANF + regression under 2.5 dB noise
}

TEST(LocBleTest, AnfAblationDegradesAccuracy) {
    // Fig. 5's story: removing ANF costs accuracy. Medians over seeds keep
    // the comparison robust to the occasional diverged fit on raw data.
    const Vec2 target{6.0, 3.0};
    LocBle::Config with = no_env_config();
    LocBle::Config without = no_env_config();
    without.use_anf = false;
    std::vector<double> err_with, err_without;
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        const auto rss = rss_for(target, -59.0, 2.0, 2.5, seed);
        const auto rw = LocBle(with).locate(rss, ideal_l_motion());
        const auto rwo = LocBle(without).locate(rss, ideal_l_motion());
        err_with.push_back(
            rw.fit ? locble::Vec2::distance(rw.fit->location, target) : 10.0);
        err_without.push_back(
            rwo.fit ? locble::Vec2::distance(rwo.fit->location, target) : 10.0);
    }
    const locble::EmpiricalCdf cdf_with(err_with);
    const locble::EmpiricalCdf cdf_without(err_without);
    // The robust dB-domain solver absorbs most of what ANF used to buy at
    // the estimate level (EXPERIMENTS.md, deviation D1); ANF must still
    // never *hurt*. Its denoising behaviour proper is validated in the DSP
    // suite.
    EXPECT_LE(cdf_with.median(), cdf_without.median() + 0.15);
}

TEST(LocBleTest, EmptyRssGivesNoFit) {
    const LocBle pipeline(no_env_config());
    const auto result = pipeline.locate({}, ideal_l_motion());
    EXPECT_FALSE(result.fit.has_value());
}

TEST(LocBleTest, MovingTargetFrameAlignment) {
    // Target moves +0.25 m/s along observer-frame -y, starting at (6, 2).
    // Its own dead-reckoning frame is rotated by -pi/2 (its +x is our -y).
    const Vec2 target0{6.0, 2.0};
    const Vec2 vel{0.0, -0.25};

    const auto obs_motion = ideal_l_motion();
    motion::MotionEstimate tgt_motion;  // in the TARGET's local frame
    for (double t = 0.0; t <= 8.0; t += 0.1) {
        const Vec2 disp_observer_frame = vel * t;
        // Target frame = observer frame rotated by +pi/2, so displacement in
        // target frame = R(-pi/2) * disp.
        tgt_motion.path.push_back(
            {t, disp_observer_frame.rotated(-std::numbers::pi / 2.0)});
    }

    const LocBle pipeline(no_env_config());
    std::vector<double> errors;
    for (std::uint64_t seed = 1; seed <= 7; ++seed) {
        locble::Rng rng(seed);
        locble::TimeSeries rss;
        for (double t = 0.0; t <= 8.0; t += 0.1) {
            const Vec2 obs = obs_motion.position_at(t);
            const Vec2 tgt = target0 + vel * t;
            const double l = std::max(locble::Vec2::distance(tgt, obs), 0.1);
            rss.push_back({t, -59.0 - 20.0 * std::log10(l) + rng.gaussian(0.0, 0.8)});
        }
        const auto result =
            pipeline.locate(rss, obs_motion, tgt_motion, std::numbers::pi / 2.0);
        ASSERT_TRUE(result.fit.has_value());
        errors.push_back(locble::Vec2::distance(result.fit->location, target0));
    }
    // Moving targets are weakly identifiable; the paper reports <2.5 m for
    // more than half of its moving-target runs (Sec. 7.4.2).
    EXPECT_LT(locble::EmpiricalCdf(errors).median(), 2.5);
}

TEST(RotateMotionTest, RotatesEveryPathPoint) {
    motion::MotionEstimate m;
    m.path = {{0.0, {1.0, 0.0}}, {1.0, {0.0, 2.0}}};
    const auto r = rotate_motion(m, std::numbers::pi / 2.0);
    EXPECT_NEAR(r.path[0].position.x, 0.0, 1e-12);
    EXPECT_NEAR(r.path[0].position.y, 1.0, 1e-12);
    EXPECT_NEAR(r.path[1].position.x, -2.0, 1e-12);
    EXPECT_NEAR(r.path[1].position.y, 0.0, 1e-12);
}

TEST(LocBleTest, WindowClassesReportedWithEnvAware) {
    // Train a tiny EnvAware and check the pipeline reports per-batch classes.
    locble::Rng rng(20);
    EnvDatasetConfig dcfg;
    dcfg.traces_per_class = 15;
    EnvAware env;
    env.train(generate_env_dataset(dcfg, rng));

    LocBle::Config cfg;
    cfg.use_envaware = true;
    const LocBle pipeline(cfg, std::move(env));
    const auto result =
        pipeline.locate(rss_for({5.0, 2.0}, -59.0, 2.0, 1.0, 4), ideal_l_motion());
    // 8 s of data in 2 s batches -> ~4 classified windows.
    EXPECT_GE(result.window_classes.size(), 3u);
    // Diagnostics mirror the classified windows.
    EXPECT_EQ(result.diagnostics.envaware_windows,
              static_cast<int>(result.window_classes.size()));
}

TEST(LocBleTest, DiagnosticsAccountForEveryBatchAndSolve) {
    const LocBle pipeline(no_env_config());
    const auto rss = rss_for({5.0, 2.5}, -59.0, 2.0, 0.0, 1);
    const auto result = pipeline.locate(rss, ideal_l_motion());
    ASSERT_TRUE(result.fit.has_value());

    const auto& d = result.diagnostics;
    // One solve per flushed batch, and every input sample lands in exactly
    // one batch.
    EXPECT_EQ(d.solver_calls, static_cast<int>(d.batch_samples.size()));
    EXPECT_GE(d.solver_calls, 3);  // 8 s walk in 2 s batches
    std::size_t batched = 0;
    for (const std::size_t n : d.batch_samples) batched += n;
    EXPECT_EQ(batched, rss.size());
    // The solver walked its exponent grid and a clean signal converges.
    EXPECT_GT(d.solver_candidates, 0);
    EXPECT_LE(d.solver_failures, d.solver_candidates);
    EXPECT_EQ(d.convergence_failures, 0);
    EXPECT_EQ(d.envaware_windows, 0);  // EnvAware disabled in this config
}

TEST(LocBleTest, DiagnosticsReportConvergenceFailures) {
    const LocBle pipeline(no_env_config());
    // Two RSS samples make one under-determined batch: no fit, and the
    // failure must be visible in the diagnostics.
    locble::TimeSeries rss{{0.0, -60.0}, {0.1, -61.0}};
    const auto result = pipeline.locate(rss, ideal_l_motion());
    EXPECT_FALSE(result.fit.has_value());
    EXPECT_EQ(result.diagnostics.solver_calls, result.diagnostics.convergence_failures);
    EXPECT_GE(result.diagnostics.convergence_failures, 1);
}

}  // namespace
}  // namespace locble::core
