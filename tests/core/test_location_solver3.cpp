#include "locble/core/location_solver3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/rng.hpp"

namespace locble::core {
namespace {

using locble::Vec3;

/// Samples for a stationary 3-D target while the observer walks an L and
/// (optionally) pumps the phone vertically.
std::vector<FusedSample3> samples_3d(const Vec3& target, double gamma, double n,
                                     bool vertical_pump, double noise_db,
                                     std::uint64_t seed) {
    locble::Rng rng(seed);
    std::vector<FusedSample3> out;
    double t = 0.0;
    for (int i = 0; i < 70; ++i, t += 0.1) {
        const locble::Vec2 obs =
            i < 40 ? locble::Vec2{0.1 * i, 0.0} : locble::Vec2{4.0, 0.1 * (i - 40)};
        const double obs_z =
            vertical_pump ? 0.9 * std::sin(2.0 * std::numbers::pi * 0.25 * t) : 0.0;
        FusedSample3 s;
        s.t = t;
        s.p = -obs.x;
        s.q = -obs.y;
        s.r = -obs_z;
        const Vec3 d{target.x - obs.x, target.y - obs.y, target.z - obs_z};
        s.rssi = gamma - 10.0 * n * std::log10(std::max(d.norm(), 0.1)) +
                 (noise_db > 0 ? rng.gaussian(0.0, noise_db) : 0.0);
        out.push_back(s);
    }
    return out;
}

TEST(LocationSolver3Test, RecoversHeightWithVerticalExcitation) {
    const Vec3 target{4.0, 3.0, 1.6};
    const auto samples = samples_3d(target, -59.0, 2.0, true, 0.0, 1);
    const auto fit = LocationSolver3().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_TRUE(fit->z_observable);
    EXPECT_NEAR(fit->location.x, target.x, 0.4);
    EXPECT_NEAR(fit->location.y, target.y, 0.8);
    // z observability is weak (vertical baseline ~1.8 m vs 5 m range); the
    // solver must pull z off the floor toward the true height.
    EXPECT_GT(std::abs(fit->location.z), 0.5);
    EXPECT_NEAR(std::abs(fit->location.z), target.z, 1.0);
}

TEST(LocationSolver3Test, FlatWalkPinsZ) {
    const Vec3 target{4.0, 3.0, 1.6};
    const auto samples = samples_3d(target, -59.0, 2.0, false, 0.0, 2);
    const auto fit = LocationSolver3().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_FALSE(fit->z_observable);
    EXPECT_DOUBLE_EQ(fit->location.z, 0.0);
    // Horizontal position still recovered (the target's height folds into
    // slightly biased x/y, the documented 2-D behaviour).
    EXPECT_NEAR(fit->location.xy().norm(), target.xy().norm(), 1.2);
}

TEST(LocationSolver3Test, NoisyVerticalRecovery) {
    const Vec3 target{4.0, 2.0, 1.2};
    double err = 0.0;
    int n = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto samples = samples_3d(target, -59.0, 2.0, true, 1.0, seed);
        const auto fit = LocationSolver3().solve(samples);
        ASSERT_TRUE(fit.has_value());
        Vec3 est = fit->location;
        est.z = std::abs(est.z);  // z sign is weakly observable; compare height
        err += Vec3::distance(est, target);
        ++n;
    }
    EXPECT_LT(err / n, 1.5);
}

TEST(LocationSolver3Test, TooFewSamplesRejected) {
    const auto samples = samples_3d({4.0, 2.0, 1.0}, -59.0, 2.0, true, 0.0, 3);
    LocationSolver3::Config cfg;
    cfg.base.min_samples = 200;
    EXPECT_FALSE(LocationSolver3(cfg).solve(samples).has_value());
}

TEST(LocationSolver3Test, GammaBandRespected) {
    const Vec3 target{4.0, 3.0, 1.0};
    const auto samples = samples_3d(target, -59.0, 2.0, true, 0.5, 4);
    SolveHints hints;
    hints.gamma_band_dbm = {{-64.0, -54.0}};
    const auto fit = LocationSolver3().solve(samples, hints);
    ASSERT_TRUE(fit.has_value());
    EXPECT_GE(fit->gamma_dbm, -64.0 - 1e-9);
    EXPECT_LE(fit->gamma_dbm, -54.0 + 1e-9);
}

TEST(ResidualStats3Test, PerfectModelZeroResidual) {
    const Vec3 target{3.0, 2.0, 1.0};
    const auto samples = samples_3d(target, -59.0, 2.0, true, 0.0, 5);
    const auto stats = residual_stats3(samples, target, 2.0, -59.0);
    EXPECT_NEAR(stats.rms_db, 0.0, 1e-9);
    EXPECT_NEAR(stats.confidence, 1.0, 1e-9);
}

}  // namespace
}  // namespace locble::core
