// Zero-allocation guarantee for the solver hot path (ISSUE 3 acceptance):
// after a SolverWorkspace has warmed up to the problem size, solve() must
// perform no heap allocation at all. This binary overrides global
// operator new/delete with counting versions — it must stay a separate
// test executable so the override cannot interfere with other suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "locble/common/vec2.hpp"
#include "locble/core/location_solver.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// Sanitizer builds (LOCBLE_SAN, docs/CORRECTNESS.md) interpose the
// allocator and allocate from their runtimes, so allocation counts are not
// a meaningful property there; the plain CI job enforces them instead.
// The overrides themselves are compiled out too — a malloc-backed operator
// new would fight the sanitizer allocator (and trips
// -Wmismatched-new-delete under ASan's escape analysis).
#ifdef LOCBLE_SAN_ACTIVE
#define LOCBLE_SKIP_UNDER_SANITIZERS() \
    GTEST_SKIP() << "allocation counting is only meaningful in plain builds"
#else
#define LOCBLE_SKIP_UNDER_SANITIZERS() (void)0

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // LOCBLE_SAN_ACTIVE

namespace locble::core {
namespace {

using locble::Vec2;

std::vector<FusedSample> walk_samples(const Vec2& target, double gamma, double n,
                                      int per_leg = 24) {
    std::vector<FusedSample> out;
    auto add = [&](const Vec2& obs, double t) {
        FusedSample s;
        s.t = t;
        s.p = -obs.x;
        s.q = -obs.y;
        const double l = locble::Vec2::distance(target, obs);
        s.rssi = gamma - 10.0 * n * std::log10(std::max(l, 0.1));
        out.push_back(s);
    };
    double t = 0.0;
    for (int i = 0; i < per_leg; ++i, t += 0.1)
        add({4.0 * i / (per_leg - 1.0), 0.0}, t);
    for (int i = 0; i < per_leg; ++i, t += 0.1)
        add({4.0, 3.0 * i / (per_leg - 1.0)}, t);
    return out;
}

TEST(SolverAllocTest, ColdSolveIsAllocationFreeAfterWarmup) {
    LOCBLE_SKIP_UNDER_SANITIZERS();
    const LocationSolver solver;
    const auto samples = walk_samples({5.0, 2.0}, -59.0, 2.0);

    SolverWorkspace ws;
    LocationFit out;
    out.segment_gammas.reserve(4);  // output storage warms up too
    ASSERT_TRUE(solver.solve(samples, {}, nullptr, ws, out));  // warm-up

    const std::uint64_t before = g_allocations.load();
    ASSERT_TRUE(solver.solve(samples, {}, nullptr, ws, out));
    ASSERT_TRUE(solver.solve(samples, {}, nullptr, ws, out));
    EXPECT_EQ(g_allocations.load(), before)
        << "solve() allocated after workspace warm-up";
    EXPECT_EQ(ws.grow_events(), ws.grow_events());  // stable by definition
}

TEST(SolverAllocTest, SessionSolveIsAllocationFreeAfterWarmup) {
    LOCBLE_SKIP_UNDER_SANITIZERS();
    const LocationSolver solver;
    const auto samples = walk_samples({5.0, 2.0}, -59.0, 2.0);

    LocationSolver::Session session(solver);
    session.add(samples);
    LocationFit out;
    out.segment_gammas.reserve(4);
    SolveDiagnostics diag;
    ASSERT_TRUE(session.solve_into(out, {}, &diag));  // warm-up

    const std::uint64_t before = g_allocations.load();
    ASSERT_TRUE(session.solve_into(out, {}, &diag));
    ASSERT_TRUE(session.solve_into(out, {}, &diag));
    EXPECT_EQ(g_allocations.load(), before)
        << "Session::solve_into allocated after warm-up";
}

TEST(SolverAllocTest, WorkspaceGrowEventsStabilize) {
    LOCBLE_SKIP_UNDER_SANITIZERS();
    const LocationSolver solver;
    const auto samples = walk_samples({5.0, 2.0}, -59.0, 2.0);

    SolverWorkspace ws;
    LocationFit out;
    ASSERT_TRUE(solver.solve(samples, {}, nullptr, ws, out));
    const std::uint64_t after_first = ws.grow_events();
    EXPECT_GT(after_first, 0u);  // warm-up did size the buffers
    ASSERT_TRUE(solver.solve(samples, {}, nullptr, ws, out));
    EXPECT_EQ(ws.grow_events(), after_first);
}

}  // namespace
}  // namespace locble::core
