// Pipeline configuration-flag behaviour: the regime-band coupling and the
// restart/segmentation logic exposed for the Fig. 5 ablations.

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/rng.hpp"
#include "locble/core/pipeline.hpp"

namespace locble::core {
namespace {

using locble::Vec2;

motion::MotionEstimate ideal_l_motion() {
    motion::MotionEstimate m;
    for (int i = 0; i <= 40; ++i) m.path.push_back({0.1 * i, {0.1 * i, 0.0}});
    for (int i = 0; i <= 30; ++i) m.path.push_back({5.0 + 0.1 * i, {4.0, 0.1 * i}});
    return m;
}

/// RSS with an abrupt insertion-loss step at t = `step_t` — the signature
/// of walking out from behind a wall.
locble::TimeSeries stepped_rss(const Vec2& target, double loss_db, double step_t,
                               std::uint64_t seed) {
    const auto motion = ideal_l_motion();
    locble::Rng rng(seed);
    locble::TimeSeries ts;
    for (double t = 0.0; t <= 8.0; t += 0.1) {
        const Vec2 obs = motion.position_at(t);
        const double l = std::max(Vec2::distance(target, obs), 0.1);
        double v = -59.0 - 20.0 * std::log10(l) + rng.gaussian(0.0, 1.0);
        if (t < step_t) v -= loss_db;
        ts.push_back({t, v});
    }
    return ts;
}

const EnvAware& tiny_envaware() {
    static const EnvAware instance = [] {
        locble::Rng rng(55);
        EnvDatasetConfig cfg;
        cfg.traces_per_class = 20;
        EnvAware env;
        env.train(generate_env_dataset(cfg, rng));
        return env;
    }();
    return instance;
}

TEST(PipelineFlagsTest, RestartOpensGammaSegments) {
    LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    const LocBle pipeline(cfg, tiny_envaware());
    const auto rss = stepped_rss({5.0, 2.0}, 12.0, 4.0, 1);
    const auto result = pipeline.locate(rss, ideal_l_motion());
    ASSERT_TRUE(result.fit.has_value());
    if (result.regression_restarts > 0) {
        // A detected change must materialize as an extra Gamma segment.
        EXPECT_GE(result.fit->segment_gammas.size(), 2u);
    }
}

TEST(PipelineFlagsTest, RestartDisabledKeepsSingleSegment) {
    LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    cfg.restart_on_change = false;
    const LocBle pipeline(cfg, tiny_envaware());
    const auto rss = stepped_rss({5.0, 2.0}, 12.0, 4.0, 1);
    const auto result = pipeline.locate(rss, ideal_l_motion());
    ASSERT_TRUE(result.fit.has_value());
    EXPECT_EQ(result.regression_restarts, 0);
    EXPECT_EQ(result.fit->segment_gammas.size(), 1u);
}

TEST(PipelineFlagsTest, SmallLevelWobbleDoesNotSegment) {
    // A 1 dB step is below the 4 dB segmentation gate even if the
    // classifier wobbles.
    LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    const LocBle pipeline(cfg, tiny_envaware());
    const auto rss = stepped_rss({5.0, 2.0}, 1.0, 4.0, 2);
    const auto result = pipeline.locate(rss, ideal_l_motion());
    ASSERT_TRUE(result.fit.has_value());
    EXPECT_EQ(result.regression_restarts, 0);
}

TEST(PipelineFlagsTest, RegimeBandsCanBeDisabled) {
    LocBle::Config with;
    with.gamma_prior_dbm = -59.0;
    LocBle::Config without = with;
    without.use_regime_bands = false;
    const auto rss = stepped_rss({5.0, 2.0}, 0.0, 0.0, 3);
    const auto rw = LocBle(with, tiny_envaware()).locate(rss, ideal_l_motion());
    const auto rwo = LocBle(without, tiny_envaware()).locate(rss, ideal_l_motion());
    ASSERT_TRUE(rw.fit.has_value());
    ASSERT_TRUE(rwo.fit.has_value());
    // Both must produce sane fixes; only the search bands differ.
    EXPECT_LT(Vec2::distance(rw.fit->location, {5.0, 2.0}), 2.5);
    EXPECT_LT(Vec2::distance(rwo.fit->location, {5.0, 2.0}), 2.5);
}

TEST(PipelineFlagsTest, SegmentedFitBeatsUnsegmentedOnHardTransition) {
    // On a 12 dB insertion-loss transition, letting the pipeline segment
    // should at least not hurt vs a single-Gamma fit of the mixed data.
    const Vec2 target{5.0, 2.0};
    double seg_err = 0.0, flat_err = 0.0;
    int n = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto rss = stepped_rss(target, 12.0, 4.0, seed);
        LocBle::Config seg_cfg;
        seg_cfg.gamma_prior_dbm = -59.0;
        LocBle::Config flat_cfg = seg_cfg;
        flat_cfg.restart_on_change = false;
        const auto rs = LocBle(seg_cfg, tiny_envaware()).locate(rss, ideal_l_motion());
        const auto rf = LocBle(flat_cfg, tiny_envaware()).locate(rss, ideal_l_motion());
        if (!rs.fit || !rf.fit) continue;
        seg_err += Vec2::distance(rs.fit->location, target);
        flat_err += Vec2::distance(rf.fit->location, target);
        ++n;
    }
    ASSERT_GE(n, 8);
    EXPECT_LE(seg_err, flat_err + 0.5 * n);  // allow per-run 0.5 m slack
}

}  // namespace
}  // namespace locble::core
