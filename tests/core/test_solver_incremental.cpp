#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "locble/common/linalg.hpp"
#include "locble/common/rng.hpp"
#include "locble/common/vec2.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {
namespace {

using locble::Vec2;

/// Noisy L-shape walk split into `batches` chunks, mimicking the
/// pipeline's per-batch flush pattern (segment id advances midway to
/// exercise the multi-gamma path).
std::vector<std::vector<FusedSample>> batched_walk(const Vec2& target, double gamma,
                                                   double n, int batches,
                                                   double noise_db = 1.5,
                                                   std::uint64_t seed = 7,
                                                   int segment_switch_batch = -1) {
    locble::Rng rng(seed);
    std::vector<FusedSample> all;
    const int per_leg = 24;
    auto add = [&](const Vec2& obs, double t) {
        FusedSample s;
        s.t = t;
        s.p = -obs.x;
        s.q = -obs.y;
        const double l = locble::Vec2::distance(target, obs);
        s.rssi = gamma - 10.0 * n * std::log10(std::max(l, 0.1)) +
                 rng.gaussian(0.0, noise_db);
        all.push_back(s);
    };
    double t = 0.0;
    for (int i = 0; i < per_leg; ++i, t += 0.1)
        add({4.0 * i / (per_leg - 1.0), 0.0}, t);
    for (int i = 0; i < per_leg; ++i, t += 0.1)
        add({4.0, 3.0 * i / (per_leg - 1.0)}, t);

    std::vector<std::vector<FusedSample>> out(batches);
    const std::size_t per_batch = (all.size() + batches - 1) / batches;
    for (std::size_t i = 0; i < all.size(); ++i) {
        const int b = static_cast<int>(i / per_batch);
        if (segment_switch_batch >= 0 && b >= segment_switch_batch)
            all[i].segment = 1;
        out[b].push_back(all[i]);
    }
    return out;
}

void expect_bitwise_equal(const LocationFit& a, const LocationFit& b) {
    EXPECT_EQ(a.location.x, b.location.x);
    EXPECT_EQ(a.location.y, b.location.y);
    EXPECT_EQ(a.exponent, b.exponent);
    EXPECT_EQ(a.gamma_dbm, b.gamma_dbm);
    ASSERT_EQ(a.segment_gammas.size(), b.segment_gammas.size());
    for (std::size_t i = 0; i < a.segment_gammas.size(); ++i)
        EXPECT_EQ(a.segment_gammas[i], b.segment_gammas[i]);
    EXPECT_EQ(a.residual_db, b.residual_db);
    EXPECT_EQ(a.confidence, b.confidence);
    EXPECT_EQ(a.ambiguous, b.ambiguous);
}

// The core contract of the incremental Session: in exhaustive mode every
// per-flush solve is bit-identical to a cold start over the accumulated
// samples, across many flushes and noise seeds.
TEST(SolverIncrementalTest, ExhaustiveSessionMatchesColdBitwise) {
    const LocationSolver solver;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        LocationSolver::Session session(solver);
        std::vector<FusedSample> accumulated;
        for (const auto& batch : batched_walk({5.0, 2.0}, -59.0, 2.1, 6, 1.5, seed)) {
            session.add(batch);
            accumulated.insert(accumulated.end(), batch.begin(), batch.end());
            const auto warm = session.solve();
            const auto cold = solver.solve(accumulated);
            ASSERT_EQ(warm.has_value(), cold.has_value()) << "seed " << seed;
            if (warm) expect_bitwise_equal(*warm, *cold);
        }
    }
}

// Same contract with the pipeline's hint pattern: the exponent band
// narrows mid-stream (grid rebuild) and the gamma band moves — the
// incremental state must be rebuilt transparently.
TEST(SolverIncrementalTest, ExhaustiveSessionMatchesColdAcrossHintChanges) {
    const LocationSolver solver;
    LocationSolver::Session session(solver);
    std::vector<FusedSample> accumulated;
    int flush = 0;
    for (const auto& batch : batched_walk({4.5, -1.5}, -62.0, 2.4, 6)) {
        session.add(batch);
        accumulated.insert(accumulated.end(), batch.begin(), batch.end());
        SolveHints hints;
        if (flush >= 2) hints.exponent_band = {{1.8, 3.2}};
        if (flush >= 4) hints.exponent_band = {{2.0, 2.8}};
        if (flush >= 3) hints.gamma_band_dbm = {{-75.0, -50.0}};
        const auto warm = session.solve(hints);
        const auto cold = solver.solve(accumulated, hints);
        ASSERT_EQ(warm.has_value(), cold.has_value()) << "flush " << flush;
        if (warm) expect_bitwise_equal(*warm, *cold);
        ++flush;
    }
}

// Segment growth mid-stream (the pipeline's regression restart) extends
// the per-segment gamma vector; incremental must still match cold.
TEST(SolverIncrementalTest, ExhaustiveSessionMatchesColdWithSegmentGrowth) {
    const LocationSolver solver;
    LocationSolver::Session session(solver);
    std::vector<FusedSample> accumulated;
    for (const auto& batch :
         batched_walk({5.0, 2.0}, -59.0, 2.0, 6, 1.0, 3, /*segment_switch_batch=*/3)) {
        session.add(batch);
        accumulated.insert(accumulated.end(), batch.begin(), batch.end());
        const auto warm = session.solve();
        const auto cold = solver.solve(accumulated);
        ASSERT_EQ(warm.has_value(), cold.has_value());
        if (warm) {
            expect_bitwise_equal(*warm, *cold);
            EXPECT_EQ(warm->segment_gammas.size(), cold->segment_gammas.size());
        }
    }
}

// coarse_to_fine trades the exhaustive grid for a coarse scan plus
// hill-descent refinement with warm-started GN. It must stay within
// tolerance of the exhaustive fit (the bench gate asserts < 1% on the
// paper metrics; here we check the solver-level quantities directly).
TEST(SolverIncrementalTest, CoarseToFineWithinToleranceOfExhaustive) {
    LocationSolver::Config coarse_cfg;
    coarse_cfg.search_mode = LocationSolver::SearchMode::coarse_to_fine;
    const LocationSolver exhaustive;
    const LocationSolver coarse(coarse_cfg);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        LocationSolver::Session session(coarse);
        std::vector<FusedSample> accumulated;
        SolveDiagnostics cd{}, ed{};
        std::optional<LocationFit> warm, cold;
        int warm_starts = 0;
        for (const auto& batch : batched_walk({5.0, 2.0}, -59.0, 2.1, 6, 1.5, seed)) {
            session.add(batch);
            accumulated.insert(accumulated.end(), batch.begin(), batch.end());
            warm = session.solve({}, &cd);
            cold = exhaustive.solve(accumulated, {}, &ed);
            warm_starts += cd.warm_starts;
        }
        ASSERT_TRUE(warm.has_value());
        ASSERT_TRUE(cold.has_value());
        EXPECT_NEAR(warm->location.x, cold->location.x, 0.25) << "seed " << seed;
        EXPECT_NEAR(warm->location.y, cold->location.y, 0.25) << "seed " << seed;
        EXPECT_NEAR(warm->exponent, cold->exponent, 0.15) << "seed " << seed;
        // The coarse scan must actually skip work and reuse warm fits.
        EXPECT_LT(cd.exponent_candidates, ed.exponent_candidates);
        EXPECT_GT(warm_starts, 0) << "seed " << seed;
    }
}

// Model averaging blends near-optimal exponent candidates; the branch must
// produce a consistent fit whose residual matches a direct evaluation of
// the averaged parameters.
TEST(SolverIncrementalTest, ModelAveragingBranchIsConsistent) {
    LocationSolver::Config cfg;
    cfg.use_model_averaging = true;
    const LocationSolver averaging(cfg);
    const LocationSolver plain;

    std::vector<FusedSample> samples;
    for (const auto& batch : batched_walk({5.0, 2.0}, -59.0, 2.1, 1, 2.0))
        samples.insert(samples.end(), batch.begin(), batch.end());

    const auto avg = averaging.solve(samples);
    const auto best = plain.solve(samples);
    ASSERT_TRUE(avg.has_value());
    ASSERT_TRUE(best.has_value());
    // Averaging recomputes the residual stats at the blended parameters
    // with the best candidate's gammas — verify against a direct call.
    ASSERT_EQ(avg->segment_gammas.size(), 1u);
    const ResidualStats check =
        residual_stats(samples, avg->location, avg->exponent, avg->segment_gammas[0]);
    EXPECT_EQ(avg->residual_db, check.rms_db);
    EXPECT_EQ(avg->confidence, check.confidence);
    // The blend stays in the neighbourhood of the argmin candidate.
    EXPECT_NEAR(avg->location.x, best->location.x, 1.5);
    EXPECT_NEAR(avg->location.y, best->location.y, 1.5);
    // And averaging in a session matches averaging cold, bitwise.
    LocationSolver::Session session(averaging);
    session.add(samples);
    const auto warm = session.solve();
    ASSERT_TRUE(warm.has_value());
    expect_bitwise_equal(*warm, *avg);
}

// A workspace is reusable across unrelated problems: a cold solve resets
// all incremental state, so results equal the plain allocating overload,
// and repeated same-shape solves stop growing the buffers.
TEST(SolverIncrementalTest, WorkspaceReuseAcrossProblems) {
    const LocationSolver solver;
    SolverWorkspace ws;
    LocationFit out;

    std::vector<FusedSample> a, b;
    for (const auto& batch : batched_walk({5.0, 2.0}, -59.0, 2.0, 1, 1.0, 11))
        a.insert(a.end(), batch.begin(), batch.end());
    for (const auto& batch : batched_walk({2.5, -3.0}, -64.0, 2.6, 1, 1.0, 12))
        b.insert(b.end(), batch.begin(), batch.end());

    ASSERT_TRUE(solver.solve(a, {}, nullptr, ws, out));
    const auto ref_a = solver.solve(a);
    ASSERT_TRUE(ref_a.has_value());
    expect_bitwise_equal(out, *ref_a);

    // Same workspace, different problem: no cross-contamination.
    ASSERT_TRUE(solver.solve(b, {}, nullptr, ws, out));
    const auto ref_b = solver.solve(b);
    ASSERT_TRUE(ref_b.has_value());
    expect_bitwise_equal(out, *ref_b);

    // After warm-up, identical solves must not grow any buffer.
    const std::uint64_t grows = ws.grow_events();
    ASSERT_TRUE(solver.solve(b, {}, nullptr, ws, out));
    ASSERT_TRUE(solver.solve(a, {}, nullptr, ws, out));
    EXPECT_EQ(ws.grow_events(), grows);
}

// The evict-and-recreate path of long-running services (locble::serve):
// a Session that is reset() and refilled with a different problem must be
// bit-identical to a cold Session that only ever saw that problem — no
// incremental state may leak across the reset.
TEST(SolverIncrementalTest, ResetThenRefillMatchesColdBitwise) {
    const LocationSolver solver;
    LocationSolver::Session reused(solver);
    LocationFit out, cold_out;

    // Warm the session on problem A, incrementally, with solves between
    // batches so every piece of warm state (rho powers, normal equations,
    // warm-start fit) is populated.
    for (const auto& batch : batched_walk({5.0, 2.0}, -59.0, 2.0, 4, 1.5, 21)) {
        reused.add(batch);
        reused.solve_into(out);
    }
    ASSERT_GT(reused.size(), 0u);

    reused.reset();
    EXPECT_EQ(reused.size(), 0u);

    // Refill with problem B (different target, gamma, exponent, seed) and
    // compare flush-by-flush against a session born cold.
    LocationSolver::Session cold(solver);
    for (const auto& batch : batched_walk({1.5, -2.5}, -63.0, 2.4, 4, 1.5, 22)) {
        reused.add(batch);
        cold.add(batch);
        const bool r = reused.solve_into(out);
        const bool c = cold.solve_into(cold_out);
        ASSERT_EQ(r, c);
        if (r) expect_bitwise_equal(out, cold_out);
    }
    EXPECT_EQ(reused.size(), cold.size());

    // And a second reset keeps working (clear() is the documented alias).
    reused.clear();
    EXPECT_EQ(reused.size(), 0u);
}

// The flat linalg twins must reproduce the allocating versions bitwise —
// that equivalence is what keeps the workspace solver's linear algebra
// identical to the historical implementation.
TEST(SolverIncrementalTest, FlatLinalgTwinsAreBitIdentical) {
    locble::Rng rng(99);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 12, m = 4;
        locble::Matrix x(n, std::vector<double>(m));
        std::vector<double> y(n);
        std::vector<double> xf(n * m);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < m; ++j)
                xf[i * m + j] = x[i][j] = rng.gaussian(0.0, 3.0);
            y[i] = rng.gaussian(0.0, 1.0);
        }
        const auto beta_ref = locble::least_squares(x, y);
        double beta[4], ata[16], atb[4], scale[4];
        ASSERT_TRUE(
            locble::least_squares_flat(xf.data(), y.data(), n, m, beta, ata, atb, scale));
        for (std::size_t j = 0; j < m; ++j) EXPECT_EQ(beta[j], beta_ref[j]);
    }
}

}  // namespace
}  // namespace locble::core
