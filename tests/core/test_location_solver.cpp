#include "locble/core/location_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "locble/common/rng.hpp"
#include "locble/common/vec2.hpp"

namespace locble::core {
namespace {

using locble::Vec2;

/// Generate noiseless samples for a stationary target at `target` while the
/// observer walks an L-shape (leg1 along +x, leg2 along +y), under the
/// model RS = gamma - 10 n log10(l).
std::vector<FusedSample> l_shape_samples(const Vec2& target, double gamma, double n,
                                         double leg1 = 4.0, double leg2 = 3.0,
                                         int points_per_leg = 20,
                                         double noise_db = 0.0,
                                         std::uint64_t seed = 1) {
    locble::Rng rng(seed);
    std::vector<FusedSample> out;
    auto add = [&](const Vec2& obs, double t) {
        FusedSample s;
        s.t = t;
        s.p = -obs.x;  // stationary target: p = -a_i
        s.q = -obs.y;
        const double l = locble::Vec2::distance(target, obs);
        s.rssi = gamma - 10.0 * n * std::log10(std::max(l, 0.1)) +
                 (noise_db > 0.0 ? rng.gaussian(0.0, noise_db) : 0.0);
        out.push_back(s);
    };
    double t = 0.0;
    for (int i = 0; i < points_per_leg; ++i, t += 0.1)
        add({leg1 * i / (points_per_leg - 1.0), 0.0}, t);
    for (int i = 0; i < points_per_leg; ++i, t += 0.1)
        add({leg1, leg2 * i / (points_per_leg - 1.0)}, t);
    return out;
}

TEST(LocationSolverTest, ExactRecoveryOnCleanLShape) {
    const Vec2 target{5.0, 2.0};
    const auto samples = l_shape_samples(target, -59.0, 2.0);
    const auto fit = LocationSolver().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_FALSE(fit->ambiguous);
    EXPECT_NEAR(fit->location.x, 5.0, 0.1);
    EXPECT_NEAR(fit->location.y, 2.0, 0.1);
    EXPECT_NEAR(fit->exponent, 2.0, 0.1);
    EXPECT_NEAR(fit->gamma_dbm, -59.0, 1.0);
    EXPECT_LT(fit->residual_db, 0.2);
    EXPECT_GT(fit->confidence, 0.9);
}

TEST(LocationSolverTest, RecoversNegativeH) {
    const Vec2 target{4.0, -3.0};
    const auto samples = l_shape_samples(target, -59.0, 2.0);
    const auto fit = LocationSolver().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->location.y, -3.0, 0.2);
}

TEST(LocationSolverTest, RecoversVariousExponents) {
    for (double n : {1.8, 2.4, 3.0, 3.6}) {
        const Vec2 target{6.0, 3.0};
        const auto samples = l_shape_samples(target, -62.0, n);
        const auto fit = LocationSolver().solve(samples);
        ASSERT_TRUE(fit.has_value()) << "n=" << n;
        EXPECT_NEAR(fit->exponent, n, 0.15) << "n=" << n;
        EXPECT_NEAR(fit->location.x, 6.0, 0.3) << "n=" << n;
        EXPECT_NEAR(fit->location.y, 3.0, 0.3) << "n=" << n;
    }
}

TEST(LocationSolverTest, RobustToModerateNoise) {
    const Vec2 target{5.0, 3.0};
    double total_err = 0.0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto samples =
            l_shape_samples(target, -59.0, 2.0, 4.0, 3.0, 25, 1.5, seed);
        const auto fit = LocationSolver().solve(samples);
        ASSERT_TRUE(fit.has_value());
        total_err += locble::Vec2::distance(fit->location, target);
        ++runs;
    }
    EXPECT_LT(total_err / runs, 1.5);
}

TEST(LocationSolverTest, StraightWalkIsAmbiguous) {
    const Vec2 target{5.0, 3.0};
    std::vector<FusedSample> samples;
    for (int i = 0; i < 40; ++i) {
        const Vec2 obs{0.15 * i, 0.0};
        FusedSample s;
        s.t = 0.1 * i;
        s.p = -obs.x;
        s.q = 0.0;
        s.rssi = -59.0 - 20.0 * std::log10(locble::Vec2::distance(target, obs));
        samples.push_back(s);
    }
    const auto fit = LocationSolver().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_TRUE(fit->ambiguous);
    // x and |h| recovered; sign of h undetermined by construction.
    EXPECT_NEAR(fit->location.x, 5.0, 0.5);
    EXPECT_NEAR(std::abs(fit->location.y), 3.0, 0.5);
    EXPECT_GE(fit->location.y, 0.0);  // convention: ambiguous fits report +h
}

TEST(LocationSolverTest, TooFewSamplesRejected) {
    const auto samples = l_shape_samples({4.0, 2.0}, -59.0, 2.0, 4.0, 3.0, 3);
    LocationSolver::Config cfg;
    cfg.min_samples = 10;
    EXPECT_FALSE(LocationSolver(cfg).solve(samples).has_value());
}

TEST(LocationSolverTest, MovingTargetRelativeDisplacements) {
    // Target moves with constant velocity; p/q carry b_i - a_i. The fit
    // recovers the target's *initial* position.
    const Vec2 target0{6.0, 2.0};
    const Vec2 target_vel{0.3, -0.2};
    std::vector<FusedSample> samples;
    double t = 0.0;
    for (int i = 0; i < 50; ++i, t += 0.1) {
        // Observer walks an L.
        const Vec2 obs = i < 25 ? Vec2{0.16 * i, 0.0} : Vec2{4.0, 0.12 * (i - 25)};
        const Vec2 tgt_disp = target_vel * t;
        const Vec2 tgt = target0 + tgt_disp;
        FusedSample s;
        s.t = t;
        s.p = tgt_disp.x - obs.x;
        s.q = tgt_disp.y - obs.y;
        s.rssi = -59.0 - 20.0 * std::log10(locble::Vec2::distance(tgt, obs));
        samples.push_back(s);
    }
    const auto fit = LocationSolver().solve(samples);
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->location.x, target0.x, 0.4);
    EXPECT_NEAR(fit->location.y, target0.y, 0.4);
}

TEST(LocationSolverTest, ResolveLShapeDisambiguates) {
    // Two per-leg ambiguous fits; the true target is at (5, 2) in the
    // observer frame. Leg 2 starts at (4, 0) heading +y (90 deg).
    const Vec2 truth{5.0, 2.0};

    LocationFit leg1;  // leg 1 frame == observer frame
    leg1.location = {truth.x, truth.y};
    leg1.ambiguous = true;  // candidates (5, +-2)
    leg1.confidence = 0.8;
    leg1.exponent = 2.0;
    leg1.gamma_dbm = -59.0;

    // Leg 2 local frame: origin (4,0), +x along observer +y.
    // Truth in leg-2 frame: rotate (truth - origin) by -90 deg -> (2, -1).
    LocationFit leg2;
    leg2.location = {2.0, -1.0};
    leg2.ambiguous = true;  // candidates (2, +-1)
    leg2.confidence = 0.6;
    leg2.exponent = 2.2;
    leg2.gamma_dbm = -60.0;

    const auto resolved = LocationSolver::resolve_l_shape(
        leg1, leg2, {4.0, 0.0}, std::numbers::pi / 2.0);
    ASSERT_TRUE(resolved.has_value());
    EXPECT_FALSE(resolved->ambiguous);
    EXPECT_NEAR(resolved->location.x, truth.x, 1e-6);
    EXPECT_NEAR(resolved->location.y, truth.y, 1e-6);
    // Confidence-weighted parameter blend.
    EXPECT_GT(resolved->exponent, 2.0);
    EXPECT_LT(resolved->exponent, 2.2);
}

TEST(LocationSolverTest, ConfidenceDropsWithModelMismatch) {
    // Samples from two different environments stitched together: residuals
    // become biased, confidence falls (this is what EnvAware prevents).
    const Vec2 target{5.0, 3.0};
    auto a = l_shape_samples(target, -59.0, 2.0);
    auto b = l_shape_samples(target, -72.0, 3.4);
    // Second half from the NLOS model.
    std::vector<FusedSample> mixed(a.begin(), a.begin() + a.size() / 2);
    mixed.insert(mixed.end(), b.begin() + b.size() / 2, b.end());

    const auto clean_fit = LocationSolver().solve(a);
    const auto mixed_fit = LocationSolver().solve(mixed);
    ASSERT_TRUE(clean_fit.has_value());
    ASSERT_TRUE(mixed_fit.has_value());
    // The Gauss-Newton refit zeroes the mean residual, so the Sec. 5
    // confidence (a function of the residual *mean*) saturates near 1 for
    // both fits; the RMS residual still exposes the mismatch.
    EXPECT_GE(clean_fit->confidence, mixed_fit->confidence - 1e-6);
    EXPECT_GT(mixed_fit->residual_db, clean_fit->residual_db);
}

TEST(ResidualStatsTest, PerfectModelZeroResidual) {
    const Vec2 target{4.0, 1.0};
    const auto samples = l_shape_samples(target, -59.0, 2.0);
    const auto stats = residual_stats(samples, target, 2.0, -59.0);
    EXPECT_NEAR(stats.mean_db, 0.0, 1e-9);
    EXPECT_NEAR(stats.rms_db, 0.0, 1e-9);
    EXPECT_NEAR(stats.confidence, 1.0, 1e-9);
}

TEST(ResidualStatsTest, BiasedModelLowConfidence) {
    const Vec2 target{4.0, 1.0};
    const auto samples = l_shape_samples(target, -59.0, 2.0);
    // Gamma off by 10 dB: residual mean is 10 dB, confidence collapses.
    const auto stats = residual_stats(samples, target, 2.0, -69.0);
    EXPECT_NEAR(stats.mean_db, 10.0, 1e-6);
    EXPECT_LT(stats.confidence, 0.01);
}

TEST(ResidualStatsTest, EmptyInput) {
    const auto stats = residual_stats({}, {0, 0}, 2.0, -59.0);
    EXPECT_DOUBLE_EQ(stats.confidence, 0.0);
}

}  // namespace
}  // namespace locble::core
