#include "locble/core/navigation.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace locble::core {
namespace {

using locble::Vec2;

TEST(NavigatorTest, DistanceAndBearingAhead) {
    const Navigator nav({5.0, 0.0});
    const Guidance g = nav.guide({0.0, 0.0}, 0.0);
    EXPECT_DOUBLE_EQ(g.distance_m, 5.0);
    EXPECT_NEAR(g.bearing_rad, 0.0, 1e-12);
    EXPECT_FALSE(g.arrived);
}

TEST(NavigatorTest, BearingRelativeToHeading) {
    const Navigator nav({0.0, 5.0});
    // Target due +y; user facing +x: turn left 90 degrees.
    const Guidance g = nav.guide({0.0, 0.0}, 0.0);
    EXPECT_NEAR(g.bearing_rad, std::numbers::pi / 2.0, 1e-12);
    // Facing +y already: no turn.
    const Guidance g2 = nav.guide({0.0, 0.0}, std::numbers::pi / 2.0);
    EXPECT_NEAR(g2.bearing_rad, 0.0, 1e-12);
}

TEST(NavigatorTest, BearingWrapsShortestWay) {
    const Navigator nav({-5.0, -0.1});
    const Guidance g = nav.guide({0.0, 0.0}, std::numbers::pi * 0.9);
    EXPECT_LT(std::abs(g.bearing_rad), std::numbers::pi / 2.0);
}

TEST(NavigatorTest, ArrivalInsideRadius) {
    const Navigator nav({1.0, 0.0}, 0.5);
    EXPECT_FALSE(nav.guide({0.0, 0.0}, 0.0).arrived);
    const Guidance g = nav.guide({0.8, 0.0}, 0.0);
    EXPECT_TRUE(g.arrived);
    EXPECT_DOUBLE_EQ(g.bearing_rad, 0.0);
}

TEST(NavigatorTest, UpdateTargetMidRoute) {
    Navigator nav({10.0, 0.0});
    EXPECT_DOUBLE_EQ(nav.guide({0.0, 0.0}, 0.0).distance_m, 10.0);
    nav.update_target({2.0, 0.0});
    EXPECT_DOUBLE_EQ(nav.guide({0.0, 0.0}, 0.0).distance_m, 2.0);
    EXPECT_EQ(nav.target(), Vec2(2.0, 0.0));
}

}  // namespace
}  // namespace locble::core
