#include "locble/core/proximity_assist.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace locble::core {
namespace {

locble::TimeSeries rss_at_range(double range_m, double mp = -59.0, double n = 2.2,
                                std::size_t count = 15) {
    locble::TimeSeries ts;
    const double v = mp - 10.0 * n * std::log10(std::max(range_m, 0.1));
    for (std::size_t i = 0; i < count; ++i)
        ts.push_back({0.1 * static_cast<double>(i), v});
    return ts;
}

LocationFit fit_at(const locble::Vec2& loc) {
    LocationFit f;
    f.location = loc;
    f.confidence = 0.8;
    return f;
}

TEST(ProximityAssistTest, DisengagedFarAway) {
    const ProximityAssist assist;
    const auto fit = fit_at({6.0, 2.0});
    const auto out = assist.refine(fit, rss_at_range(6.3), {0.0, 0.0});
    EXPECT_FALSE(out.engaged);
    EXPECT_EQ(out.location, fit.location);
    EXPECT_EQ(out.zone, baseline::ProximityZone::far);
}

TEST(ProximityAssistTest, EngagesWhenBothClose) {
    const ProximityAssist assist;
    // Regression says 1.8 m, proximity RSS says ~1.0 m: blend inward.
    const auto fit = fit_at({1.8, 0.0});
    const auto out = assist.refine(fit, rss_at_range(1.0), {0.0, 0.0});
    EXPECT_TRUE(out.engaged);
    const double refined_range = out.location.norm();
    EXPECT_LT(refined_range, 1.8);
    EXPECT_GT(refined_range, 0.9);
    // Bearing preserved.
    EXPECT_NEAR(out.location.y, 0.0, 1e-9);
    EXPECT_GT(out.location.x, 0.0);
}

TEST(ProximityAssistTest, ProximityAloneDoesNotEngage) {
    // A deep fade can fake a close proximity reading; the regression says
    // the target is far, so nothing happens.
    const ProximityAssist assist;
    const auto fit = fit_at({5.0, 3.0});
    const auto out = assist.refine(fit, rss_at_range(0.8), {0.0, 0.0});
    EXPECT_FALSE(out.engaged);
    EXPECT_EQ(out.location, fit.location);
}

TEST(ProximityAssistTest, RegressionAloneDoesNotEngage) {
    const ProximityAssist assist;
    const auto fit = fit_at({1.2, 0.5});
    const auto out = assist.refine(fit, rss_at_range(7.0), {0.0, 0.0});
    EXPECT_FALSE(out.engaged);
}

TEST(ProximityAssistTest, RangeMeasuredFromObserverPosition) {
    // Observer has walked to (3, 0); target estimate (4.5, 0) is 1.5 m away
    // from *them*, not from the origin.
    const ProximityAssist assist;
    const auto fit = fit_at({4.5, 0.0});
    const auto out = assist.refine(fit, rss_at_range(1.0), {3.0, 0.0});
    EXPECT_TRUE(out.engaged);
    EXPECT_LT(locble::Vec2::distance(out.location, {3.0, 0.0}), 1.5);
}

TEST(ProximityAssistTest, EmptyRssIsIdentity) {
    const ProximityAssist assist;
    const auto fit = fit_at({1.0, 0.0});
    const auto out = assist.refine(fit, {}, {0.0, 0.0});
    EXPECT_FALSE(out.engaged);
    EXPECT_EQ(out.location, fit.location);
}

TEST(ProximityAssistTest, CloserProximityBlendsHarder) {
    const ProximityAssist assist;
    const auto fit = fit_at({2.0, 0.0});
    const auto near_out = assist.refine(fit, rss_at_range(0.4), {0.0, 0.0});
    const auto mid_out = assist.refine(fit, rss_at_range(1.6), {0.0, 0.0});
    ASSERT_TRUE(near_out.engaged);
    ASSERT_TRUE(mid_out.engaged);
    // The very-close reading pulls the estimate farther inward.
    EXPECT_LT(near_out.location.norm(), mid_out.location.norm());
}

}  // namespace
}  // namespace locble::core
