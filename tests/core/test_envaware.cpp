#include "locble/core/envaware.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "locble/channel/fading.hpp"
#include "locble/channel/propagation.hpp"
#include "locble/core/features.hpp"
#include "locble/ml/decision_tree.hpp"

namespace locble::core {
namespace {

using channel::PropagationClass;

const ml::Dataset& corpus() {
    static const ml::Dataset data = [] {
        locble::Rng rng(77);
        EnvDatasetConfig cfg;
        cfg.traces_per_class = 40;
        return generate_env_dataset(cfg, rng);
    }();
    return data;
}

/// A raw 2 s RSS window drawn from one propagation class.
std::vector<double> make_window(PropagationClass cls, locble::Rng& rng) {
    const auto params = channel::params_for(cls);
    channel::FadingProcess fading(params.rician_k_db, params.coherence_distance_m,
                                  rng.fork());
    channel::ShadowingProcess shadowing(params.shadowing_sigma_db,
                                        params.shadowing_decorrelation_m, rng.fork());
    const channel::LogDistanceModel base{-59.0, params.exponent};
    std::vector<double> w;
    for (int i = 0; i < 20; ++i)
        w.push_back(channel::rssi_from_class(base, 5.0, params, fading, shadowing, 0.12));
    return w;
}

TEST(EnvDatasetTest, BalancedAndWellFormed) {
    const auto& d = corpus();
    d.validate();
    EXPECT_EQ(d.dims(), kEnvFeatureDims);
    std::size_t counts[3] = {0, 0, 0};
    for (int y : d.y) counts[y]++;
    EXPECT_EQ(counts[0], counts[1]);
    EXPECT_EQ(counts[1], counts[2]);
    EXPECT_GT(counts[0], 100u);  // 40 traces x 6 windows each
}

TEST(EnvAwareTest, HeldOutAccuracyNearPaper) {
    // Paper: 94.7% precision / 94.5% recall on the 3-class problem.
    EnvAware env;
    locble::Rng rng(5);
    const auto report = evaluate_envaware(env, corpus(), 0.3, rng);
    EXPECT_GT(report.macro_precision, 0.85);
    EXPECT_GT(report.macro_recall, 0.85);
}

TEST(EnvAwareTest, ClassifyBeforeTrainThrows) {
    EnvAware env;
    const std::vector<double> window(20, -70.0);
    EXPECT_THROW(env.classify(window), std::logic_error);
}

TEST(EnvAwareTest, ClassifiesFreshClassWindows) {
    EnvAware env;
    env.train(corpus());
    locble::Rng rng(13);
    int correct = 0, total = 0;
    for (int rep = 0; rep < 30; ++rep) {
        for (auto cls : {PropagationClass::los, PropagationClass::plos,
                         PropagationClass::nlos}) {
            if (env.classify(make_window(cls, rng)) == cls) ++correct;
            ++total;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.8);
}

TEST(EnvAwareTest, ObserveDebouncesAdjacentClassChange) {
    EnvAware env;
    env.train(corpus());
    locble::Rng rng(10);

    env.reset_stream();
    for (int i = 0; i < 3; ++i) env.observe(make_window(PropagationClass::los, rng));

    // Feed p-LOS windows (adjacent class); the flip must take at least 2
    // windows (debounce) and must eventually happen.
    int flips = 0;
    int windows_needed = 0;
    for (int i = 0; i < 10; ++i) {
        const auto obs = env.observe(make_window(PropagationClass::plos, rng));
        ++windows_needed;
        if (obs.changed) {
            ++flips;
            EXPECT_EQ(obs.regime, obs.window_class);
            break;
        }
    }
    EXPECT_EQ(flips, 1);
    EXPECT_GE(windows_needed, 2);
}

TEST(EnvAwareTest, AbruptTwoClassJumpFlipsImmediately) {
    // "Abrupt environmental changes" (LOS <-> NLOS) must not wait out the
    // debounce — the walk is short and the stale model poisons the fit.
    EnvAware env;
    env.train(corpus());
    locble::Rng rng(12);
    env.reset_stream();
    for (int i = 0; i < 3; ++i) env.observe(make_window(PropagationClass::los, rng));
    int windows_needed = 0;
    for (int i = 0; i < 6; ++i) {
        ++windows_needed;
        if (env.observe(make_window(PropagationClass::nlos, rng)).changed) break;
    }
    // Usually flips on the very first clean NLOS window (a misclassified
    // p-LOS verdict can add one more).
    EXPECT_LE(windows_needed, 3);
}

TEST(EnvAwareTest, SingleAdjacentOutlierRarelyFlipsRegime) {
    // One p-LOS window (a passer-by) inside a LOS stream: the debounce
    // should suppress the flip. Classification is imperfect, so allow the
    // occasional seed where a misread window (e.g. NLOS) forces one.
    EnvAware env;
    env.train(corpus());
    int flips = 0;
    const int seeds = 10;
    for (std::uint64_t seed = 14; seed < 14 + seeds; ++seed) {
        locble::Rng rng(seed);
        env.reset_stream();
        for (int i = 0; i < 3; ++i) env.observe(make_window(PropagationClass::los, rng));
        bool flipped = env.observe(make_window(PropagationClass::plos, rng)).changed;
        for (int i = 0; i < 3; ++i)
            flipped |= env.observe(make_window(PropagationClass::los, rng)).changed;
        flips += flipped;
    }
    EXPECT_LE(flips, 3) << "of " << seeds;
}

TEST(EnvAwareTest, ResetStreamForgetsRegime) {
    EnvAware env;
    env.train(corpus());
    const std::vector<double> quiet(20, -60.0);
    env.observe(quiet);
    env.reset_stream();
    EXPECT_FALSE(env.observe(quiet).changed);
}

TEST(EnvAwareTest, SvmCompetitiveWithShallowTree) {
    // The paper picked the linear SVM over tree classifiers; verify it is
    // at least competitive on our corpus.
    locble::Rng rng(11);
    auto [train, test] = ml::train_test_split(corpus(), 0.3, rng);

    EnvAware env;
    env.train(train);
    std::vector<int> svm_pred;
    for (const auto& row : test.x)
        svm_pred.push_back(env.svm().predict(env.scaler().transform(row)));
    const auto svm_report = ml::evaluate_classification(test.y, svm_pred);

    ml::DecisionTree::Config tree_cfg;
    tree_cfg.max_depth = 4;
    ml::DecisionTree tree(tree_cfg);
    tree.fit(train);
    const auto tree_report = ml::evaluate_classification(test.y, tree.predict(test));

    EXPECT_GE(svm_report.accuracy, tree_report.accuracy - 0.05);
}

TEST(EnvAwareTest, UntrainedRequiredByPipelineContract) {
    EnvAware env;
    EXPECT_FALSE(env.trained());
    env.train(corpus());
    EXPECT_TRUE(env.trained());
}

}  // namespace
}  // namespace locble::core
