#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "locble/core/envaware.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/service.hpp"

namespace locble::serve {
namespace {

TrackingService::Config base_config() {
    TrackingService::Config cfg;
    cfg.shards = 2;
    cfg.threads = 1;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    cfg.shard.queue_capacity = 4096;
    cfg.shard.idle_timeout_s = 20.0;
    return cfg;
}

/// One client walking +x at 1 m/s past a beacon at (5, 2), starting at t0.
void submit_walk(TrackingService& svc, ClientId client, double t0,
                 double seconds) {
    for (double t = 0.0; t <= seconds; t += 0.1) {
        svc.submit(pose_event(client, t0 + t, {t, 0.0}));
        const double dist =
            std::max(std::hypot(5.0 - t, 2.0), 0.1);
        svc.submit(adv_event(client, t0 + t, 42,
                             -59.0 - 20.0 * std::log10(dist)));
    }
}

TEST(ServeLifecycleTest, IdleClientsAreEvictedByEventTime) {
    TrackingService svc(base_config());
    submit_walk(svc, 100, 0.0, 8.0);
    svc.run_epoch();
    ASSERT_EQ(svc.snapshot().estimates.size(), 1u);

    // A second client keeps the service's event-time clock moving; the
    // first client's silence ages it past the idle timeout.
    submit_walk(svc, 200, 40.0, 8.0);
    svc.run_epoch();

    const auto snap = svc.snapshot();
    ASSERT_EQ(snap.estimates.size(), 1u);
    EXPECT_EQ(snap.estimates[0].client, 200u);
    EXPECT_EQ(snap.stats.clients_evicted, 1u);
    EXPECT_EQ(snap.stats.sessions_evicted, 1u);
    EXPECT_EQ(snap.stats.clients_created, 2u);
}

TEST(ServeLifecycleTest, EvictedClientIsRecreatedOnReturn) {
    TrackingService svc(base_config());
    submit_walk(svc, 100, 0.0, 8.0);
    svc.run_epoch();
    submit_walk(svc, 200, 40.0, 8.0);
    svc.run_epoch();  // evicts client 100

    // Client 100 comes back: a brand-new state, counted as a new creation.
    submit_walk(svc, 100, 50.0, 8.0);
    svc.run_epoch();

    const auto snap = svc.snapshot();
    EXPECT_EQ(snap.estimates.size(), 2u);
    EXPECT_EQ(snap.stats.clients_created, 3u);
    EXPECT_EQ(snap.stats.clients_evicted, 1u);
    const auto it = std::find_if(
        snap.estimates.begin(), snap.estimates.end(),
        [](const BeaconEstimate& e) { return e.client == 100; });
    ASSERT_NE(it, snap.estimates.end());
    // Only the post-return samples: the evicted history really is gone.
    EXPECT_LE(it->samples_seen, 81u);
    EXPECT_TRUE(it->has_fit);
}

TEST(ServeLifecycleTest, SessionsPersistAcrossEpochsUntilIdle) {
    TrackingService svc(base_config());
    // Same client, three epochs of one walk: one session accumulates.
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (double t = 0.0; t < 2.5; t += 0.1) {
            const double at = epoch * 2.5 + t;
            svc.submit(pose_event(100, at, {at, 0.0}));
            const double dist = std::max(std::hypot(5.0 - at, 2.0), 0.1);
            svc.submit(
                adv_event(100, at, 42, -59.0 - 20.0 * std::log10(dist)));
        }
        svc.run_epoch();
    }
    const auto snap = svc.snapshot();
    ASSERT_EQ(snap.estimates.size(), 1u);
    EXPECT_EQ(snap.stats.sessions_created, 1u);  // reused, not recreated
    EXPECT_EQ(snap.estimates[0].samples_seen, 75u);
    EXPECT_TRUE(snap.estimates[0].has_fit);
}

TEST(ServeLifecycleTest, ResetOnEnvChangeRestartsTheRegression) {
    // A trained EnvAware plus a staged LOS -> NLOS level collapse: with
    // reset_on_env_change the session starts a fresh regression (resets
    // counted), without it the regression keeps history in a new segment.
    locble::Rng train_rng(20);
    core::EnvDatasetConfig dcfg;
    dcfg.traces_per_class = 15;
    core::EnvAware env;
    env.train(core::generate_env_dataset(dcfg, train_rng));

    for (const bool reset_policy : {false, true}) {
        auto cfg = base_config();
        cfg.shards = 1;
        cfg.shard.session.pipeline.use_envaware = true;
        cfg.shard.session.reset_on_env_change = reset_policy;
        TrackingService svc(cfg, env);

        locble::Rng rng(3);
        double t = 0.0;
        // 8 s of quiet LOS-like signal, then 8 s fallen off a cliff with
        // NLOS-like heavy fluctuation.
        for (int phase = 0; phase < 2; ++phase) {
            const double base = phase == 0 ? -55.0 : -78.0;
            const double sigma = phase == 0 ? 0.6 : 6.0;
            for (int i = 0; i < 80; ++i, t += 0.1) {
                svc.submit(pose_event(1, t, {t, 0.0}));
                svc.submit(adv_event(1, t, 42,
                                     base + rng.gaussian(0.0, sigma)));
            }
        }
        svc.run_epoch();

        const auto snap = svc.snapshot();
        ASSERT_EQ(snap.estimates.size(), 1u);
        const auto& e = snap.estimates[0];
        if (reset_policy) {
            EXPECT_GE(e.resets, 1);
            EXPECT_EQ(snap.stats.sessions_reset,
                      static_cast<std::uint64_t>(e.resets));
            // The reset forgot the LOS half.
            EXPECT_LT(e.samples_used, 160u);
        } else {
            EXPECT_EQ(e.resets, 0);
            EXPECT_GE(e.regression_restarts, 1);
        }
    }
}

}  // namespace
}  // namespace locble::serve
