#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "locble/obs/metrics.hpp"
#include "locble/obs/obs.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/service.hpp"

namespace locble::serve {
namespace {

TrackingService::Config tiny_config(std::size_t capacity, OverflowPolicy policy) {
    TrackingService::Config cfg;
    cfg.shards = 1;
    cfg.threads = 1;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    cfg.shard.queue_capacity = capacity;
    cfg.shard.overflow = policy;
    return cfg;
}

#if LOCBLE_OBS
std::uint64_t obs_counter(const char* name) {
    for (const auto& m : obs::Registry::global().snapshot())
        if (m.name == name) return m.count;
    return 0;
}
#endif

TEST(ServeBackpressureTest, DropOldestCountsEveryEviction) {
#if LOCBLE_OBS
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.set_enabled(true);
#endif
    TrackingService svc(tiny_config(4, OverflowPolicy::drop_oldest));
    svc.submit(pose_event(1, 0.0, {0.0, 0.0}));
    for (int i = 0; i < 9; ++i)
        svc.submit(adv_event(1, 0.1 * (i + 1), 7, -60.0));

    const IngestStats s = svc.stats();
    // 10 submitted into capacity 4: every one admitted, 6 old ones evicted.
    EXPECT_EQ(s.submitted, 10u);
    EXPECT_EQ(s.accepted, 10u);
    EXPECT_EQ(s.dropped, 6u);
    EXPECT_EQ(s.rejected, 0u);
#if LOCBLE_OBS
    // The obs counters are the same truth, injected overflow matches exactly.
    EXPECT_EQ(obs_counter("serve.ingest.dropped"), 6u);
    EXPECT_EQ(obs_counter("serve.ingest.accepted"), 10u);
    reg.set_enabled(false);
#endif

    // Graceful degradation: the 4 surviving events still process cleanly.
    svc.run_epoch();
    const auto snap = svc.snapshot();
    ASSERT_EQ(snap.estimates.size(), 1u);
    EXPECT_EQ(snap.estimates[0].client, 1u);
    EXPECT_EQ(snap.estimates[0].beacon, 7u);
    // The pose event was among the dropped ones (it was oldest), so the
    // advs had nothing to pair with — seen stays 0 but nothing crashed.
    EXPECT_EQ(snap.stats.dropped, 6u);
}

TEST(ServeBackpressureTest, RejectRefusesExactOverflow) {
    TrackingService svc(tiny_config(4, OverflowPolicy::reject));
    for (int i = 0; i < 10; ++i)
        svc.submit(adv_event(1, 0.1 * i, 7, -60.0));

    const IngestStats s = svc.stats();
    EXPECT_EQ(s.submitted, 10u);
    EXPECT_EQ(s.accepted, 4u);  // first 4 keep their seats
    EXPECT_EQ(s.rejected, 6u);
    EXPECT_EQ(s.dropped, 0u);
    // Rejected events do not advance the event-time horizon.
    EXPECT_DOUBLE_EQ(svc.horizon(), 0.3);
}

TEST(ServeBackpressureTest, QueueDrainsEachEpochSoCapacityIsPerEpoch) {
    TrackingService svc(tiny_config(4, OverflowPolicy::reject));
    for (int epoch = 0; epoch < 3; ++epoch) {
        for (int i = 0; i < 4; ++i)
            svc.submit(
                adv_event(1, epoch * 1.0 + 0.1 * i, 7, -60.0));
        svc.run_epoch();
    }
    const IngestStats s = svc.stats();
    // 4 per epoch never overflows a capacity-4 queue that drains between.
    EXPECT_EQ(s.accepted, 12u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.epochs, 3u);
}

TEST(ServeBackpressureTest, PerClientBoundIsolatesNoisyNeighbor) {
    // Client 1 floods; client 2 trickles. Only the flooder overflows.
    auto cfg = tiny_config(8, OverflowPolicy::reject);
    TrackingService svc(cfg);
    for (int i = 0; i < 32; ++i)
        svc.submit(adv_event(1, 0.01 * i, 7, -60.0));
    for (int i = 0; i < 4; ++i)
        svc.submit(adv_event(2, 0.1 * i, 7, -62.0));

    const IngestStats s = svc.stats();
    EXPECT_EQ(s.rejected, 24u);     // all from client 1
    EXPECT_EQ(s.accepted, 8u + 4u);  // client 2 lost nothing
}

TEST(ServeBackpressureTest, LateEventsCountedButAccepted) {
    TrackingService svc(tiny_config(16, OverflowPolicy::drop_oldest));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.submit(adv_event(1, 0.5, 7, -61.0));  // goes backwards
    svc.submit(adv_event(1, 2.0, 7, -62.0));
    const IngestStats s = svc.stats();
    EXPECT_EQ(s.accepted, 3u);
    EXPECT_EQ(s.late, 1u);
    EXPECT_EQ(svc.horizon(), 2.0);
}

}  // namespace
}  // namespace locble::serve
