// Epoch flight recorder + health/status surface (ISSUE 7 tentpole tests):
// ring semantics, exact per-epoch IngestStats deltas, event-time staleness
// with hand-checkable timestamps, snapshot-row backfill, the versioned
// JSON dumps, the ok/degraded/overloaded classification, and byte-identity
// of the status "deterministic" object across shard counts.

#include "locble/serve/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "locble/serve/event.hpp"
#include "locble/serve/service.hpp"

namespace locble::serve {
namespace {

TrackingService::Config recorder_config(unsigned shards,
                                        std::size_t recorder_epochs) {
    TrackingService::Config cfg;
    cfg.shards = shards;
    cfg.threads = 1;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    cfg.shard.idle_timeout_s = 1e9;  // staleness tests keep sessions resident
    cfg.flight_recorder_epochs = recorder_epochs;
    // Toy fleets never converge to a fit; disable the no-fix trigger so the
    // tests exercise one classification axis at a time.
    cfg.status.degraded_no_fix_rate = 2.0;
    return cfg;
}

std::string deterministic_part(const std::string& status_json_text) {
    const std::size_t nd = status_json_text.find("\"nd\":");
    return status_json_text.substr(
        0, nd == std::string::npos ? status_json_text.size() : nd);
}

TEST(FlightRecorderTest, DisabledRecorderStaysEmptyAndStatusIsInert) {
    TrackingService svc(recorder_config(1, 0));
    EXPECT_FALSE(svc.flight_recorder().enabled());
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.run_epoch();
    svc.run_epoch();
    EXPECT_EQ(svc.flight_recorder().size(), 0u);
    EXPECT_EQ(svc.flight_recorder().epochs_recorded(), 0u);
    // status() with no history: zeroed, healthy, no crash.
    const ServiceStatus st = svc.status();
    EXPECT_EQ(st.window_epochs, 0u);
    EXPECT_EQ(st.health, ServiceHealth::ok);
}

TEST(FlightRecorderTest, RingKeepsTheNewestCapacityEpochs) {
    TrackingService svc(recorder_config(1, 4));
    for (int e = 1; e <= 7; ++e) {
        svc.submit(adv_event(1, 1.0 * e, 7, -60.0));
        svc.run_epoch();
    }
    const FlightRecorder& rec = svc.flight_recorder();
    EXPECT_EQ(rec.capacity(), 4u);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.epochs_recorded(), 7u);
    const auto records = rec.records();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records.front().epoch, 4u);  // oldest survivor
    EXPECT_EQ(records.back().epoch, 7u);
    ASSERT_NE(rec.latest(), nullptr);
    EXPECT_EQ(rec.latest()->epoch, 7u);
}

TEST(FlightRecorderTest, DeltasAreExactPerEpochIncrements) {
    TrackingService svc(recorder_config(1, 8));
    svc.submit(pose_event(1, 0.5, {1.0, 1.0}));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.run_epoch();
    svc.submit(adv_event(1, 2.0, 7, -61.0));
    svc.submit(adv_event(1, 2.5, 8, -62.0));
    svc.run_epoch();
    svc.run_epoch();  // empty epoch: all-zero delta

    const auto records = svc.flight_recorder().records();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].delta.submitted, 2u);
    EXPECT_EQ(records[0].delta.accepted, 2u);
    EXPECT_EQ(records[0].delta.clients_created, 1u);
    EXPECT_EQ(records[0].delta.sessions_created, 1u);
    EXPECT_EQ(records[1].delta.submitted, 2u);
    EXPECT_EQ(records[1].delta.sessions_created, 1u);  // beacon 8 is new
    EXPECT_EQ(records[1].delta.clients_created, 0u);
    EXPECT_EQ(records[2].delta.submitted, 0u);
    EXPECT_EQ(records[2].delta.accepted, 0u);
    // Deltas re-sum to the service totals.
    std::uint64_t total = 0;
    for (const auto& r : records) total += r.delta.submitted;
    EXPECT_EQ(total, svc.stats().submitted);
}

TEST(FlightRecorderTest, StalenessIsHorizonMinusLastEventTime) {
    TrackingService svc(recorder_config(1, 8));
    // Epoch 1: both sessions current at the horizon. (Each adv needs a
    // pose on its client to fuse into the session — an unpaired adv never
    // advances the session's last_event_t.)
    svc.submit(pose_event(1, 1.0, {1.0, 1.0}));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.submit(pose_event(2, 1.0, {2.0, 1.0}));
    svc.submit(adv_event(2, 1.0, 7, -61.0));
    svc.run_epoch();
    {
        const EpochRecord* r = svc.flight_recorder().latest();
        ASSERT_NE(r, nullptr);
        EXPECT_DOUBLE_EQ(r->horizon, 1.0);
        EXPECT_EQ(r->sessions_live, 2u);
        EXPECT_EQ(r->staleness_s.count(), 2u);
        EXPECT_DOUBLE_EQ(r->staleness_s.max(), 0.0);
    }
    // Epoch 2: client 2 advances the horizon to 9, client 1 stays at 1 —
    // its snapshot row is now exactly 8 s stale.
    svc.submit(pose_event(2, 9.0, {2.0, 2.0}));
    svc.submit(adv_event(2, 9.0, 7, -60.0));
    svc.run_epoch();
    {
        const EpochRecord* r = svc.flight_recorder().latest();
        ASSERT_NE(r, nullptr);
        EXPECT_DOUBLE_EQ(r->horizon, 9.0);
        EXPECT_EQ(r->staleness_s.count(), 2u);
        EXPECT_DOUBLE_EQ(r->staleness_s.max(), 8.0);
        // Sketch resolution is 0.5 s (upper 120, resolution 240): 8 s sits
        // on a bucket edge, so the p-quantiles land exactly.
        EXPECT_DOUBLE_EQ(r->staleness_s.quantile(1.0), 8.0);
        EXPECT_DOUBLE_EQ(r->staleness_s.quantile(0.5), 0.5);
    }
}

TEST(FlightRecorderTest, SnapshotRowsAreBackfilled) {
    TrackingService svc(recorder_config(2, 8));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.submit(adv_event(2, 1.0, 9, -61.0));
    svc.run_epoch();
    EXPECT_EQ(svc.flight_recorder().latest()->snapshot_rows, 0u);
    const auto snap = svc.snapshot();
    EXPECT_EQ(svc.flight_recorder().latest()->snapshot_rows,
              static_cast<std::uint64_t>(snap.estimates.size()));
    EXPECT_GT(snap.estimates.size(), 0u);
}

TEST(FlightRecorderTest, RecorderJsonIsVersionedAndStructured) {
    TrackingService svc(recorder_config(2, 4));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.run_epoch();
    const std::string json = svc.flight_recorder().to_json();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"capacity\":4"), std::string::npos);
    EXPECT_NE(json.find("\"epochs_recorded\":1"), std::string::npos);
    EXPECT_NE(json.find("\"records\":["), std::string::npos);
    EXPECT_NE(json.find("\"staleness_s\":{"), std::string::npos);
    // ND data is quarantined under its own key, one per record.
    EXPECT_NE(json.find("\"nd\":{\"wall_epoch_us\":"), std::string::npos);
    EXPECT_NE(json.find("\"shards\":["), std::string::npos);
}

TEST(ServiceStatusTest, HealthyFleetReportsOk) {
    TrackingService svc(recorder_config(1, 16));
    for (int e = 1; e <= 3; ++e) {
        svc.submit(pose_event(1, 1.0 * e, {1.0, 1.0}));
        svc.submit(adv_event(1, 1.0 * e, 7, -60.0));
        svc.submit(pose_event(2, 1.0 * e, {2.0, 1.0}));
        svc.submit(adv_event(2, 1.0 * e, 7, -61.0));
        svc.run_epoch();
    }
    const ServiceStatus st = svc.status();
    EXPECT_EQ(st.health, ServiceHealth::ok);
    EXPECT_EQ(st.window_epochs, 3u);
    EXPECT_EQ(st.sessions_live, 2u);
    EXPECT_DOUBLE_EQ(st.drop_rate, 0.0);
    EXPECT_DOUBLE_EQ(st.eviction_rate, 0.0);
    EXPECT_LT(st.staleness_p99_s, 1.0);
    EXPECT_EQ(std::string(health_name(st.health)), "ok");
}

TEST(ServiceStatusTest, StaleSessionsDegradeThenOverload) {
    // One session falls behind the horizon: 40 s stale -> degraded
    // (threshold 30), then 100 s stale -> overloaded (threshold 90).
    TrackingService svc(recorder_config(1, 16));
    svc.submit(pose_event(1, 1.0, {1.0, 1.0}));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.submit(pose_event(2, 1.0, {2.0, 1.0}));
    svc.submit(adv_event(2, 1.0, 7, -61.0));
    svc.run_epoch();
    EXPECT_EQ(svc.status().health, ServiceHealth::ok);

    svc.submit(pose_event(2, 41.0, {2.0, 2.0}));
    svc.submit(adv_event(2, 41.0, 7, -60.0));
    svc.run_epoch();
    EXPECT_EQ(svc.status().health, ServiceHealth::degraded);
    EXPECT_DOUBLE_EQ(svc.status().staleness_p99_s, 40.0);

    svc.submit(pose_event(2, 101.0, {2.0, 3.0}));
    svc.submit(adv_event(2, 101.0, 7, -60.0));
    svc.run_epoch();
    EXPECT_EQ(svc.status().health, ServiceHealth::overloaded);
}

TEST(ServiceStatusTest, HeavyDropsClassifyAsOverloaded) {
    auto cfg = recorder_config(1, 16);
    cfg.shard.queue_capacity = 4;
    TrackingService svc(cfg);
    for (int i = 0; i < 100; ++i)
        svc.submit(adv_event(1, 0.1 * (i + 1), 7, -60.0));
    svc.run_epoch();
    const ServiceStatus st = svc.status();
    EXPECT_EQ(st.window_submitted, 100u);
    EXPECT_EQ(st.window_dropped, 96u);
    EXPECT_DOUBLE_EQ(st.drop_rate, 0.96);
    EXPECT_EQ(st.health, ServiceHealth::overloaded);
}

TEST(ServiceStatusTest, ThresholdsAreConfigurable) {
    auto cfg = recorder_config(1, 16);
    cfg.status.degraded_staleness_p99_s = 0.25;  // hair trigger
    TrackingService svc(cfg);
    svc.submit(pose_event(1, 1.0, {1.0, 1.0}));
    svc.submit(adv_event(1, 1.0, 7, -60.0));
    svc.run_epoch();
    svc.submit(pose_event(2, 2.0, {2.0, 1.0}));
    svc.submit(adv_event(2, 2.0, 7, -61.0));
    svc.run_epoch();  // session 1 now 1 s stale >= 0.25
    EXPECT_EQ(svc.status().health, ServiceHealth::degraded);
}

TEST(ServiceStatusTest, StatusJsonDeterministicAcrossShardCounts) {
    const auto run = [](unsigned shards) {
        TrackingService svc(recorder_config(shards, 16));
        for (int e = 1; e <= 4; ++e) {
            for (int c = 1; c <= 9; ++c) {
                svc.submit(pose_event(static_cast<ClientId>(c),
                                      1.0 * e - 0.5, {0.5 * c, 1.0}));
                svc.submit(adv_event(static_cast<ClientId>(c), 1.0 * e,
                                     (c % 3) + 1, -60.0 - c));
            }
            svc.run_epoch();
        }
        return status_json(svc.status());
    };
    const std::string s1 = run(1);
    const std::string s8 = run(8);
    EXPECT_NE(s1.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(s1.find("\"deterministic\":{"), std::string::npos);
    EXPECT_NE(s1.find("\"nd\":{"), std::string::npos);
    // The deterministic object (and everything before "nd") is
    // byte-identical whatever the shard count.
    EXPECT_EQ(deterministic_part(s1), deterministic_part(s8));
    EXPECT_NE(deterministic_part(s1).find("\"health\":"), std::string::npos);
}

TEST(ServiceStatusTest, StatusWindowIsBoundedByConfigAndHistory) {
    auto cfg = recorder_config(1, 32);
    cfg.status_window_epochs = 4;
    TrackingService svc(cfg);
    for (int e = 1; e <= 10; ++e) {
        svc.submit(adv_event(1, 1.0 * e, 7, -60.0));
        svc.run_epoch();
    }
    const ServiceStatus st = svc.status();
    EXPECT_EQ(st.epoch, 10u);
    EXPECT_EQ(st.window_epochs, 4u);
    EXPECT_EQ(st.window_submitted, 4u);  // one event per epoch in-window
}

}  // namespace
}  // namespace locble::serve
