#include "locble/serve/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "locble/obs/metrics.hpp"
#include "locble/obs/obs.hpp"
#include "locble/serve/event.hpp"
#include "locble/sim/multi_client.hpp"

namespace locble::serve {
namespace {

TrackingService::Config service_config(unsigned shards, unsigned threads) {
    TrackingService::Config cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    // The production fast path. Sessions see identical event sequences in
    // every sharding, so even its warm-start state evolves identically —
    // the invariance under test holds bit-for-bit in either search mode,
    // and this one keeps the 64-client sweep fast.
    cfg.shard.session.pipeline.solver.search_mode =
        core::LocationSolver::SearchMode::coarse_to_fine;
    cfg.shard.queue_capacity = 4096;
    return cfg;
}

/// Canonical text of the deterministic obs metrics (the _ND metrics are
/// scheduling-dependent by declaration and excluded from the contract).
std::string obs_canonical_text() {
    std::string out;
    for (const auto& m : obs::Registry::global().snapshot()) {
        if (!m.deterministic) continue;
        out += m.name + " count=" + std::to_string(m.count);
        for (const std::uint64_t b : m.buckets)
            out += " " + std::to_string(b);
        out += "\n";
    }
    return out;
}

/// Drive one full service run over the workload, snapshotting after every
/// epoch; returns the concatenated canonical snapshot stream.
std::string run_service(const sim::MultiClientWorkload& wl, unsigned shards,
                        unsigned threads, double epoch_s) {
    TrackingService svc(service_config(shards, threads));
    std::string stream;
    std::size_t i = 0;
    for (double edge = epoch_s; i < wl.events.size(); edge += epoch_s) {
        while (i < wl.events.size() && wl.events[i].t <= edge)
            svc.submit(wl.events[i++]);
        svc.run_epoch();
        stream += canonical_text(svc.snapshot());
    }
    // One final epoch past the idle timeout exercises eviction too.
    svc.run_epoch();
    stream += canonical_text(svc.snapshot());
    return stream;
}

/// The tentpole's acceptance property: 1 shard on 1 thread and 8 shards on
/// 8 threads must produce byte-identical snapshot streams and identical
/// deterministic obs metrics, across seeds, with clients interleaved.
TEST(ServeDeterminismTest, ShardAndThreadCountAreInvisible) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 64;
    wcfg.beacons = 8;
    obs::Registry& reg = obs::Registry::global();

    for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
        const auto wl = sim::make_multi_client_workload(wcfg, seed);
        ASSERT_GT(wl.events.size(), 1000u);

        reg.reset();
        reg.set_enabled(true);
        const std::string serial = run_service(wl, 1, 1, 4.0);
        const std::string serial_obs = obs_canonical_text();

        reg.reset();
        const std::string sharded = run_service(wl, 8, 8, 4.0);
        const std::string sharded_obs = obs_canonical_text();
        reg.set_enabled(false);

        ASSERT_FALSE(serial.empty());
        // Byte-identical snapshot streams: every estimate, every stat,
        // every epoch.
        EXPECT_EQ(serial, sharded) << "seed " << seed;
        // Order-invariant obs merge: deterministic counters/histograms
        // match exactly too.
        EXPECT_EQ(serial_obs, sharded_obs) << "seed " << seed;
    }
}

/// Intermediate shard counts sit on the same canonical stream (spot-check
/// with one seed — the property is shard-count-invariance, not just the
/// two extremes).
TEST(ServeDeterminismTest, IntermediateShardCountsAgree) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 24;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 5);
    const std::string base = run_service(wl, 1, 1, 4.0);
    EXPECT_EQ(base, run_service(wl, 2, 1, 4.0));
    EXPECT_EQ(base, run_service(wl, 3, 2, 4.0));
    EXPECT_EQ(base, run_service(wl, 5, 4, 4.0));
}

/// Overflow decisions are per-client, so even a saturated service drops
/// the exact same events whatever the shard count.
TEST(ServeDeterminismTest, BackpressureIsShardCountInvariant) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 16;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 9);

    for (const OverflowPolicy policy :
         {OverflowPolicy::drop_oldest, OverflowPolicy::reject}) {
        std::string streams[2];
        std::uint64_t overflowed[2] = {0, 0};
        int k = 0;
        for (const unsigned shards : {1u, 8u}) {
            auto cfg = service_config(shards, shards == 1 ? 1u : 4u);
            cfg.shard.queue_capacity = 48;  // force overflow
            cfg.shard.overflow = policy;
            TrackingService svc(cfg);
            std::size_t i = 0;
            for (double edge = 8.0; i < wl.events.size(); edge += 8.0) {
                while (i < wl.events.size() && wl.events[i].t <= edge)
                    svc.submit(wl.events[i++]);
                svc.run_epoch();
                streams[k] += canonical_text(svc.snapshot());
            }
            const IngestStats fin = svc.stats();
            overflowed[k] = policy == OverflowPolicy::drop_oldest ? fin.dropped
                                                                  : fin.rejected;
            ++k;
        }
        EXPECT_GT(overflowed[0], 0u);  // the workload really saturated
        EXPECT_EQ(overflowed[0], overflowed[1]);
        EXPECT_EQ(streams[0], streams[1]);
    }
}

}  // namespace
}  // namespace locble::serve
