// Properties of the pipelined epoch loop: overlapped ingest is invisible
// (byte-identical snapshot streams vs. the phase-separated schedule),
// incremental snapshots reconstruct the full view, the rendezvous shard
// assignment is suffix-stable, and resharding mid-run never perturbs the
// canonical stream. docs/SERVING.md states each contract; these tests are
// the enforcement.
#include "locble/serve/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "locble/serve/event.hpp"
#include "locble/sim/multi_client.hpp"

namespace locble::serve {
namespace {

TrackingService::Config service_config(unsigned shards, unsigned threads) {
    TrackingService::Config cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    cfg.shard.session.pipeline.solver.search_mode =
        core::LocationSolver::SearchMode::coarse_to_fine;
    cfg.shard.queue_capacity = 4096;
    return cfg;
}

/// Slice the workload into per-epoch submission batches at `epoch_s` edges
/// (the slicing the determinism suite's phased driver uses). Batches may be
/// empty — an epoch still runs on an empty interval.
std::vector<std::vector<Event>> chunk_by_epoch(
    const sim::MultiClientWorkload& wl, double epoch_s) {
    std::vector<std::vector<Event>> batches;
    std::size_t i = 0;
    for (double edge = epoch_s; i < wl.events.size(); edge += epoch_s) {
        std::vector<Event> b;
        while (i < wl.events.size() && wl.events[i].t <= edge)
            b.push_back(wl.events[i++]);
        batches.push_back(std::move(b));
    }
    return batches;
}

/// Phase-separated reference schedule: submit batch k, run epoch k to the
/// barrier, snapshot — ingest never overlaps execution.
std::string run_phased(const TrackingService::Config& cfg,
                       const std::vector<std::vector<Event>>& batches) {
    TrackingService svc(cfg);
    std::string stream;
    for (const auto& batch : batches) {
        svc.submit(batch);
        svc.run_epoch();
        stream += canonical_text(svc.snapshot());
    }
    svc.run_epoch();  // final epoch past the idle timeout: eviction too
    stream += canonical_text(svc.snapshot());
    return stream;
}

/// Pipelined schedule: batch k+1 is submitted *while epoch k is in flight*.
/// The phased-equivalence contract says this must be invisible.
std::string run_overlapped(const TrackingService::Config& cfg,
                           const std::vector<std::vector<Event>>& batches) {
    TrackingService svc(cfg);
    std::string stream;
    if (!batches.empty()) svc.submit(batches.front());
    for (std::size_t k = 0; k < batches.size(); ++k) {
        svc.begin_epoch();
        if (k + 1 < batches.size()) {
            // With more than one worker thread the epoch really is running
            // right now; with one it already completed inline — either way
            // these events land in the next epoch's buffers.
            if (svc.threads() > 1) {
                EXPECT_TRUE(svc.epoch_in_flight());
            }
            svc.submit(batches[k + 1]);
        }
        svc.end_epoch();
        stream += canonical_text(svc.snapshot());
    }
    svc.run_epoch();
    stream += canonical_text(svc.snapshot());
    return stream;
}

/// The tentpole acceptance property: overlapping ingest with epoch
/// execution produces the byte-identical snapshot stream of the phased
/// schedule, across shard/thread combinations.
TEST(ServePipelineTest, OverlappedIngestMatchesPhasedByteForByte) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 24;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 17);
    const auto batches = chunk_by_epoch(wl, 4.0);
    ASSERT_GT(batches.size(), 3u);

    const std::string phased = run_phased(service_config(1, 1), batches);
    ASSERT_FALSE(phased.empty());
    EXPECT_EQ(phased, run_overlapped(service_config(1, 1), batches));
    EXPECT_EQ(phased, run_overlapped(service_config(4, 2), batches));
    EXPECT_EQ(phased, run_overlapped(service_config(8, 8), batches));
}

/// Backpressure accounting survives the overlap too: a saturated service
/// drops the exact same events whether ingest was overlapped or phased.
TEST(ServePipelineTest, OverflowUnderOverlapIsInvisible) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 16;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 9);
    const auto batches = chunk_by_epoch(wl, 8.0);

    for (const OverflowPolicy policy :
         {OverflowPolicy::drop_oldest, OverflowPolicy::reject}) {
        auto cfg = service_config(1, 1);
        cfg.shard.queue_capacity = 48;  // force overflow
        cfg.shard.overflow = policy;
        const std::string phased = run_phased(cfg, batches);
        auto ovl = service_config(4, 4);
        ovl.shard.queue_capacity = 48;
        ovl.shard.overflow = policy;
        EXPECT_EQ(phased, run_overlapped(ovl, batches));
    }
}

/// Incremental snapshots reconstruct the full view: applying each epoch's
/// delta rows over a running map must reproduce the full snapshot exactly
/// (no evictions in this workload — evicted sessions are the documented
/// staleness caveat, exercised separately below).
TEST(ServePipelineTest, IncrementalSnapshotsReconstructTheFullView) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 16;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 7);
    const auto batches = chunk_by_epoch(wl, 4.0);

    auto cfg = service_config(3, 2);
    cfg.shard.idle_timeout_s = 1e9;  // no evictions: reconstruction is exact
    TrackingService full_svc(cfg);
    TrackingService inc_svc(cfg);

    std::map<std::pair<ClientId, BeaconId>, BeaconEstimate> view;
    std::size_t delta_rows = 0;
    for (const auto& batch : batches) {
        full_svc.submit(batch);
        inc_svc.submit(batch);
        full_svc.run_epoch();
        inc_svc.run_epoch();

        ServiceSnapshot full = full_svc.snapshot(SnapshotMode::full);
        const ServiceSnapshot delta = inc_svc.snapshot(SnapshotMode::incremental);
        EXPECT_TRUE(delta.incremental);
        EXPECT_FALSE(full.incremental);
        EXPECT_EQ(delta.sessions_live, full.sessions_live);
        EXPECT_LE(delta.estimates.size(), full.estimates.size());
        delta_rows += delta.estimates.size();

        for (const BeaconEstimate& e : delta.estimates)
            view[{e.client, e.beacon}] = e;

        // Rebuild a full snapshot from the accumulated deltas and compare
        // canonically (borrowing full's header so only the rows differ).
        ServiceSnapshot rebuilt = full;
        rebuilt.estimates.clear();
        for (const auto& [key, e] : view) rebuilt.estimates.push_back(e);
        EXPECT_EQ(canonical_text(full), canonical_text(rebuilt));
    }
    // The whole point: the deltas carried fewer rows than re-reading the
    // fleet every epoch would have.
    EXPECT_GT(delta_rows, 0u);

    // A quiet epoch dirties nothing, so the next delta is empty …
    inc_svc.run_epoch();
    EXPECT_TRUE(inc_svc.snapshot(SnapshotMode::incremental).estimates.empty());
    // … and a full snapshot resets the baseline: the delta right after it
    // is empty too.
    full_svc.run_epoch();
    full_svc.snapshot(SnapshotMode::full);
    EXPECT_TRUE(full_svc.snapshot(SnapshotMode::incremental).estimates.empty());
}

/// The documented staleness caveat: an evicted session simply stops
/// appearing in deltas (no tombstones) — consumers detect disappearance
/// via sessions_live or a periodic full snapshot.
TEST(ServePipelineTest, EvictionEmitsNoTombstoneRows) {
    auto cfg = service_config(2, 1);
    cfg.shard.idle_timeout_s = 5.0;
    TrackingService svc(cfg);

    std::vector<Event> events;
    events.push_back(pose_event(100, 0.0, {0.0, 0.0}));
    events.push_back(adv_event(100, 0.5, 7, -60.0));
    events.push_back(adv_event(100, 1.0, 7, -61.0));
    svc.submit(events);
    svc.run_epoch();
    EXPECT_EQ(svc.snapshot(SnapshotMode::incremental).estimates.size(), 1u);
    EXPECT_EQ(svc.stats().sessions_evicted, 0u);

    // Another client far in the future pushes the horizon past the idle
    // timeout; client 100 is evicted at the next swap.
    svc.submit(pose_event(200, 30.0, {1.0, 1.0}));
    svc.run_epoch();
    const ServiceSnapshot delta = svc.snapshot(SnapshotMode::incremental);
    EXPECT_EQ(svc.stats().clients_evicted, 1u);
    for (const BeaconEstimate& e : delta.estimates)
        EXPECT_NE(e.client, 100u);  // no tombstone row for the evicted client
    EXPECT_EQ(delta.sessions_live, 0u);  // client 200 has poses, no sessions
}

/// Rendezvous hashing's defining property, relied on by resize_shards():
/// growing the fleet from n to n+1 shards only ever moves a client *to the
/// new shard* — every client that stays is untouched.
TEST(ServePipelineTest, RendezvousAssignmentIsSuffixStable) {
    for (std::uint32_t n = 1; n <= 16; ++n) {
        for (std::uint64_t c = 0; c < 512; ++c) {
            const ClientId client = c * 0x9e3779b97f4a7c15ull + c;
            const std::uint32_t before = shard_of(client, n);
            const std::uint32_t after = shard_of(client, n + 1);
            ASSERT_LT(before, n);
            ASSERT_LT(after, n + 1);
            EXPECT_TRUE(after == before || after == n)
                << "client " << client << " moved " << before << " -> "
                << after << " when growing " << n << " -> " << n + 1;
        }
    }
    // Balance sanity: every shard of 8 owns a decent share of 4096 clients.
    std::vector<std::size_t> counts(8, 0);
    for (std::uint64_t c = 0; c < 4096; ++c) ++counts[shard_of(c, 8)];
    for (const std::size_t n : counts) {
        EXPECT_GT(n, 4096u / 16);  // no shard below half the fair share
        EXPECT_LT(n, 4096u / 4);   // none above twice the fair share
    }
}

/// Resizing the shard fleet between epochs — growing and shrinking — never
/// perturbs the canonical snapshot stream.
TEST(ServePipelineTest, ResizingShardsMidRunIsInvisible) {
    sim::MultiClientConfig wcfg;
    wcfg.clients = 24;
    wcfg.beacons = 4;
    const auto wl = sim::make_multi_client_workload(wcfg, 5);
    const auto batches = chunk_by_epoch(wl, 4.0);
    const std::string base = run_phased(service_config(1, 1), batches);

    const unsigned plan[] = {2u, 5u, 3u, 1u, 4u, 8u};
    TrackingService svc(service_config(2, 2));
    std::string stream;
    std::size_t k = 0;
    for (const auto& batch : batches) {
        svc.submit(batch);
        svc.run_epoch();
        stream += canonical_text(svc.snapshot());
        svc.resize_shards(plan[k++ % (sizeof(plan) / sizeof(plan[0]))]);
    }
    svc.run_epoch();
    stream += canonical_text(svc.snapshot());
    EXPECT_EQ(base, stream);
}

/// Driver-side misuse is rejected loudly: everything that reads or
/// restructures worker-side state throws while an epoch is in flight.
TEST(ServePipelineTest, InFlightEpochGuardsDriverSideReads) {
    TrackingService svc(service_config(4, 4));
    svc.submit(pose_event(1, 0.0, {0.0, 0.0}));
    svc.submit(adv_event(1, 0.5, 2, -60.0));
    svc.begin_epoch();
    ASSERT_TRUE(svc.epoch_in_flight());
    EXPECT_THROW(svc.snapshot(), std::logic_error);
    EXPECT_THROW(svc.stats(), std::logic_error);
    EXPECT_THROW(svc.resize_shards(2), std::logic_error);
    EXPECT_THROW(svc.begin_epoch(), std::logic_error);
    svc.submit(adv_event(1, 0.6, 2, -61.0));  // ingest stays legal
    svc.end_epoch();
    EXPECT_FALSE(svc.epoch_in_flight());
    svc.end_epoch();  // idempotent
    EXPECT_EQ(svc.snapshot().epoch, 1u);
    EXPECT_EQ(svc.stats().accepted, 3u);
}

}  // namespace
}  // namespace locble::serve
