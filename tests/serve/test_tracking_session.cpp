#include "locble/serve/tracking_session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "locble/common/rng.hpp"
#include "locble/core/envaware.hpp"

namespace locble::serve {
namespace {

/// Streaming config with the randomized stages off: exact synthetic RSS in,
/// deterministic fit out.
TrackingSession::Config clean_config() {
    TrackingSession::Config cfg;
    cfg.pipeline.use_anf = false;
    cfg.pipeline.use_envaware = false;
    cfg.pipeline.gamma_prior_dbm = -59.0;
    return cfg;
}

/// Feed a synthetic stationary-beacon walk: observer moves along +x at
/// 1 m/s for `seconds`, beacon at `target` (observer frame), log-distance
/// RSS with optional Gaussian noise.
void feed_walk(TrackingSession& s, const locble::Vec2& target, double seconds,
               double noise_db, std::uint64_t seed) {
    locble::Rng rng(seed);
    for (double t = 0.0; t <= seconds; t += 0.1) {
        const locble::Vec2 obs{t * 1.0, 0.0};
        const double dist =
            std::max(locble::Vec2::distance(target, obs), 0.1);
        const double rssi = -59.0 - 10.0 * 2.0 * std::log10(dist) +
                            (noise_db > 0 ? rng.gaussian(0.0, noise_db) : 0.0);
        // FusedSample convention (core/pipeline.cpp): (p, q) is the
        // *negated* observer position; the solver's fit comes out in the
        // observer frame.
        s.on_adv(t, rssi, -obs.x, -obs.y);
    }
}

TEST(TrackingSessionTest, RecoversStationaryBeaconFromStream) {
    TrackingSession s(clean_config(), nullptr);
    feed_walk(s, {5.0, 2.0}, 8.0, 0.0, 1);
    s.finish_epoch(9.0);
    ASSERT_TRUE(s.has_fit());
    EXPECT_NEAR(s.fit().location.x, 5.0, 0.5);
    EXPECT_NEAR(std::abs(s.fit().location.y), 2.0, 0.7);
    EXPECT_GT(s.samples_used(), 0u);
    EXPECT_EQ(s.samples_seen(), 81u);
}

TEST(TrackingSessionTest, EpochSplitIsInvisible) {
    // Deferred warm-started solves: splitting the same stream across many
    // epochs must land on the exact same fit as one big epoch (the solver
    // session contract: exhaustive warm solve == cold solve).
    TrackingSession one(clean_config(), nullptr);
    feed_walk(one, {4.0, 1.5}, 8.0, 1.0, 7);
    one.finish_epoch(9.0);

    TrackingSession split(clean_config(), nullptr);
    locble::Rng rng(7);
    for (double t = 0.0; t <= 8.0; t += 0.1) {
        const locble::Vec2 obs{t, 0.0};
        const double dist = std::max(locble::Vec2::distance({4.0, 1.5}, obs), 0.1);
        const double rssi =
            -59.0 - 20.0 * std::log10(dist) + rng.gaussian(0.0, 1.0);
        split.on_adv(t, rssi, -obs.x, -obs.y);
        // An epoch boundary after every single event — worst case.
        split.finish_epoch(t);
    }
    split.finish_epoch(9.0);

    ASSERT_TRUE(one.has_fit());
    ASSERT_TRUE(split.has_fit());
    EXPECT_EQ(one.fit().location.x, split.fit().location.x);
    EXPECT_EQ(one.fit().location.y, split.fit().location.y);
    EXPECT_EQ(one.fit().exponent, split.fit().exponent);
    EXPECT_EQ(one.fit().gamma_dbm, split.fit().gamma_dbm);
    EXPECT_EQ(one.samples_used(), split.samples_used());
}

TEST(TrackingSessionTest, SolvePerFlushMatchesDeferredFinalFit) {
    auto cfg = clean_config();
    TrackingSession deferred(cfg, nullptr);
    cfg.solve_per_flush = true;
    TrackingSession eager(cfg, nullptr);
    feed_walk(deferred, {5.0, 2.0}, 8.0, 1.0, 3);
    feed_walk(eager, {5.0, 2.0}, 8.0, 1.0, 3);
    deferred.finish_epoch(9.0);
    eager.finish_epoch(9.0);
    ASSERT_TRUE(deferred.has_fit());
    ASSERT_TRUE(eager.has_fit());
    // Same samples, same final solve — the cadence changes cost, not state.
    EXPECT_EQ(deferred.fit().location.x, eager.fit().location.x);
    EXPECT_EQ(deferred.fit().location.y, eager.fit().location.y);
}

TEST(TrackingSessionTest, PoseLagTracksAnfGroupDelay) {
    auto cfg = clean_config();
    EXPECT_EQ(TrackingSession(cfg, nullptr).pose_lag_s(), 0.0);
    cfg.pipeline.use_anf = true;
    const TrackingSession with_anf(cfg, nullptr);
    EXPECT_GT(with_anf.pose_lag_s(), 0.0);
}

TEST(TrackingSessionTest, MaxSessionSamplesBoundsAndResets) {
    auto cfg = clean_config();
    cfg.max_session_samples = 30;
    IngestStats stats;
    TrackingSession s(cfg, nullptr, &stats);
    feed_walk(s, {5.0, 2.0}, 8.0, 0.0, 1);  // 81 samples
    s.finish_epoch(9.0);
    EXPECT_GE(s.resets(), 1);
    EXPECT_LE(s.samples_used(), 30u);
    EXPECT_EQ(stats.sessions_reset, static_cast<std::uint64_t>(s.resets()));
    EXPECT_TRUE(s.has_fit());  // still produces an estimate after resets
}

TEST(TrackingSessionTest, EnvAwareRequiredWhenEnabled) {
    auto cfg = clean_config();
    cfg.pipeline.use_envaware = true;
    EXPECT_THROW(TrackingSession(cfg, nullptr), std::invalid_argument);
    const core::EnvAware untrained;
    EXPECT_THROW(TrackingSession(cfg, &untrained), std::invalid_argument);
}

TEST(TrackingSessionTest, EpochChangeFlagLatchesUntilTaken) {
    TrackingSession s(clean_config(), nullptr);
    EXPECT_FALSE(s.take_epoch_changed());
    feed_walk(s, {5.0, 2.0}, 8.0, 0.0, 1);
    s.finish_epoch(9.0);
    EXPECT_TRUE(s.take_epoch_changed());
    EXPECT_FALSE(s.take_epoch_changed());  // consumed
    s.finish_epoch(10.0);                  // nothing new arrived
    EXPECT_FALSE(s.take_epoch_changed());
}

}  // namespace
}  // namespace locble::serve
