// IngestStats <-> obs coherence property (ISSUE 7 satellite): the merged
// IngestStats totals and the serve.* registry counters are two views of
// the same accounting, and they must agree EXACTLY — for any shard count,
// with evictions running, and with forced queue overflow. IngestStats is
// the API of record (works in LOCBLE_OBS=OFF builds); the obs counters are
// the exported copy. A drift between them means a path bumped one ledger
// and not the other.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "locble/common/rng.hpp"
#include "locble/obs/metrics.hpp"
#include "locble/obs/obs.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/service.hpp"

namespace locble::serve {
namespace {

/// A messy fleet: staggered clients, out-of-order timestamps (late events),
/// bursts against a bounded queue, and gaps long enough to trip idle
/// eviction. Pure function of `seed`.
std::vector<Event> make_workload(std::uint64_t seed) {
    locble::Rng rng(seed);
    std::vector<Event> events;
    for (int c = 1; c <= 12; ++c) {
        const auto client = static_cast<ClientId>(c);
        double t = 0.1 * c;
        // Half the fleet stops early, then the timeline keeps advancing
        // via the other half — idle eviction fires on the quiet cohort.
        const double stop = (c % 2 == 0) ? 6.0 : 60.0;
        while (t < stop) {
            t += rng.uniform(0.02, 0.4);
            if (rng.uniform(0.0, 1.0) < 0.25) {
                events.push_back(pose_event(client, t, {rng.uniform(0.0, 8.0),
                                                        rng.uniform(0.0, 8.0)}));
            } else {
                const auto beacon =
                    static_cast<std::uint64_t>(rng.uniform_int(1, 3));
                events.push_back(
                    adv_event(client, t, beacon, rng.uniform(-75.0, -55.0)));
            }
            // Occasional regression within the client stream: counted late.
            if (rng.uniform(0.0, 1.0) < 0.05)
                events.push_back(
                    adv_event(client, t - 1.0, 1, rng.uniform(-75.0, -55.0)));
        }
    }
    return events;
}

TrackingService::Config coherence_config(unsigned shards, std::size_t capacity) {
    TrackingService::Config cfg;
    cfg.shards = shards;
    cfg.threads = 1;
    cfg.shard.session.pipeline.use_envaware = false;
    cfg.shard.session.pipeline.gamma_prior_dbm = -59.0;
    cfg.shard.queue_capacity = capacity;
    cfg.shard.idle_timeout_s = 10.0;  // the quiet cohort gets evicted
    return cfg;
}

/// Run the workload in 2 s epoch slices; returns the merged totals.
IngestStats run_workload(const std::vector<Event>& events,
                         const TrackingService::Config& cfg) {
    TrackingService svc(cfg);
    std::size_t i = 0;
    for (double edge = 2.0; i < events.size(); edge += 2.0) {
        while (i < events.size() && events[i].t <= edge) svc.submit(events[i++]);
        svc.run_epoch();
    }
    svc.run_epoch();  // one trailing empty epoch (eviction sweep)
    (void)svc.snapshot();
    return svc.stats();
}

#if LOCBLE_OBS
std::map<std::string, std::uint64_t> obs_counters() {
    std::map<std::string, std::uint64_t> out;
    for (const auto& m : obs::Registry::global().snapshot())
        if (m.kind == obs::MetricKind::counter) out[m.name] = m.count;
    return out;
}

/// Every IngestStats field with an obs twin, as (counter name, total).
std::vector<std::pair<std::string, std::uint64_t>> expected_pairs(
    const IngestStats& s) {
    return {
        {"serve.epochs", s.epochs},
        {"serve.ingest.accepted", s.accepted},
        {"serve.ingest.dropped", s.dropped},
        {"serve.ingest.rejected", s.rejected},
        {"serve.ingest.late", s.late},
        {"serve.clients.created", s.clients_created},
        {"serve.clients.evicted", s.clients_evicted},
        {"serve.sessions.created", s.sessions_created},
        {"serve.sessions.evicted", s.sessions_evicted},
        {"serve.sessions.reset", s.sessions_reset},
        {"serve.batches", s.batches_flushed},
        {"serve.solves", s.solves},
        {"serve.cluster.runs", s.cluster_runs},
    };
}
#endif

void check_coherence(unsigned shards, std::size_t capacity,
                     OverflowPolicy policy) {
    const auto events = make_workload(991);
    auto cfg = coherence_config(shards, capacity);
    cfg.shard.overflow = policy;

#if LOCBLE_OBS
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    reg.set_enabled(true);
#endif
    const IngestStats s = run_workload(events, cfg);
#if LOCBLE_OBS
    reg.set_enabled(false);
    const auto counters = obs_counters();
#endif

    // The ledger's internal identity holds regardless of build flavor.
    // Every submitted event is either admitted or rejected at the door;
    // `late` overlaps accepted (late events are still admitted) and
    // `dropped` counts drop_oldest evictions of already-accepted events.
    EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(events.size()));
    EXPECT_EQ(s.submitted, s.accepted + s.rejected);
    EXPECT_LE(s.dropped, s.accepted);
    EXPECT_LE(s.late, s.submitted);

#if LOCBLE_OBS
    for (const auto& [name, total] : expected_pairs(s)) {
        const auto it = counters.find(name);
        if (it == counters.end()) {
            // A never-bumped counter is simply unregistered; its total
            // must then be zero.
            EXPECT_EQ(total, 0u) << name << " missing with nonzero total";
        } else {
            EXPECT_EQ(it->second, total) << name << " disagrees at " << shards
                                         << " shards";
        }
    }
#endif

    // The workload exercised what it claims to exercise.
    EXPECT_GT(s.solves, 0u);
    EXPECT_GT(s.late, 0u);
    EXPECT_GT(s.sessions_evicted, 0u);
    if (capacity <= 8) {
        EXPECT_GT(s.dropped + s.rejected, 0u);
    }
}

TEST(ServeObsCoherenceTest, CountersMatchStatsAtEveryShardCount) {
    for (const unsigned shards : {1u, 2u, 8u})
        check_coherence(shards, 1 << 12, OverflowPolicy::drop_oldest);
}

TEST(ServeObsCoherenceTest, CountersMatchStatsUnderForcedOverflow) {
    check_coherence(1, 8, OverflowPolicy::drop_oldest);
    check_coherence(4, 8, OverflowPolicy::reject);
}

TEST(ServeObsCoherenceTest, MergedTotalsAreShardCountInvariant) {
    const auto events = make_workload(991);
    std::vector<IngestStats> runs;
    for (const unsigned shards : {1u, 2u, 8u})
        runs.push_back(
            run_workload(events, coherence_config(shards, 1 << 12)));
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].accepted, runs[0].accepted);
        EXPECT_EQ(runs[i].late, runs[0].late);
        EXPECT_EQ(runs[i].clients_created, runs[0].clients_created);
        EXPECT_EQ(runs[i].clients_evicted, runs[0].clients_evicted);
        EXPECT_EQ(runs[i].sessions_created, runs[0].sessions_created);
        EXPECT_EQ(runs[i].sessions_evicted, runs[0].sessions_evicted);
        EXPECT_EQ(runs[i].batches_flushed, runs[0].batches_flushed);
        EXPECT_EQ(runs[i].solves, runs[0].solves);
        EXPECT_EQ(runs[i].cluster_runs, runs[0].cluster_runs);
    }
}

}  // namespace
}  // namespace locble::serve
