// ThreadPool stress tests aimed at ThreadSanitizer (tools/san, ISSUE 4).
//
// The determinism contract (parallel == serial bit-for-bit) is only worth
// anything if the scheduler underneath is race-free; these tests create the
// interleavings TSan needs to observe to prove that — concurrent submitters,
// shutdown racing a full queue, task exceptions, and rapid pool churn. They
// assert functional results too, so they are useful (if less interesting)
// under plain builds.

#include "locble/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace locble::runtime {
namespace {

TEST(ThreadPoolStressTest, ManyTasksFromManySubmitters) {
    ThreadPool pool(8);
    constexpr int kSubmitters = 4;
    constexpr int kTasksPer = 250;

    std::atomic<std::int64_t> sum{0};
    std::vector<std::future<void>> futures[kSubmitters];
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            futures[s].reserve(kTasksPer);
            for (int i = 0; i < kTasksPer; ++i)
                futures[s].push_back(
                    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
        });
    }
    for (auto& t : submitters) t.join();
    for (auto& per_thread : futures)
        for (auto& f : per_thread) f.get();

    const std::int64_t per_submitter = kTasksPer * (kTasksPer - 1) / 2;
    EXPECT_EQ(sum.load(), kSubmitters * per_submitter);
}

TEST(ThreadPoolStressTest, DestructionDrainsQueuedTasks) {
    // Destroying the pool while the queue is still deep must run every
    // queued task exactly once before joining (shutdown never drops work).
    std::atomic<int> ran{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 500; ++i)
            pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        // ~pool runs here, racing the workers against a mostly-full queue.
    }
    EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPoolStressTest, RapidPoolChurn) {
    // Construction/teardown cycles stress worker startup racing shutdown —
    // a classic source of missed-wakeup and use-after-join bugs.
    std::atomic<int> ran{0};
    for (int cycle = 0; cycle < 20; ++cycle) {
        ThreadPool pool(3);
        std::vector<std::future<void>> futures;
        futures.reserve(10);
        for (int i = 0; i < 10; ++i)
            futures.push_back(
                pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
        for (auto& f : futures) f.get();
    }
    EXPECT_EQ(ran.load(), 20 * 10);
}

TEST(ThreadPoolStressTest, TaskExceptionsLandInFuturesUnderLoad) {
    ThreadPool pool(8);
    constexpr int kTasks = 300;
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    std::atomic<int> ok_ran{0};
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([&ok_ran, i] {
            if (i % 7 == 0) throw std::runtime_error("trial failed");
            ok_ran.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    int threw = 0;
    for (auto& f : futures) {
        try {
            f.get();
        } catch (const std::runtime_error&) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, (kTasks + 6) / 7);
    EXPECT_EQ(ok_ran.load(), kTasks - threw);
}

TEST(ThreadPoolStressTest, OversubscribedPoolMakesProgress) {
    // More workers than cores (this container has 1) forces heavy
    // contention on the single queue mutex and condition variable.
    ThreadPool pool(16);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::future<void>> futures;
    futures.reserve(2000);
    for (int i = 0; i < 2000; ++i)
        futures.push_back(
            pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(sum.load(), 2000u);
}

}  // namespace
}  // namespace locble::runtime
