#include "locble/runtime/trial_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "locble/runtime/bench_report.hpp"
#include "locble/runtime/thread_pool.hpp"
#include "locble/sim/harness.hpp"

namespace locble::runtime {
namespace {

// --- seed splitting -------------------------------------------------------

TEST(SplitSeedTest, PureFunctionOfInputs) {
    EXPECT_EQ(Rng::split_seed(42, 7), Rng::split_seed(42, 7));
    EXPECT_NE(Rng::split_seed(42, 7), Rng::split_seed(42, 8));
    EXPECT_NE(Rng::split_seed(42, 7), Rng::split_seed(43, 7));
}

TEST(SplitSeedTest, StreamsAreDistinct) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t t = 0; t < 10000; ++t) seeds.insert(Rng::split_seed(1, t));
    EXPECT_EQ(seeds.size(), 10000u);  // no collisions across a large batch
}

TEST(SplitSeedTest, ForStreamMatchesSplitSeed) {
    Rng direct(Rng::split_seed(5, 3));
    Rng streamed = Rng::for_stream(5, 3);
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(direct.uniform(0.0, 1.0), streamed.uniform(0.0, 1.0));
}

// --- thread pool ----------------------------------------------------------

TEST(ThreadPoolTest, ResolvesThreadCounts) {
    EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
    EXPECT_EQ(ThreadPool::resolve_threads(3), 3u);
}

TEST(ThreadPoolTest, RunsManyMoreTasksThanThreads) {
    ThreadPool pool(4);
    ASSERT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    const int tasks = 1000;
    futures.reserve(tasks);
    for (int i = 0; i < tasks; ++i)
        futures.push_back(pool.submit([&counter] {
            counter.fetch_add(1, std::memory_order_relaxed);
        }));
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), tasks);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
    ThreadPool pool(2);
    auto ok = pool.submit([] {});
    auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_NO_THROW(ok.get());
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    auto after = pool.submit([] {});
    EXPECT_NO_THROW(after.get());
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&counter] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                counter.fetch_add(1, std::memory_order_relaxed);
            });
    }  // destructor joins after the queue drains
    EXPECT_EQ(counter.load(), 64);
}

// --- trial runner determinism --------------------------------------------

std::vector<double> gaussian_walk_trials(unsigned threads, int trials,
                                         std::uint64_t seed) {
    TrialRunner runner(threads);
    return runner.run(trials, seed, [](int t, Rng& rng) {
        // A trial whose result depends on its full stream and its index.
        double acc = static_cast<double>(t);
        for (int i = 0; i < 100; ++i) acc += rng.gaussian(0.0, 1.0);
        return acc;
    });
}

TEST(TrialRunnerTest, ParallelMatchesSerialBitForBit) {
    const auto serial = gaussian_walk_trials(1, 64, 42);
    for (unsigned threads : {2u, 8u}) {
        const auto parallel = gaussian_walk_trials(threads, 64, 42);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_EQ(parallel[i], serial[i])  // exact, not NEAR
                << "trial " << i << " with " << threads << " threads";
    }
}

TEST(TrialRunnerTest, SeedChangesResults) {
    const auto a = gaussian_walk_trials(4, 16, 1);
    const auto b = gaussian_walk_trials(4, 16, 2);
    int identical = 0;
    for (std::size_t i = 0; i < a.size(); ++i) identical += a[i] == b[i];
    EXPECT_EQ(identical, 0);
}

TEST(TrialRunnerTest, ResultsOrderedByTrialIndex) {
    TrialRunner runner(8);
    const auto out = runner.run(256, 7, [](int t, Rng&) { return t; });
    for (int i = 0; i < 256; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(TrialRunnerTest, EmptyAndSingleBatches) {
    TrialRunner runner(4);
    EXPECT_TRUE(runner.run(0, 1, [](int, Rng&) { return 0; }).empty());
    const auto one = runner.run(1, 1, [](int t, Rng&) { return t + 1; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 1);
}

TEST(TrialRunnerTest, ExceptionInTrialPropagates) {
    TrialRunner runner(4);
    EXPECT_THROW(runner.run(100, 3,
                            [](int t, Rng&) -> int {
                                if (t == 7) throw std::runtime_error("trial 7 died");
                                return t;
                            }),
                 std::runtime_error);
    // The runner (and its pool) stays usable afterwards.
    const auto ok = runner.run(8, 3, [](int t, Rng&) { return t; });
    EXPECT_EQ(ok.size(), 8u);
}

TEST(TrialRunnerTest, PlanOverloadMatchesExplicitArgs) {
    TrialRunner runner(2);
    TrialPlan plan;
    plan.trials = 8;
    plan.seed = 99;
    const auto a = runner.run(plan, [](int, Rng& rng) { return rng.uniform(0, 1); });
    const auto b = runner.run(8, 99, [](int, Rng& rng) { return rng.uniform(0, 1); });
    EXPECT_EQ(a, b);
}

// --- harness batch entry points -------------------------------------------

TEST(HarnessBatchTest, StationaryTrialsMatchSerialMeasurements) {
    const sim::Scenario sc = sim::scenario(1);
    sim::BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    const sim::MeasurementConfig cfg;

    runtime::TrialPlan plan;
    plan.trials = 4;
    plan.seed = 1234;
    plan.threads = 4;
    const auto parallel = sim::run_stationary_trials(sc, beacon, cfg, plan);
    ASSERT_EQ(parallel.size(), 4u);

    for (int t = 0; t < plan.trials; ++t) {
        Rng rng = Rng::for_stream(plan.seed, static_cast<std::uint64_t>(t));
        const auto serial = sim::measure_stationary(sc, beacon, cfg, rng);
        EXPECT_EQ(parallel[static_cast<std::size_t>(t)].ok, serial.ok);
        EXPECT_EQ(parallel[static_cast<std::size_t>(t)].error_m, serial.error_m);
        EXPECT_EQ(parallel[static_cast<std::size_t>(t)].estimate_site.x,
                  serial.estimate_site.x);
        EXPECT_EQ(parallel[static_cast<std::size_t>(t)].estimate_site.y,
                  serial.estimate_site.y);
    }
}

TEST(HarnessBatchTest, SharedEnvawareSafeUnderConcurrentFirstUse) {
    // Hammer shared_envaware() from many threads; every caller must see the
    // same fully trained instance (magic-static guarantee documented on the
    // function).
    std::vector<std::thread> threads;
    std::vector<const core::EnvAware*> seen(8, nullptr);
    for (int i = 0; i < 8; ++i)
        threads.emplace_back([i, &seen] { seen[static_cast<std::size_t>(i)] = &sim::shared_envaware(); });
    for (auto& t : threads) t.join();
    for (const auto* p : seen) {
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p, seen[0]);
        EXPECT_TRUE(p->trained());
    }
}

// --- bench report ---------------------------------------------------------

TEST(BenchReportTest, JsonRoundsTripKeyFields) {
    BenchReport report("unit_test");
    report.set_run(10, 4, 42);
    report.set_wall_seconds(1.5);
    report.add_scalar("mean_error_m", 1.25);
    report.add_text("note", "quote \" and \\ backslash");
    const std::vector<double> samples{3.0, 1.0, 2.0, 4.0};
    report.add_summary("errors", samples);
    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"schema_version\": " +
                        std::to_string(kBenchReportSchemaVersion)),
              std::string::npos);
    // schema_version leads so downstream parsers can dispatch on it early.
    EXPECT_LT(json.find("\"schema_version\""), json.find("\"bench\""));
    EXPECT_NE(json.find("\"bench\": \"unit_test\""), std::string::npos);
    EXPECT_NE(json.find("\"trials\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"mean_error_m\": 1.25"), std::string::npos);
    EXPECT_NE(json.find("\\\" and \\\\ backslash"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"median\": 2.5"), std::string::npos);
}

TEST(BenchReportTest, IdenticalInputsGiveIdenticalJson) {
    const auto build = [] {
        BenchReport report("determinism");
        report.set_run(5, 8, 7);
        report.set_wall_seconds(0.125);
        report.add_scalar("value", 0.1 + 0.2);  // non-representable double
        return report.to_json();
    };
    EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace locble::runtime
