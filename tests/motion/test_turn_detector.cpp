#include "locble/motion/turn_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "locble/common/rng.hpp"
#include "locble/common/units.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::motion {
namespace {

using locble::Vec2;

imu::ImuTrace trace_for(const imu::Trajectory& walk, std::uint64_t seed) {
    locble::Rng rng(seed);
    return imu::ImuSynthesizer().synthesize(walk, rng);
}

TEST(TurnDetectorTest, DetectsSingleRightAngleTurn) {
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto trace = trace_for(walk, 1);
    const auto turns = TurnDetector().detect(trace.gyro_z, trace.mag_heading);
    ASSERT_EQ(turns.size(), 1u);
    EXPECT_NEAR(turns[0].angle_rad, std::numbers::pi / 2.0, locble::deg_to_rad(12.0));
}

TEST(TurnDetectorTest, AngleAccuracyNearPaperNumber) {
    // Sec. 5.2: average angle estimation error 3.45 degrees.
    double total_err_deg = 0.0;
    int count = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto walk =
            imu::make_l_shape({0, 0}, 0.3, 4.0, 3.0, std::numbers::pi / 2.0);
        const auto trace = trace_for(walk, seed);
        const auto turns = TurnDetector().detect(trace.gyro_z, trace.mag_heading);
        if (turns.size() != 1) continue;
        total_err_deg += std::abs(
            locble::rad_to_deg(turns[0].angle_rad - std::numbers::pi / 2.0));
        ++count;
    }
    ASSERT_GE(count, 8);
    EXPECT_LT(total_err_deg / count, 6.0);
}

TEST(TurnDetectorTest, SignOfTurnDirection) {
    const auto left = imu::make_l_shape({0, 0}, 0.0, 3.0, 2.0, std::numbers::pi / 2.0);
    const auto right =
        imu::make_l_shape({0, 0}, 0.0, 3.0, 2.0, -std::numbers::pi / 2.0);
    const auto lt = trace_for(left, 2);
    const auto rt = trace_for(right, 2);
    const auto turns_l = TurnDetector().detect(lt.gyro_z, lt.mag_heading);
    const auto turns_r = TurnDetector().detect(rt.gyro_z, rt.mag_heading);
    ASSERT_EQ(turns_l.size(), 1u);
    ASSERT_EQ(turns_r.size(), 1u);
    EXPECT_GT(turns_l[0].angle_rad, 0.0);
    EXPECT_LT(turns_r[0].angle_rad, 0.0);
}

TEST(TurnDetectorTest, NoTurnOnStraightWalk) {
    const auto walk = imu::make_straight({0, 0}, 0.0, 8.0);
    const auto trace = trace_for(walk, 3);
    EXPECT_TRUE(TurnDetector().detect(trace.gyro_z, trace.mag_heading).empty());
}

TEST(TurnDetectorTest, TwoTurnsDetectedSeparately) {
    const imu::Trajectory walk(
        {Vec2{0, 0}, Vec2{4, 0}, Vec2{4, 4}, Vec2{0, 4}});
    const auto trace = trace_for(walk, 4);
    const auto turns = TurnDetector().detect(trace.gyro_z, trace.mag_heading);
    ASSERT_EQ(turns.size(), 2u);
    EXPECT_LT(turns[0].t_end, turns[1].t_begin);
}

TEST(TurnDetectorTest, EmptyInputs) {
    EXPECT_TRUE(TurnDetector().detect({}, {}).empty());
    EXPECT_TRUE(TurnDetector()
                    .detect({{0.0, 0.0}, {0.1, 0.0}}, {})
                    .empty());
}

TEST(TurnDetectorTest, BumpBoundsOrdered) {
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto trace = trace_for(walk, 5);
    const auto turns = TurnDetector().detect(trace.gyro_z, trace.mag_heading);
    for (const auto& t : turns) EXPECT_LT(t.t_begin, t.t_end);
}

TEST(MeanHeadingTest, CircularAveragingAcrossSeam) {
    // Headings straddling +-pi must average to ~pi, not ~0.
    locble::TimeSeries mag;
    for (int i = 0; i < 10; ++i) {
        const double h = (i % 2 == 0) ? std::numbers::pi - 0.1
                                      : -std::numbers::pi + 0.1;
        mag.push_back({0.1 * i, h});
    }
    const double m = mean_heading(mag, 0.0, 1.0);
    EXPECT_NEAR(std::abs(m), std::numbers::pi, 0.05);
}

TEST(MeanHeadingTest, EmptyWindowThrows) {
    locble::TimeSeries mag{{1.0, 0.0}};
    EXPECT_THROW(mean_heading(mag, 2.0, 3.0), std::invalid_argument);
}

}  // namespace
}  // namespace locble::motion
