#include "locble/motion/heading_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "locble/common/rng.hpp"
#include "locble/common/vec2.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::motion {
namespace {

TEST(HeadingFilterTest, InitializesFromMagnetometer) {
    ComplementaryHeadingFilter f;
    EXPECT_NEAR(f.update(0.0, 0.0, 1.2), 1.2, 1e-12);
}

TEST(HeadingFilterTest, GyroIntegratesShortTerm) {
    ComplementaryHeadingFilter f;
    f.update(0.0, 0.0, 0.0);
    // 1 rad/s for 0.5 s with the magnetometer stuck at 0: mostly gyro.
    double h = 0.0;
    for (int i = 1; i <= 50; ++i) h = f.update(0.01 * i, 1.0, 0.0);
    EXPECT_GT(h, 0.4);
    EXPECT_LT(h, 0.52);
}

TEST(HeadingFilterTest, MagnetometerCorrectsDriftLongTerm) {
    ComplementaryHeadingFilter f;
    f.update(0.0, 0.0, 0.0);
    // Gyro bias of 0.05 rad/s; the magnetometer holds 0. After several time
    // constants the heading must settle near the bias*tau equilibrium, not
    // run away.
    double h = 0.0;
    for (int i = 1; i <= 6000; ++i) h = f.update(0.01 * i, 0.05, 0.0);
    EXPECT_NEAR(h, 0.05 * 8.0, 0.1);  // equilibrium = bias * tau
}

TEST(HeadingFilterTest, WrapsAcrossSeam) {
    ComplementaryHeadingFilter f;
    f.update(0.0, 0.0, std::numbers::pi - 0.05);
    // Turn through the +-pi seam.
    double h = 0.0;
    for (int i = 1; i <= 40; ++i)
        h = f.update(0.01 * i, 1.0, locble::wrap_angle(std::numbers::pi - 0.05 + 0.01 * i));
    EXPECT_LE(std::abs(h), std::numbers::pi + 1e-9);
}

TEST(HeadingFilterTest, FuseValidatesInput) {
    const ComplementaryHeadingFilter f;
    EXPECT_THROW(f.fuse({}, {}), std::invalid_argument);
    EXPECT_THROW(f.fuse({{0.0, 0.0}}, {}), std::invalid_argument);
}

TEST(HeadingFilterTest, TracksSynthesizedWalkBetterThanRawMag) {
    const auto walk = imu::make_l_shape({0, 0}, 0.3, 4.0, 3.0, 1.5707963);
    locble::Rng rng(3);
    const auto trace = imu::ImuSynthesizer().synthesize(walk, rng);
    const ComplementaryHeadingFilter filter;
    const auto fused = filter.fuse(trace.gyro_z, trace.mag_heading);

    double fused_err = 0.0, raw_err = 0.0;
    int n = 0;
    for (std::size_t i = 0; i < fused.size(); ++i) {
        const double truth = walk.pose_at(fused[i].t).heading;
        fused_err += std::abs(locble::angle_diff(fused[i].value, truth));
        raw_err += std::abs(locble::angle_diff(trace.mag_heading[i].value, truth));
        ++n;
    }
    // The fused stream must not be worse than the raw magnetometer (the
    // gyro smooths the white component).
    EXPECT_LE(fused_err / n, raw_err / n + 0.02);
}

TEST(HeadingFilterTest, ResetForgetsState) {
    ComplementaryHeadingFilter f;
    f.update(0.0, 0.0, 2.0);
    f.reset();
    EXPECT_NEAR(f.update(5.0, 0.0, -1.0), -1.0, 1e-12);
}

}  // namespace
}  // namespace locble::motion
