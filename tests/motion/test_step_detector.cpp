#include "locble/motion/step_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/rng.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::motion {
namespace {

using locble::Vec2;

imu::ImuTrace walk_trace(double length_m, std::uint64_t seed) {
    const imu::Trajectory walk({Vec2{0, 0}, Vec2{length_m, 0}});
    locble::Rng rng(seed);
    return imu::ImuSynthesizer().synthesize(walk, rng);
}

TEST(StepDetectorTest, CountsStepsOnStraightWalk) {
    const auto trace = walk_trace(8.0, 1);
    const StepDetection d = StepDetector().detect(trace.accel_vertical);
    EXPECT_NEAR(static_cast<double>(d.steps.size()), trace.true_steps, 2.0);
}

TEST(StepDetectorTest, DistanceWithinPaperAccuracy) {
    // Sec. 5.2: step-based distance accuracy ~94.77%.
    double total_err = 0.0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const double truth = 7.0;
        const auto trace = walk_trace(truth, seed);
        const StepDetection d = StepDetector().detect(trace.accel_vertical);
        total_err += std::abs(d.total_distance_m - truth) / truth;
        ++runs;
    }
    EXPECT_LT(total_err / runs, 0.12);
}

TEST(StepDetectorTest, NoStepsWhenIdle) {
    // Standing still: noise only.
    locble::Rng rng(3);
    locble::TimeSeries accel;
    for (int i = 0; i < 500; ++i)
        accel.push_back({0.01 * i, rng.gaussian(0.0, 0.25)});
    const StepDetection d = StepDetector().detect(accel);
    EXPECT_LE(d.steps.size(), 1u);
}

TEST(StepDetectorTest, EmptyAndTinyInputs) {
    const StepDetection d0 = StepDetector().detect({});
    EXPECT_TRUE(d0.steps.empty());
    EXPECT_DOUBLE_EQ(d0.total_distance_m, 0.0);
    const StepDetection d1 = StepDetector().detect({{0.0, 1.0}, {0.01, 1.0}});
    EXPECT_TRUE(d1.steps.empty());
}

TEST(StepDetectorTest, RefractoryPeriodPreventsDoubleCounting) {
    // Clean 2 Hz gait with a strong second harmonic that would double-count
    // without the refractory gap.
    locble::TimeSeries accel;
    for (int i = 0; i < 1000; ++i) {
        const double t = 0.01 * i;
        accel.push_back({t, 2.0 * std::sin(2.0 * std::numbers::pi * 2.0 * t) +
                                1.2 * std::sin(2.0 * std::numbers::pi * 4.0 * t)});
    }
    const StepDetection d = StepDetector().detect(accel);
    EXPECT_NEAR(static_cast<double>(d.steps.size()), 20.0, 3.0);
}

TEST(StepDetectorTest, StepTimesMonotone) {
    const auto trace = walk_trace(10.0, 4);
    const StepDetection d = StepDetector().detect(trace.accel_vertical);
    for (std::size_t i = 1; i < d.steps.size(); ++i)
        EXPECT_GT(d.steps[i].t, d.steps[i - 1].t);
}

TEST(StepDetectorTest, MeanFrequencyInGaitBand) {
    const auto trace = walk_trace(10.0, 5);
    const StepDetection d = StepDetector().detect(trace.accel_vertical);
    EXPECT_GT(d.mean_frequency_hz, 1.2);
    EXPECT_LT(d.mean_frequency_hz, 3.0);
}

TEST(StepDetectorTest, StepLengthsPlausible) {
    const auto trace = walk_trace(8.0, 6);
    const StepDetection d = StepDetector().detect(trace.accel_vertical);
    for (const auto& s : d.steps) {
        EXPECT_GT(s.length_m, 0.3);
        EXPECT_LT(s.length_m, 1.1);
    }
}

}  // namespace
}  // namespace locble::motion
