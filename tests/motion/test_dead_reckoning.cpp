#include "locble/motion/dead_reckoning.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "locble/common/rng.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::motion {
namespace {

using locble::Vec2;

imu::ImuTrace trace_for(const imu::Trajectory& walk, std::uint64_t seed) {
    locble::Rng rng(seed);
    return imu::ImuSynthesizer().synthesize(walk, rng);
}

TEST(DeadReckonerTest, StraightWalkEndsNearTrueDisplacement) {
    const auto walk = imu::make_straight({0, 0}, 0.0, 6.0);
    const auto trace = trace_for(walk, 1);
    const MotionEstimate est = DeadReckoner().track(trace);
    ASSERT_FALSE(est.path.empty());
    // Observer frame: walked ~6 m along +x, ~0 lateral.
    EXPECT_NEAR(est.path.back().position.x, 6.0, 0.8);
    EXPECT_NEAR(est.path.back().position.y, 0.0, 0.6);
}

TEST(DeadReckonerTest, LShapeReconstructed) {
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto trace = trace_for(walk, 2);
    DeadReckoner::Config cfg;
    cfg.snap_right_angles = true;
    const MotionEstimate est = DeadReckoner(cfg).track(trace);
    // In the observer frame the L ends near (4, 3).
    EXPECT_NEAR(est.path.back().position.x, 4.0, 0.8);
    EXPECT_NEAR(est.path.back().position.y, 3.0, 0.8);
}

TEST(DeadReckonerTest, FrameIsObserverLocal) {
    // Same walk shape with a different absolute heading gives the same
    // observer-frame path (the frame's +x is the initial walking direction).
    const auto walk0 = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto walk1 =
        imu::make_l_shape({2, 5}, 1.1, 4.0, 3.0, std::numbers::pi / 2.0);
    const MotionEstimate e0 = DeadReckoner().track(trace_for(walk0, 3));
    const MotionEstimate e1 = DeadReckoner().track(trace_for(walk1, 3));
    EXPECT_NEAR(e0.path.back().position.x, e1.path.back().position.x, 0.7);
    EXPECT_NEAR(e0.path.back().position.y, e1.path.back().position.y, 0.7);
}

TEST(DeadReckonerTest, SnapRightAnglesExact) {
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto trace = trace_for(walk, 4);
    DeadReckoner::Config cfg;
    cfg.snap_right_angles = true;
    const MotionEstimate est = DeadReckoner(cfg).track(trace);
    ASSERT_EQ(est.turns.size(), 1u);
    EXPECT_DOUBLE_EQ(est.turns[0].angle_rad, std::numbers::pi / 2.0);
}

TEST(DeadReckonerTest, NoSnapKeepsMeasuredAngle) {
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 2.0);
    const auto trace = trace_for(walk, 4);
    DeadReckoner::Config cfg;
    cfg.snap_right_angles = false;
    const MotionEstimate est = DeadReckoner(cfg).track(trace);
    ASSERT_EQ(est.turns.size(), 1u);
    // Measured, so almost surely not exactly pi/2, but close.
    EXPECT_NEAR(est.turns[0].angle_rad, std::numbers::pi / 2.0, 0.2);
}

TEST(DeadReckonerTest, SnapIgnoresNonRightTurns) {
    // 45-degree turn must not snap to 90.
    const auto walk = imu::make_l_shape({0, 0}, 0.0, 4.0, 3.0, std::numbers::pi / 4.0);
    const auto trace = trace_for(walk, 5);
    DeadReckoner::Config cfg;
    cfg.snap_right_angles = true;
    const MotionEstimate est = DeadReckoner(cfg).track(trace);
    ASSERT_EQ(est.turns.size(), 1u);
    EXPECT_NEAR(est.turns[0].angle_rad, std::numbers::pi / 4.0, 0.2);
}

TEST(MotionEstimateTest, PositionAtInterpolates) {
    MotionEstimate est;
    est.path = {{0.0, {0, 0}}, {1.0, {2, 0}}, {2.0, {2, 2}}};
    EXPECT_EQ(est.position_at(0.5), Vec2(1, 0));
    EXPECT_EQ(est.position_at(1.5), Vec2(2, 1));
    // Clamped at the ends.
    EXPECT_EQ(est.position_at(-1.0), Vec2(0, 0));
    EXPECT_EQ(est.position_at(5.0), Vec2(2, 2));
}

TEST(MotionEstimateTest, EmptyPathThrows) {
    MotionEstimate est;
    EXPECT_THROW(est.position_at(0.0), std::logic_error);
}

TEST(DeadReckonerTest, EmptyTraceGivesOriginPath) {
    const MotionEstimate est = DeadReckoner().track(imu::ImuTrace{});
    ASSERT_FALSE(est.path.empty());
    EXPECT_EQ(est.path.front().position, Vec2(0, 0));
    EXPECT_DOUBLE_EQ(est.total_distance(), 0.0);
}

TEST(DeadReckonerTest, TotalDistanceNearTruth) {
    const auto walk = imu::make_straight({0, 0}, 0.0, 9.0);
    const auto trace = trace_for(walk, 6);
    const MotionEstimate est = DeadReckoner().track(trace);
    EXPECT_NEAR(est.total_distance(), 9.0, 1.0);
}

}  // namespace
}  // namespace locble::motion
