#include "locble/ble/pdu.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::ble {
namespace {

TEST(PduType, ConnectabilityMatchesSpec) {
    EXPECT_TRUE(is_connectable(PduType::adv_ind));
    EXPECT_TRUE(is_connectable(PduType::adv_direct_ind));
    EXPECT_FALSE(is_connectable(PduType::adv_nonconn_ind));
    EXPECT_FALSE(is_connectable(PduType::adv_scan_ind));
    EXPECT_FALSE(is_connectable(PduType::scan_rsp));
}

TEST(DeviceAddressTest, StringRoundTrip) {
    const auto a = DeviceAddress::from_string("c4:01:22:ab:cd:ef");
    EXPECT_EQ(a.str(), "c4:01:22:ab:cd:ef");
}

TEST(DeviceAddressTest, BadStringThrows) {
    EXPECT_THROW(DeviceAddress::from_string("nonsense"), std::runtime_error);
    EXPECT_THROW(DeviceAddress::from_string(""), std::runtime_error);
}

TEST(DeviceAddressTest, FromIdDeterministicAndDistinct) {
    const auto a1 = DeviceAddress::from_id(1);
    const auto a1b = DeviceAddress::from_id(1);
    const auto a2 = DeviceAddress::from_id(2);
    EXPECT_EQ(a1, a1b);
    EXPECT_NE(a1, a2);
    // Static random address prefix bits set.
    EXPECT_EQ(a1.bytes[0] & 0xC0, 0xC0);
}

TEST(AdvertisingPduTest, SerializeParseRoundTrip) {
    AdvertisingPdu pdu;
    pdu.type = PduType::adv_nonconn_ind;
    pdu.tx_addr_random = true;
    pdu.address = DeviceAddress::from_id(7);
    pdu.payload = {0x02, 0x01, 0x06};

    const auto bytes = pdu.serialize();
    const AdvertisingPdu back = AdvertisingPdu::parse(bytes);
    EXPECT_EQ(back.type, pdu.type);
    EXPECT_EQ(back.tx_addr_random, pdu.tx_addr_random);
    EXPECT_EQ(back.address, pdu.address);
    EXPECT_EQ(back.payload, pdu.payload);
}

TEST(AdvertisingPduTest, HeaderEncodesTypeAndTxAdd) {
    AdvertisingPdu pdu;
    pdu.type = PduType::adv_ind;
    pdu.tx_addr_random = false;
    const auto bytes = pdu.serialize();
    EXPECT_EQ(bytes[0] & 0x0F, 0x00);
    EXPECT_EQ(bytes[0] & 0x40, 0x00);
    pdu.tx_addr_random = true;
    EXPECT_EQ(pdu.serialize()[0] & 0x40, 0x40);
}

TEST(AdvertisingPduTest, LengthFieldCoversAddressAndPayload) {
    AdvertisingPdu pdu;
    pdu.payload = {1, 2, 3, 4, 5};
    const auto bytes = pdu.serialize();
    EXPECT_EQ(bytes[1], 6 + 5);
    EXPECT_EQ(bytes.size(), 2u + 6u + 5u);
}

TEST(AdvertisingPduTest, OversizePayloadRejected) {
    AdvertisingPdu pdu;
    pdu.payload.assign(32, 0x00);
    EXPECT_THROW(pdu.serialize(), std::runtime_error);
}

TEST(AdvertisingPduTest, ParseRejectsTruncatedOrInconsistent) {
    EXPECT_THROW(AdvertisingPdu::parse({0x02, 0x06}), std::runtime_error);
    // Length byte says 10 but only 6 bytes follow.
    std::vector<std::uint8_t> bad{0x02, 10, 1, 2, 3, 4, 5, 6};
    EXPECT_THROW(AdvertisingPdu::parse(bad), std::runtime_error);
    // Length below the 6-byte AdvA minimum.
    std::vector<std::uint8_t> short_len{0x02, 5, 1, 2, 3, 4, 5, 6};
    EXPECT_THROW(AdvertisingPdu::parse(short_len), std::runtime_error);
}

TEST(AdStructures, RoundTrip) {
    const std::vector<AdStructure> ads{{kAdTypeFlags, {0x06}},
                                       {kAdTypeManufacturerData, {0x4C, 0x00, 0xAA}}};
    const auto payload = build_ad_payload(ads);
    const auto back = parse_ad_structures(payload);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].type, kAdTypeFlags);
    EXPECT_EQ(back[0].data, std::vector<std::uint8_t>{0x06});
    EXPECT_EQ(back[1].data.size(), 3u);
}

TEST(AdStructures, MalformedLengthsRejected) {
    EXPECT_THROW(parse_ad_structures({0x00}), std::runtime_error);         // zero len
    EXPECT_THROW(parse_ad_structures({0x05, 0x01, 0x06}), std::runtime_error);  // truncated
}

TEST(AdStructures, PayloadLimitEnforced) {
    std::vector<AdStructure> ads{{0xFF, std::vector<std::uint8_t>(31, 0)}};
    EXPECT_THROW(build_ad_payload(ads), std::runtime_error);
}

}  // namespace
}  // namespace locble::ble
