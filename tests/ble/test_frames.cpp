#include "locble/ble/frames.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::ble {
namespace {

TEST(Uuid128Test, StringRoundTrip) {
    const auto u = Uuid128::from_id(42);
    const auto back = Uuid128::from_string(u.str());
    EXPECT_EQ(u, back);
}

TEST(Uuid128Test, CanonicalFormat) {
    const std::string s = Uuid128::from_id(1).str();
    ASSERT_EQ(s.size(), 36u);
    EXPECT_EQ(s[8], '-');
    EXPECT_EQ(s[13], '-');
    EXPECT_EQ(s[18], '-');
    EXPECT_EQ(s[23], '-');
}

TEST(Uuid128Test, BadStringsThrow) {
    EXPECT_THROW(Uuid128::from_string("short"), std::runtime_error);
    EXPECT_THROW(Uuid128::from_string("zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz"),
                 std::runtime_error);
}

TEST(IBeaconTest, EncodeDecodeRoundTrip) {
    IBeaconFrame f;
    f.uuid = Uuid128::from_id(99);
    f.major = 0x1234;
    f.minor = 0xBEEF;
    f.measured_power = -59;
    const auto payload = encode_ibeacon(f);
    const auto back = decode_ibeacon(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->uuid, f.uuid);
    EXPECT_EQ(back->major, f.major);
    EXPECT_EQ(back->minor, f.minor);
    EXPECT_EQ(back->measured_power, f.measured_power);
}

TEST(IBeaconTest, PayloadFitsLegacyAdvertisement) {
    const auto payload = encode_ibeacon(IBeaconFrame{});
    EXPECT_LE(payload.size(), 31u);
}

TEST(IBeaconTest, OtherFormatsDecodeToNullopt) {
    const auto eddystone = encode_eddystone_uid(EddystoneUidFrame{});
    EXPECT_FALSE(decode_ibeacon(eddystone).has_value());
    const auto alt = encode_altbeacon(AltBeaconFrame{});
    EXPECT_FALSE(decode_ibeacon(alt).has_value());
}

TEST(EddystoneTest, EncodeDecodeRoundTrip) {
    EddystoneUidFrame f;
    f.tx_power = -12;
    for (int i = 0; i < 10; ++i) f.namespace_id[i] = static_cast<std::uint8_t>(i);
    for (int i = 0; i < 6; ++i) f.instance_id[i] = static_cast<std::uint8_t>(0xA0 + i);
    const auto back = decode_eddystone_uid(encode_eddystone_uid(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->tx_power, f.tx_power);
    EXPECT_EQ(back->namespace_id, f.namespace_id);
    EXPECT_EQ(back->instance_id, f.instance_id);
}

TEST(EddystoneTest, RejectsForeignServiceData) {
    EXPECT_FALSE(decode_eddystone_uid(encode_ibeacon(IBeaconFrame{})).has_value());
}

TEST(AltBeaconTest, EncodeDecodeRoundTrip) {
    AltBeaconFrame f;
    f.manufacturer_id = 0x0118;
    for (int i = 0; i < 20; ++i) f.beacon_id[i] = static_cast<std::uint8_t>(i * 3);
    f.reference_rssi = -61;
    f.mfg_reserved = 0x5A;
    const auto back = decode_altbeacon(encode_altbeacon(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->manufacturer_id, f.manufacturer_id);
    EXPECT_EQ(back->beacon_id, f.beacon_id);
    EXPECT_EQ(back->reference_rssi, f.reference_rssi);
    EXPECT_EQ(back->mfg_reserved, f.mfg_reserved);
}

TEST(AltBeaconTest, NotConfusedWithIBeacon) {
    EXPECT_FALSE(decode_altbeacon(encode_ibeacon(IBeaconFrame{})).has_value());
}

TEST(MakeBeaconPdu, NonConnectableAllFormats) {
    for (auto fmt : {BeaconFormat::ibeacon, BeaconFormat::eddystone_uid,
                     BeaconFormat::altbeacon}) {
        const AdvertisingPdu pdu = make_beacon_pdu(5, fmt, -59);
        EXPECT_EQ(pdu.type, PduType::adv_nonconn_ind);
        EXPECT_FALSE(is_connectable(pdu.type));
        // Serializes within the legacy limit.
        EXPECT_NO_THROW(pdu.serialize());
    }
}

TEST(MakeBeaconPdu, MeasuredPowerExtractable) {
    for (auto fmt : {BeaconFormat::ibeacon, BeaconFormat::eddystone_uid,
                     BeaconFormat::altbeacon}) {
        const AdvertisingPdu pdu = make_beacon_pdu(5, fmt, -63);
        const auto power = beacon_measured_power(pdu.payload);
        ASSERT_TRUE(power.has_value());
        EXPECT_EQ(*power, -63);
    }
}

TEST(MakeBeaconPdu, DistinctIdsDistinctIdentity) {
    const auto a = make_beacon_pdu(1, BeaconFormat::ibeacon, -59);
    const auto b = make_beacon_pdu(2, BeaconFormat::ibeacon, -59);
    EXPECT_NE(a.address, b.address);
    EXPECT_NE(a.payload, b.payload);
}

TEST(BeaconMeasuredPower, UnknownPayloadIsNullopt) {
    const std::vector<std::uint8_t> flags_only{0x02, 0x01, 0x06};
    EXPECT_FALSE(beacon_measured_power(flags_only).has_value());
}

}  // namespace
}  // namespace locble::ble
