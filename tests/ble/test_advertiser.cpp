#include "locble/ble/advertiser.hpp"

#include <gtest/gtest.h>

namespace locble::ble {
namespace {

TEST(AdvertiserTest, EventRateMatchesInterval) {
    locble::Rng rng(1);
    AdvertiserProfile p;
    p.interval_s = 0.1;
    const Advertiser adv(1, p);
    const auto txs = adv.transmissions(0.0, 10.0, rng);
    // ~95 events (interval + advDelay jitter), 3 channels each.
    EXPECT_NEAR(static_cast<double>(txs.size()), 3.0 * 10.0 / 0.105, 15.0);
}

TEST(AdvertiserTest, HopsAllThreeChannelsPerEvent) {
    locble::Rng rng(2);
    const Advertiser adv(1, AdvertiserProfile{});
    const auto txs = adv.transmissions(0.0, 1.0, rng);
    ASSERT_GE(txs.size(), 6u);
    EXPECT_EQ(txs[0].channel, AdvChannel::ch37);
    EXPECT_EQ(txs[1].channel, AdvChannel::ch38);
    EXPECT_EQ(txs[2].channel, AdvChannel::ch39);
    EXPECT_EQ(txs[3].channel, AdvChannel::ch37);
    // Inter-channel spacing within one event is sub-millisecond.
    EXPECT_LT(txs[1].t - txs[0].t, 0.001);
}

TEST(AdvertiserTest, TimesSortedAndInRange) {
    locble::Rng rng(3);
    const Advertiser adv(4, AdvertiserProfile{});
    const auto txs = adv.transmissions(2.0, 5.0, rng);
    for (std::size_t i = 0; i < txs.size(); ++i) {
        EXPECT_GE(txs[i].t, 2.0);
        EXPECT_LT(txs[i].t, 5.0);
        if (i) {
            EXPECT_GE(txs[i].t, txs[i - 1].t);
        }
    }
}

TEST(AdvertiserTest, AdvDelayJitterPresent) {
    locble::Rng rng(4);
    AdvertiserProfile p;
    p.interval_s = 0.1;
    const Advertiser adv(1, p);
    const auto txs = adv.transmissions(0.0, 30.0, rng);
    // Gather event start times (channel 37 transmissions).
    std::vector<double> gaps;
    double prev = -1.0;
    for (const auto& tx : txs) {
        if (tx.channel != AdvChannel::ch37) continue;
        if (prev >= 0.0) gaps.push_back(tx.t - prev);
        prev = tx.t;
    }
    ASSERT_GT(gaps.size(), 50u);
    // All gaps in [interval, interval + 10 ms]; not all identical.
    double mn = gaps[0], mx = gaps[0];
    for (double g : gaps) {
        EXPECT_GE(g, 0.1 - 1e-9);
        EXPECT_LE(g, 0.111);
        mn = std::min(mn, g);
        mx = std::max(mx, g);
    }
    EXPECT_GT(mx - mn, 0.001);
}

TEST(AdvertiserTest, CarriesBeaconPayload) {
    locble::Rng rng(5);
    const Advertiser adv(77, estimote_profile());
    const auto txs = adv.transmissions(0.0, 0.5, rng);
    ASSERT_FALSE(txs.empty());
    const auto frame = decode_ibeacon(txs[0].pdu.payload);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(txs[0].advertiser_id, 77u);
}

TEST(AdvertiserProfiles, DistinctHardwareCharacteristics) {
    const auto est = estimote_profile();
    const auto rad = radbeacon_profile();
    const auto ios = ios_device_profile();
    // Smart-device beacons are noisier than dedicated ones (Sec. 7.6.3).
    EXPECT_GT(ios.tx_power_jitter_db, est.tx_power_jitter_db);
    EXPECT_GT(ios.tx_power_jitter_db, rad.tx_power_jitter_db);
    EXPECT_EQ(rad.format, BeaconFormat::altbeacon);
    EXPECT_EQ(est.format, BeaconFormat::ibeacon);
}

TEST(AdvertiserTest, EmptyWindowYieldsNothing) {
    locble::Rng rng(6);
    const Advertiser adv(1, AdvertiserProfile{});
    EXPECT_TRUE(adv.transmissions(1.0, 1.0, rng).empty());
}

}  // namespace
}  // namespace locble::ble
