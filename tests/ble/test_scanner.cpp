#include "locble/ble/scanner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace locble::ble {
namespace {

std::vector<Transmission> make_txs(double t0, double t1, std::uint64_t id,
                                   locble::Rng& rng) {
    const Advertiser adv(id, AdvertiserProfile{});
    return adv.transmissions(t0, t1, rng);
}

TEST(ScannerTest, ContinuousScanDeliversAboutOnePerEvent) {
    locble::Rng rng(1);
    const auto txs = make_txs(0.0, 30.0, 1, rng);
    Scanner::Config cfg;
    cfg.receiver.loss_probability = 0.0;
    const Scanner scanner(cfg);
    locble::Rng rx_rng(2);
    const auto reports = scanner.receive(txs, rx_rng);
    // With window == interval and rotation, exactly the one matching-channel
    // transmission of each event is captured: ~1/3 of all transmissions.
    EXPECT_NEAR(static_cast<double>(reports.size()),
                static_cast<double>(txs.size()) / 3.0, 12.0);
}

TEST(ScannerTest, LossReducesDeliveries) {
    locble::Rng rng(3);
    const auto txs = make_txs(0.0, 60.0, 1, rng);
    Scanner::Config lossless;
    lossless.receiver.loss_probability = 0.0;
    Scanner::Config lossy;
    lossy.receiver.loss_probability = 0.5;
    locble::Rng a(4), b(4);
    const auto clean = Scanner(lossless).receive(txs, a);
    const auto dropped = Scanner(lossy).receive(txs, b);
    EXPECT_LT(static_cast<double>(dropped.size()),
              0.65 * static_cast<double>(clean.size()));
    EXPECT_GT(static_cast<double>(dropped.size()),
              0.35 * static_cast<double>(clean.size()));
}

TEST(ScannerTest, DutyCyclingDropsOutOfWindowPackets) {
    locble::Rng rng(5);
    const auto txs = make_txs(0.0, 30.0, 1, rng);
    Scanner::Config half;
    half.scan_interval_s = 0.1;
    half.scan_window_s = 0.05;  // radio on half the time
    half.receiver.loss_probability = 0.0;
    Scanner::Config full;
    full.receiver.loss_probability = 0.0;
    locble::Rng a(6), b(6);
    const auto half_reports = Scanner(half).receive(txs, a);
    const auto full_reports = Scanner(full).receive(txs, b);
    EXPECT_LT(half_reports.size(), full_reports.size());
    EXPECT_GT(half_reports.size(), full_reports.size() / 4);
}

TEST(ScannerTest, ReportsPreserveIdentity) {
    locble::Rng rng(7);
    const auto txs = make_txs(0.0, 5.0, 42, rng);
    Scanner::Config cfg;
    cfg.receiver.loss_probability = 0.0;
    locble::Rng rx(8);
    const auto reports = Scanner(cfg).receive(txs, rx);
    ASSERT_FALSE(reports.empty());
    for (const auto& r : reports) {
        EXPECT_EQ(r.advertiser_id, 42u);
        EXPECT_EQ(r.address, DeviceAddress::from_id(42));
        EXPECT_FALSE(r.payload.empty());
    }
}

TEST(ScannerTest, EmptyInput) {
    locble::Rng rng(9);
    const Scanner scanner{Scanner::Config{}};
    EXPECT_TRUE(scanner.receive({}, rng).empty());
}

TEST(ScannerTest, ConfigValidation) {
    Scanner::Config bad;
    bad.scan_interval_s = 0.0;
    EXPECT_THROW(Scanner{bad}, std::invalid_argument);
    Scanner::Config window_too_big;
    window_too_big.scan_window_s = 0.2;
    window_too_big.scan_interval_s = 0.1;
    EXPECT_THROW(Scanner{window_too_big}, std::invalid_argument);
}

TEST(ReceiverProfiles, DistinctOffsets) {
    // Fig. 2: different phones report shifted RSSI for the same signal.
    const auto a = iphone5s_receiver();
    const auto b = nexus5x_receiver();
    const auto c = nexus6_receiver();
    EXPECT_NE(a.rssi_offset_db, b.rssi_offset_db);
    EXPECT_NE(b.rssi_offset_db, c.rssi_offset_db);
    EXPECT_NE(a.rssi_offset_db, c.rssi_offset_db);
}

}  // namespace
}  // namespace locble::ble
