#include "locble/baseline/naive_dtw.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "locble/common/rng.hpp"

namespace locble::baseline {
namespace {

TEST(NaiveDtwMatcherTest, MatchesIdentical) {
    std::vector<double> s;
    for (int i = 0; i < 40; ++i) s.push_back(std::sin(0.2 * i));
    EXPECT_TRUE(NaiveDtwMatcher().match(s, s));
}

TEST(NaiveDtwMatcherTest, MatchesNoisyCopy) {
    locble::Rng rng(1);
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) {
        const double v = std::sin(0.2 * i);
        a.push_back(v + rng.gaussian(0.0, 0.1));
        b.push_back(v + rng.gaussian(0.0, 0.1));
    }
    EXPECT_TRUE(NaiveDtwMatcher().match(a, b));
}

TEST(NaiveDtwMatcherTest, RejectsDifferentTrend) {
    std::vector<double> a, b;
    for (int i = 0; i < 40; ++i) {
        a.push_back(std::sin(0.2 * i));
        b.push_back(4.0 * std::sin(0.9 * i + 2.0));
    }
    EXPECT_FALSE(NaiveDtwMatcher().match(a, b));
}

TEST(NaiveDtwMatcherTest, EmptyInputsNoMatch) {
    EXPECT_FALSE(NaiveDtwMatcher().match({}, {}));
}

TEST(NaiveDtwMatcherTest, TruncatesToCommonLength) {
    std::vector<double> a(30, 0.0), b(50, 0.0);
    EXPECT_TRUE(NaiveDtwMatcher().match(a, b));
}

}  // namespace
}  // namespace locble::baseline
