#include "locble/baseline/ranging.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "locble/common/rng.hpp"

namespace locble::baseline {
namespace {

locble::TimeSeries constant_rss(double value, std::size_t n) {
    locble::TimeSeries ts;
    for (std::size_t i = 0; i < n; ++i)
        ts.push_back({0.1 * static_cast<double>(i), value});
    return ts;
}

TEST(FixedModelRangerTest, ExactAtCalibratedPower) {
    FixedModelRanger::Config cfg;
    cfg.measured_power_dbm = -59.0;
    cfg.exponent = 2.0;
    const FixedModelRanger ranger(cfg);
    EXPECT_NEAR(ranger.estimate_distance(constant_rss(-59.0, 20)), 1.0, 1e-9);
    EXPECT_NEAR(ranger.estimate_distance(constant_rss(-79.0, 20)), 10.0, 1e-9);
}

TEST(FixedModelRangerTest, AveragesRecentWindow) {
    FixedModelRanger::Config cfg;
    cfg.average_window = 5;
    const FixedModelRanger ranger(cfg);
    // Old garbage followed by stable recent samples: only recent ones count.
    locble::TimeSeries ts = constant_rss(-100.0, 10);
    for (int i = 0; i < 5; ++i) ts.push_back({1.0 + 0.1 * i, -59.0});
    EXPECT_NEAR(ranger.estimate_distance(ts), 1.0, 1e-9);
}

TEST(FixedModelRangerTest, EmptySeriesThrows) {
    EXPECT_THROW(FixedModelRanger().estimate_distance({}), std::invalid_argument);
}

TEST(FixedModelRangerTest, WrongExponentBiasesEstimate) {
    // True environment n=3 but the fixed model assumes 2.2: distances are
    // overestimated — the core weakness LocBLE's adaptive fit removes.
    FixedModelRanger::Config cfg;
    cfg.measured_power_dbm = -59.0;
    cfg.exponent = 2.2;
    const FixedModelRanger ranger(cfg);
    const double true_d = 6.0;
    const double rss = -59.0 - 10.0 * 3.0 * std::log10(true_d);
    const double est = ranger.estimate_distance(constant_rss(rss, 20));
    EXPECT_GT(est, true_d * 1.5);
}

TEST(FixedModelRangerTest, CurveFitMonotone) {
    const FixedModelRanger ranger;
    double prev = 0.0;
    for (double rss = -50.0; rss >= -90.0; rss -= 5.0) {
        const double d = ranger.estimate_distance_curvefit(constant_rss(rss, 10));
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(FixedModelRangerTest, CurveFitNearFieldBranch) {
    FixedModelRanger::Config cfg;
    cfg.measured_power_dbm = -59.0;
    const FixedModelRanger ranger(cfg);
    // Stronger than calibrated power -> ratio < 1 -> sub-metre estimate.
    EXPECT_LT(ranger.estimate_distance_curvefit(constant_rss(-50.0, 10)), 1.0);
}

TEST(ProximityZoneTest, ZoneBoundaries) {
    EXPECT_EQ(FixedModelRanger::zone_for(0.2), ProximityZone::immediate);
    EXPECT_EQ(FixedModelRanger::zone_for(0.5), ProximityZone::near);
    EXPECT_EQ(FixedModelRanger::zone_for(3.9), ProximityZone::near);
    EXPECT_EQ(FixedModelRanger::zone_for(4.0), ProximityZone::far);
    EXPECT_EQ(FixedModelRanger::zone_for(15.0), ProximityZone::far);
}

TEST(ProximityZoneTest, InvalidDistanceUnknown) {
    EXPECT_EQ(FixedModelRanger::zone_for(-1.0), ProximityZone::unknown);
    EXPECT_EQ(FixedModelRanger::zone_for(std::nan("")), ProximityZone::unknown);
    EXPECT_EQ(FixedModelRanger::zone_for(std::numeric_limits<double>::infinity()),
              ProximityZone::unknown);
}

TEST(ProximityZoneTest, Names) {
    EXPECT_EQ(std::string(to_string(ProximityZone::immediate)), "immediate");
    EXPECT_EQ(std::string(to_string(ProximityZone::unknown)), "unknown");
}

}  // namespace
}  // namespace locble::baseline
