// Property-style sweeps over the simulation harness: determinism, frame
// consistency and monotone physics across all nine Table-1 environments.

#include <gtest/gtest.h>

#include <cmath>

#include "locble/common/stats.hpp"
#include "locble/sim/harness.hpp"

namespace locble::sim {
namespace {

class ScenarioProperty : public ::testing::TestWithParam<int /*index*/> {};

TEST_P(ScenarioProperty, CaptureIsDeterministicPerSeed) {
    const Scenario sc = scenario(GetParam());
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    locble::Rng a(77), b(77);
    const auto walk = default_l_walk(sc);
    const auto ca = CaptureRunner().run(sc.site, {beacon}, walk, a);
    const auto cb = CaptureRunner().run(sc.site, {beacon}, walk, b);
    ASSERT_EQ(ca.rss.at(1).size(), cb.rss.at(1).size());
    for (std::size_t i = 0; i < ca.rss.at(1).size(); ++i)
        EXPECT_DOUBLE_EQ(ca.rss.at(1)[i].value, cb.rss.at(1)[i].value);
}

TEST_P(ScenarioProperty, DifferentSeedsDifferentWorlds) {
    const Scenario sc = scenario(GetParam());
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    locble::Rng a(1), b(2);
    const auto walk = default_l_walk(sc);
    const auto ca = CaptureRunner().run(sc.site, {beacon}, walk, a);
    const auto cb = CaptureRunner().run(sc.site, {beacon}, walk, b);
    int same = 0, n = 0;
    const auto& ra = ca.rss.at(1);
    const auto& rb = cb.rss.at(1);
    for (std::size_t i = 0; i < std::min(ra.size(), rb.size()); ++i) {
        same += ra[i].value == rb[i].value;
        ++n;
    }
    EXPECT_LT(same, n / 4) << sc.name;
}

TEST_P(ScenarioProperty, RssLevelDropsWithTargetDistance) {
    // A short probe walk against beacons at 2.5 m vs 5.0 m along the same
    // bearing: the farther beacon must read clearly weaker.
    Scenario sc = scenario(GetParam());
    sc.site.blockers.clear();
    sc.site.walls.clear();  // pure distance effect
    const locble::Vec2 start = sc.observer_start;
    const locble::Vec2 dir =
        (sc.default_beacon - start) * (1.0 / (sc.default_beacon - start).norm());
    const auto walk = imu::make_straight(start, dir.angle(), 1.0);

    auto mean_rss_at = [&](double d) {
        BeaconPlacement beacon;
        beacon.position = start + dir * d;
        locble::Rng rng(31);
        const auto cap = CaptureRunner().run(sc.site, {beacon}, walk, rng);
        return locble::mean(locble::values_of(cap.rss.at(1)));
    };
    EXPECT_GT(mean_rss_at(2.5), mean_rss_at(5.0) + 2.0) << sc.name;
}

TEST_P(ScenarioProperty, MeasurementFrameConsistency) {
    const Scenario sc = scenario(GetParam());
    BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    MeasurementConfig cfg;
    locble::Rng rng(13);
    const auto out = measure_stationary(sc, beacon, cfg, rng);
    if (!out.ok) return;  // a hard seed is allowed; frame math is what we test
    const locble::Vec2 recon = observer_to_site(
        out.estimate_observer_frame, sc.observer_start, sc.observer_heading);
    EXPECT_NEAR(recon.x, out.estimate_site.x, 1e-9) << sc.name;
    EXPECT_NEAR(recon.y, out.estimate_site.y, 1e-9) << sc.name;
    EXPECT_NEAR(out.error_m,
                locble::Vec2::distance(out.estimate_site, out.truth_site), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllEnvironments, ScenarioProperty, ::testing::Range(1, 10));

}  // namespace
}  // namespace locble::sim
