// Property-style sweeps over DTW: the lower bound must bound, identity must
// cost zero, and the distance must be symmetric, across lengths, windows
// and random data.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "locble/common/rng.hpp"
#include "locble/core/dtw.hpp"

namespace locble::core {
namespace {

std::vector<double> random_seq(std::size_t n, locble::Rng& rng, double scale) {
    std::vector<double> out(n);
    double level = rng.gaussian(0.0, scale);
    for (auto& v : out) {
        level = 0.8 * level + rng.gaussian(0.0, scale * 0.5);
        v = level;
    }
    return out;
}

using DtwParam = std::tuple<std::size_t /*len*/, std::size_t /*window*/>;

class DtwProperty : public ::testing::TestWithParam<DtwParam> {};

TEST_P(DtwProperty, LowerBoundNeverExceedsDtw) {
    const auto [len, window] = GetParam();
    locble::Rng rng(len * 31 + window);
    for (int trial = 0; trial < 25; ++trial) {
        const auto a = random_seq(len, rng, 1.5);
        const auto b = random_seq(len, rng, 1.5);
        EXPECT_LE(lb_keogh(a, b, window), dtw_distance(a, b, window) + 1e-9)
            << "len " << len << " window " << window;
    }
}

TEST_P(DtwProperty, IdentityCostsZero) {
    const auto [len, window] = GetParam();
    locble::Rng rng(len * 17 + window + 1);
    const auto a = random_seq(len, rng, 2.0);
    EXPECT_NEAR(dtw_distance(a, a, window), 0.0, 1e-12);
    EXPECT_NEAR(lb_keogh(a, a, window), 0.0, 1e-12);
}

TEST_P(DtwProperty, SymmetricForEqualLengths) {
    const auto [len, window] = GetParam();
    locble::Rng rng(len * 13 + window + 2);
    const auto a = random_seq(len, rng, 1.0);
    const auto b = random_seq(len, rng, 1.0);
    EXPECT_NEAR(dtw_distance(a, b, window), dtw_distance(b, a, window), 1e-9);
}

TEST_P(DtwProperty, WiderWindowNeverRaisesCost) {
    const auto [len, window] = GetParam();
    locble::Rng rng(len * 11 + window + 3);
    const auto a = random_seq(len, rng, 1.0);
    const auto b = random_seq(len, rng, 1.0);
    const double tight = dtw_distance(a, b, window);
    const double loose = dtw_distance(a, b, window * 2 + 1);
    EXPECT_LE(loose, tight + 1e-9);
}

TEST_P(DtwProperty, EnvelopeWidensWithWindow) {
    const auto [len, window] = GetParam();
    locble::Rng rng(len * 7 + window + 4);
    const auto a = random_seq(len, rng, 1.0);
    const auto tight = warping_envelope(a, window);
    const auto loose = warping_envelope(a, window + 2);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_LE(loose.lower[i], tight.lower[i] + 1e-12);
        EXPECT_GE(loose.upper[i], tight.upper[i] - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(LengthsAndWindows, DtwProperty,
                         ::testing::Combine(::testing::Values<std::size_t>(8, 10, 25,
                                                                           60),
                                            ::testing::Values<std::size_t>(1, 3, 5)));

}  // namespace
}  // namespace locble::core
