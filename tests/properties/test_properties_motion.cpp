// Property-style sweeps over the motion stack: step counting and dead
// reckoning must stay calibrated across walking speeds, walk lengths and
// turn angles — the paper's accuracy figures are not tied to one gait.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <tuple>

#include "locble/common/rng.hpp"
#include "locble/common/units.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/imu/trajectory.hpp"
#include "locble/motion/dead_reckoning.hpp"

namespace locble::motion {
namespace {

using locble::Vec2;

using GaitParam = std::tuple<double /*speed*/, double /*length*/>;

class StepDistanceProperty : public ::testing::TestWithParam<GaitParam> {};

TEST_P(StepDistanceProperty, DistanceAccuracyAcrossGaits) {
    const auto [speed, length] = GetParam();
    imu::Trajectory::Config tcfg;
    tcfg.walk_speed = speed;
    const imu::Trajectory walk({Vec2{0, 0}, Vec2{length, 0}}, tcfg);

    double rel_err = 0.0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        locble::Rng rng(seed * 19 + static_cast<std::uint64_t>(speed * 10));
        const auto trace = imu::ImuSynthesizer().synthesize(walk, rng);
        const auto det = StepDetector().detect(trace.accel_vertical);
        rel_err += std::abs(det.total_distance_m - length) / length;
        ++runs;
    }
    // Paper: ~94.8% accuracy. Step counting quantizes at one step, so the
    // bound widens by half a step's share of a short walk.
    const imu::GaitModel gait{};
    const double step_len =
        gait.length_for_frequency(gait.frequency_for_speed(speed));
    EXPECT_LT(rel_err / runs, 0.10 + 0.5 * step_len / length)
        << "speed " << speed << " length " << length;
}

INSTANTIATE_TEST_SUITE_P(Gaits, StepDistanceProperty,
                         ::testing::Combine(::testing::Values(0.8, 1.1, 1.4),
                                            ::testing::Values(4.0, 7.0, 10.0)));

class TurnAngleProperty : public ::testing::TestWithParam<double /*angle deg*/> {};

TEST_P(TurnAngleProperty, AngleErrorSmallAcrossTurns) {
    const double angle_deg = GetParam();
    const double angle = locble::deg_to_rad(angle_deg);
    double err_deg = 0.0;
    int detected = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto walk = imu::make_l_shape({0, 0}, 0.1, 4.0, 3.0, angle);
        locble::Rng rng(seed * 23 + static_cast<std::uint64_t>(angle_deg + 360));
        const auto trace = imu::ImuSynthesizer().synthesize(walk, rng);
        const auto turns = TurnDetector().detect(trace.gyro_z, trace.mag_heading);
        if (turns.size() != 1) continue;
        err_deg += std::abs(locble::rad_to_deg(turns[0].angle_rad) - angle_deg);
        ++detected;
    }
    ASSERT_GE(detected, 8) << "angle " << angle_deg;
    // Paper: 3.45 deg mean error.
    EXPECT_LT(err_deg / detected, 6.0) << "angle " << angle_deg;
}

INSTANTIATE_TEST_SUITE_P(TurnAngles, TurnAngleProperty,
                         ::testing::Values(45.0, 90.0, 135.0, -45.0, -90.0, -135.0));

class DeadReckoningProperty : public ::testing::TestWithParam<double /*heading*/> {};

TEST_P(DeadReckoningProperty, EndpointErrorBoundedForAnyAbsoluteHeading) {
    // The observer frame is heading-relative: dead reckoning quality must
    // not depend on which way the user happens to face.
    const double heading = GetParam();
    const auto walk = imu::make_l_shape({5, 5}, heading, 4.0, 3.0,
                                        std::numbers::pi / 2.0);
    double err = 0.0;
    int runs = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        locble::Rng rng(seed * 29 + static_cast<std::uint64_t>(heading * 100 + 700));
        const auto trace = imu::ImuSynthesizer().synthesize(walk, rng);
        DeadReckoner::Config cfg;
        cfg.snap_right_angles = true;
        const auto est = DeadReckoner(cfg).track(trace);
        // True endpoint in the observer frame is (4, 3).
        err += locble::Vec2::distance(est.path.back().position, {4.0, 3.0});
        ++runs;
    }
    EXPECT_LT(err / runs, 0.9) << "heading " << heading;
}

INSTANTIATE_TEST_SUITE_P(Headings, DeadReckoningProperty,
                         ::testing::Values(0.0, 0.7, 1.57, 2.8, -2.2, -0.9));

}  // namespace
}  // namespace locble::motion
