// Property-style sweeps over the location solver: exact recovery on clean
// data must hold across the whole (target position, exponent, gamma) space,
// and noisy recovery must stay within a calibrated bound.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "locble/common/rng.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {
namespace {

using locble::Vec2;

std::vector<FusedSample> l_samples(const Vec2& target, double gamma, double n,
                                   double noise, std::uint64_t seed) {
    locble::Rng rng(seed);
    std::vector<FusedSample> out;
    double t = 0.0;
    auto add = [&](const Vec2& obs) {
        FusedSample s;
        s.t = t;
        s.p = -obs.x;
        s.q = -obs.y;
        const double l = std::max(Vec2::distance(target, obs), 0.1);
        s.rssi = gamma - 10.0 * n * std::log10(l) +
                 (noise > 0 ? rng.gaussian(0.0, noise) : 0.0);
        out.push_back(s);
        t += 0.1;
    };
    for (int i = 0; i < 25; ++i) add({4.0 * i / 24.0, 0.0});
    for (int i = 0; i < 25; ++i) add({4.0, 3.0 * i / 24.0});
    return out;
}

using CleanParam = std::tuple<double /*x*/, double /*h*/, double /*n*/, double /*g*/>;

class SolverCleanRecovery : public ::testing::TestWithParam<CleanParam> {};

TEST_P(SolverCleanRecovery, RecoversTargetAndChannel) {
    const auto [x, h, n, g] = GetParam();
    const Vec2 target{x, h};
    const auto fit = LocationSolver().solve(l_samples(target, g, n, 0.0, 1));
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->location.x, x, 0.35) << "n=" << n;
    EXPECT_NEAR(fit->location.y, h, 0.35) << "n=" << n;
    EXPECT_NEAR(fit->exponent, n, 0.25);
    EXPECT_NEAR(fit->gamma_dbm, g, 2.0);
    EXPECT_LT(fit->residual_db, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    TargetChannelSpace, SolverCleanRecovery,
    ::testing::Values(CleanParam{5.0, 2.0, 2.0, -59.0},   // nominal
                      CleanParam{5.0, -2.0, 2.0, -59.0},  // below the walk axis
                      CleanParam{2.5, 4.0, 2.0, -59.0},   // steep bearing
                      CleanParam{7.0, 1.0, 1.8, -55.0},   // far, shallow exponent
                      CleanParam{6.0, 3.0, 2.8, -62.0},   // p-LOS-like exponent
                      CleanParam{3.0, 3.0, 3.4, -66.0},   // NLOS-like
                      CleanParam{8.0, 4.0, 2.2, -59.0},   // long range
                      CleanParam{1.5, 1.0, 2.0, -50.0}    // very close, hot beacon
                      ));

using NoisyParam = std::tuple<double /*noise*/, double /*mean err bound*/>;

class SolverNoisyRecovery : public ::testing::TestWithParam<NoisyParam> {};

TEST_P(SolverNoisyRecovery, MeanErrorWithinBound) {
    // With the deployment-time Gamma prior (the beacon frame's calibrated
    // 1 m power +- a calibration band) the error must scale with noise.
    // Without a prior, Gamma/exponent/distance form a flat ridge and even
    // tiny noise wanders along it — which is why the pipeline always
    // provides the prior.
    const auto [noise, bound] = GetParam();
    const Vec2 target{5.0, 3.0};
    SolveHints hints;
    hints.gamma_band_dbm = {{-64.0, -54.0}};
    double err = 0.0;
    int count = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto fit =
            LocationSolver().solve(l_samples(target, -59.0, 2.0, noise, seed), hints);
        ASSERT_TRUE(fit.has_value()) << "noise " << noise;
        err += Vec2::distance(fit->location, target);
        ++count;
    }
    EXPECT_LT(err / count, bound) << "noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseScaling, SolverNoisyRecovery,
                         ::testing::Values(NoisyParam{0.5, 0.5},
                                           NoisyParam{1.0, 0.8},
                                           NoisyParam{2.0, 1.5},
                                           NoisyParam{3.0, 2.2}));

class SolverSegmentProperty : public ::testing::TestWithParam<double /*loss dB*/> {};

TEST_P(SolverSegmentProperty, SegmentGammaAbsorbsInsertionLoss) {
    // Second half of the walk is behind a blocker: the RSS drops by a fixed
    // insertion loss. With segment tags the solver must still recover the
    // target and report two gammas separated by roughly the loss.
    const double loss = GetParam();
    const Vec2 target{5.0, 2.0};
    auto samples = l_samples(target, -59.0, 2.0, 0.2, 3);
    for (std::size_t i = samples.size() / 2; i < samples.size(); ++i) {
        samples[i].rssi -= loss;
        samples[i].segment = 1;
    }
    SolveHints hints;
    hints.gamma_band_dbm = {{-59.0 - loss - 6.0, -53.0}};
    const auto fit = LocationSolver().solve(samples, hints);
    ASSERT_TRUE(fit.has_value());
    EXPECT_NEAR(fit->location.x, target.x, 0.8) << "loss " << loss;
    EXPECT_NEAR(fit->location.y, target.y, 0.8);
    ASSERT_EQ(fit->segment_gammas.size(), 2u);
    EXPECT_NEAR(fit->segment_gammas[0] - fit->segment_gammas[1], loss, 2.0);
}

INSTANTIATE_TEST_SUITE_P(InsertionLosses, SolverSegmentProperty,
                         ::testing::Values(3.0, 6.0, 9.0, 12.0));


class SolverAblationProperty : public ::testing::TestWithParam<int /*variant*/> {};

TEST_P(SolverAblationProperty, EveryVariantStillSolvesCleanData) {
    // The ablation switches degrade accuracy, never correctness: each
    // variant must still recover a clean L-shape measurement.
    LocationSolver::Config cfg;
    switch (GetParam()) {
        case 0: cfg.use_wls = false; break;
        case 1: cfg.use_gn_refinement = false; break;
        case 2: cfg.use_model_averaging = false; break;
        case 3:
            cfg.use_wls = false;
            cfg.use_gn_refinement = false;
            cfg.use_model_averaging = false;
            break;
    }
    const Vec2 target{5.0, 2.0};
    const auto fit = LocationSolver(cfg).solve(l_samples(target, -59.0, 2.0, 0.0, 1));
    ASSERT_TRUE(fit.has_value()) << "variant " << GetParam();
    EXPECT_NEAR(fit->location.x, target.x, 0.6) << "variant " << GetParam();
    EXPECT_NEAR(fit->location.y, target.y, 0.6) << "variant " << GetParam();
}

TEST_P(SolverAblationProperty, FullEstimatorAtLeastAsGoodUnderNoise) {
    LocationSolver::Config cfg;
    switch (GetParam()) {
        case 0: cfg.use_wls = false; break;
        case 1: cfg.use_gn_refinement = false; break;
        case 2: cfg.use_model_averaging = false; break;
        case 3: return;  // combined variant covered above
    }
    const Vec2 target{5.0, 3.0};
    SolveHints hints;
    hints.gamma_band_dbm = {{-64.0, -54.0}};
    double full_err = 0.0, variant_err = 0.0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto samples = l_samples(target, -59.0, 2.0, 2.0, seed);
        const auto full = LocationSolver().solve(samples, hints);
        const auto variant = LocationSolver(cfg).solve(samples, hints);
        ASSERT_TRUE(full.has_value());
        ASSERT_TRUE(variant.has_value());
        full_err += Vec2::distance(full->location, target);
        variant_err += Vec2::distance(variant->location, target);
    }
    // Allow a small tie margin: the switches must never *help* materially.
    EXPECT_LE(full_err, variant_err + 1.0) << "variant " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Variants, SolverAblationProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace locble::core
