// Property-style sweeps over the channel substrate: the path-loss inverse
// must round-trip over the whole parameter space, the shadowing field must
// be smooth and statistically calibrated, and the classifier geometry must
// be consistent under translation.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "locble/channel/fading.hpp"
#include "locble/channel/obstacles.hpp"
#include "locble/channel/propagation.hpp"
#include "locble/common/rng.hpp"
#include "locble/common/stats.hpp"

namespace locble::channel {
namespace {

using PathLossParam = std::tuple<double /*gamma*/, double /*n*/>;

class PathLossProperty : public ::testing::TestWithParam<PathLossParam> {};

TEST_P(PathLossProperty, InverseRoundTrips) {
    const auto [gamma, n] = GetParam();
    const LogDistanceModel m{gamma, n};
    for (double d = 0.2; d < 18.0; d += 0.7)
        EXPECT_NEAR(m.distance_for(m.rssi_at(d)), d, 1e-9) << "d " << d;
}

TEST_P(PathLossProperty, TenPerDecadeSlope) {
    const auto [gamma, n] = GetParam();
    const LogDistanceModel m{gamma, n};
    EXPECT_NEAR(m.rssi_at(1.0) - m.rssi_at(10.0), 10.0 * n, 1e-9);
    EXPECT_NEAR(m.rssi_at(1.5) - m.rssi_at(15.0), 10.0 * n, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ChannelSpace, PathLossProperty,
                         ::testing::Combine(::testing::Values(-50.0, -59.0, -66.0),
                                            ::testing::Values(1.6, 2.0, 2.7, 3.5)));

class ShadowingFieldProperty
    : public ::testing::TestWithParam<double /*correlation length*/> {};

TEST_P(ShadowingFieldProperty, UnitVarianceAcrossSpace) {
    const double corr = GetParam();
    locble::RunningStats rs;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const ShadowingField field(corr, locble::Rng(seed));
        locble::Rng pos_rng(seed + 100);
        for (int i = 0; i < 600; ++i)
            rs.add(field.at({pos_rng.uniform(0.0, 60.0), pos_rng.uniform(0.0, 60.0)}));
    }
    EXPECT_NEAR(rs.mean(), 0.0, 0.15) << "corr " << corr;
    EXPECT_NEAR(rs.stddev(), 1.0, 0.2) << "corr " << corr;
}

TEST_P(ShadowingFieldProperty, SmoothAtSubCorrelationScale) {
    const double corr = GetParam();
    const ShadowingField field(corr, locble::Rng(7));
    locble::Rng rng(8);
    locble::RunningStats deltas;
    for (int i = 0; i < 400; ++i) {
        const locble::Vec2 p{rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)};
        const locble::Vec2 q = p + locble::Vec2{corr / 20.0, 0.0};
        deltas.add(std::abs(field.at(p) - field.at(q)));
    }
    // A 5% -of-correlation-length step moves the field only slightly.
    EXPECT_LT(deltas.mean(), 0.25) << "corr " << corr;
}

TEST_P(ShadowingFieldProperty, CoLocatedLinksShadowTogether) {
    const double corr = GetParam();
    const ShadowingField field(corr, locble::Rng(9));
    locble::Rng rng(10);
    locble::RunningStats gap;
    for (int i = 0; i < 300; ++i) {
        const locble::Vec2 rx{rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
        const locble::Vec2 tx1{rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
        const locble::Vec2 tx2 = tx1 + locble::Vec2{0.2, 0.1};  // co-located pair
        gap.add(std::abs(field.link_shadow_db(tx1, rx, 3.0) -
                         field.link_shadow_db(tx2, rx, 3.0)));
    }
    // 0.22 m apart << correlation length: near-identical shadowing.
    EXPECT_LT(gap.mean(), 0.6) << "corr " << corr;
}

INSTANTIATE_TEST_SUITE_P(CorrelationLengths, ShadowingFieldProperty,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

class BlockageTranslationProperty
    : public ::testing::TestWithParam<double /*shift*/> {};

TEST_P(BlockageTranslationProperty, ClassificationInvariantUnderTranslation) {
    const double shift = GetParam();
    const locble::Vec2 d{shift, -shift / 2.0};
    std::vector<Wall> walls{{{2, -1}, {2, 1}, BlockageClass::heavy, 12.0, "w"}};
    std::vector<Wall> moved{{walls[0].a + d, walls[0].b + d, BlockageClass::heavy,
                             12.0, "w"}};
    for (double y = -2.0; y <= 2.0; y += 0.25) {
        const auto base =
            classify_path({0, 0}, {4, y}, 0.0, walls, {}).propagation;
        const auto shifted = classify_path(locble::Vec2{0, 0} + d,
                                           locble::Vec2{4, y} + d, 0.0, moved, {})
                                 .propagation;
        EXPECT_EQ(base, shifted) << "y " << y << " shift " << shift;
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, BlockageTranslationProperty,
                         ::testing::Values(0.5, 3.0, -7.25, 40.0));

}  // namespace
}  // namespace locble::channel
