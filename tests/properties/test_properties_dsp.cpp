// Property-style sweeps over the DSP layer: Butterworth designs must hold
// their defining invariants across the whole (order, cutoff, rate) space
// the library ever uses, not just the shipped configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <tuple>

#include "locble/common/rng.hpp"
#include "locble/common/stats.hpp"
#include "locble/dsp/anf.hpp"
#include "locble/dsp/butterworth.hpp"

namespace locble::dsp {
namespace {

double magnitude_at(const BiquadCascade& cascade, double f, double fs) {
    const std::complex<double> z = std::polar(1.0, 2.0 * std::numbers::pi * f / fs);
    std::complex<double> h = 1.0;
    for (const auto& s : cascade.sections()) {
        const auto& c = s.coeffs();
        h *= (c.b0 + c.b1 / z + c.b2 / (z * z)) / (1.0 + c.a1 / z + c.a2 / (z * z));
    }
    return std::abs(h);
}

using ButterParam = std::tuple<int /*order*/, double /*cutoff*/, double /*fs*/>;

class ButterworthProperty : public ::testing::TestWithParam<ButterParam> {};

TEST_P(ButterworthProperty, UnityDcGain) {
    const auto [order, fc, fs] = GetParam();
    EXPECT_NEAR(design_butterworth_lowpass(order, fc, fs).dc_gain(), 1.0, 1e-9);
}

TEST_P(ButterworthProperty, MinusThreeDbAtCutoff) {
    const auto [order, fc, fs] = GetParam();
    const auto f = design_butterworth_lowpass(order, fc, fs);
    EXPECT_NEAR(20.0 * std::log10(magnitude_at(f, fc, fs)), -3.0103, 0.1);
}

TEST_P(ButterworthProperty, MonotoneMagnitude) {
    const auto [order, fc, fs] = GetParam();
    const auto f = design_butterworth_lowpass(order, fc, fs);
    double prev = magnitude_at(f, fs / 1000.0, fs);
    for (int i = 1; i <= 40; ++i) {
        const double freq = i * (fs / 2.0 - 1e-3) / 41.0;
        const double mag = magnitude_at(f, freq, fs);
        EXPECT_LE(mag, prev + 1e-9) << "order " << order << " at " << freq;
        prev = mag;
    }
}

TEST_P(ButterworthProperty, ImpulseResponseDecays) {
    const auto [order, fc, fs] = GetParam();
    auto f = design_butterworth_lowpass(order, fc, fs);
    f.process(1.0);
    double late = 0.0;
    for (int i = 0; i < 2000; ++i) {
        const double v = f.process(0.0);
        if (i > 1800) late += v * v;
    }
    EXPECT_LT(late, 1e-9);
}

TEST_P(ButterworthProperty, PrimeStartsAtSteadyState) {
    const auto [order, fc, fs] = GetParam();
    auto f = design_butterworth_lowpass(order, fc, fs);
    f.prime(-72.5);
    for (int i = 0; i < 8; ++i) EXPECT_NEAR(f.process(-72.5), -72.5, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, ButterworthProperty,
    ::testing::Values(ButterParam{1, 0.7, 10.0}, ButterParam{2, 0.7, 10.0},
                      ButterParam{3, 1.0, 10.0}, ButterParam{4, 0.5, 10.0},
                      ButterParam{5, 1.5, 10.0}, ButterParam{6, 0.7, 10.0},
                      ButterParam{6, 0.35, 5.5}, ButterParam{6, 1.5, 9.0},
                      ButterParam{8, 2.0, 20.0}, ButterParam{2, 10.0, 100.0}));

class AnfNoiseProperty : public ::testing::TestWithParam<double /*noise std*/> {};

TEST_P(AnfNoiseProperty, OfflineAnfNeverAmplifiesStationaryNoise) {
    const double noise = GetParam();
    locble::Rng rng(static_cast<std::uint64_t>(noise * 100) + 1);
    locble::TimeSeries raw;
    for (int i = 0; i < 300; ++i)
        raw.push_back({0.1 * i, -70.0 + rng.gaussian(0.0, noise)});
    const Anf anf;
    const auto out = anf.process_offline(raw);
    std::vector<double> in_tail, out_tail;
    for (std::size_t i = 30; i < raw.size(); ++i) {
        in_tail.push_back(raw[i].value);
        out_tail.push_back(out[i].value);
    }
    EXPECT_LE(locble::variance(out_tail), locble::variance(in_tail) + 1e-12)
        << "noise " << noise;
    // And the mean level is preserved.
    EXPECT_NEAR(locble::mean(out_tail), -70.0, std::max(0.5, noise / 2.0));
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, AnfNoiseProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 3.5, 5.0));

}  // namespace
}  // namespace locble::dsp
