// Property-style sweeps over the BLE codecs: every frame format must
// round-trip for arbitrary field values, and every generated beacon PDU
// must parse back identically after air serialization.

#include <gtest/gtest.h>

#include "locble/ble/frames.hpp"
#include "locble/common/rng.hpp"

namespace locble::ble {
namespace {

class FrameRoundTrip : public ::testing::TestWithParam<std::uint64_t /*seed*/> {};

TEST_P(FrameRoundTrip, IBeaconArbitraryFields) {
    locble::Rng rng(GetParam());
    IBeaconFrame f;
    f.uuid = Uuid128::from_id(rng.engine()());
    f.major = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    f.minor = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    f.measured_power = static_cast<std::int8_t>(rng.uniform_int(-100, -20));
    const auto back = decode_ibeacon(encode_ibeacon(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->uuid, f.uuid);
    EXPECT_EQ(back->major, f.major);
    EXPECT_EQ(back->minor, f.minor);
    EXPECT_EQ(back->measured_power, f.measured_power);
}

TEST_P(FrameRoundTrip, EddystoneArbitraryFields) {
    locble::Rng rng(GetParam() + 1000);
    EddystoneUidFrame f;
    f.tx_power = static_cast<std::int8_t>(rng.uniform_int(-40, 20));
    for (auto& b : f.namespace_id)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& b : f.instance_id)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto back = decode_eddystone_uid(encode_eddystone_uid(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->tx_power, f.tx_power);
    EXPECT_EQ(back->namespace_id, f.namespace_id);
    EXPECT_EQ(back->instance_id, f.instance_id);
}

TEST_P(FrameRoundTrip, AltBeaconArbitraryFields) {
    locble::Rng rng(GetParam() + 2000);
    AltBeaconFrame f;
    f.manufacturer_id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
    for (auto& b : f.beacon_id) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    f.reference_rssi = static_cast<std::int8_t>(rng.uniform_int(-100, -20));
    f.mfg_reserved = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto back = decode_altbeacon(encode_altbeacon(f));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->manufacturer_id, f.manufacturer_id);
    EXPECT_EQ(back->beacon_id, f.beacon_id);
    EXPECT_EQ(back->reference_rssi, f.reference_rssi);
    EXPECT_EQ(back->mfg_reserved, f.mfg_reserved);
}

TEST_P(FrameRoundTrip, PduAirSerializationAllFormats) {
    const std::uint64_t id = GetParam() * 7919 + 3;
    for (auto fmt : {BeaconFormat::ibeacon, BeaconFormat::eddystone_uid,
                     BeaconFormat::altbeacon}) {
        const AdvertisingPdu pdu = make_beacon_pdu(id, fmt, -61);
        const AdvertisingPdu back = AdvertisingPdu::parse(pdu.serialize());
        EXPECT_EQ(back.type, pdu.type);
        EXPECT_EQ(back.address, pdu.address);
        EXPECT_EQ(back.payload, pdu.payload);
        EXPECT_EQ(beacon_measured_power(back.payload), -61);
    }
}

TEST_P(FrameRoundTrip, UuidStringRoundTrip) {
    const Uuid128 u = Uuid128::from_id(GetParam() * 31 + 5);
    EXPECT_EQ(Uuid128::from_string(u.str()), u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace locble::ble
