# Empty dependencies file for find_lost_item.
# This may be replaced when dependencies are built.
