file(REMOVE_RECURSE
  "CMakeFiles/find_lost_item.dir/find_lost_item.cpp.o"
  "CMakeFiles/find_lost_item.dir/find_lost_item.cpp.o.d"
  "find_lost_item"
  "find_lost_item.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_lost_item.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
