# Empty dependencies file for locble_cli.
# This may be replaced when dependencies are built.
