file(REMOVE_RECURSE
  "CMakeFiles/locble_cli.dir/locble_cli.cpp.o"
  "CMakeFiles/locble_cli.dir/locble_cli.cpp.o.d"
  "locble_cli"
  "locble_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
