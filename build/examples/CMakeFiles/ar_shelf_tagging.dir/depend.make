# Empty dependencies file for ar_shelf_tagging.
# This may be replaced when dependencies are built.
