file(REMOVE_RECURSE
  "CMakeFiles/ar_shelf_tagging.dir/ar_shelf_tagging.cpp.o"
  "CMakeFiles/ar_shelf_tagging.dir/ar_shelf_tagging.cpp.o.d"
  "ar_shelf_tagging"
  "ar_shelf_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_shelf_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
