file(REMOVE_RECURSE
  "liblocble_dsp.a"
)
