
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/dsp/anf.cpp" "src/locble/dsp/CMakeFiles/locble_dsp.dir/anf.cpp.o" "gcc" "src/locble/dsp/CMakeFiles/locble_dsp.dir/anf.cpp.o.d"
  "/root/repo/src/locble/dsp/biquad.cpp" "src/locble/dsp/CMakeFiles/locble_dsp.dir/biquad.cpp.o" "gcc" "src/locble/dsp/CMakeFiles/locble_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/locble/dsp/butterworth.cpp" "src/locble/dsp/CMakeFiles/locble_dsp.dir/butterworth.cpp.o" "gcc" "src/locble/dsp/CMakeFiles/locble_dsp.dir/butterworth.cpp.o.d"
  "/root/repo/src/locble/dsp/kalman.cpp" "src/locble/dsp/CMakeFiles/locble_dsp.dir/kalman.cpp.o" "gcc" "src/locble/dsp/CMakeFiles/locble_dsp.dir/kalman.cpp.o.d"
  "/root/repo/src/locble/dsp/moving_average.cpp" "src/locble/dsp/CMakeFiles/locble_dsp.dir/moving_average.cpp.o" "gcc" "src/locble/dsp/CMakeFiles/locble_dsp.dir/moving_average.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
