# Empty compiler generated dependencies file for locble_dsp.
# This may be replaced when dependencies are built.
