file(REMOVE_RECURSE
  "CMakeFiles/locble_dsp.dir/anf.cpp.o"
  "CMakeFiles/locble_dsp.dir/anf.cpp.o.d"
  "CMakeFiles/locble_dsp.dir/biquad.cpp.o"
  "CMakeFiles/locble_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/locble_dsp.dir/butterworth.cpp.o"
  "CMakeFiles/locble_dsp.dir/butterworth.cpp.o.d"
  "CMakeFiles/locble_dsp.dir/kalman.cpp.o"
  "CMakeFiles/locble_dsp.dir/kalman.cpp.o.d"
  "CMakeFiles/locble_dsp.dir/moving_average.cpp.o"
  "CMakeFiles/locble_dsp.dir/moving_average.cpp.o.d"
  "liblocble_dsp.a"
  "liblocble_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
