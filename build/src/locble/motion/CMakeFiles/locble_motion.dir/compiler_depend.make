# Empty compiler generated dependencies file for locble_motion.
# This may be replaced when dependencies are built.
