
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/motion/dead_reckoning.cpp" "src/locble/motion/CMakeFiles/locble_motion.dir/dead_reckoning.cpp.o" "gcc" "src/locble/motion/CMakeFiles/locble_motion.dir/dead_reckoning.cpp.o.d"
  "/root/repo/src/locble/motion/heading_filter.cpp" "src/locble/motion/CMakeFiles/locble_motion.dir/heading_filter.cpp.o" "gcc" "src/locble/motion/CMakeFiles/locble_motion.dir/heading_filter.cpp.o.d"
  "/root/repo/src/locble/motion/step_detector.cpp" "src/locble/motion/CMakeFiles/locble_motion.dir/step_detector.cpp.o" "gcc" "src/locble/motion/CMakeFiles/locble_motion.dir/step_detector.cpp.o.d"
  "/root/repo/src/locble/motion/turn_detector.cpp" "src/locble/motion/CMakeFiles/locble_motion.dir/turn_detector.cpp.o" "gcc" "src/locble/motion/CMakeFiles/locble_motion.dir/turn_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/dsp/CMakeFiles/locble_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/imu/CMakeFiles/locble_imu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
