file(REMOVE_RECURSE
  "CMakeFiles/locble_motion.dir/dead_reckoning.cpp.o"
  "CMakeFiles/locble_motion.dir/dead_reckoning.cpp.o.d"
  "CMakeFiles/locble_motion.dir/heading_filter.cpp.o"
  "CMakeFiles/locble_motion.dir/heading_filter.cpp.o.d"
  "CMakeFiles/locble_motion.dir/step_detector.cpp.o"
  "CMakeFiles/locble_motion.dir/step_detector.cpp.o.d"
  "CMakeFiles/locble_motion.dir/turn_detector.cpp.o"
  "CMakeFiles/locble_motion.dir/turn_detector.cpp.o.d"
  "liblocble_motion.a"
  "liblocble_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
