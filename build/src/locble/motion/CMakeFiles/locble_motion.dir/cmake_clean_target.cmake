file(REMOVE_RECURSE
  "liblocble_motion.a"
)
