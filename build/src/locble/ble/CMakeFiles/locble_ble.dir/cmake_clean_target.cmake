file(REMOVE_RECURSE
  "liblocble_ble.a"
)
