file(REMOVE_RECURSE
  "CMakeFiles/locble_ble.dir/advertiser.cpp.o"
  "CMakeFiles/locble_ble.dir/advertiser.cpp.o.d"
  "CMakeFiles/locble_ble.dir/frames.cpp.o"
  "CMakeFiles/locble_ble.dir/frames.cpp.o.d"
  "CMakeFiles/locble_ble.dir/pdu.cpp.o"
  "CMakeFiles/locble_ble.dir/pdu.cpp.o.d"
  "CMakeFiles/locble_ble.dir/scanner.cpp.o"
  "CMakeFiles/locble_ble.dir/scanner.cpp.o.d"
  "liblocble_ble.a"
  "liblocble_ble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
