# Empty compiler generated dependencies file for locble_ble.
# This may be replaced when dependencies are built.
