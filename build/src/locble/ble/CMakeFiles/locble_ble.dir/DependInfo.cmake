
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/ble/advertiser.cpp" "src/locble/ble/CMakeFiles/locble_ble.dir/advertiser.cpp.o" "gcc" "src/locble/ble/CMakeFiles/locble_ble.dir/advertiser.cpp.o.d"
  "/root/repo/src/locble/ble/frames.cpp" "src/locble/ble/CMakeFiles/locble_ble.dir/frames.cpp.o" "gcc" "src/locble/ble/CMakeFiles/locble_ble.dir/frames.cpp.o.d"
  "/root/repo/src/locble/ble/pdu.cpp" "src/locble/ble/CMakeFiles/locble_ble.dir/pdu.cpp.o" "gcc" "src/locble/ble/CMakeFiles/locble_ble.dir/pdu.cpp.o.d"
  "/root/repo/src/locble/ble/scanner.cpp" "src/locble/ble/CMakeFiles/locble_ble.dir/scanner.cpp.o" "gcc" "src/locble/ble/CMakeFiles/locble_ble.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
