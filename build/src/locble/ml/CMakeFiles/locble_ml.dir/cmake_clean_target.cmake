file(REMOVE_RECURSE
  "liblocble_ml.a"
)
