file(REMOVE_RECURSE
  "CMakeFiles/locble_ml.dir/dataset.cpp.o"
  "CMakeFiles/locble_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/locble_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/locble_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/locble_ml.dir/knn.cpp.o"
  "CMakeFiles/locble_ml.dir/knn.cpp.o.d"
  "CMakeFiles/locble_ml.dir/metrics.cpp.o"
  "CMakeFiles/locble_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/locble_ml.dir/svm.cpp.o"
  "CMakeFiles/locble_ml.dir/svm.cpp.o.d"
  "liblocble_ml.a"
  "liblocble_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
