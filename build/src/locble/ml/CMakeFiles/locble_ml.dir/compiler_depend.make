# Empty compiler generated dependencies file for locble_ml.
# This may be replaced when dependencies are built.
