
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/ml/dataset.cpp" "src/locble/ml/CMakeFiles/locble_ml.dir/dataset.cpp.o" "gcc" "src/locble/ml/CMakeFiles/locble_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/locble/ml/decision_tree.cpp" "src/locble/ml/CMakeFiles/locble_ml.dir/decision_tree.cpp.o" "gcc" "src/locble/ml/CMakeFiles/locble_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/locble/ml/knn.cpp" "src/locble/ml/CMakeFiles/locble_ml.dir/knn.cpp.o" "gcc" "src/locble/ml/CMakeFiles/locble_ml.dir/knn.cpp.o.d"
  "/root/repo/src/locble/ml/metrics.cpp" "src/locble/ml/CMakeFiles/locble_ml.dir/metrics.cpp.o" "gcc" "src/locble/ml/CMakeFiles/locble_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/locble/ml/svm.cpp" "src/locble/ml/CMakeFiles/locble_ml.dir/svm.cpp.o" "gcc" "src/locble/ml/CMakeFiles/locble_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
