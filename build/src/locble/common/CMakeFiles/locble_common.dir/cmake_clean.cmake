file(REMOVE_RECURSE
  "CMakeFiles/locble_common.dir/cdf.cpp.o"
  "CMakeFiles/locble_common.dir/cdf.cpp.o.d"
  "CMakeFiles/locble_common.dir/csv.cpp.o"
  "CMakeFiles/locble_common.dir/csv.cpp.o.d"
  "CMakeFiles/locble_common.dir/linalg.cpp.o"
  "CMakeFiles/locble_common.dir/linalg.cpp.o.d"
  "CMakeFiles/locble_common.dir/stats.cpp.o"
  "CMakeFiles/locble_common.dir/stats.cpp.o.d"
  "CMakeFiles/locble_common.dir/table.cpp.o"
  "CMakeFiles/locble_common.dir/table.cpp.o.d"
  "CMakeFiles/locble_common.dir/timeseries.cpp.o"
  "CMakeFiles/locble_common.dir/timeseries.cpp.o.d"
  "CMakeFiles/locble_common.dir/vec2.cpp.o"
  "CMakeFiles/locble_common.dir/vec2.cpp.o.d"
  "liblocble_common.a"
  "liblocble_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
