file(REMOVE_RECURSE
  "liblocble_common.a"
)
