# Empty compiler generated dependencies file for locble_common.
# This may be replaced when dependencies are built.
