
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/common/cdf.cpp" "src/locble/common/CMakeFiles/locble_common.dir/cdf.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/cdf.cpp.o.d"
  "/root/repo/src/locble/common/csv.cpp" "src/locble/common/CMakeFiles/locble_common.dir/csv.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/csv.cpp.o.d"
  "/root/repo/src/locble/common/linalg.cpp" "src/locble/common/CMakeFiles/locble_common.dir/linalg.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/linalg.cpp.o.d"
  "/root/repo/src/locble/common/stats.cpp" "src/locble/common/CMakeFiles/locble_common.dir/stats.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/stats.cpp.o.d"
  "/root/repo/src/locble/common/table.cpp" "src/locble/common/CMakeFiles/locble_common.dir/table.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/table.cpp.o.d"
  "/root/repo/src/locble/common/timeseries.cpp" "src/locble/common/CMakeFiles/locble_common.dir/timeseries.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/timeseries.cpp.o.d"
  "/root/repo/src/locble/common/vec2.cpp" "src/locble/common/CMakeFiles/locble_common.dir/vec2.cpp.o" "gcc" "src/locble/common/CMakeFiles/locble_common.dir/vec2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
