# Empty dependencies file for locble_baseline.
# This may be replaced when dependencies are built.
