file(REMOVE_RECURSE
  "CMakeFiles/locble_baseline.dir/ranging.cpp.o"
  "CMakeFiles/locble_baseline.dir/ranging.cpp.o.d"
  "liblocble_baseline.a"
  "liblocble_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
