file(REMOVE_RECURSE
  "liblocble_baseline.a"
)
