# Empty dependencies file for locble_core.
# This may be replaced when dependencies are built.
