
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/core/clustering.cpp" "src/locble/core/CMakeFiles/locble_core.dir/clustering.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/clustering.cpp.o.d"
  "/root/repo/src/locble/core/dtw.cpp" "src/locble/core/CMakeFiles/locble_core.dir/dtw.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/dtw.cpp.o.d"
  "/root/repo/src/locble/core/envaware.cpp" "src/locble/core/CMakeFiles/locble_core.dir/envaware.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/envaware.cpp.o.d"
  "/root/repo/src/locble/core/features.cpp" "src/locble/core/CMakeFiles/locble_core.dir/features.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/features.cpp.o.d"
  "/root/repo/src/locble/core/location_solver.cpp" "src/locble/core/CMakeFiles/locble_core.dir/location_solver.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/location_solver.cpp.o.d"
  "/root/repo/src/locble/core/location_solver3.cpp" "src/locble/core/CMakeFiles/locble_core.dir/location_solver3.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/location_solver3.cpp.o.d"
  "/root/repo/src/locble/core/navigation.cpp" "src/locble/core/CMakeFiles/locble_core.dir/navigation.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/navigation.cpp.o.d"
  "/root/repo/src/locble/core/pipeline.cpp" "src/locble/core/CMakeFiles/locble_core.dir/pipeline.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/locble/core/proximity_assist.cpp" "src/locble/core/CMakeFiles/locble_core.dir/proximity_assist.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/proximity_assist.cpp.o.d"
  "/root/repo/src/locble/core/straight_walk.cpp" "src/locble/core/CMakeFiles/locble_core.dir/straight_walk.cpp.o" "gcc" "src/locble/core/CMakeFiles/locble_core.dir/straight_walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/dsp/CMakeFiles/locble_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ml/CMakeFiles/locble_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/channel/CMakeFiles/locble_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/motion/CMakeFiles/locble_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/baseline/CMakeFiles/locble_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ble/CMakeFiles/locble_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/imu/CMakeFiles/locble_imu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
