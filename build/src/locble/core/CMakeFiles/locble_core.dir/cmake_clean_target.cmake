file(REMOVE_RECURSE
  "liblocble_core.a"
)
