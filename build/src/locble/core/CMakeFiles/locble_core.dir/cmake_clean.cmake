file(REMOVE_RECURSE
  "CMakeFiles/locble_core.dir/clustering.cpp.o"
  "CMakeFiles/locble_core.dir/clustering.cpp.o.d"
  "CMakeFiles/locble_core.dir/dtw.cpp.o"
  "CMakeFiles/locble_core.dir/dtw.cpp.o.d"
  "CMakeFiles/locble_core.dir/envaware.cpp.o"
  "CMakeFiles/locble_core.dir/envaware.cpp.o.d"
  "CMakeFiles/locble_core.dir/features.cpp.o"
  "CMakeFiles/locble_core.dir/features.cpp.o.d"
  "CMakeFiles/locble_core.dir/location_solver.cpp.o"
  "CMakeFiles/locble_core.dir/location_solver.cpp.o.d"
  "CMakeFiles/locble_core.dir/location_solver3.cpp.o"
  "CMakeFiles/locble_core.dir/location_solver3.cpp.o.d"
  "CMakeFiles/locble_core.dir/navigation.cpp.o"
  "CMakeFiles/locble_core.dir/navigation.cpp.o.d"
  "CMakeFiles/locble_core.dir/pipeline.cpp.o"
  "CMakeFiles/locble_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/locble_core.dir/proximity_assist.cpp.o"
  "CMakeFiles/locble_core.dir/proximity_assist.cpp.o.d"
  "CMakeFiles/locble_core.dir/straight_walk.cpp.o"
  "CMakeFiles/locble_core.dir/straight_walk.cpp.o.d"
  "liblocble_core.a"
  "liblocble_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
