
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/sim/capture.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/capture.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/capture.cpp.o.d"
  "/root/repo/src/locble/sim/harness.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/harness.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/harness.cpp.o.d"
  "/root/repo/src/locble/sim/heatmap.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/heatmap.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/heatmap.cpp.o.d"
  "/root/repo/src/locble/sim/navigation_sim.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/navigation_sim.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/navigation_sim.cpp.o.d"
  "/root/repo/src/locble/sim/scenarios.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/scenarios.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/scenarios.cpp.o.d"
  "/root/repo/src/locble/sim/trace_io.cpp" "src/locble/sim/CMakeFiles/locble_sim.dir/trace_io.cpp.o" "gcc" "src/locble/sim/CMakeFiles/locble_sim.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ble/CMakeFiles/locble_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/channel/CMakeFiles/locble_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/imu/CMakeFiles/locble_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/motion/CMakeFiles/locble_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/core/CMakeFiles/locble_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/baseline/CMakeFiles/locble_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/dsp/CMakeFiles/locble_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ml/CMakeFiles/locble_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
