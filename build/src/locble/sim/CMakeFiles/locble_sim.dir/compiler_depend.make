# Empty compiler generated dependencies file for locble_sim.
# This may be replaced when dependencies are built.
