file(REMOVE_RECURSE
  "liblocble_sim.a"
)
