file(REMOVE_RECURSE
  "CMakeFiles/locble_sim.dir/capture.cpp.o"
  "CMakeFiles/locble_sim.dir/capture.cpp.o.d"
  "CMakeFiles/locble_sim.dir/harness.cpp.o"
  "CMakeFiles/locble_sim.dir/harness.cpp.o.d"
  "CMakeFiles/locble_sim.dir/heatmap.cpp.o"
  "CMakeFiles/locble_sim.dir/heatmap.cpp.o.d"
  "CMakeFiles/locble_sim.dir/navigation_sim.cpp.o"
  "CMakeFiles/locble_sim.dir/navigation_sim.cpp.o.d"
  "CMakeFiles/locble_sim.dir/scenarios.cpp.o"
  "CMakeFiles/locble_sim.dir/scenarios.cpp.o.d"
  "CMakeFiles/locble_sim.dir/trace_io.cpp.o"
  "CMakeFiles/locble_sim.dir/trace_io.cpp.o.d"
  "liblocble_sim.a"
  "liblocble_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
