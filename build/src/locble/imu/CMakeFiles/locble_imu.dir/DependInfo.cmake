
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/imu/imu_synth.cpp" "src/locble/imu/CMakeFiles/locble_imu.dir/imu_synth.cpp.o" "gcc" "src/locble/imu/CMakeFiles/locble_imu.dir/imu_synth.cpp.o.d"
  "/root/repo/src/locble/imu/trajectory.cpp" "src/locble/imu/CMakeFiles/locble_imu.dir/trajectory.cpp.o" "gcc" "src/locble/imu/CMakeFiles/locble_imu.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
