file(REMOVE_RECURSE
  "CMakeFiles/locble_imu.dir/imu_synth.cpp.o"
  "CMakeFiles/locble_imu.dir/imu_synth.cpp.o.d"
  "CMakeFiles/locble_imu.dir/trajectory.cpp.o"
  "CMakeFiles/locble_imu.dir/trajectory.cpp.o.d"
  "liblocble_imu.a"
  "liblocble_imu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
