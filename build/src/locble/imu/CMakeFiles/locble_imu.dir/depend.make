# Empty dependencies file for locble_imu.
# This may be replaced when dependencies are built.
