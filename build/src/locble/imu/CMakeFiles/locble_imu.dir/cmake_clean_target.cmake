file(REMOVE_RECURSE
  "liblocble_imu.a"
)
