file(REMOVE_RECURSE
  "liblocble_channel.a"
)
