
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locble/channel/fading.cpp" "src/locble/channel/CMakeFiles/locble_channel.dir/fading.cpp.o" "gcc" "src/locble/channel/CMakeFiles/locble_channel.dir/fading.cpp.o.d"
  "/root/repo/src/locble/channel/floorplan.cpp" "src/locble/channel/CMakeFiles/locble_channel.dir/floorplan.cpp.o" "gcc" "src/locble/channel/CMakeFiles/locble_channel.dir/floorplan.cpp.o.d"
  "/root/repo/src/locble/channel/obstacles.cpp" "src/locble/channel/CMakeFiles/locble_channel.dir/obstacles.cpp.o" "gcc" "src/locble/channel/CMakeFiles/locble_channel.dir/obstacles.cpp.o.d"
  "/root/repo/src/locble/channel/pathloss.cpp" "src/locble/channel/CMakeFiles/locble_channel.dir/pathloss.cpp.o" "gcc" "src/locble/channel/CMakeFiles/locble_channel.dir/pathloss.cpp.o.d"
  "/root/repo/src/locble/channel/propagation.cpp" "src/locble/channel/CMakeFiles/locble_channel.dir/propagation.cpp.o" "gcc" "src/locble/channel/CMakeFiles/locble_channel.dir/propagation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ble/CMakeFiles/locble_ble.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
