# Empty dependencies file for locble_channel.
# This may be replaced when dependencies are built.
