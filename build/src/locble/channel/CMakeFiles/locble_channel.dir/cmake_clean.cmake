file(REMOVE_RECURSE
  "CMakeFiles/locble_channel.dir/fading.cpp.o"
  "CMakeFiles/locble_channel.dir/fading.cpp.o.d"
  "CMakeFiles/locble_channel.dir/floorplan.cpp.o"
  "CMakeFiles/locble_channel.dir/floorplan.cpp.o.d"
  "CMakeFiles/locble_channel.dir/obstacles.cpp.o"
  "CMakeFiles/locble_channel.dir/obstacles.cpp.o.d"
  "CMakeFiles/locble_channel.dir/pathloss.cpp.o"
  "CMakeFiles/locble_channel.dir/pathloss.cpp.o.d"
  "CMakeFiles/locble_channel.dir/propagation.cpp.o"
  "CMakeFiles/locble_channel.dir/propagation.cpp.o.d"
  "liblocble_channel.a"
  "liblocble_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locble_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
