# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("locble/common")
subdirs("locble/dsp")
subdirs("locble/ml")
subdirs("locble/ble")
subdirs("locble/channel")
subdirs("locble/imu")
subdirs("locble/motion")
subdirs("locble/core")
subdirs("locble/baseline")
subdirs("locble/sim")
