file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/dsp/test_anf.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_anf.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_biquad.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_butterworth.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_butterworth.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_kalman.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_kalman.cpp.o.d"
  "CMakeFiles/test_dsp.dir/dsp/test_moving_average.cpp.o"
  "CMakeFiles/test_dsp.dir/dsp/test_moving_average.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
