file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/test_properties_ble.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_ble.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_channel.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_channel.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_dsp.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_dsp.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_dtw.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_dtw.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_motion.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_motion.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_sim.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_sim.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/test_properties_solver.cpp.o"
  "CMakeFiles/test_properties.dir/properties/test_properties_solver.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
