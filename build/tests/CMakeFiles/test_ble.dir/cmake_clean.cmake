file(REMOVE_RECURSE
  "CMakeFiles/test_ble.dir/ble/test_advertiser.cpp.o"
  "CMakeFiles/test_ble.dir/ble/test_advertiser.cpp.o.d"
  "CMakeFiles/test_ble.dir/ble/test_frames.cpp.o"
  "CMakeFiles/test_ble.dir/ble/test_frames.cpp.o.d"
  "CMakeFiles/test_ble.dir/ble/test_pdu.cpp.o"
  "CMakeFiles/test_ble.dir/ble/test_pdu.cpp.o.d"
  "CMakeFiles/test_ble.dir/ble/test_scanner.cpp.o"
  "CMakeFiles/test_ble.dir/ble/test_scanner.cpp.o.d"
  "test_ble"
  "test_ble.pdb"
  "test_ble[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
