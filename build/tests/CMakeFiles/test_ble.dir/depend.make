# Empty dependencies file for test_ble.
# This may be replaced when dependencies are built.
