file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_clustering.cpp.o"
  "CMakeFiles/test_core.dir/core/test_clustering.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_dtw.cpp.o"
  "CMakeFiles/test_core.dir/core/test_dtw.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_envaware.cpp.o"
  "CMakeFiles/test_core.dir/core/test_envaware.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_features.cpp.o"
  "CMakeFiles/test_core.dir/core/test_features.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_location_solver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_location_solver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_location_solver3.cpp.o"
  "CMakeFiles/test_core.dir/core/test_location_solver3.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_navigation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_navigation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_pipeline_flags.cpp.o"
  "CMakeFiles/test_core.dir/core/test_pipeline_flags.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_proximity_assist.cpp.o"
  "CMakeFiles/test_core.dir/core/test_proximity_assist.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_straight_walk.cpp.o"
  "CMakeFiles/test_core.dir/core/test_straight_walk.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
