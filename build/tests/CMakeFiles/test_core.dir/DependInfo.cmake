
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_clustering.cpp" "tests/CMakeFiles/test_core.dir/core/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_clustering.cpp.o.d"
  "/root/repo/tests/core/test_dtw.cpp" "tests/CMakeFiles/test_core.dir/core/test_dtw.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dtw.cpp.o.d"
  "/root/repo/tests/core/test_envaware.cpp" "tests/CMakeFiles/test_core.dir/core/test_envaware.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_envaware.cpp.o.d"
  "/root/repo/tests/core/test_features.cpp" "tests/CMakeFiles/test_core.dir/core/test_features.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_features.cpp.o.d"
  "/root/repo/tests/core/test_location_solver.cpp" "tests/CMakeFiles/test_core.dir/core/test_location_solver.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_location_solver.cpp.o.d"
  "/root/repo/tests/core/test_location_solver3.cpp" "tests/CMakeFiles/test_core.dir/core/test_location_solver3.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_location_solver3.cpp.o.d"
  "/root/repo/tests/core/test_navigation.cpp" "tests/CMakeFiles/test_core.dir/core/test_navigation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_navigation.cpp.o.d"
  "/root/repo/tests/core/test_pipeline.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline.cpp.o.d"
  "/root/repo/tests/core/test_pipeline_flags.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipeline_flags.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipeline_flags.cpp.o.d"
  "/root/repo/tests/core/test_proximity_assist.cpp" "tests/CMakeFiles/test_core.dir/core/test_proximity_assist.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_proximity_assist.cpp.o.d"
  "/root/repo/tests/core/test_straight_walk.cpp" "tests/CMakeFiles/test_core.dir/core/test_straight_walk.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_straight_walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/sim/CMakeFiles/locble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/baseline/CMakeFiles/locble_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/core/CMakeFiles/locble_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/motion/CMakeFiles/locble_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/imu/CMakeFiles/locble_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/channel/CMakeFiles/locble_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ble/CMakeFiles/locble_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ml/CMakeFiles/locble_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/dsp/CMakeFiles/locble_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
