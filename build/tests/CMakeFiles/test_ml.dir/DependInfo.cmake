
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_dataset.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o.d"
  "/root/repo/tests/ml/test_decision_tree.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_decision_tree.cpp.o.d"
  "/root/repo/tests/ml/test_knn.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_knn.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_knn.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_svm.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_svm.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/locble/sim/CMakeFiles/locble_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/baseline/CMakeFiles/locble_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/core/CMakeFiles/locble_core.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/motion/CMakeFiles/locble_motion.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/imu/CMakeFiles/locble_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/channel/CMakeFiles/locble_channel.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ble/CMakeFiles/locble_ble.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/ml/CMakeFiles/locble_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/dsp/CMakeFiles/locble_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/locble/common/CMakeFiles/locble_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
