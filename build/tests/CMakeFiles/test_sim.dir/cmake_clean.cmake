file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_capture.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_capture.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_end_to_end.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_harness.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_harness.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_heatmap.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_heatmap.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_navigation_sim.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_navigation_sim.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_scenarios.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace_io.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace_io.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
