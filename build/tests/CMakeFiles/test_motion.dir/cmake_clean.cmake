file(REMOVE_RECURSE
  "CMakeFiles/test_motion.dir/motion/test_dead_reckoning.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_dead_reckoning.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_heading_filter.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_heading_filter.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_step_detector.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_step_detector.cpp.o.d"
  "CMakeFiles/test_motion.dir/motion/test_turn_detector.cpp.o"
  "CMakeFiles/test_motion.dir/motion/test_turn_detector.cpp.o.d"
  "test_motion"
  "test_motion.pdb"
  "test_motion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
