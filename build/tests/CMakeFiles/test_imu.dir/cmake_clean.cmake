file(REMOVE_RECURSE
  "CMakeFiles/test_imu.dir/imu/test_imu_synth.cpp.o"
  "CMakeFiles/test_imu.dir/imu/test_imu_synth.cpp.o.d"
  "CMakeFiles/test_imu.dir/imu/test_trajectory.cpp.o"
  "CMakeFiles/test_imu.dir/imu/test_trajectory.cpp.o.d"
  "test_imu"
  "test_imu.pdb"
  "test_imu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
