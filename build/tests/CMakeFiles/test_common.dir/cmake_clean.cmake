file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_cdf.cpp.o"
  "CMakeFiles/test_common.dir/common/test_cdf.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_csv.cpp.o"
  "CMakeFiles/test_common.dir/common/test_csv.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_linalg.cpp.o"
  "CMakeFiles/test_common.dir/common/test_linalg.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_timeseries.cpp.o"
  "CMakeFiles/test_common.dir/common/test_timeseries.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_vec2.cpp.o"
  "CMakeFiles/test_common.dir/common/test_vec2.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o"
  "CMakeFiles/test_common.dir/common/test_vec3.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
