file(REMOVE_RECURSE
  "CMakeFiles/test_channel.dir/channel/test_fading.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_fading.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_floorplan.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_floorplan.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_obstacles.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_obstacles.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_pathloss.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_pathloss.cpp.o.d"
  "CMakeFiles/test_channel.dir/channel/test_propagation.cpp.o"
  "CMakeFiles/test_channel.dir/channel/test_propagation.cpp.o.d"
  "test_channel"
  "test_channel.pdb"
  "test_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
