# Empty dependencies file for bench_fig13b_walk_length.
# This may be replaced when dependencies are built.
