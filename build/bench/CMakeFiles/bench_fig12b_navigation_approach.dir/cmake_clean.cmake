file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_navigation_approach.dir/bench_fig12b_navigation_approach.cpp.o"
  "CMakeFiles/bench_fig12b_navigation_approach.dir/bench_fig12b_navigation_approach.cpp.o.d"
  "bench_fig12b_navigation_approach"
  "bench_fig12b_navigation_approach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_navigation_approach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
