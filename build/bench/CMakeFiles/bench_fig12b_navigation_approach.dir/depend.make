# Empty dependencies file for bench_fig12b_navigation_approach.
# This may be replaced when dependencies are built.
