# Empty compiler generated dependencies file for bench_ext_last_meter.
# This may be replaced when dependencies are built.
