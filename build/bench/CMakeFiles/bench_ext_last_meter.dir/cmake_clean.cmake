file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_last_meter.dir/bench_ext_last_meter.cpp.o"
  "CMakeFiles/bench_ext_last_meter.dir/bench_ext_last_meter.cpp.o.d"
  "bench_ext_last_meter"
  "bench_ext_last_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_last_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
