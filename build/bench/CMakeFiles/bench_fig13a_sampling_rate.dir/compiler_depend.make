# Empty compiler generated dependencies file for bench_fig13a_sampling_rate.
# This may be replaced when dependencies are built.
