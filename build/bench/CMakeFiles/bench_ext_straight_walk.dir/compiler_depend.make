# Empty compiler generated dependencies file for bench_ext_straight_walk.
# This may be replaced when dependencies are built.
