file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_straight_walk.dir/bench_ext_straight_walk.cpp.o"
  "CMakeFiles/bench_ext_straight_walk.dir/bench_ext_straight_walk.cpp.o.d"
  "bench_ext_straight_walk"
  "bench_ext_straight_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_straight_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
