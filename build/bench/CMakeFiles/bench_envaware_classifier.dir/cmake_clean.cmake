file(REMOVE_RECURSE
  "CMakeFiles/bench_envaware_classifier.dir/bench_envaware_classifier.cpp.o"
  "CMakeFiles/bench_envaware_classifier.dir/bench_envaware_classifier.cpp.o.d"
  "bench_envaware_classifier"
  "bench_envaware_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_envaware_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
