# Empty compiler generated dependencies file for bench_fig10_navigation_cdf.
# This may be replaced when dependencies are built.
