# Empty dependencies file for bench_fig2_rss_vs_distance.
# This may be replaced when dependencies are built.
