file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_moving_target.dir/bench_fig11b_moving_target.cpp.o"
  "CMakeFiles/bench_fig11b_moving_target.dir/bench_fig11b_moving_target.cpp.o.d"
  "bench_fig11b_moving_target"
  "bench_fig11b_moving_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_moving_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
