# Empty dependencies file for bench_fig11b_moving_target.
# This may be replaced when dependencies are built.
