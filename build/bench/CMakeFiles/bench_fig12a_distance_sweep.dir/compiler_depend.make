# Empty compiler generated dependencies file for bench_fig12a_distance_sweep.
# This may be replaced when dependencies are built.
