# Empty dependencies file for bench_fig15_clustering.
# This may be replaced when dependencies are built.
