file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_stationary.dir/bench_fig11a_stationary.cpp.o"
  "CMakeFiles/bench_fig11a_stationary.dir/bench_fig11a_stationary.cpp.o.d"
  "bench_fig11a_stationary"
  "bench_fig11a_stationary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_stationary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
