# Empty dependencies file for bench_fig11a_stationary.
# This may be replaced when dependencies are built.
