file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dtw.dir/bench_fig9_dtw.cpp.o"
  "CMakeFiles/bench_fig9_dtw.dir/bench_fig9_dtw.cpp.o.d"
  "bench_fig9_dtw"
  "bench_fig9_dtw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dtw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
