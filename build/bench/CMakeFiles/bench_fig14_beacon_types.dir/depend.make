# Empty dependencies file for bench_fig14_beacon_types.
# This may be replaced when dependencies are built.
