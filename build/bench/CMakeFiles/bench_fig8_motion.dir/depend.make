# Empty dependencies file for bench_fig8_motion.
# This may be replaced when dependencies are built.
