file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_motion.dir/bench_fig8_motion.cpp.o"
  "CMakeFiles/bench_fig8_motion.dir/bench_fig8_motion.cpp.o.d"
  "bench_fig8_motion"
  "bench_fig8_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
