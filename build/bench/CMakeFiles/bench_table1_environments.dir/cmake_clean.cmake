file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_environments.dir/bench_table1_environments.cpp.o"
  "CMakeFiles/bench_table1_environments.dir/bench_table1_environments.cpp.o.d"
  "bench_table1_environments"
  "bench_table1_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
