# Empty dependencies file for bench_table1_environments.
# This may be replaced when dependencies are built.
