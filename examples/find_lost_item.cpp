// Find-a-lost-item (Fig. 1(a)): the headline LocBLE use case. A beacon tag
// hangs on a lost key ring somewhere in a large room; the user measures,
// then follows LocBLE's navigation arrows, re-measuring along the way until
// they stand next to the item.

#include <cstdio>

#include "locble/sim/navigation_sim.hpp"

using namespace locble;

int main() {
    // A large open-plan office: keys lost somewhere near the far couch.
    sim::Scenario office = sim::scenario(1);
    office.name = "Open-plan office";
    office.site.name = office.name;
    office.site.width_m = 14.0;
    office.site.height_m = 11.0;

    sim::BeaconPlacement keys;
    keys.id = 99;
    keys.position = {11.5, 8.0};
    keys.profile = ble::estimote_profile();

    const Vec2 user_start{1.0, 1.5};
    std::printf("lost keys at (%.1f, %.1f); user starts at (%.1f, %.1f), "
                "%.1f m away\n\n",
                keys.position.x, keys.position.y, user_start.x, user_start.y,
                Vec2::distance(keys.position, user_start));

    sim::NavigationSimulator::Config cfg;
    cfg.max_rounds = 7;
    const sim::NavigationSimulator nav(cfg);
    locble::Rng rng(20260704);
    const sim::NavigationRun run = nav.run(office, keys, user_start, 0.4, rng);

    int round = 1;
    for (const auto& rec : run.rounds) {
        if (rec.measured)
            std::printf("round %d: %5.1f m from the keys -> measured, estimate "
                        "off by %.2f m, walking toward it\n",
                        round, rec.distance_to_target_m, rec.estimate_error_m);
        else
            std::printf("round %d: %5.1f m from the keys -> no fix, probing "
                        "forward\n",
                        round, rec.distance_to_target_m);
        ++round;
    }

    std::printf("\nfinal position is %.2f m from the keys (%s)\n",
                run.final_distance_m,
                run.reached ? "close enough to spot them" : "still searching");
    std::printf("paper reference: Fig. 10(b) reports median 1.5 m overall "
                "navigation error\n");
    return run.reached ? 0 : 1;
}
