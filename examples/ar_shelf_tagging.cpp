// AR shelf tagging (Fig. 1(b)): a retail shelf carries a cluster of tagged
// items. One measurement walk locates every tag; the multi-beacon
// clustering calibration (Sec. 6) then recognizes which tags sit together
// and refines the highlighted item's position with their combined evidence.

#include <algorithm>
#include <cstdio>

#include "locble/core/clustering.hpp"
#include "locble/sim/harness.hpp"

using namespace locble;

int main() {
    // A store aisle: the item of interest plus four same-shelf tags and one
    // unrelated tag across the room.
    const sim::Scenario store = sim::scenario(6);

    sim::BeaconPlacement item;
    item.id = 1;
    item.position = store.default_beacon;

    std::vector<sim::BeaconPlacement> others;
    for (int k = 0; k < 4; ++k) {
        sim::BeaconPlacement tag;
        tag.id = static_cast<std::uint64_t>(10 + k);
        const double ang = 1.7 * k;
        tag.position = item.position + unit_from_angle(ang) * 0.3;
        others.push_back(tag);
    }
    sim::BeaconPlacement unrelated;
    unrelated.id = 50;
    unrelated.position = {1.2, 8.8};  // different shelf entirely
    others.push_back(unrelated);

    std::printf("item of interest at (%.1f, %.1f); %zu neighbor tags on the "
                "shelf + 1 unrelated tag at (%.1f, %.1f)\n\n",
                item.position.x, item.position.y, others.size() - 1,
                unrelated.position.x, unrelated.position.y);

    sim::MeasurementConfig cfg;
    locble::Rng rng(31);
    const sim::ClusteredOutcome out =
        sim::measure_with_cluster(store, item, others, cfg, rng);

    if (!out.single.ok) {
        std::printf("no fix for the target tag\n");
        return 1;
    }
    std::printf("single-tag estimate:   (%.2f, %.2f), error %.2f m\n",
                out.single.estimate_site.x, out.single.estimate_site.y,
                out.single.error_m);
    std::printf("cluster members (DTW-matched RSS trends):");
    for (auto id : out.cluster.members)
        std::printf(" #%llu", static_cast<unsigned long long>(id));
    std::printf("  (rejected %zu)\n", out.cluster.rejected);
    std::printf("calibrated estimate:   (%.2f, %.2f), error %.2f m\n",
                out.calibrated.estimate_site.x, out.calibrated.estimate_site.y,
                out.calibrated.error_m);

    const bool unrelated_excluded =
        std::find(out.cluster.members.begin(), out.cluster.members.end(), std::uint64_t{50}) ==
        out.cluster.members.end();
    std::printf("\nunrelated tag #50 excluded from the cluster: %s\n",
                unrelated_excluded ? "yes" : "no");
    std::printf("paper reference: Fig. 15 — clustering halves the error in "
                "heavy-blockage environments\n");
    return 0;
}
