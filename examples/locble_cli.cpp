// locble_cli — run LocBLE experiments from the command line.
//
//   locble_cli measure   [--env N] [--seed S] [--runs R]   stationary target
//   locble_cli moving    [--env N] [--seed S] [--runs R]   moving target
//   locble_cli navigate  [--env N] [--seed S] [--runs R]   measure-and-walk
//   locble_cli cluster   [--env N] [--seed S] [--beacons B] multi-beacon
//   locble_cli record    [--env N] [--seed S] --out PREFIX  save a capture
//   locble_cli replay    --in PREFIX [--env N]              locate from CSVs
//   locble_cli heatmap   [--env N] [--seed S]                ASCII coverage map
//
// Every mode prints per-run results and a summary against the scenario's
// Table-1 reference accuracy.

#include <cstdio>
#include <cstring>
#include <string>

#include "locble/common/cdf.hpp"
#include "locble/obs/obs.hpp"
#include "locble/sim/harness.hpp"
#include "locble/sim/heatmap.hpp"
#include "locble/sim/navigation_sim.hpp"
#include "locble/sim/trace_io.hpp"

using namespace locble;

namespace {

struct Args {
    std::string mode;
    int env{1};
    std::uint64_t seed{1};
    int runs{5};
    int beacons{4};
    std::string out;
    std::string in;
    bool metrics{false};
};

bool parse_args(int argc, char** argv, Args& args) {
    if (argc < 2) return false;
    args.mode = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--metrics") {
            args.metrics = true;
            continue;
        }
        if (i + 1 >= argc) return false;
        const std::string value = argv[++i];
        if (flag == "--env")
            args.env = std::stoi(value);
        else if (flag == "--seed")
            args.seed = std::stoull(value);
        else if (flag == "--runs")
            args.runs = std::stoi(value);
        else if (flag == "--beacons")
            args.beacons = std::stoi(value);
        else if (flag == "--out")
            args.out = value;
        else if (flag == "--in")
            args.in = value;
        else
            return false;
    }
    return args.env >= 1 && args.env <= 9 && args.runs >= 1;
}

void usage() {
    std::printf(
        "usage: locble_cli <measure|moving|navigate|cluster|record|replay|heatmap>\n"
        "       [--env 1..9] [--seed S] [--runs R] [--beacons B]\n"
        "       [--out PREFIX] [--in PREFIX] [--metrics]\n");
}

int run_measure(const Args& args) {
    const sim::Scenario sc = sim::scenario(args.env);
    sim::BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    std::vector<double> errors;
    for (int r = 0; r < args.runs; ++r) {
        locble::Rng rng(args.seed + static_cast<std::uint64_t>(r) * 101);
        const sim::MeasurementConfig cfg;
        const auto out = sim::measure_stationary(sc, beacon, cfg, rng);
        if (out.ok) {
            std::printf("run %d: estimate (%.2f, %.2f), error %.2f m\n", r + 1,
                        out.estimate_site.x, out.estimate_site.y, out.error_m);
            errors.push_back(out.error_m);
        } else {
            std::printf("run %d: no fix\n", r + 1);
        }
    }
    if (errors.empty()) return 1;
    const EmpiricalCdf cdf(errors);
    std::printf("\n%s: mean %.2f m over %zu fixes (paper: %.1f +- %.1f m)\n",
                sc.name.c_str(), cdf.mean(), cdf.count(), sc.paper_accuracy_m,
                sc.paper_ci_m);
    return 0;
}

int run_moving(const Args& args) {
    const sim::Scenario sc = sim::scenario(args.env);
    std::vector<double> errors;
    for (int r = 0; r < args.runs; ++r) {
        locble::Rng place(args.seed + static_cast<std::uint64_t>(r) * 7 + 3);
        sim::BeaconPlacement target;
        target.id = 2;
        target.motion = imu::make_l_shape(
            {place.uniform(0.3 * sc.site.width_m, 0.7 * sc.site.width_m),
             place.uniform(0.3 * sc.site.height_m, 0.7 * sc.site.height_m)},
            place.uniform(-3.0, 3.0), 2.0, 1.5, place.chance(0.5) ? 1.3 : -1.3);
        locble::Rng rng(args.seed + static_cast<std::uint64_t>(r) * 131);
        const sim::MeasurementConfig cfg;
        const auto walk = sim::default_l_walk(sc);
        const auto out = sim::measure_moving(sc, target, walk, cfg, rng);
        if (out.ok) {
            std::printf("run %d: initial position error %.2f m\n", r + 1, out.error_m);
            errors.push_back(out.error_m);
        } else {
            std::printf("run %d: no fix\n", r + 1);
        }
    }
    if (errors.empty()) return 1;
    std::printf("\nmedian %.2f m (paper: < 2.5 m for > 50%% of runs)\n",
                EmpiricalCdf(errors).median());
    return 0;
}

int run_navigate(const Args& args) {
    const sim::Scenario sc = sim::scenario(args.env);
    sim::BeaconPlacement beacon;
    beacon.position = sc.default_beacon;
    const sim::NavigationSimulator nav;
    std::vector<double> finals;
    for (int r = 0; r < args.runs; ++r) {
        locble::Rng rng(args.seed + static_cast<std::uint64_t>(r) * 211);
        const auto run =
            nav.run(sc, beacon, sc.observer_start, sc.observer_heading, rng);
        std::printf("run %d: %zu rounds, final distance %.2f m\n", r + 1,
                    run.rounds.size(), run.final_distance_m);
        finals.push_back(run.final_distance_m);
    }
    std::printf("\nmedian final distance %.2f m (paper Fig. 10(b): 1.5 m)\n",
                EmpiricalCdf(finals).median());
    return 0;
}

int run_cluster(const Args& args) {
    const sim::Scenario sc = sim::scenario(args.env);
    sim::BeaconPlacement target;
    target.id = 1;
    target.position = sc.default_beacon;
    std::vector<sim::BeaconPlacement> neighbors;
    for (int k = 1; k < args.beacons; ++k) {
        sim::BeaconPlacement nb;
        nb.id = static_cast<std::uint64_t>(10 + k);
        nb.position = sc.default_beacon + unit_from_angle(1.1 * k) * 0.35;
        neighbors.push_back(nb);
    }
    double single = 0.0, calibrated = 0.0;
    int n = 0;
    for (int r = 0; r < args.runs; ++r) {
        locble::Rng rng(args.seed + static_cast<std::uint64_t>(r) * 307);
        const sim::MeasurementConfig cfg;
        const auto out = sim::measure_with_cluster(sc, target, neighbors, cfg, rng);
        if (!out.single.ok || !out.calibrated.ok) continue;
        std::printf("run %d: single %.2f m -> calibrated %.2f m (%zu members)\n",
                    r + 1, out.single.error_m, out.calibrated.error_m,
                    out.cluster.members.size());
        single += out.single.error_m;
        calibrated += out.calibrated.error_m;
        ++n;
    }
    if (!n) return 1;
    std::printf("\nmean: single %.2f m, calibrated %.2f m with %d beacons\n",
                single / n, calibrated / n, args.beacons);
    return 0;
}

int run_record(const Args& args) {
    if (args.out.empty()) {
        usage();
        return 2;
    }
    const sim::Scenario sc = sim::scenario(args.env);
    sim::BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = sc.default_beacon;
    locble::Rng rng(args.seed);
    const auto cap = sim::CaptureRunner().run(sc.site, {beacon},
                                              sim::default_l_walk(sc), rng);
    sim::save_capture(args.out, cap);
    std::printf("saved %zu RSS reports + IMU streams to %s_*.csv\n",
                cap.rss.at(1).size(), args.out.c_str());
    return 0;
}

int run_heatmap(const Args& args) {
    const sim::Scenario sc = sim::scenario(args.env);
    locble::Rng rng(args.seed);
    const auto map = sim::rssi_heatmap(sc.site, sc.default_beacon, -59.0, 0.5, rng);
    std::printf("%s — expected RSSI around the default beacon (denser = "
                "stronger)\n\n%s\n",
                sc.name.c_str(), map.ascii().c_str());
    std::printf("coverage at -85 dBm sensitivity: %.0f%% of the site\n",
                100.0 * map.coverage(-85.0));
    return 0;
}

int run_replay(const Args& args) {
    if (args.in.empty()) {
        usage();
        return 2;
    }
    const sim::Scenario sc = sim::scenario(args.env);
    const auto cap = sim::load_capture(args.in);
    if (cap.rss.empty()) {
        std::printf("no RSS streams in %s\n", args.in.c_str());
        return 1;
    }
    const auto& [id, rss] = *cap.rss.begin();
    motion::DeadReckoner::Config dr;
    dr.snap_right_angles = true;
    const auto motion = motion::DeadReckoner(dr).track(cap.observer_imu);
    core::LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    const core::LocBle pipeline(cfg, sim::shared_envaware());
    const auto result = pipeline.locate(rss, motion);
    if (!result.fit) {
        std::printf("replay of beacon %llu: no fix\n",
                    static_cast<unsigned long long>(id));
        return 1;
    }
    const Vec2 est = sim::observer_to_site(result.fit->location, sc.observer_start,
                                           sc.observer_heading);
    std::printf("replay of beacon %llu: estimate (%.2f, %.2f) in %s coordinates, "
                "confidence %.2f\n",
                static_cast<unsigned long long>(id), est.x, est.y, sc.name.c_str(),
                result.fit->confidence);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Args args;
    if (!parse_args(argc, argv, args)) {
        usage();
        return 2;
    }
    if (args.metrics) obs::Registry::global().set_enabled(true);
    int rc = 2;
    if (args.mode == "measure") rc = run_measure(args);
    else if (args.mode == "moving") rc = run_moving(args);
    else if (args.mode == "navigate") rc = run_navigate(args);
    else if (args.mode == "cluster") rc = run_cluster(args);
    else if (args.mode == "record") rc = run_record(args);
    else if (args.mode == "replay") rc = run_replay(args);
    else if (args.mode == "heatmap") rc = run_heatmap(args);
    else usage();
    if (args.metrics) {
        const auto snap = obs::Registry::global().snapshot();
        if (snap.empty())
            std::printf("\n-- pipeline metrics: none recorded"
                        " (built with LOCBLE_OBS=0?) --\n");
        else
            std::printf("\n-- pipeline metrics --\n%s",
                        obs::format_summary(snap).c_str());
    }
    return rc;
}
