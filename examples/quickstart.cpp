// Quickstart: locate one stationary BLE beacon with LocBLE.
//
// This walks the whole public API once:
//   1. describe a site and drop a beacon into it,
//   2. record one L-shaped measurement walk (BLE scan + IMU capture),
//   3. dead-reckon the walk from the IMU streams,
//   4. run the LocBLE pipeline (ANF -> EnvAware -> elliptical regression),
//   5. print the estimate next to the ground truth.
//
// On a phone, steps 1-2 are replaced by CoreBluetooth/BluetoothLeScanner and
// CoreMotion callbacks; everything from step 3 on is identical.

#include <cstdio>

#include "locble/core/pipeline.hpp"
#include "locble/motion/dead_reckoning.hpp"
#include "locble/sim/capture.hpp"
#include "locble/sim/harness.hpp"
#include "locble/sim/scenarios.hpp"

using namespace locble;

int main() {
    // 1. A 5x5 m meeting room with a beacon on the far shelf.
    const sim::Scenario room = sim::scenario(1);
    sim::BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = room.default_beacon;
    beacon.profile = ble::estimote_profile();

    std::printf("site: %s (%.0fx%.0f m)\n", room.name.c_str(), room.site.width_m,
                room.site.height_m);
    std::printf("beacon truth: (%.2f, %.2f), %.1f m from the start\n\n",
                beacon.position.x, beacon.position.y,
                Vec2::distance(beacon.position, room.observer_start));

    // 2. Walk the app's L-shape (a few metres, one right-angle turn) while
    //    scanning. The capture runner plays the role of the phone hardware.
    const imu::Trajectory walk = sim::default_l_walk(room);
    locble::Rng rng(7);
    const sim::WalkCapture capture =
        sim::CaptureRunner().run(room.site, {beacon}, walk, rng);
    std::printf("captured %zu RSS reports over %.1f s\n",
                capture.rss.at(beacon.id).size(), capture.duration_s);

    // 3. Reconstruct the walk from the IMU (steps + right-angle turn).
    motion::DeadReckoner::Config dr_cfg;
    dr_cfg.snap_right_angles = true;  // the app told the user: turn 90 degrees
    const motion::MotionEstimate motion =
        motion::DeadReckoner(dr_cfg).track(capture.observer_imu);
    std::printf("dead reckoning: %zu steps, %.2f m walked, %zu turn(s)\n",
                motion.steps.steps.size(), motion.total_distance(),
                motion.turns.size());

    // 4. LocBLE pipeline. The gamma prior is the calibrated 1 m power the
    //    beacon advertises in its own frame.
    core::LocBle::Config cfg;
    cfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
    const core::LocBle locble(cfg, sim::shared_envaware());
    const core::LocateResult result =
        locble.locate(capture.rss.at(beacon.id), motion);

    // 5. Report.
    if (!result.fit) {
        std::printf("no fix - walk longer or closer to the beacon\n");
        return 1;
    }
    const Vec2 est_site = sim::observer_to_site(
        result.fit->location, room.observer_start, room.observer_heading);
    std::printf("\nestimate (observer frame): (%.2f, %.2f)\n",
                result.fit->location.x, result.fit->location.y);
    std::printf("estimate (site frame):     (%.2f, %.2f)\n", est_site.x, est_site.y);
    std::printf("error: %.2f m | path-loss exponent %.2f | Gamma %.1f dBm | "
                "confidence %.2f\n",
                Vec2::distance(est_site, beacon.position), result.fit->exponent,
                result.fit->gamma_dbm, result.fit->confidence);
    return 0;
}
