// Moving-target mode (Sec. 5, Fig. 6(a)): locate a *walking* phone that has
// its beacon function turned on — e.g. finding a colleague in a parking
// lot. After the measurement the target transfers its RSS/motion capture to
// the observer (the paper uses UPnP); frames are aligned through the
// compass heading each device measured at its own start.

#include <cstdio>

#include "locble/sim/harness.hpp"

using namespace locble;

int main() {
    const sim::Scenario lot = sim::scenario(9);

    // The colleague starts 8 m away and wanders while we measure.
    sim::BeaconPlacement colleague;
    colleague.id = 2;
    colleague.profile = ble::ios_device_profile();  // phone-integrated beacon
    const Vec2 start_pos{9.3, 7.6};
    colleague.motion = imu::make_l_shape(start_pos, 2.2, 2.5, 2.0, -1.3);

    std::printf("colleague starts at (%.1f, %.1f), walking while we measure\n",
                start_pos.x, start_pos.y);
    std::printf("observer walks the standard L from (%.1f, %.1f)\n\n",
                lot.observer_start.x, lot.observer_start.y);

    sim::MeasurementConfig cfg;
    int ok_runs = 0;
    double err_sum = 0.0;
    const int runs = 5;
    for (int r = 0; r < runs; ++r) {
        locble::Rng rng(600 + r * 17);
        const auto walk = sim::default_l_walk(lot);
        const sim::MeasurementOutcome out =
            sim::measure_moving(lot, colleague, walk, cfg, rng);
        if (!out.ok) {
            std::printf("run %d: no fix\n", r + 1);
            continue;
        }
        std::printf("run %d: estimated initial position (%.2f, %.2f), error "
                    "%.2f m\n",
                    r + 1, out.estimate_site.x, out.estimate_site.y, out.error_m);
        err_sum += out.error_m;
        ++ok_runs;
    }

    if (ok_runs) {
        std::printf("\nmean error over %d runs: %.2f m\n", ok_runs,
                    err_sum / ok_runs);
        std::printf("paper reference: Fig. 11(b) — < 2.5 m for more than half "
                    "of the moving-target runs\n");
    }
    return ok_runs > 0 ? 0 : 1;
}
