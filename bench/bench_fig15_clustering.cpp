// Fig. 15 reproduction: clustering calibration accuracy vs number of
// beacons (1/2/4/6) in the lab (#7) and hall (#8) NLOS environments.
// Paper: single-beacon accuracy ~3 m; with 6 beacons the error halves.

#include <algorithm>
#include <cstdio>
#include <numbers>

#include "bench_util.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

double clustered_error(bench::Runner& runner, const sim::Scenario& sc,
                       int num_beacons, int runs, std::uint64_t sweep_seed) {
    sim::BeaconPlacement target;
    target.id = 1;
    target.position = sc.default_beacon;
    // Neighbors ring the target within 0.4 m ("items of the same category
    // are stocked together").
    std::vector<sim::BeaconPlacement> neighbors;
    for (int k = 1; k < num_beacons; ++k) {
        sim::BeaconPlacement nb;
        nb.id = static_cast<std::uint64_t>(10 + k);
        const double ang = 2.0 * std::numbers::pi * k / 6.0;
        nb.position = sc.default_beacon + unit_from_angle(ang) * 0.35;
        neighbors.push_back(nb);
    }
    const sim::MeasurementConfig cfg;

    const auto outcomes =
        runner.run(runs, sweep_seed, [&](int, locble::Rng& rng) {
            return sim::measure_with_cluster(sc, target, neighbors, cfg, rng);
        });

    double err = 0.0;
    int n = 0;
    for (const auto& out : outcomes) {
        const auto& final_out = num_beacons > 1 ? out.calibrated : out.single;
        if (!final_out.ok) continue;
        err += final_out.error_m;
        ++n;
    }
    return n ? err / n : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig15_clustering", opt, 21000);

    bench::print_header("Fig. 15 — clustering calibration, envs #7 and #8",
                        "single-beacon ~3 m; error halves with 6 clustered "
                        "beacons");

    TextTable table({"beacons", "Lab (m)", "Hall (m)"});
    const int runs = runner.trials_or(20);
    double lab1 = 0.0, lab6 = 0.0;
    for (int n : {1, 2, 4, 6}) {
        const double lab =
            clustered_error(runner, sim::scenario(7), n, runs,
                            runner.sweep_seed(100 + static_cast<std::uint64_t>(n)));
        const double hall =
            clustered_error(runner, sim::scenario(8), n, runs,
                            runner.sweep_seed(200 + static_cast<std::uint64_t>(n)));
        table.add_row(std::to_string(n), {lab, hall}, 2);
        runner.report().add_scalar("lab_" + std::to_string(n) + "_beacons_m", lab);
        runner.report().add_scalar("hall_" + std::to_string(n) + "_beacons_m", hall);
        if (n == 1) lab1 = lab;
        if (n == 6) lab6 = lab;
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("lab error ratio 6-vs-1 beacons: %.2f (paper: ~0.5)\n",
                lab6 / lab1);
    runner.report().add_scalar("lab_ratio_6_vs_1", lab6 / lab1);
    return runner.finish();
}
