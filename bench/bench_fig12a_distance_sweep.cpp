// Fig. 12(a) reproduction: estimation error vs target distance in the
// outdoor parking lot; 11 test points 2.8 m apart, 5 repeats each.
// Paper: ~1 m within 5.6 m, < 3 m within 11.2 m, > 3.5 m past 14 m.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig12a_distance_sweep", opt, 15000);

    bench::print_header("Fig. 12(a) — error vs target distance (outdoor)",
                        "~1 m within 5.6 m, < 3 m within 11.2 m, degrades "
                        "past 14 m");

    sim::Scenario sc = sim::scenario(9);
    // The sweep needs a longer lot than the default Table-1 layout.
    sc.site.width_m = 30.0;
    sc.site.height_m = 20.0;
    sc.observer_start = {2.0, 4.0};
    sc.observer_heading = 0.3;

    TextTable table({"distance (m)", "mean error (m)"});
    const int repeats = runner.trials_or(8);
    for (int point = 1; point <= 6; ++point) {
        const double d = 2.8 * point;  // 2.8 .. 16.8 m
        sim::BeaconPlacement beacon;
        beacon.position = sc.observer_start + unit_from_angle(0.9) * d;
        const sim::MeasurementConfig cfg;
        const auto errs = runner.run(
            repeats, runner.sweep_seed(static_cast<std::uint64_t>(point)),
            [&](int, locble::Rng& rng) {
                const auto out = sim::measure_stationary(sc, beacon, cfg, rng);
                return out.ok ? out.error_m : d;
            });
        double err = 0.0;
        for (double e : errs) err += e;
        table.add_row(fmt(d, 1), {err / repeats}, 2);
        runner.report().add_scalar("error_at_" + fmt(d, 1) + "m", err / repeats);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("shape check: error grows with distance; log-distance decay "
                "flattens past ~14 m so ranging information thins out\n");
    return runner.finish();
}
