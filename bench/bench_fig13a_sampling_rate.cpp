// Fig. 13(a) reproduction: estimation error CDF when the BLE sampling
// frequency drops from ~9 Hz to 8 / 6.5 / 5.5 Hz (idle delay between scans).
// Paper: medians remain stable, the tail worsens at lower rates.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

std::vector<double> errors_at_rate(double rate_hz, int runs_per_env) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        for (int r = 0; r < runs_per_env; ++r) {
            locble::Rng rng(17000 + idx * 101 + r * 11);
            // Capture at the native ~9 Hz, then decimate to the target rate
            // exactly as the paper does ("inserting an idle delay between
            // two consecutive scans").
            const auto walk = sim::default_l_walk(sc);
            const auto cap =
                sim::CaptureRunner(cfg.capture).run(sc.site, {beacon}, walk, rng);
            auto rss = cap.rss.at(beacon.id);
            if (rate_hz < 8.9) rss = decimate(rss, rate_hz);

            const auto motion =
                motion::DeadReckoner(cfg.reckoner).track(cap.observer_imu);
            core::LocBle::Config pcfg = cfg.pipeline;
            pcfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
            const core::LocBle pipeline(pcfg, sim::shared_envaware());
            const auto result = pipeline.locate(rss, motion);
            if (result.fit) {
                const auto est = sim::observer_to_site(
                    result.fit->location, sc.observer_start, sc.observer_heading);
                errors.push_back(locble::Vec2::distance(est, beacon.position));
            } else {
                errors.push_back(8.0);
            }
        }
    }
    return errors;
}

}  // namespace

int main() {
    bench::print_header("Fig. 13(a) — sampling frequency sweep",
                        "medians stable from 9 to 5.5 Hz; worst case degrades "
                        "at lower rates");

    const int runs = 15;
    std::vector<std::pair<std::string, EmpiricalCdf>> curves;
    for (double rate : {9.0, 8.0, 6.5, 5.5})
        curves.emplace_back(fmt(rate, 1) + " Hz",
                            EmpiricalCdf(errors_at_rate(rate, runs)));

    std::printf("%s\n", format_cdf_table(curves, {{0.5, 0.75, 0.9}}).c_str());
    std::printf("shape check: p50 varies little across rates; p90 grows as "
                "the rate falls\n");
    return 0;
}
