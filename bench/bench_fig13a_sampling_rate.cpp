// Fig. 13(a) reproduction: estimation error CDF when the BLE sampling
// frequency drops from ~9 Hz to 8 / 6.5 / 5.5 Hz (idle delay between scans).
// Paper: medians remain stable, the tail worsens at lower rates.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

std::vector<double> errors_at_rate(bench::Runner& runner, double rate_hz,
                                   int runs_per_env) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        const sim::MeasurementConfig cfg;
        // Same worlds at every rate: the sweep seed depends on the
        // environment only; the rate enters through decimation alone.
        const auto sweep = runner.sweep_seed(static_cast<std::uint64_t>(idx));
        const auto errs = runner.run(runs_per_env, sweep, [&](int, locble::Rng& rng) {
            // Capture at the native ~9 Hz, then decimate to the target rate
            // exactly as the paper does ("inserting an idle delay between
            // two consecutive scans").
            const auto walk = sim::default_l_walk(sc);
            const auto cap =
                sim::CaptureRunner(cfg.capture).run(sc.site, {beacon}, walk, rng);
            auto rss = cap.rss.at(beacon.id);
            if (rate_hz < 8.9) rss = decimate(rss, rate_hz);

            const auto motion =
                motion::DeadReckoner(cfg.reckoner).track(cap.observer_imu);
            core::LocBle::Config pcfg = cfg.pipeline;
            pcfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
            const core::LocBle pipeline(pcfg, sim::shared_envaware());
            const auto result = pipeline.locate(rss, motion);
            if (!result.fit) return 8.0;
            const auto est = sim::observer_to_site(
                result.fit->location, sc.observer_start, sc.observer_heading);
            return locble::Vec2::distance(est, beacon.position);
        });
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    return errors;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig13a_sampling_rate", opt, 17000);

    bench::print_header("Fig. 13(a) — sampling frequency sweep",
                        "medians stable from 9 to 5.5 Hz; worst case degrades "
                        "at lower rates");

    const int runs = runner.trials_or(15);
    std::vector<std::pair<std::string, EmpiricalCdf>> curves;
    for (double rate : {9.0, 8.0, 6.5, 5.5}) {
        const auto errors = errors_at_rate(runner, rate, runs);
        curves.emplace_back(fmt(rate, 1) + " Hz", EmpiricalCdf(errors));
        runner.report().add_summary("rate_" + fmt(rate, 1) + "hz_error_m", errors);
    }

    std::printf("%s\n", format_cdf_table(curves, {{0.5, 0.75, 0.9}}).c_str());
    std::printf("shape check: p50 varies little across rates; p90 grows as "
                "the rate falls\n");
    return runner.finish();
}
