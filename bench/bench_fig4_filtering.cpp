// Fig. 4 reproduction: ANF (BF + AKF) filtering of a fluctuating RSS trace.
// The paper's takeaway: the 6th-order Butterworth smooths well but lags;
// fusing with the adaptive Kalman restores responsiveness.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/stats.hpp"
#include "locble/common/table.hpp"
#include "locble/dsp/anf.hpp"

using namespace locble;

namespace {

/// 40 s trace like Fig. 4: a level that steps and drifts (the "theoretical"
/// curve) plus fast fading and measurement noise.
struct Trace {
    TimeSeries raw;
    std::vector<double> truth;
};

Trace make_trace(locble::Rng& rng) {
    Trace out;
    for (int i = 0; i < 400; ++i) {
        const double t = 0.1 * i;
        double level = -80.0;
        if (t > 8.0) level = -80.0 + (t - 8.0) * 1.1;    // walking closer
        if (t > 15.0) level = -72.3;                     // stop
        if (t > 22.0) level = -60.0;                     // abrupt: blocker clears
        if (t > 30.0) level = -60.0 - (t - 30.0) * 0.8;  // walking away
        const double fade =
            3.0 * std::sin(2.0 * std::numbers::pi * 1.9 * t) * std::exp(-0.05 * t);
        out.truth.push_back(level);
        out.raw.push_back({t, level + fade + rng.gaussian(0.0, 2.0)});
    }
    return out;
}

int first_reach(const std::vector<double>& v, const std::vector<double>& truth) {
    // Samples after the abrupt t=22 step until the filter is within 3 dB of
    // the new level.
    for (std::size_t i = 221; i < v.size(); ++i)
        if (std::abs(v[i] - truth[i]) < 3.0) return static_cast<int>(i) - 220;
    return -1;
}

struct Trial {
    double rmse_raw, rmse_bf, rmse_anf;
    double lag_bf, lag_anf;
};

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig4_filtering", opt, 4000);

    bench::print_header("Fig. 4 — BF + AKF filtering",
                        "BF smooths but delays; BF+AKF tracks the theoretical "
                        "curve with better responsiveness (Sec. 4.2)");

    const int runs = runner.trials_or(20);
    const auto trials =
        runner.run(runs, runner.sweep_seed(1), [&](int, locble::Rng& rng) {
            const Trace trace = make_trace(rng);

            const TimeSeries bf = dsp::butterworth_only(trace.raw);
            dsp::Anf anf;
            TimeSeries fused;
            for (const auto& s : trace.raw) fused.push_back({s.t, anf.process(s.value)});

            Trial out;
            out.rmse_raw = rmse(values_of(trace.raw), trace.truth);
            out.rmse_bf = rmse(values_of(bf), trace.truth);
            out.rmse_anf = rmse(values_of(fused), trace.truth);
            out.lag_bf = first_reach(values_of(bf), trace.truth);
            out.lag_anf = first_reach(values_of(fused), trace.truth);
            return out;
        });

    double rmse_raw = 0.0, rmse_bf = 0.0, rmse_anf = 0.0;
    double lag_bf = 0.0, lag_anf = 0.0;
    for (const auto& t : trials) {
        rmse_raw += t.rmse_raw;
        rmse_bf += t.rmse_bf;
        rmse_anf += t.rmse_anf;
        lag_bf += t.lag_bf;
        lag_anf += t.lag_anf;
    }

    TextTable table({"series", "RMSE vs theoretical (dB)", "catch-up after step (samples)"});
    table.add_row("raw RSS", {rmse_raw / runs, 0.0}, 2);
    table.add_row("BF only", {rmse_bf / runs, lag_bf / runs}, 2);
    table.add_row("BF + AKF (ANF)", {rmse_anf / runs, lag_anf / runs}, 2);
    std::printf("%s\n", table.str().c_str());

    std::printf("shape check: RMSE(ANF) < RMSE(raw): %s; catch-up(ANF) <= catch-up(BF): %s\n",
                rmse_anf < rmse_raw ? "yes" : "NO",
                lag_anf <= lag_bf ? "yes" : "NO");
    runner.report().add_scalar("rmse_raw_db", rmse_raw / runs);
    runner.report().add_scalar("rmse_bf_db", rmse_bf / runs);
    runner.report().add_scalar("rmse_anf_db", rmse_anf / runs);
    runner.report().add_scalar("catchup_bf_samples", lag_bf / runs);
    runner.report().add_scalar("catchup_anf_samples", lag_anf / runs);
    return runner.finish();
}
