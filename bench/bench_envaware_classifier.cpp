// Sec. 4.1 reproduction: EnvAware's 3-class environment classification.
// The paper reports 94.7% precision / 94.5% recall with a linear SVM that
// "outperforms other algorithms in the ensemble" (decision trees, forests).

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/core/envaware.hpp"
#include "locble/ml/decision_tree.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("envaware_classifier", opt, 20170404);

    bench::print_header("Sec. 4.1 — EnvAware classifier",
                        "94.7% precision / 94.5% recall; SVM beats the other "
                        "ensemble members");

    // One shared corpus + split (serial: the dataset is the experiment's
    // fixed input); the three ensemble members then train in parallel.
    locble::Rng rng = locble::Rng::for_stream(runner.master_seed(), 0);
    core::EnvDatasetConfig dcfg;
    dcfg.traces_per_class = 120;
    const ml::Dataset data = core::generate_env_dataset(dcfg, rng);

    locble::Rng split_rng = locble::Rng::for_stream(runner.master_seed(), 1);
    auto [train, test] = ml::train_test_split(data, 0.3, split_rng);

    const auto reports =
        runner.run(3, runner.sweep_seed(1), [&](int which, locble::Rng&) {
            if (which == 0) {
                // Linear SVM (the shipped EnvAware configuration).
                core::EnvAware env;
                env.train(train);
                std::vector<int> pred;
                for (const auto& row : test.x)
                    pred.push_back(env.svm().predict(env.scaler().transform(row)));
                return ml::evaluate_classification(test.y, pred);
            }
            if (which == 1) {
                ml::DecisionTree tree;
                tree.fit(train);
                return ml::evaluate_classification(test.y, tree.predict(test));
            }
            ml::RandomForest forest;
            forest.fit(train);
            return ml::evaluate_classification(test.y, forest.predict(test));
        });

    const char* names[] = {"linear SVM (EnvAware)", "decision tree", "random forest"};
    const char* keys[] = {"svm", "decision_tree", "random_forest"};
    TextTable table({"classifier", "accuracy", "macro precision", "macro recall"});
    for (int i = 0; i < 3; ++i) {
        table.add_row(names[i], {reports[i].accuracy, reports[i].macro_precision,
                                 reports[i].macro_recall},
                      3);
        runner.report().add_scalar(std::string(keys[i]) + "_accuracy",
                                   reports[i].accuracy);
        runner.report().add_scalar(std::string(keys[i]) + "_macro_precision",
                                   reports[i].macro_precision);
        runner.report().add_scalar(std::string(keys[i]) + "_macro_recall",
                                   reports[i].macro_recall);
    }

    std::printf("%s\n", table.str().c_str());
    std::printf("per-class report (SVM):\n%s\n",
                reports[0].str({"LOS", "p-LOS", "NLOS"}).c_str());
    std::printf("paper reference: precision 0.947, recall 0.945\n");
    return runner.finish();
}
