// Sec. 4.1 reproduction: EnvAware's 3-class environment classification.
// The paper reports 94.7% precision / 94.5% recall with a linear SVM that
// "outperforms other algorithms in the ensemble" (decision trees, forests).

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/core/envaware.hpp"
#include "locble/ml/decision_tree.hpp"

using namespace locble;

int main() {
    bench::print_header("Sec. 4.1 — EnvAware classifier",
                        "94.7% precision / 94.5% recall; SVM beats the other "
                        "ensemble members");

    locble::Rng rng(20170404);
    core::EnvDatasetConfig dcfg;
    dcfg.traces_per_class = 120;
    const ml::Dataset data = core::generate_env_dataset(dcfg, rng);

    locble::Rng split_rng(7);
    auto [train, test] = ml::train_test_split(data, 0.3, split_rng);

    TextTable table({"classifier", "accuracy", "macro precision", "macro recall"});

    // Linear SVM (the shipped EnvAware configuration).
    core::EnvAware env;
    env.train(train);
    std::vector<int> svm_pred;
    for (const auto& row : test.x)
        svm_pred.push_back(env.svm().predict(env.scaler().transform(row)));
    const auto svm_rep = ml::evaluate_classification(test.y, svm_pred);
    table.add_row("linear SVM (EnvAware)",
                  {svm_rep.accuracy, svm_rep.macro_precision, svm_rep.macro_recall}, 3);

    // Decision tree.
    ml::DecisionTree tree;
    tree.fit(train);
    const auto tree_rep = ml::evaluate_classification(test.y, tree.predict(test));
    table.add_row("decision tree",
                  {tree_rep.accuracy, tree_rep.macro_precision, tree_rep.macro_recall},
                  3);

    // Random forest.
    ml::RandomForest forest;
    forest.fit(train);
    const auto forest_rep =
        ml::evaluate_classification(test.y, forest.predict(test));
    table.add_row("random forest",
                  {forest_rep.accuracy, forest_rep.macro_precision,
                   forest_rep.macro_recall},
                  3);

    std::printf("%s\n", table.str().c_str());
    std::printf("per-class report (SVM):\n%s\n",
                svm_rep.str({"LOS", "p-LOS", "NLOS"}).c_str());
    std::printf("paper reference: precision 0.947, recall 0.945\n");
    return 0;
}
