// Fig. 11(a) reproduction: stationary-target estimation error decomposed
// into x error, h error and absolute distance error for environments #1-#6,
// with the Dartle-style fixed-model ranger as the comparison baseline.
// Paper: LocBLE < 1 m absolute in the meeting room, < 2.4 m elsewhere, and
// ~30% less ranging error than Dartle.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/baseline/ranging.hpp"
#include "locble/common/table.hpp"
#include "locble/sim/capture.hpp"

using namespace locble;

namespace {

struct Trial {
    bool ok{false};
    double x_err{0.0}, h_err{0.0}, abs_err{0.0}, dartle_err{0.0};
};

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig11a_stationary", opt, 11000);

    bench::print_header("Fig. 11(a) — stationary target, envs #1-#6",
                        "x/h/absolute errors; LocBLE ~30% better than the "
                        "Dartle ranging app");

    TextTable table({"env", "x err (m)", "h err (m)", "LocBLE abs (m)",
                     "Dartle range err (m)"});
    const int runs = runner.trials_or(25);
    double locble_total = 0.0, dartle_total = 0.0;
    for (int idx = 1; idx <= 6; ++idx) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        const sim::MeasurementConfig cfg;
        const std::uint64_t sweep = runner.sweep_seed(static_cast<std::uint64_t>(idx));

        const auto trials = runner.run(runs, sweep, [&](int t, locble::Rng& rng) {
            Trial out;
            const auto m = sim::measure_stationary(sc, beacon, cfg, rng);
            if (!m.ok) return out;
            out.ok = true;
            out.x_err = m.x_error_m;
            out.h_err = m.h_error_m;
            // Range error at the measurement start — "how far is my item
            // from here" is the question both apps answer before the user
            // moves toward it.
            const double true_range = m.truth_observer_frame.norm();
            out.abs_err = std::abs(m.estimate_observer_frame.norm() - true_range);

            // Baseline on an identical capture: Dartle averages the first
            // samples of the scan at the same starting position. The
            // capture world is replayed exactly by reopening the trial's
            // stream (pure function of the sweep seed and trial index).
            locble::Rng rng2 =
                locble::Rng::for_stream(sweep, static_cast<std::uint64_t>(t));
            const auto walk = sim::default_l_walk(sc);
            const auto cap =
                sim::CaptureRunner(cfg.capture).run(sc.site, {beacon}, walk, rng2);
            auto rss = cap.rss.at(beacon.id);
            const auto head = slice(rss, 0.0, 1.5);  // first ~1.5 s standing
            const baseline::FixedModelRanger ranger;
            out.dartle_err = std::abs(
                ranger.estimate_distance(head.empty() ? rss : head) - true_range);
            return out;
        });

        double x_err = 0.0, h_err = 0.0, abs_err = 0.0, dartle_err = 0.0;
        int n = 0;
        for (const auto& t : trials) {
            if (!t.ok) continue;
            x_err += t.x_err;
            h_err += t.h_err;
            abs_err += t.abs_err;
            dartle_err += t.dartle_err;
            ++n;
        }
        if (n == 0) continue;
        table.add_row("#" + std::to_string(idx),
                      {x_err / n, h_err / n, abs_err / n, dartle_err / n}, 2);
        runner.report().add_scalar("env" + std::to_string(idx) + "_locble_abs_m",
                                   abs_err / n);
        runner.report().add_scalar("env" + std::to_string(idx) + "_dartle_abs_m",
                                   dartle_err / n);
        locble_total += abs_err / n;
        dartle_total += dartle_err / n;
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("LocBLE vs Dartle ranging error: %.2f vs %.2f m -> %.0f%% less "
                "(paper: ~30%% less)\n",
                locble_total / 6.0, dartle_total / 6.0,
                100.0 * (1.0 - locble_total / dartle_total));
    runner.report().add_scalar("locble_mean_abs_m", locble_total / 6.0);
    runner.report().add_scalar("dartle_mean_abs_m", dartle_total / 6.0);
    runner.report().add_scalar("improvement_vs_dartle",
                               1.0 - locble_total / dartle_total);
    return runner.finish();
}
