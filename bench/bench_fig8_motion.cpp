// Fig. 8 / Sec. 5.2 reproduction: step and turn detection accuracy.
// The paper reports 94.77% step-based distance accuracy and 3.45 deg mean
// turn-angle error.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/common/units.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/motion/step_detector.hpp"
#include "locble/motion/turn_detector.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig8_motion", opt, 8000);

    bench::print_header("Fig. 8 — step & turn detection",
                        "step distance accuracy 94.77%; mean turn angle error "
                        "3.45 deg (Sec. 5.2)");

    const imu::ImuSynthesizer synth;
    const motion::StepDetector steps;
    const motion::TurnDetector turns;

    // Step-distance accuracy over straight walks of several lengths; the
    // trial space is (length x repetition), flattened.
    const std::vector<double> lengths{4.0, 6.0, 8.0, 10.0};
    const int reps = runner.trials_or(15);
    const int dist_trials = static_cast<int>(lengths.size()) * reps;
    const auto dist_accs =
        runner.run(dist_trials, runner.sweep_seed(1), [&](int t, locble::Rng& rng) {
            const double length = lengths[static_cast<std::size_t>(t / reps)];
            const auto walk = imu::make_straight({0, 0}, 0.0, length);
            const auto trace = synth.synthesize(walk, rng);
            const auto det = steps.detect(trace.accel_vertical);
            return 1.0 - std::abs(det.total_distance_m - length) / length;
        });
    double dist_acc_sum = 0.0;
    for (double a : dist_accs) dist_acc_sum += a;
    const int dist_runs = dist_trials;

    // Turn-angle error over L-shaped walks with varied turn angles.
    const std::vector<double> angles_deg{60.0, 90.0, 120.0, -90.0};
    const int angle_trials = static_cast<int>(angles_deg.size()) * reps;
    struct TurnTrial {
        bool detected{false};
        double err_deg{0.0};
    };
    const auto turn_trials =
        runner.run(angle_trials, runner.sweep_seed(2), [&](int t, locble::Rng& rng) {
            const double angle_deg = angles_deg[static_cast<std::size_t>(t / reps)];
            const double angle = deg_to_rad(angle_deg);
            const auto walk = imu::make_l_shape({0, 0}, 0.2, 4.0, 3.0, angle);
            const auto trace = synth.synthesize(walk, rng);
            const auto det = turns.detect(trace.gyro_z, trace.mag_heading);
            TurnTrial out;
            if (det.size() != 1) return out;
            out.detected = true;
            out.err_deg = std::abs(rad_to_deg(det[0].angle_rad) - angle_deg);
            return out;
        });
    double angle_err_sum = 0.0;
    int angle_runs = 0, missed = 0;
    for (const auto& t : turn_trials) {
        if (!t.detected) {
            ++missed;
            continue;
        }
        angle_err_sum += t.err_deg;
        ++angle_runs;
    }

    TextTable table({"metric", "measured", "paper"});
    table.add_row({"step distance accuracy",
                   fmt(100.0 * dist_acc_sum / dist_runs, 2) + " %", "94.77 %"});
    table.add_row({"mean turn angle error",
                   fmt(angle_err_sum / std::max(angle_runs, 1), 2) + " deg",
                   "3.45 deg"});
    table.add_row({"turn detection misses",
                   fmt(100.0 * missed / (angle_runs + missed), 1) + " %", "-"});
    std::printf("%s\n", table.str().c_str());
    runner.report().add_scalar("step_distance_accuracy",
                               dist_acc_sum / dist_runs);
    runner.report().add_scalar("mean_turn_angle_error_deg",
                               angle_err_sum / std::max(angle_runs, 1));
    runner.report().add_scalar("turn_miss_rate",
                               static_cast<double>(missed) / (angle_runs + missed));
    return runner.finish();
}
