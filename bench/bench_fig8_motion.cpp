// Fig. 8 / Sec. 5.2 reproduction: step and turn detection accuracy.
// The paper reports 94.77% step-based distance accuracy and 3.45 deg mean
// turn-angle error.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/common/units.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/motion/step_detector.hpp"
#include "locble/motion/turn_detector.hpp"

using namespace locble;

int main() {
    bench::print_header("Fig. 8 — step & turn detection",
                        "step distance accuracy 94.77%; mean turn angle error "
                        "3.45 deg (Sec. 5.2)");

    const imu::ImuSynthesizer synth;
    const motion::StepDetector steps;
    const motion::TurnDetector turns;

    // Step-distance accuracy over straight walks of several lengths.
    double dist_acc_sum = 0.0;
    int dist_runs = 0;
    for (double length : {4.0, 6.0, 8.0, 10.0}) {
        for (std::uint64_t seed = 1; seed <= 15; ++seed) {
            const auto walk = imu::make_straight({0, 0}, 0.0, length);
            locble::Rng rng(seed * 13 + static_cast<std::uint64_t>(length));
            const auto trace = synth.synthesize(walk, rng);
            const auto det = steps.detect(trace.accel_vertical);
            dist_acc_sum += 1.0 - std::abs(det.total_distance_m - length) / length;
            ++dist_runs;
        }
    }

    // Turn-angle error over L-shaped walks with varied turn angles.
    double angle_err_sum = 0.0;
    int angle_runs = 0, missed = 0;
    for (double angle_deg : {60.0, 90.0, 120.0, -90.0}) {
        for (std::uint64_t seed = 1; seed <= 15; ++seed) {
            const double angle = deg_to_rad(angle_deg);
            const auto walk = imu::make_l_shape({0, 0}, 0.2, 4.0, 3.0, angle);
            locble::Rng rng(seed * 17 + static_cast<std::uint64_t>(angle_deg + 200));
            const auto trace = synth.synthesize(walk, rng);
            const auto det = turns.detect(trace.gyro_z, trace.mag_heading);
            if (det.size() != 1) {
                ++missed;
                continue;
            }
            angle_err_sum += std::abs(rad_to_deg(det[0].angle_rad) - angle_deg);
            ++angle_runs;
        }
    }

    TextTable table({"metric", "measured", "paper"});
    table.add_row({"step distance accuracy",
                   fmt(100.0 * dist_acc_sum / dist_runs, 2) + " %", "94.77 %"});
    table.add_row({"mean turn angle error",
                   fmt(angle_err_sum / std::max(angle_runs, 1), 2) + " deg",
                   "3.45 deg"});
    table.add_row({"turn detection misses",
                   fmt(100.0 * missed / (angle_runs + missed), 1) + " %", "-"});
    std::printf("%s\n", table.str().c_str());
    return 0;
}
