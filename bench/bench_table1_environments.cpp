// Table 1 reproduction: mean localization accuracy with 75% confidence
// interval in all nine environments.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("table1_environments", opt, 9000);

    bench::print_header("Table 1 — accuracy per environment",
                        "0.8 / 1.4 / 1.4 / 1.6 / 1.6 / 1.8 / 2.3 / 2.1 / 1.2 m "
                        "(mean +- 75% CI) for environments #1-#9");

    TextTable table({"#", "environment", "scale (m^2)", "measured acc (m)",
                     "paper acc (m)"});
    const int runs = runner.trials_or(30);
    double measured_sum = 0.0, paper_sum = 0.0;
    std::vector<std::pair<double, double>> pairs;  // (measured, paper)
    for (const auto& sc : sim::all_scenarios()) {
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        const sim::MeasurementConfig cfg;
        const auto errors =
            bench::stationary_errors(runner, sc, beacon, cfg, runs,
                                     runner.sweep_seed(static_cast<std::uint64_t>(sc.index)));
        const EmpiricalCdf cdf(errors);
        // 75% confidence interval half-width around the mean, matching the
        // paper's "+-" presentation.
        const double half =
            0.5 * (cdf.percentile(0.875) - cdf.percentile(0.125));
        table.add_row({std::to_string(sc.index), sc.name,
                       fmt(sc.site.width_m, 0) + "x" + fmt(sc.site.height_m, 0),
                       fmt(cdf.mean(), 2) + " +- " + fmt(half, 2),
                       fmt(sc.paper_accuracy_m, 1) + " +- " + fmt(sc.paper_ci_m, 1)});
        runner.report().add_summary("env" + std::to_string(sc.index) + "_error_m",
                                    errors);
        measured_sum += cdf.mean();
        paper_sum += sc.paper_accuracy_m;
        pairs.emplace_back(cdf.mean(), sc.paper_accuracy_m);
    }
    std::printf("%s\n", table.str().c_str());

    // Shape checks the paper's prose makes: LOS meeting room is the best
    // indoor case; labs/hall (heavy NLOS) are the worst.
    std::sort(pairs.begin(), pairs.end());
    std::printf("mean over environments: measured %.2f m vs paper %.2f m "
                "(ratio %.2f)\n",
                measured_sum / 9.0, paper_sum / 9.0, measured_sum / paper_sum);
    std::printf("paper's headline: ~1.8 m indoor / ~1.2 m outdoor average\n");
    runner.report().add_scalar("mean_error_m", measured_sum / 9.0);
    runner.report().add_scalar("paper_mean_error_m", paper_sum / 9.0);
    runner.report().add_scalar("ratio_vs_paper", measured_sum / paper_sum);
    return runner.finish();
}
