// Ablation of the estimator design choices documented in DESIGN.md:
//   - WLS (1/rho) weighting of the linear elliptical seed,
//   - dB-domain Gauss-Newton refinement,
//   - model averaging across near-optimal exponents,
//   - the Gamma prior from the beacon frame.
// Each row disables one choice on the full simulated pipeline in three
// representative environments.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

struct Variant {
    const char* name;
    bool wls;
    bool gn;
    bool averaging;
    bool gamma_prior;
};

double variant_error(const Variant& v, int runs_per_env) {
    std::vector<double> errors;
    for (int idx : {1, 4, 9}) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        cfg.pipeline.solver.use_wls = v.wls;
        cfg.pipeline.solver.use_gn_refinement = v.gn;
        cfg.pipeline.solver.use_model_averaging = v.averaging;
        if (!v.gamma_prior) {
            // Suppress the harness's default prior injection.
            cfg.pipeline.gamma_prior_dbm = -60.0;
            cfg.pipeline.gamma_prior_below_db = 30.0;
            cfg.pipeline.gamma_prior_above_db = 30.0;
        }
        const auto errs =
            bench::stationary_errors(sc, beacon, cfg, runs_per_env, 31000 + idx * 211);
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    return EmpiricalCdf(errors).mean();
}

}  // namespace

int main() {
    bench::print_header("Ablation — estimator design choices",
                        "each row disables one DESIGN.md decision; the full "
                        "configuration should be best or tied");

    const Variant variants[] = {
        {"full estimator (defaults)", true, true, false, true},
        {"- WLS (plain Eq. 3 least squares)", false, true, false, true},
        {"- Gauss-Newton refinement", true, false, false, true},
        {"+ model averaging", true, true, true, true},
        {"- Gamma prior (free Gamma)", true, true, false, false},
    };

    TextTable table({"variant", "mean error over envs 1/4/9 (m)"});
    const int runs = 20;
    for (const auto& v : variants) table.add_row(v.name, {variant_error(v, runs)}, 2);
    std::printf("%s\n", table.str().c_str());
    return 0;
}
