// Ablation of the estimator design choices documented in DESIGN.md:
//   - WLS (1/rho) weighting of the linear elliptical seed,
//   - dB-domain Gauss-Newton refinement,
//   - model averaging across near-optimal exponents,
//   - the Gamma prior from the beacon frame.
// Each row disables one choice on the full simulated pipeline in three
// representative environments.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

struct Variant {
    const char* name;
    const char* key;
    bool wls;
    bool gn;
    bool averaging;
    bool gamma_prior;
};

double variant_error(bench::Runner& runner, const Variant& v, int runs_per_env) {
    std::vector<double> errors;
    for (int idx : {1, 4, 9}) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        cfg.pipeline.solver.use_wls = v.wls;
        cfg.pipeline.solver.use_gn_refinement = v.gn;
        cfg.pipeline.solver.use_model_averaging = v.averaging;
        if (!v.gamma_prior) {
            // Suppress the harness's default prior injection.
            cfg.pipeline.gamma_prior_dbm = -60.0;
            cfg.pipeline.gamma_prior_below_db = 30.0;
            cfg.pipeline.gamma_prior_above_db = 30.0;
        }
        // Same worlds for every variant: the sweep seed only depends on the
        // environment, so rows differ by the estimator alone.
        const auto errs = bench::stationary_errors(
            runner, sc, beacon, cfg, runs_per_env,
            runner.sweep_seed(static_cast<std::uint64_t>(idx)));
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    return EmpiricalCdf(errors).mean();
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("ablation_solver", opt, 31000);

    bench::print_header("Ablation — estimator design choices",
                        "each row disables one DESIGN.md decision; the full "
                        "configuration should be best or tied");

    const Variant variants[] = {
        {"full estimator (defaults)", "full", true, true, false, true},
        {"- WLS (plain Eq. 3 least squares)", "no_wls", false, true, false, true},
        {"- Gauss-Newton refinement", "no_gn", true, false, false, true},
        {"+ model averaging", "model_averaging", true, true, true, true},
        {"- Gamma prior (free Gamma)", "no_gamma_prior", true, true, false, false},
    };

    TextTable table({"variant", "mean error over envs 1/4/9 (m)"});
    const int runs = runner.trials_or(20);
    for (const auto& v : variants) {
        const double err = variant_error(runner, v, runs);
        table.add_row(v.name, {err}, 2);
        runner.report().add_scalar(std::string(v.key) + "_mean_error_m", err);
    }
    std::printf("%s\n", table.str().c_str());
    return runner.finish();
}
