#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "locble/common/cdf.hpp"
#include "locble/runtime/bench_report.hpp"
#include "locble/runtime/trial_runner.hpp"
#include "locble/sim/harness.hpp"

namespace locble::bench {

/// Command-line options shared by every bench binary.
struct Options {
    int trials{0};          ///< 0 = keep each sweep's built-in default
    unsigned threads{0};    ///< 0 = LOCBLE_THREADS env var, else all cores
    std::uint64_t seed{0};  ///< 0 = the bench's built-in master seed
    std::string out_dir{"."};
    bool json{true};
    bool metrics{false};      ///< collect locble::obs metrics into the report
    std::string trace_file;   ///< non-empty = write a Chrome trace_event JSON
};

/// Parse `--trials N --threads N --seed S --out DIR --no-json --metrics
/// --trace FILE`; prints usage and exits on `--help` or malformed input.
Options parse_options(int argc, char** argv);

/// Shared execution harness for one bench binary: owns the parsed options,
/// a TrialRunner sized per --threads, the wall clock, and the JSON report.
///
/// Determinism contract: a sweep tagged `k` runs its trials on master seed
/// `sweep_seed(k)`; trial t of that sweep draws from
/// Rng::for_stream(sweep_seed(k), t). All seeds are pure functions of
/// (--seed, k, t), so metric values are byte-identical for any --threads.
class Runner {
public:
    /// `name` becomes the BENCH_<name>.json stem; `default_seed` is the
    /// master seed when --seed is not given.
    Runner(const std::string& name, const Options& opt, std::uint64_t default_seed);

    int trials_or(int dflt) const { return opt_.trials > 0 ? opt_.trials : dflt; }
    std::uint64_t master_seed() const { return master_seed_; }
    /// Independent per-sweep master seed (pure function of --seed and tag).
    std::uint64_t sweep_seed(std::uint64_t tag) const {
        return locble::Rng::split_seed(master_seed_, tag);
    }
    unsigned threads() const { return runner_.threads(); }

    /// Run one sweep of `trials` seeded Monte-Carlo trials in parallel;
    /// results ordered by trial index.
    template <class Fn>
    auto run(int trials, std::uint64_t seed, Fn&& fn) {
        trials_run_ += trials;
        return runner_.run(trials, seed, std::forward<Fn>(fn));
    }

    runtime::BenchReport& report() { return report_; }

    /// Stamp run info + wall time, fold the obs snapshot into the report
    /// (--metrics), write the trace file (--trace), write BENCH_<name>.json
    /// (unless --no-json) and print where it went. Returns the process exit
    /// code.
    int finish();

private:
    Options opt_;
    std::uint64_t master_seed_;
    runtime::TrialRunner runner_;
    runtime::BenchReport report_;
    std::chrono::steady_clock::time_point start_;
    int trials_run_{0};
};

/// Collect stationary-measurement errors over `runs` independently seeded
/// trials of one scenario, in parallel (NaN-free: failed fits count as the
/// site diagonal).
inline std::vector<double> stationary_errors(Runner& runner, const sim::Scenario& sc,
                                             const sim::BeaconPlacement& beacon,
                                             const sim::MeasurementConfig& cfg,
                                             int runs, std::uint64_t sweep_seed) {
    return runner.run(runs, sweep_seed, [&](int, locble::Rng& rng) {
        const auto out = sim::measure_stationary(sc, beacon, cfg, rng);
        return out.ok ? out.error_m : std::hypot(sc.site.width_m, sc.site.height_m);
    });
}

/// Print a header naming the experiment and the paper's reference result.
inline void print_header(const std::string& id, const std::string& claim) {
    std::printf("== %s ==\n", id.c_str());
    std::printf("paper: %s\n\n", claim.c_str());
}

/// Record a named CDF into the report as a summary metric.
inline void report_cdf(Runner& runner, const std::string& key,
                       const std::vector<double>& samples) {
    runner.report().add_summary(key, samples);
}

}  // namespace locble::bench
