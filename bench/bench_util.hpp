#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "locble/common/cdf.hpp"
#include "locble/sim/harness.hpp"

namespace locble::bench {

/// Collect stationary-measurement errors over `runs` seeded repetitions of
/// one scenario (NaN-free: failed fits count as the site diagonal).
inline std::vector<double> stationary_errors(const sim::Scenario& sc,
                                             const sim::BeaconPlacement& beacon,
                                             const sim::MeasurementConfig& cfg,
                                             int runs, std::uint64_t seed_base) {
    std::vector<double> errors;
    errors.reserve(runs);
    for (int r = 0; r < runs; ++r) {
        locble::Rng rng(seed_base + static_cast<std::uint64_t>(r) * 7919);
        const auto out = sim::measure_stationary(sc, beacon, cfg, rng);
        errors.push_back(out.ok ? out.error_m
                                : std::hypot(sc.site.width_m, sc.site.height_m));
    }
    return errors;
}

/// Print a header naming the experiment and the paper's reference result.
inline void print_header(const std::string& id, const std::string& claim) {
    std::printf("== %s ==\n", id.c_str());
    std::printf("paper: %s\n\n", claim.c_str());
}

}  // namespace locble::bench
