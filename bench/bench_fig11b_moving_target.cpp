// Fig. 11(b) reproduction: moving-target error CDF. Two walkers, both
// moving, RSS + motion transferred from target to observer afterwards.
// Test 1 runs in environment #9 (3-9 m), test 2 in #8 (3-14 m). Paper:
// error < 2.5 m for more than 50% of runs.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"

using namespace locble;

namespace {

std::vector<double> moving_errors(bench::Runner& runner, int scenario_index,
                                  double min_d, double max_d, int runs,
                                  std::uint64_t sweep_seed) {
    const sim::Scenario sc = sim::scenario(scenario_index);
    return runner.run(runs, sweep_seed, [&, min_d, max_d](int, locble::Rng& rng) {
        // Target starts min_d..max_d away from the observer start and walks
        // a random two-leg path; observer does the standard L. Placement
        // and walk shape are drawn from the head of the trial's stream.
        const double d = rng.uniform(min_d, max_d);
        const double ang = rng.uniform(0.2, 1.2);
        sim::BeaconPlacement target;
        target.id = 2;
        locble::Vec2 t0 = sc.observer_start + unit_from_angle(ang) * d;
        t0.x = std::clamp(t0.x, 0.5, sc.site.width_m - 0.5);
        t0.y = std::clamp(t0.y, 0.5, sc.site.height_m - 0.5);
        const double heading = rng.uniform(-3.1, 3.1);
        target.motion = imu::make_l_shape(t0, heading, 2.0, 1.5,
                                          rng.chance(0.5) ? 1.2 : -1.2);
        sim::MeasurementConfig cfg;
        const auto walk = sim::default_l_walk(sc);
        const auto out = sim::measure_moving(sc, target, walk, cfg, rng);
        return out.ok ? out.error_m : max_d;
    });
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig11b_moving_target", opt, 13000);

    bench::print_header("Fig. 11(b) — moving target error CDF",
                        "accuracy < 2.5 m for > 50% of runs (Sec. 7.4.2)");

    const int runs = runner.trials_or(40);
    const auto errs1 =
        moving_errors(runner, 9, 3.0, 9.0, runs, runner.sweep_seed(1));
    const auto errs2 =
        moving_errors(runner, 8, 3.0, 11.0, runs, runner.sweep_seed(2));
    const EmpiricalCdf test1(errs1);
    const EmpiricalCdf test2(errs2);

    std::printf("%s\n", format_cdf_table({{"Test 1 (env #9)", test1},
                                          {"Test 2 (env #8)", test2}},
                                         {{0.25, 0.5, 0.75, 0.9}})
                            .c_str());
    std::printf("medians: %.2f / %.2f m (paper: < 2.5 m at the median)\n",
                test1.median(), test2.median());
    runner.report().add_summary("test1_env9_error_m", errs1);
    runner.report().add_summary("test2_env8_error_m", errs2);
    return runner.finish();
}
