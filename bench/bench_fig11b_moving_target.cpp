// Fig. 11(b) reproduction: moving-target error CDF. Two walkers, both
// moving, RSS + motion transferred from target to observer afterwards.
// Test 1 runs in environment #9 (3-9 m), test 2 in #8 (3-14 m). Paper:
// error < 2.5 m for more than 50% of runs.

#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"

using namespace locble;

namespace {

std::vector<double> moving_errors(int scenario_index, double min_d, double max_d,
                                  int runs, std::uint64_t seed_base) {
    const sim::Scenario sc = sim::scenario(scenario_index);
    std::vector<double> errors;
    locble::Rng placement(seed_base);
    for (int r = 0; r < runs; ++r) {
        // Target starts min_d..max_d away from the observer start and walks
        // a random two-leg path; observer does the standard L.
        const double d = placement.uniform(min_d, max_d);
        const double ang = placement.uniform(0.2, 1.2);
        sim::BeaconPlacement target;
        target.id = 2;
        locble::Vec2 t0 = sc.observer_start + unit_from_angle(ang) * d;
        t0.x = std::clamp(t0.x, 0.5, sc.site.width_m - 0.5);
        t0.y = std::clamp(t0.y, 0.5, sc.site.height_m - 0.5);
        locble::Rng walk_rng(seed_base + 31 * r + 1);
        const double heading = walk_rng.uniform(-3.1, 3.1);
        target.motion = imu::make_l_shape(t0, heading, 2.0, 1.5,
                                          walk_rng.chance(0.5) ? 1.2 : -1.2);
        sim::MeasurementConfig cfg;
        locble::Rng rng(seed_base + 97 * r + 7);
        const auto walk = sim::default_l_walk(sc);
        const auto out = sim::measure_moving(sc, target, walk, cfg, rng);
        errors.push_back(out.ok ? out.error_m : max_d);
    }
    return errors;
}

}  // namespace

int main() {
    bench::print_header("Fig. 11(b) — moving target error CDF",
                        "accuracy < 2.5 m for > 50% of runs (Sec. 7.4.2)");

    const EmpiricalCdf test1(moving_errors(9, 3.0, 9.0, 40, 13000));
    const EmpiricalCdf test2(moving_errors(8, 3.0, 11.0, 40, 14000));

    std::printf("%s\n", format_cdf_table({{"Test 1 (env #9)", test1},
                                          {"Test 2 (env #8)", test2}},
                                         {{0.25, 0.5, 0.75, 0.9}})
                            .c_str());
    std::printf("medians: %.2f / %.2f m (paper: < 2.5 m at the median)\n",
                test1.median(), test2.median());
    return 0;
}
