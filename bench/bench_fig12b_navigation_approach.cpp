// Fig. 12(b) reproduction: navigation accuracy vs remaining distance. An
// observer ~16.5 m away approaches the target under LocBLE guidance,
// re-measuring en route. Paper: ~5 m error at ~17 m, improving to ~1 m at
// 3 m.

#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/sim/navigation_sim.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig12b_navigation_approach", opt, 16000);

    bench::print_header("Fig. 12(b) — accuracy while approaching",
                        "error ~5 m at 17 m falls to ~1 m at 3 m");

    sim::Scenario sc = sim::scenario(9);
    sc.site.width_m = 26.0;
    sc.site.height_m = 20.0;

    sim::BeaconPlacement beacon;
    beacon.position = {18.0, 14.0};

    sim::NavigationSimulator::Config ncfg;
    ncfg.max_rounds = 8;
    const sim::NavigationSimulator nav(ncfg);

    // Each trial returns its per-round (distance, error) records; the
    // bucketed reduction happens serially afterwards.
    const int runs = runner.trials_or(18);
    const auto all_rounds = runner.run(
        runs, runner.sweep_seed(1), [&](int, locble::Rng& rng) {
            std::vector<std::pair<double, double>> rounds;  // (distance, error)
            const auto result = nav.run(sc, beacon, {2.0, 2.0}, 0.6, rng);
            for (const auto& rec : result.rounds)
                if (rec.measured)
                    rounds.emplace_back(rec.distance_to_target_m,
                                        rec.estimate_error_m);
            return rounds;
        });

    // Bucket measurement errors by the true distance when measuring.
    std::map<int, std::pair<double, int>> buckets;  // bucket -> (sum, n)
    for (const auto& rounds : all_rounds)
        for (const auto& [dist, err] : rounds) {
            const int bucket = static_cast<int>(dist / 3.0);
            buckets[bucket].first += err;
            buckets[bucket].second += 1;
        }

    TextTable table({"distance band (m)", "mean estimate error (m)", "samples"});
    for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
        const auto [sum, n] = it->second;
        table.add_row({fmt(it->first * 3.0, 0) + "-" + fmt(it->first * 3.0 + 3.0, 0),
                       fmt(sum / n, 2), std::to_string(n)});
        runner.report().add_scalar(
            "error_band_" + fmt(it->first * 3.0, 0) + "m", sum / n);
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("shape check: error shrinks monotonically as the observer "
                "approaches (Fig. 12(b))\n");
    return runner.finish();
}
