// Fig. 2 reproduction: RSS readings while walking away from one beacon on
// three phones. The paper's takeaway: per-phone RSSI offsets shift the
// curves but the distance trend is shared — which is why LocBLE works from
// the *changing trend* of RSS.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/ble/scanner.hpp"
#include "locble/common/stats.hpp"
#include "locble/common/table.hpp"
#include "locble/sim/capture.hpp"

using namespace locble;

int main() {
    bench::print_header(
        "Fig. 2 — RSS vs distance on three phones",
        "offsets differ per phone; the decay trend is identical (Sec. 2.5)");

    const sim::Scenario sc = sim::scenario(2);  // indoor hallway-like walk
    const double distances[] = {0.8, 1.5, 3.0, 4.6, 6.1};

    const ble::ReceiverProfile phones[] = {ble::iphone5s_receiver(),
                                           ble::nexus5x_receiver(),
                                           ble::nexus6_receiver()};

    TextTable table({"distance (m)", phones[0].name, phones[1].name, phones[2].name});

    // One beacon at the origin side; each phone walks the same straight path.
    sim::BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = {0.7, 1.5};

    std::vector<std::vector<double>> mean_rss(3);
    for (int p = 0; p < 3; ++p) {
        sim::CaptureRunner::Config ccfg;
        ccfg.scanner.receiver = phones[p];
        const sim::CaptureRunner runner(ccfg);
        const imu::Trajectory walk = imu::make_straight(
            {beacon.position.x + 0.3, beacon.position.y}, 0.0, 6.5);
        locble::Rng rng(42);  // same world for every phone
        const auto cap = runner.run(sc.site, {beacon}, walk, rng);
        const auto& rss = cap.rss.at(1);
        for (double d : distances) {
            // Time at which the walker passes distance d (speed 1.1 m/s after
            // the 0.5 s initial pause; starts 0.3 m out).
            const double t = 0.5 + (d - 0.3) / 1.1;
            const auto window = slice(rss, t - 0.4, t + 0.4);
            mean_rss[p].push_back(window.empty() ? 0.0
                                                 : mean(values_of(window)));
        }
    }

    for (std::size_t i = 0; i < std::size(distances); ++i)
        table.add_row(fmt(distances[i], 1),
                      {mean_rss[0][i], mean_rss[1][i], mean_rss[2][i]}, 1);
    std::printf("%s\n", table.str().c_str());

    // The claim: offsets differ, trend (slope) is shared.
    std::vector<double> drops(3);
    for (int p = 0; p < 3; ++p) drops[p] = mean_rss[p].front() - mean_rss[p].back();
    std::printf("RSSI drop 0.8 m -> 6.1 m: %s / %s / %s dB (similar trend)\n",
                fmt(drops[0], 1).c_str(), fmt(drops[1], 1).c_str(),
                fmt(drops[2], 1).c_str());
    std::printf("phone offsets at 3 m: %s / %s / %s dBm (distinct levels)\n",
                fmt(mean_rss[0][2], 1).c_str(), fmt(mean_rss[1][2], 1).c_str(),
                fmt(mean_rss[2][2], 1).c_str());
    return 0;
}
