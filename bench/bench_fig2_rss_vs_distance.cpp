// Fig. 2 reproduction: RSS readings while walking away from one beacon on
// three phones. The paper's takeaway: per-phone RSSI offsets shift the
// curves but the distance trend is shared — which is why LocBLE works from
// the *changing trend* of RSS.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/ble/scanner.hpp"
#include "locble/common/stats.hpp"
#include "locble/common/table.hpp"
#include "locble/sim/capture.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig2_rss_vs_distance", opt, 42);

    bench::print_header(
        "Fig. 2 — RSS vs distance on three phones",
        "offsets differ per phone; the decay trend is identical (Sec. 2.5)");

    const sim::Scenario sc = sim::scenario(2);  // indoor hallway-like walk
    const double distances[] = {0.8, 1.5, 3.0, 4.6, 6.1};

    const ble::ReceiverProfile phones[] = {ble::iphone5s_receiver(),
                                           ble::nexus5x_receiver(),
                                           ble::nexus6_receiver()};

    TextTable table({"distance (m)", phones[0].name, phones[1].name, phones[2].name});

    // One beacon at the origin side; each phone walks the same straight path.
    sim::BeaconPlacement beacon;
    beacon.id = 1;
    beacon.position = {0.7, 1.5};

    // One "trial" per phone; every phone sees the *same* world, so each
    // trial reopens stream 0 of the sweep seed instead of its own stream.
    const std::uint64_t sweep = runner.sweep_seed(1);
    const auto mean_rss = runner.run(3, sweep, [&](int p, locble::Rng&) {
        sim::CaptureRunner::Config ccfg;
        ccfg.scanner.receiver = phones[p];
        const sim::CaptureRunner runner_(ccfg);
        const imu::Trajectory walk = imu::make_straight(
            {beacon.position.x + 0.3, beacon.position.y}, 0.0, 6.5);
        locble::Rng rng = locble::Rng::for_stream(sweep, 0);  // shared world
        const auto cap = runner_.run(sc.site, {beacon}, walk, rng);
        const auto& rss = cap.rss.at(1);
        std::vector<double> means;
        for (double d : distances) {
            // Time at which the walker passes distance d (speed 1.1 m/s after
            // the 0.5 s initial pause; starts 0.3 m out).
            const double t = 0.5 + (d - 0.3) / 1.1;
            const auto window = slice(rss, t - 0.4, t + 0.4);
            means.push_back(window.empty() ? 0.0 : mean(values_of(window)));
        }
        return means;
    });

    for (std::size_t i = 0; i < std::size(distances); ++i)
        table.add_row(fmt(distances[i], 1),
                      {mean_rss[0][i], mean_rss[1][i], mean_rss[2][i]}, 1);
    std::printf("%s\n", table.str().c_str());

    // The claim: offsets differ, trend (slope) is shared.
    std::vector<double> drops(3);
    for (int p = 0; p < 3; ++p) drops[p] = mean_rss[p].front() - mean_rss[p].back();
    std::printf("RSSI drop 0.8 m -> 6.1 m: %s / %s / %s dB (similar trend)\n",
                fmt(drops[0], 1).c_str(), fmt(drops[1], 1).c_str(),
                fmt(drops[2], 1).c_str());
    std::printf("phone offsets at 3 m: %s / %s / %s dBm (distinct levels)\n",
                fmt(mean_rss[0][2], 1).c_str(), fmt(mean_rss[1][2], 1).c_str(),
                fmt(mean_rss[2][2], 1).c_str());
    for (int p = 0; p < 3; ++p) {
        runner.report().add_scalar(std::string(phones[p].name) + "_drop_db", drops[p]);
        runner.report().add_scalar(std::string(phones[p].name) + "_rss_at_3m_dbm",
                                   mean_rss[p][2]);
    }
    return runner.finish();
}
