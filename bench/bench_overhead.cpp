// Sec. 7.8 reproduction: processing overhead of LocBLE vs the fixed-model
// ranging baseline, measured with google-benchmark. The paper instruments
// CPU/energy on a phone (LocBLE +14% CPU vs Dartle +11.3%); here we report
// the per-measurement compute cost of every pipeline stage.

#include <benchmark/benchmark.h>

#include "locble/baseline/ranging.hpp"
#include "locble/core/clustering.hpp"
#include "locble/core/pipeline.hpp"
#include "locble/dsp/anf.hpp"
#include "locble/sim/harness.hpp"

using namespace locble;

namespace {

struct Fixture {
    sim::Scenario sc = sim::scenario(2);
    sim::WalkCapture capture;
    motion::MotionEstimate motion_est;
    TimeSeries rss;

    Fixture() {
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        locble::Rng rng(1234);
        const auto walk = sim::default_l_walk(sc);
        capture = sim::CaptureRunner().run(sc.site, {beacon}, walk, rng);
        motion_est = motion::DeadReckoner().track(capture.observer_imu);
        rss = capture.rss.at(1);
    }
};

const Fixture& fixture() {
    static const Fixture f;
    return f;
}

void BM_AnfOffline(benchmark::State& state) {
    const dsp::Anf anf;
    for (auto _ : state) benchmark::DoNotOptimize(anf.process_offline(fixture().rss));
}
BENCHMARK(BM_AnfOffline);

void BM_EnvAwareClassify(benchmark::State& state) {
    const auto& env = sim::shared_envaware();
    const auto window = values_of(slice(fixture().rss, 0.0, 2.0));
    for (auto _ : state) benchmark::DoNotOptimize(env.classify(window));
}
BENCHMARK(BM_EnvAwareClassify);

void BM_StepDetection(benchmark::State& state) {
    const motion::StepDetector detector;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            detector.detect(fixture().capture.observer_imu.accel_vertical));
}
BENCHMARK(BM_StepDetection);

void BM_FullLocBlePipeline(benchmark::State& state) {
    core::LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    const core::LocBle pipeline(cfg, sim::shared_envaware());
    for (auto _ : state)
        benchmark::DoNotOptimize(pipeline.locate(fixture().rss, fixture().motion_est));
}
BENCHMARK(BM_FullLocBlePipeline);

void BM_DartleBaseline(benchmark::State& state) {
    const baseline::FixedModelRanger ranger;
    for (auto _ : state)
        benchmark::DoNotOptimize(ranger.estimate_distance(fixture().rss));
}
BENCHMARK(BM_DartleBaseline);

void BM_DtwClusterMatch(benchmark::State& state) {
    const auto times = times_of(fixture().rss);
    const auto trend =
        core::ClusteringCalibrator::trend_signal(fixture().rss, times, 4, 5);
    const core::SegmentedDtwMatcher matcher;
    for (auto _ : state) benchmark::DoNotOptimize(matcher.match(trend, trend));
}
BENCHMARK(BM_DtwClusterMatch);

}  // namespace

BENCHMARK_MAIN();
