// Sec. 7.8 reproduction: processing overhead of LocBLE vs the fixed-model
// ranging baseline, plus the locble::obs instrumentation-overhead proof.
// The paper instruments CPU/energy on a phone (LocBLE +14% CPU vs Dartle
// +11.3%); here we report the per-measurement compute cost of every
// pipeline stage, each timed twice — obs disabled and obs fully enabled
// (metrics + tracer) — interleaved rep by rep so frequency drift hits both
// sides equally. The headline `overhead_ratio` scalar (min-on / min-off for
// the full pipeline) backs the "<2% when enabled" claim; a results-identity
// check backs "instrumentation never changes what the pipeline computes".
//
// The serve_epoch stage (ISSUE 7) replays a small multi-client fleet
// through the TrackingService with the epoch flight recorder on, so its
// on/off ratio prices the serve-path obs instrumentation (the staleness
// and queue-residency quantile sketches) against the same budget. A
// separate serve_recorder measurement times the identical pass with the
// flight recorder + epoch telemetry enabled vs disabled — obs off on both
// sides — so `serve_recorder.overhead_ratio` isolates what the default-on
// flight recorder itself costs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "locble/baseline/ranging.hpp"
#include "locble/core/clustering.hpp"
#include "locble/core/pipeline.hpp"
#include "locble/dsp/anf.hpp"
#include "locble/obs/obs.hpp"
#include "locble/serve/service.hpp"
#include "locble/sim/harness.hpp"
#include "locble/sim/multi_client.hpp"

using namespace locble;

namespace {

struct Fixture {
    sim::Scenario sc = sim::scenario(2);
    sim::WalkCapture capture;
    motion::MotionEstimate motion_est;
    TimeSeries rss;

    Fixture() {
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        locble::Rng rng(1234);
        const auto walk = sim::default_l_walk(sc);
        capture = sim::CaptureRunner().run(sc.site, {beacon}, walk, rng);
        motion_est = motion::DeadReckoner().track(capture.observer_imu);
        rss = capture.rss.at(1);
    }
};

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void set_obs(bool on) {
    obs::Registry& reg = obs::Registry::global();
    obs::Tracer& tracer = obs::Tracer::global();
    if (on) {
        reg.reset();
        reg.set_enabled(true);
        tracer.reset();
        tracer.start();
    } else {
        reg.set_enabled(false);
        tracer.stop();
        tracer.reset();
    }
}

/// Seconds for `iters` back-to-back runs of `body`.
double time_iters(const std::function<void()>& body, int iters) {
    const double t0 = now_seconds();
    for (int i = 0; i < iters; ++i) body();
    return now_seconds() - t0;
}

struct StageTiming {
    int iters{0};
    double off_us{0.0};  ///< min per-call microseconds, obs disabled
    double on_us{0.0};   ///< min per-call microseconds, obs enabled
    double ratio{1.0};   ///< on/off
};

/// Interleaved min-of-reps timing: per rep, time the stage obs-off then
/// obs-on, keep the minimum of each side. Minima reject scheduler noise;
/// interleaving rejects slow drift (thermal, frequency scaling).
StageTiming time_stage(const std::function<void()>& body, int reps) {
    // Calibrate the per-rep iteration count to ~2 ms so short stages are
    // measurable and long ones stay cheap.
    set_obs(false);
    body();  // warm caches before calibrating
    const double once = time_iters(body, 1);
    const int iters =
        std::clamp(static_cast<int>(2e-3 / std::max(once, 1e-9)), 1, 20000);

    StageTiming t;
    t.iters = iters;
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        set_obs(false);
        best_off = std::min(best_off, time_iters(body, iters));
        set_obs(true);
        best_on = std::min(best_on, time_iters(body, iters));
        set_obs(false);  // also drops the rep's accumulated trace events
    }
    t.off_us = best_off / iters * 1e6;
    t.on_us = best_on / iters * 1e6;
    t.ratio = best_on / best_off;
    return t;
}

bool same_fit(const core::LocateResult& a, const core::LocateResult& b) {
    if (a.fit.has_value() != b.fit.has_value()) return false;
    if (!a.fit) return true;
    return a.fit->location.x == b.fit->location.x &&
           a.fit->location.y == b.fit->location.y &&
           a.fit->exponent == b.fit->exponent &&
           a.fit->gamma_dbm == b.fit->gamma_dbm &&
           a.fit->residual_db == b.fit->residual_db;
}

}  // namespace

int main(int argc, char** argv) {
    const bench::Options opt = bench::parse_options(argc, argv);
    bench::Runner runner("overhead", opt, /*default_seed=*/1234);
    bench::print_header("Sec 7.8 processing overhead",
                        "LocBLE costs +14% CPU on-phone vs Dartle +11.3%; obs "
                        "instrumentation must stay under +2%");

    const Fixture fx;
    core::LocBle::Config cfg;
    cfg.gamma_prior_dbm = -59.0;
    const core::LocBle pipeline(cfg, sim::shared_envaware());
    core::LocBle::Config coarse_cfg = cfg;
    coarse_cfg.solver.search_mode = core::LocationSolver::SearchMode::coarse_to_fine;
    const core::LocBle pipeline_coarse(coarse_cfg, sim::shared_envaware());
    const dsp::Anf anf;
    const motion::StepDetector detector;
    const baseline::FixedModelRanger ranger;
    const auto& env = sim::shared_envaware();
    const auto window = values_of(slice(fx.rss, 0.0, 2.0));
    const auto times = times_of(fx.rss);
    const auto trend = core::ClusteringCalibrator::trend_signal(fx.rss, times, 4, 5);
    const core::SegmentedDtwMatcher matcher;

    // Serve-path fixture: a small fleet replayed in 4 s epoch slices (the
    // serve bench's cadence). One pass = construct the service, ingest and
    // run every epoch — small enough that time_stage's calibration keeps
    // the per-rep cost bounded.
    sim::MultiClientConfig scfg;
    scfg.clients = 8;
    scfg.beacons = 2;
    const auto swl = sim::make_multi_client_workload(scfg, runner.master_seed());
    std::vector<std::vector<serve::Event>> sbatches;
    {
        std::size_t i = 0;
        for (double edge = 4.0; i < swl.events.size(); edge += 4.0) {
            std::vector<serve::Event> b;
            while (i < swl.events.size() && swl.events[i].t <= edge)
                b.push_back(swl.events[i++]);
            sbatches.push_back(std::move(b));
        }
    }
    const auto serve_pass = [&](std::size_t recorder_epochs) {
        serve::TrackingService::Config svc_cfg;
        svc_cfg.shards = 1;
        svc_cfg.shard.session.pipeline = coarse_cfg;
        // The serve sessions run model-free (no EnvAware instance is
        // shipped to the service); stage identity is not the point here.
        svc_cfg.shard.session.pipeline.use_envaware = false;
        svc_cfg.flight_recorder_epochs = recorder_epochs;
        serve::TrackingService svc(svc_cfg);
        for (const auto& b : sbatches) {
            svc.submit(b);
            svc.run_epoch();
        }
    };

    // Instrumentation must not perturb results: the same input must produce
    // the bit-identical fit with obs off and fully on.
    set_obs(false);
    const auto fit_off = pipeline.locate(fx.rss, fx.motion_est);
    set_obs(true);
    const auto fit_on = pipeline.locate(fx.rss, fx.motion_est);
    set_obs(false);
    const bool identical = same_fit(fit_off, fit_on);
    runner.report().add_text("results_identical", identical ? "yes" : "no");
    std::printf("results identical obs-off vs obs-on: %s\n\n",
                identical ? "yes" : "NO (BUG)");

    const int reps = runner.trials_or(15);
    struct Stage {
        const char* name;
        std::function<void()> body;
    };
    const std::vector<Stage> stages = {
        {"anf_offline", [&] { (void)anf.process_offline(fx.rss); }},
        {"envaware_classify", [&] { (void)env.classify(window); }},
        {"step_detection",
         [&] { (void)detector.detect(fx.capture.observer_imu.accel_vertical); }},
        {"full_pipeline", [&] { (void)pipeline.locate(fx.rss, fx.motion_est); }},
        {"full_pipeline_coarse",
         [&] { (void)pipeline_coarse.locate(fx.rss, fx.motion_est); }},
        {"dartle_baseline", [&] { (void)ranger.estimate_distance(fx.rss); }},
        {"dtw_cluster_match", [&] { (void)matcher.match(trend, trend); }},
        {"serve_epoch", [&] { serve_pass(64); }},
    };

    std::printf("%-20s %10s %12s %12s %8s\n", "stage", "iters", "off us/call",
                "on us/call", "on/off");
    double pipeline_ratio = 1.0;
    for (const auto& stage : stages) {
        const StageTiming t = time_stage(stage.body, reps);
        std::printf("%-20s %10d %12.2f %12.2f %8.4f\n", stage.name, t.iters,
                    t.off_us, t.on_us, t.ratio);
        const std::string key = std::string(stage.name);
        runner.report().add_scalar(key + ".off_us", t.off_us);
        runner.report().add_scalar(key + ".on_us", t.on_us);
        runner.report().add_scalar(key + ".overhead_ratio", t.ratio);
        if (key == "full_pipeline") pipeline_ratio = t.ratio;
    }
    // Flight-recorder cost: the identical serve pass with the recorder +
    // epoch telemetry on vs off, obs disabled on both sides, interleaved
    // min-of-reps (same noise rejection as time_stage).
    set_obs(false);
    double rec_off = std::numeric_limits<double>::infinity();
    double rec_on = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
        rec_off = std::min(rec_off, time_iters([&] { serve_pass(0); }, 1));
        rec_on = std::min(rec_on, time_iters([&] { serve_pass(64); }, 1));
    }
    const double rec_ratio = rec_on / rec_off;
    std::printf("%-20s %10d %12.2f %12.2f %8.4f  (recorder off/on, obs off)\n",
                "serve_recorder", 1, rec_off * 1e6, rec_on * 1e6, rec_ratio);
    runner.report().add_scalar("serve_recorder.off_us", rec_off * 1e6);
    runner.report().add_scalar("serve_recorder.on_us", rec_on * 1e6);
    runner.report().add_scalar("serve_recorder.overhead_ratio", rec_ratio);

    runner.report().add_scalar("overhead_ratio", pipeline_ratio);
    runner.report().add_scalar("overhead_budget_ratio", 1.02);
    std::printf("\nfull-pipeline obs overhead: %+.2f%% (budget +2%%)\n"
                "flight recorder + epoch telemetry: %+.2f%%\n\n",
                (pipeline_ratio - 1.0) * 100.0, (rec_ratio - 1.0) * 100.0);

    const int rc = runner.finish();
    if (rc != 0) return rc;
    return identical ? 0 : 1;
}
