// Serve throughput: the sharded batching TrackingService versus the naive
// multi-client server one would write straight against the public offline
// API — one pipeline per (client, beacon) behind one global mutex, full
// core::LocBle::locate() re-run over the accumulated capture whenever a
// session saw new data (ISSUE 5 tentpole).
//
// Both servers consume the identical interleaved event stream on a single
// core with the same solver search mode, so the measured gap isolates the
// serve architecture: bounded-queue ingest, per-epoch batch flushing, the
// causal (run-once) ANF, and the warm-started incremental solver session,
// against the naive server's re-filter-and-cold-solve-from-scratch cadence.
//
// Reported per sweep point: per-trial wall time of both servers, the
// median-of-per-trial-ratios speedup (lockstep epochs cancel machine
// load), an events/sec shard sweep (1/2/4/8 shards, single-threaded — on
// one core sharding must be free, not faster), an *overlapped* shard sweep
// (threads == shards, ingest submitted while the epoch is in flight — the
// PR 6 pipelining tentpole; on a multi-core box events/sec must improve
// with shard count), an overflow run with a deliberately tiny queue (drop
// accounting), and a 1-shard vs 8-shard canonical snapshot identity check.
// A final idle-fleet section measures full vs incremental snapshot cost on
// a 64-client fleet where 56 clients have gone silent.
//
// The tail-latency telemetry section (ISSUE 7) replays a mostly-idle fleet
// with the epoch flight recorder on and reports the service's own health
// surface: event-time snapshot-staleness quantiles, rolling-window drop /
// no-fix / eviction rates, and the ok/degraded/overloaded classification.
// Every `tail.*` scalar is a pure function of event time and u64 counters,
// so it is byte-identical whatever the shard count; scheduling-dependent
// values (epoch wall-clock percentiles, the shard count itself) live under
// `tail.nd.*` and are excluded from determinism comparisons. The section
// also writes SERVE_status_shards{1,8}.json and SERVE_flight_recorder.json
// next to the report so CI can diff the status "deterministic" object
// across shard counts and archive the recorder dump. The headline pass's
// shard count follows LOCBLE_SERVE_TAIL_SHARDS (default 1) — an env var,
// like LOCBLE_THREADS, because it is a CI axis rather than a user knob.
//
// Headline CI gates: xlarge.speedup >= 2 and
// xlarge.determinism_identical == 1 always, tail.determinism_identical == 1
// always; on runners with >= 4 cores (the `cores` scalar) the overlapped
// sweep must additionally scale:
// xlarge.overlap_events_per_sec_shards4 > overlap_events_per_sec_shards1.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/core/pipeline.hpp"
#include "locble/serve/service.hpp"
#include "locble/sim/multi_client.hpp"

using namespace locble;

namespace {

constexpr double kEpochSeconds = 4.0;

double now_us() {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

core::LocBle::Config pipeline_config() {
    core::LocBle::Config cfg;
    cfg.use_envaware = false;  // identical stages on both sides
    cfg.gamma_prior_dbm = -59.0;
    // Both servers get the production fast-path solver, so the ratio
    // measures the serve architecture, not the exponent grid.
    cfg.solver.search_mode = core::LocationSolver::SearchMode::coarse_to_fine;
    return cfg;
}

serve::TrackingService::Config serve_config(unsigned shards,
                                            unsigned threads = 1) {
    serve::TrackingService::Config cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.shard.session.pipeline = pipeline_config();
    cfg.shard.queue_capacity = 1 << 14;
    return cfg;
}

/// Slice the workload into per-epoch submission batches (same edges the
/// phased run_pass uses).
std::vector<std::vector<serve::Event>> chunk_by_epoch(
    const std::vector<serve::Event>& events) {
    std::vector<std::vector<serve::Event>> batches;
    std::size_t i = 0;
    for (double edge = kEpochSeconds; i < events.size(); edge += kEpochSeconds) {
        std::vector<serve::Event> b;
        while (i < events.size() && events[i].t <= edge) b.push_back(events[i++]);
        batches.push_back(std::move(b));
    }
    return batches;
}

/// The baseline: what the offline API invites you to write. One global
/// mutex over a map of per-client captures; every epoch re-runs the whole
/// offline pipeline (zero-phase ANF over the full accumulated series +
/// cold solve) for every session that saw new data.
class NaiveServer {
public:
    NaiveServer() : pipeline_(pipeline_config()) {}

    void ingest(const serve::Event& e) {
        const std::lock_guard<std::mutex> lock(mu_);
        Client& c = clients_[e.client];
        if (e.kind == serve::EventKind::pose) {
            c.motion.path.push_back({e.t, e.position});
        } else {
            c.rss[e.beacon].push_back({e.t, e.rssi_dbm});
            c.dirty[e.beacon] = true;
        }
    }

    void epoch() {
        const std::lock_guard<std::mutex> lock(mu_);
        for (auto& [id, c] : clients_) {
            if (c.motion.path.empty()) continue;
            for (auto& [beacon, dirty] : c.dirty) {
                if (!dirty) continue;
                dirty = false;
                const auto result = pipeline_.locate(c.rss[beacon], c.motion);
                if (result.fit) {
                    c.fits[beacon] = *result.fit;
                    ++fits_;
                }
                ++solves_;
            }
        }
    }

    std::uint64_t solves() const { return solves_; }
    std::uint64_t fits() const { return fits_; }

private:
    struct Client {
        motion::MotionEstimate motion;
        std::map<std::uint64_t, locble::TimeSeries> rss;
        std::map<std::uint64_t, bool> dirty;
        std::map<std::uint64_t, core::LocationFit> fits;
    };
    std::mutex mu_;
    core::LocBle pipeline_;
    std::map<serve::ClientId, Client> clients_;
    std::uint64_t solves_{0};
    std::uint64_t fits_{0};
};

/// Drive one server through the workload in epoch slices; returns wall us.
template <class Ingest, class Epoch>
double run_pass(const std::vector<serve::Event>& events, Ingest&& ingest,
                Epoch&& epoch) {
    const double t0 = now_us();
    std::size_t i = 0;
    for (double edge = kEpochSeconds; i < events.size(); edge += kEpochSeconds) {
        while (i < events.size() && events[i].t <= edge) ingest(events[i++]);
        epoch();
    }
    return now_us() - t0;
}

double serve_pass(const sim::MultiClientWorkload& wl, unsigned shards,
                  std::string* canonical = nullptr) {
    serve::TrackingService svc(serve_config(shards));
    const double us = run_pass(
        wl.events, [&](const serve::Event& e) { svc.submit(e); },
        [&] { svc.run_epoch(); });
    if (canonical != nullptr) *canonical = serve::canonical_text(svc.snapshot());
    return us;
}

/// The pipelined schedule: batch k+1 is submitted while epoch k runs on
/// `threads` workers. Byte-identical results to serve_pass by the
/// phased-equivalence contract; on a multi-core box the ingest cost hides
/// behind the epoch and shards add real parallelism.
double overlapped_pass(const std::vector<std::vector<serve::Event>>& batches,
                       unsigned shards, unsigned threads,
                       std::string* canonical = nullptr) {
    serve::TrackingService svc(serve_config(shards, threads));
    const double t0 = now_us();
    if (!batches.empty()) svc.submit(batches.front());
    for (std::size_t k = 0; k < batches.size(); ++k) {
        svc.begin_epoch();
        if (k + 1 < batches.size()) svc.submit(batches[k + 1]);
        svc.end_epoch();
    }
    const double us = now_us() - t0;
    if (canonical != nullptr) *canonical = serve::canonical_text(svc.snapshot());
    return us;
}

double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

struct SweepPoint {
    const char* key;
    int clients;
    int beacons;
};

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("serve_throughput", opt, 52000);

    bench::print_header(
        "Serve throughput — sharded batching service vs naive mutex server",
        "same event stream, same solver, single core; the serve layer's "
        "batching + warm-started incremental solves carry the speedup");

    const SweepPoint sweep[] = {
        {"small", 8, 2},
        {"medium", 24, 4},
        {"large", 48, 8},
        {"xlarge", 64, 8},
    };
    const int trials = runner.trials_or(3);
    const unsigned shard_sweep[] = {1, 2, 4, 8};

    TextTable table({"point", "events", "naive ms", "serve ms", "speedup",
                     "ev/s (1 shard)", "identical"});

    double xlarge_speedup = 0.0;
    bool all_identical = true;

    for (std::size_t p = 0; p < std::size(sweep); ++p) {
        const auto& pt = sweep[p];
        sim::MultiClientConfig wcfg;
        wcfg.clients = pt.clients;
        wcfg.beacons = pt.beacons;
        const auto wl = sim::make_multi_client_workload(wcfg, runner.sweep_seed(p));
        const std::string k(pt.key);

        // Warm-up pass of each server (page in code + allocators).
        { NaiveServer warm; run_pass(wl.events,
            [&](const serve::Event& e) { warm.ingest(e); }, [&] { warm.epoch(); }); }
        serve_pass(wl, 1);

        // Lockstep trials: naive then serve back-to-back per trial, so
        // transient machine load cancels inside each per-trial ratio.
        std::vector<double> naive_us, serve_us, ratios;
        std::uint64_t naive_solves = 0;
        for (int t = 0; t < trials; ++t) {
            NaiveServer naive;
            const double n_us = run_pass(
                wl.events, [&](const serve::Event& e) { naive.ingest(e); },
                [&] { naive.epoch(); });
            const double s_us = serve_pass(wl, 1);
            naive_us.push_back(n_us);
            serve_us.push_back(s_us);
            ratios.push_back(n_us / s_us);
            naive_solves = naive.solves();
        }
        const double speedup = median(ratios);
        if (k == "xlarge") xlarge_speedup = speedup;

        // Shard sweep: events/sec at 1/2/4/8 shards, still one thread.
        std::string canon1, canon8;
        double per_shard_evps[std::size(shard_sweep)] = {};
        for (std::size_t s = 0; s < std::size(shard_sweep); ++s) {
            std::string* canon = shard_sweep[s] == 1   ? &canon1
                                 : shard_sweep[s] == 8 ? &canon8
                                                       : nullptr;
            const double us = serve_pass(wl, shard_sweep[s], canon);
            per_shard_evps[s] =
                static_cast<double>(wl.events.size()) / (us * 1e-6);
        }
        const bool identical = canon1 == canon8 && !canon1.empty();
        all_identical = all_identical && identical;

        // Overlapped sweep: pipelined ingest with threads == shards. The
        // canonical snapshot must stay byte-identical to the phased 1-shard
        // run (the phased-equivalence contract), and on a multi-core box
        // events/sec must improve with shard count.
        const auto batches = chunk_by_epoch(wl.events);
        double overlap_evps[std::size(shard_sweep)] = {};
        std::string ocanon;
        for (std::size_t s = 0; s < std::size(shard_sweep); ++s) {
            const double us = overlapped_pass(
                batches, shard_sweep[s], shard_sweep[s],
                shard_sweep[s] == 8 ? &ocanon : nullptr);
            overlap_evps[s] =
                static_cast<double>(wl.events.size()) / (us * 1e-6);
        }
        const bool overlap_identical = ocanon == canon1 && !canon1.empty();
        all_identical = all_identical && overlap_identical;

        // Overflow run: a queue two orders too small must degrade
        // gracefully and account for every drop.
        auto ocfg = serve_config(1);
        ocfg.shard.queue_capacity = 64;
        serve::TrackingService overloaded(ocfg);
        for (const auto& e : wl.events) overloaded.submit(e);
        overloaded.run_epoch();
        const serve::IngestStats ostats = overloaded.stats();

        table.add_row(k,
                      {static_cast<double>(wl.events.size()),
                       median(naive_us) / 1000.0, median(serve_us) / 1000.0,
                       speedup, per_shard_evps[0], identical ? 1.0 : 0.0},
                      2);

        auto& rep = runner.report();
        rep.add_scalar(k + ".clients", pt.clients);
        rep.add_scalar(k + ".beacons", pt.beacons);
        rep.add_scalar(k + ".events", static_cast<double>(wl.events.size()));
        rep.add_scalar(k + ".naive_us", median(naive_us));
        rep.add_scalar(k + ".serve_us", median(serve_us));
        rep.add_scalar(k + ".naive_solves", static_cast<double>(naive_solves));
        rep.add_scalar(k + ".speedup", speedup);
        for (std::size_t s = 0; s < std::size(shard_sweep); ++s)
            rep.add_scalar(k + ".events_per_sec_shards" +
                               std::to_string(shard_sweep[s]),
                           per_shard_evps[s]);
        for (std::size_t s = 0; s < std::size(shard_sweep); ++s)
            rep.add_scalar(k + ".overlap_events_per_sec_shards" +
                               std::to_string(shard_sweep[s]),
                           overlap_evps[s]);
        rep.add_scalar(k + ".determinism_identical",
                       identical && overlap_identical ? 1.0 : 0.0);
        rep.add_scalar(k + ".overflow_submitted",
                       static_cast<double>(ostats.submitted));
        rep.add_scalar(k + ".overflow_dropped",
                       static_cast<double>(ostats.dropped));
        rep.add_scalar(k + ".overflow_accepted",
                       static_cast<double>(ostats.accepted));
    }

    std::printf("%s\n", table.str().c_str());

    // Idle-fleet snapshot benchmark: 64 clients, 56 silent after 8 s of
    // their own timeline, idle eviction off so the whole fleet stays
    // resident. The full snapshot re-reads every session each epoch; the
    // incremental snapshot's cost scales with the handful of sessions the
    // active clients keep dirtying.
    {
        sim::MultiClientConfig icfg;
        icfg.clients = 64;
        icfg.beacons = 8;
        icfg.idle_clients = 56;
        icfg.idle_active_s = 8.0;
        const auto iwl =
            sim::make_multi_client_workload(icfg, runner.sweep_seed(99));
        auto cfg = serve_config(4);
        cfg.shard.idle_timeout_s = 1e9;  // keep the idle cohort resident
        serve::TrackingService full_svc(cfg);
        serve::TrackingService inc_svc(cfg);

        std::vector<double> full_us, inc_us;
        double full_rows = 0.0, inc_rows = 0.0;
        std::size_t live = 0;
        for (const auto& batch : chunk_by_epoch(iwl.events)) {
            full_svc.submit(batch);
            inc_svc.submit(batch);
            full_svc.run_epoch();
            inc_svc.run_epoch();
            double t0 = now_us();
            const auto f = full_svc.snapshot(serve::SnapshotMode::full);
            full_us.push_back(now_us() - t0);
            t0 = now_us();
            const auto d = inc_svc.snapshot(serve::SnapshotMode::incremental);
            inc_us.push_back(now_us() - t0);
            full_rows += static_cast<double>(f.estimates.size());
            inc_rows += static_cast<double>(d.estimates.size());
            live = f.sessions_live;
        }
        const double n = static_cast<double>(full_us.size());
        const double f_med = median(full_us);
        const double i_med = median(inc_us);
        std::printf(
            "idle fleet (%zu live sessions, %d/%d clients silent): full "
            "snapshot %.0f us/epoch (%.0f rows avg), incremental %.0f "
            "us/epoch (%.0f rows avg), %.1fx\n\n",
            live, icfg.idle_clients, icfg.clients, f_med, full_rows / n, i_med,
            inc_rows / n, i_med > 0.0 ? f_med / i_med : 0.0);
        auto& rep = runner.report();
        rep.add_scalar("idle.sessions_live", static_cast<double>(live));
        rep.add_scalar("idle.epochs", n);
        rep.add_scalar("idle.snapshot_full_us", f_med);
        rep.add_scalar("idle.snapshot_incremental_us", i_med);
        rep.add_scalar("idle.snapshot_rows_full_avg", full_rows / n);
        rep.add_scalar("idle.snapshot_rows_incremental_avg", inc_rows / n);
        rep.add_scalar("idle.snapshot_speedup",
                       i_med > 0.0 ? f_med / i_med : 0.0);
    }

    // Tail-latency telemetry: the same mostly-idle fleet shape as above,
    // replayed with the flight recorder on. Event-time staleness is exactly
    // what the health surface must flag here — the idle cohort's snapshots
    // age while eviction is off — and every deterministic status field must
    // come out byte-identical at 1 and 8 shards.
    {
        sim::MultiClientConfig tcfg;
        tcfg.clients = 64;
        tcfg.beacons = 8;
        tcfg.idle_clients = 48;
        tcfg.idle_active_s = 8.0;
        const auto twl =
            sim::make_multi_client_workload(tcfg, runner.sweep_seed(7));
        const auto tbatches = chunk_by_epoch(twl.events);

        struct TailRun {
            serve::ServiceStatus status;
            std::string status_json;
            std::string recorder_json;
            double wall_us{0.0};
        };
        auto tail_pass = [&](unsigned shards) {
            auto cfg = serve_config(shards);
            cfg.shard.idle_timeout_s = 1e9;  // idle cohort stays resident
            cfg.flight_recorder_epochs = 256;  // cover the whole run
            serve::TrackingService svc(cfg);
            const double t0 = now_us();
            for (const auto& b : tbatches) {
                svc.submit(b);
                svc.run_epoch();
            }
            TailRun r;
            r.wall_us = now_us() - t0;
            (void)svc.snapshot();  // back-fills the latest record's row count
            r.status = svc.status();
            r.status_json = serve::status_json(r.status);
            r.recorder_json = svc.flight_recorder().to_json();
            return r;
        };
        // The status JSON up to (excluding) the "nd" object: schema version
        // plus the whole deterministic section.
        const auto deterministic_part = [](const std::string& json) {
            const std::size_t nd = json.find("\"nd\":");
            return json.substr(0, nd == std::string::npos ? json.size() : nd);
        };

        unsigned tail_shards = 1;
        if (const char* env = std::getenv("LOCBLE_SERVE_TAIL_SHARDS"))
            tail_shards = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (tail_shards == 0) tail_shards = 1;

        const TailRun run1 = tail_pass(1);
        const TailRun run8 = tail_pass(8);
        const TailRun head = tail_shards == 1   ? run1
                             : tail_shards == 8 ? run8
                                                : tail_pass(tail_shards);
        const bool tail_identical =
            deterministic_part(run1.status_json) ==
            deterministic_part(run8.status_json);
        all_identical = all_identical && tail_identical;

        const serve::ServiceStatus& st = head.status;
        std::printf(
            "tail telemetry (%u shard%s, %zu epochs): health %s, staleness "
            "p50/p95/p99 %.1f/%.1f/%.1f s (max %.1f), drop %.4f, no-fix "
            "%.4f; status deterministic across 1 vs 8 shards: %s\n\n",
            tail_shards, tail_shards == 1 ? "" : "s", tbatches.size(),
            serve::health_name(st.health), st.staleness_p50_s,
            st.staleness_p95_s, st.staleness_p99_s, st.staleness_max_s,
            st.drop_rate, st.no_fix_rate, tail_identical ? "yes" : "NO");

        auto& rep = runner.report();
        rep.add_scalar("tail.events", static_cast<double>(twl.events.size()));
        rep.add_scalar("tail.epochs", static_cast<double>(st.epoch));
        rep.add_scalar("tail.window_epochs",
                       static_cast<double>(st.window_epochs));
        rep.add_scalar("tail.sessions_live",
                       static_cast<double>(st.sessions_live));
        rep.add_scalar("tail.sessions_no_fit",
                       static_cast<double>(st.sessions_no_fit));
        rep.add_scalar("tail.staleness_p50_s", st.staleness_p50_s);
        rep.add_scalar("tail.staleness_p95_s", st.staleness_p95_s);
        rep.add_scalar("tail.staleness_p99_s", st.staleness_p99_s);
        rep.add_scalar("tail.staleness_max_s", st.staleness_max_s);
        rep.add_scalar("tail.drop_rate", st.drop_rate);
        rep.add_scalar("tail.no_fix_rate", st.no_fix_rate);
        rep.add_scalar("tail.eviction_rate", st.eviction_rate);
        rep.add_text("tail.health", serve::health_name(st.health));
        rep.add_scalar("tail.determinism_identical", tail_identical ? 1.0 : 0.0);
        // nd group: wall clock + run configuration, excluded from the
        // cross-shard-count byte comparison.
        rep.add_scalar("tail.nd.shards", static_cast<double>(tail_shards));
        rep.add_scalar("tail.nd.wall_us", head.wall_us);
        rep.add_scalar("tail.nd.epoch_wall_p50_us", st.epoch_wall_p50_us);
        rep.add_scalar("tail.nd.epoch_wall_p99_us", st.epoch_wall_p99_us);
        rep.add_scalar("tail.nd.epoch_wall_max_us", st.epoch_wall_max_us);

        if (opt.json) {
            const std::string dir =
                opt.out_dir.empty() || opt.out_dir == "." ? std::string()
                                                          : opt.out_dir + "/";
            const auto dump = [&](const std::string& name,
                                  const std::string& body) {
                const std::string path = dir + name;
                std::ofstream file(path, std::ios::trunc);
                if (!file)
                    throw std::runtime_error("cannot write " + path);
                file << body;
                std::printf("report: %s\n", path.c_str());
            };
            dump("SERVE_status_shards1.json", run1.status_json + "\n");
            dump("SERVE_status_shards8.json", run8.status_json + "\n");
            dump("SERVE_flight_recorder.json", head.recorder_json + "\n");
        }
    }

    runner.report().add_text("largest_point", "xlarge");
    runner.report().add_scalar(
        "cores", static_cast<double>(std::thread::hardware_concurrency()));
    std::printf("headline (CI gate): xlarge.speedup >= 2 (got %.2f); every\n"
                "point's phased and overlapped canonical snapshots plus the\n"
                "tail status identical across shard counts (%s);\n"
                "on >= 4 cores the overlapped sweep must scale with "
                "shards\n\n",
                xlarge_speedup, all_identical ? "yes" : "NO");
    return runner.finish();
}
