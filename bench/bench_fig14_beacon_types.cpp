// Fig. 14 reproduction: estimation error per beacon type in environment #2.
// Paper: dedicated beacons (RadBeacon, Estimote) slightly beat smart-device
// integrated beacons; the differences are minor.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig14_beacon_types", opt, 19000);

    bench::print_header("Fig. 14 — beacon type comparison (env #2)",
                        "dedicated beacons slightly better than smart-device "
                        "beacons; LocBLE does not depend on the device");

    const sim::Scenario sc = sim::scenario(2);
    const ble::AdvertiserProfile profiles[] = {
        ble::ios_device_profile(), ble::radbeacon_profile(), ble::estimote_profile()};

    TextTable table({"beacon", "mean error (m)"});
    const int runs = runner.trials_or(30);
    // One sweep seed for all profiles: every beacon type is measured in the
    // same sequence of simulated worlds, like the paper's shared testbed.
    const std::uint64_t sweep = runner.sweep_seed(1);
    std::vector<double> means;
    for (const auto& profile : profiles) {
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        beacon.profile = profile;
        const sim::MeasurementConfig cfg;
        const auto errors = bench::stationary_errors(runner, sc, beacon, cfg, runs, sweep);
        const EmpiricalCdf cdf(errors);
        table.add_row(profile.name, {cdf.mean()}, 2);
        runner.report().add_summary(std::string(profile.name) + "_error_m", errors);
        means.push_back(cdf.mean());
    }
    std::printf("%s\n", table.str().c_str());
    std::printf("shape check: all three within the same accuracy class; the "
                "noisier smart-device TX chain trails slightly\n");
    return runner.finish();
}
