// Fig. 9 / Sec. 6.1 reproduction: segmented, LB-gated DTW matching of
// co-located vs distant beacons, plus the speed claims: the LB test is
// ~100x faster than full DTW on the same data, and the segmented scheme is
// >= 2x faster than whole-sequence DTW.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/baseline/naive_dtw.hpp"
#include "locble/common/table.hpp"
#include "locble/core/clustering.hpp"
#include "locble/core/dtw.hpp"
#include "locble/sim/capture.hpp"

using namespace locble;

namespace {

struct Setup {
    std::vector<double> target;    // beacon 4 (target, ~5 m away)
    std::vector<double> near_a;    // beacon 2 (0.3 m from target)
    std::vector<double> near_b;    // beacon 3 (0.3 m from target)
    std::vector<double> far_one;   // beacon 1 (4 m away from target)
};

/// The Sec. 6.1 layout: target + two neighbors 0.3 m away + one beacon 4 m
/// away, one L-shaped walk.
Setup capture_setup(std::uint64_t seed) {
    // The paper's Sec. 6.1 measurement was taken in a busy indoor space:
    // shared passers-by and shadowing give co-located beacons their common
    // RSS structure.
    sim::Scenario sc = sim::scenario(1);
    sc.site.ambient_crossings = 5.0;
    sc.site.shadowing_scale = 1.3;
    std::vector<sim::BeaconPlacement> beacons(4);
    beacons[0].id = 4;
    beacons[0].position = {4.5, 3.4};
    beacons[1].id = 2;
    beacons[1].position = {4.7, 3.5};
    beacons[2].id = 3;
    beacons[2].position = {4.3, 3.2};
    beacons[3].id = 1;
    beacons[3].position = {1.0, 4.4};  // ~4 m from the target
    locble::Rng rng(seed);
    const auto walk = sim::default_l_walk(sc);
    const auto cap = sim::CaptureRunner().run(sc.site, beacons, walk, rng);

    const auto times = times_of(cap.rss.at(4));
    auto trend = [&](std::uint64_t id) {
        return core::ClusteringCalibrator::trend_signal(cap.rss.at(id), times, 4, 5);
    };
    return {trend(4), trend(2), trend(3), trend(1)};
}

}  // namespace

int main() {
    bench::print_header("Fig. 9 — DTW clustering of beacon RSS trends",
                        "beacons 2,3 (0.3 m away) match the target's trend; "
                        "beacon 1 (4 m) does not; LB ~100x faster than DTW; "
                        "segmented scheme >= 2x faster overall");

    // --- matching behaviour over seeds
    int near_matched = 0, far_matched = 0, runs = 0;
    const core::SegmentedDtwMatcher matcher;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const Setup s = capture_setup(seed);
        near_matched += matcher.match(s.target, s.near_a).matched;
        near_matched += matcher.match(s.target, s.near_b).matched;
        far_matched += matcher.match(s.target, s.far_one).matched;
        runs += 1;
    }
    TextTable table({"pair", "matched", "expected"});
    table.add_row({"target vs 0.3 m neighbors",
                   fmt(100.0 * near_matched / (2 * runs), 0) + " %", "high"});
    table.add_row({"target vs 4 m beacon",
                   fmt(100.0 * far_matched / runs, 0) + " %", "low"});
    std::printf("%s\n", table.str().c_str());

    // --- timing: LB vs full DTW on identical segments
    const Setup s = capture_setup(99);
    const std::size_t seg = 10, warp = 3;
    using clock = std::chrono::steady_clock;
    const int reps = 20000;
    volatile double sink = 0.0;

    // LB_Keogh is O(n) against DTW's O(n^2); the paper's ~100x figure is
    // for gating *whole sequences* before alignment.
    const std::size_t full = std::min(s.target.size(), s.far_one.size());
    auto t0 = clock::now();
    for (int r = 0; r < reps; ++r)
        sink += core::lb_keogh({s.target.data(), full}, {s.far_one.data(), full}, warp);
    auto t1 = clock::now();
    for (int r = 0; r < reps / 10; ++r)
        sink += core::dtw_distance({s.target.data(), full}, {s.far_one.data(), full}, 0);
    auto t2 = clock::now();
    (void)seg;

    // Segmented matcher vs whole-sequence DTW.
    const baseline::NaiveDtwMatcher naive;
    auto t3 = clock::now();
    for (int r = 0; r < reps / 10; ++r) sink += matcher.match(s.target, s.far_one).matched;
    auto t4 = clock::now();
    for (int r = 0; r < reps / 10; ++r) sink += naive.match(s.target, s.far_one);
    auto t5 = clock::now();

    const double lb_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double dtw_us =
        10.0 * std::chrono::duration<double, std::micro>(t2 - t1).count();
    const double seg_us = std::chrono::duration<double, std::micro>(t4 - t3).count();
    const double naive_us = std::chrono::duration<double, std::micro>(t5 - t4).count();

    TextTable speed({"comparison", "speedup", "paper"});
    speed.add_row(
        {"LB_Keogh vs whole-sequence DTW", fmt(dtw_us / lb_us, 1) + "x", "~100x"});
    speed.add_row({"segmented matcher vs whole-sequence DTW",
                   fmt(naive_us / seg_us, 1) + "x", ">= 2x"});
    std::printf("%s\n", speed.str().c_str());
    (void)sink;
    return 0;
}
