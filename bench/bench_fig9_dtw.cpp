// Fig. 9 / Sec. 6.1 reproduction: segmented, LB-gated DTW matching of
// co-located vs distant beacons, plus the speed claims: the LB test is
// ~100x faster than full DTW on the same data, and the segmented scheme is
// >= 2x faster than whole-sequence DTW.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/baseline/naive_dtw.hpp"
#include "locble/common/table.hpp"
#include "locble/core/clustering.hpp"
#include "locble/core/dtw.hpp"
#include "locble/sim/capture.hpp"

using namespace locble;

namespace {

struct Setup {
    std::vector<double> target;    // beacon 4 (target, ~5 m away)
    std::vector<double> near_a;    // beacon 2 (0.3 m from target)
    std::vector<double> near_b;    // beacon 3 (0.3 m from target)
    std::vector<double> far_one;   // beacon 1 (4 m away from target)
};

/// The Sec. 6.1 layout: target + two neighbors 0.3 m away + one beacon 4 m
/// away, one L-shaped walk.
Setup capture_setup(locble::Rng& rng) {
    // The paper's Sec. 6.1 measurement was taken in a busy indoor space:
    // shared passers-by and shadowing give co-located beacons their common
    // RSS structure.
    sim::Scenario sc = sim::scenario(1);
    sc.site.ambient_crossings = 5.0;
    sc.site.shadowing_scale = 1.3;
    std::vector<sim::BeaconPlacement> beacons(4);
    beacons[0].id = 4;
    beacons[0].position = {4.5, 3.4};
    beacons[1].id = 2;
    beacons[1].position = {4.7, 3.5};
    beacons[2].id = 3;
    beacons[2].position = {4.3, 3.2};
    beacons[3].id = 1;
    beacons[3].position = {1.0, 4.4};  // ~4 m from the target
    const auto walk = sim::default_l_walk(sc);
    const auto cap = sim::CaptureRunner().run(sc.site, beacons, walk, rng);

    const auto times = times_of(cap.rss.at(4));
    auto trend = [&](std::uint64_t id) {
        return core::ClusteringCalibrator::trend_signal(cap.rss.at(id), times, 4, 5);
    };
    return {trend(4), trend(2), trend(3), trend(1)};
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig9_dtw", opt, 9900);

    bench::print_header("Fig. 9 — DTW clustering of beacon RSS trends",
                        "beacons 2,3 (0.3 m away) match the target's trend; "
                        "beacon 1 (4 m) does not; LB ~100x faster than DTW; "
                        "segmented scheme >= 2x faster overall");

    // --- matching behaviour over seeded trials
    const core::SegmentedDtwMatcher matcher;
    const int runs = runner.trials_or(20);
    struct MatchTrial {
        int near_matched, far_matched;
    };
    const auto trials =
        runner.run(runs, runner.sweep_seed(1), [&](int, locble::Rng& rng) {
            const Setup s = capture_setup(rng);
            MatchTrial out{0, 0};
            out.near_matched += matcher.match(s.target, s.near_a).matched;
            out.near_matched += matcher.match(s.target, s.near_b).matched;
            out.far_matched += matcher.match(s.target, s.far_one).matched;
            return out;
        });
    int near_matched = 0, far_matched = 0;
    for (const auto& t : trials) {
        near_matched += t.near_matched;
        far_matched += t.far_matched;
    }
    TextTable table({"pair", "matched", "expected"});
    table.add_row({"target vs 0.3 m neighbors",
                   fmt(100.0 * near_matched / (2 * runs), 0) + " %", "high"});
    table.add_row({"target vs 4 m beacon",
                   fmt(100.0 * far_matched / runs, 0) + " %", "low"});
    std::printf("%s\n", table.str().c_str());
    runner.report().add_scalar("near_match_rate",
                               static_cast<double>(near_matched) / (2 * runs));
    runner.report().add_scalar("far_match_rate",
                               static_cast<double>(far_matched) / runs);

    // --- timing: LB vs full DTW on identical segments (serial: these time
    // single-threaded kernel costs, not trial throughput)
    locble::Rng timing_rng = locble::Rng::for_stream(runner.sweep_seed(2), 0);
    const Setup s = capture_setup(timing_rng);
    const std::size_t warp = 3;
    using clock = std::chrono::steady_clock;
    const int reps = 20000;
    // Optimizer sink: accumulated across every timed loop and printed below,
    // so the compiler cannot elide the kernels (no volatile needed).
    double sink = 0.0;

    // LB_Keogh is O(n) against DTW's O(n^2); the paper's ~100x figure is
    // for gating *whole sequences* before alignment.
    const std::size_t full = std::min(s.target.size(), s.far_one.size());
    auto t0 = clock::now();
    for (int r = 0; r < reps; ++r)
        sink += core::lb_keogh({s.target.data(), full}, {s.far_one.data(), full}, warp);
    auto t1 = clock::now();
    for (int r = 0; r < reps / 10; ++r)
        sink += core::dtw_distance({s.target.data(), full}, {s.far_one.data(), full}, 0);
    auto t2 = clock::now();

    // Segmented matcher vs whole-sequence DTW.
    const baseline::NaiveDtwMatcher naive;
    auto t3 = clock::now();
    for (int r = 0; r < reps / 10; ++r) sink += matcher.match(s.target, s.far_one).matched;
    auto t4 = clock::now();
    for (int r = 0; r < reps / 10; ++r) sink += naive.match(s.target, s.far_one);
    auto t5 = clock::now();

    const double lb_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
    const double dtw_us =
        10.0 * std::chrono::duration<double, std::micro>(t2 - t1).count();
    const double seg_us = std::chrono::duration<double, std::micro>(t4 - t3).count();
    const double naive_us = std::chrono::duration<double, std::micro>(t5 - t4).count();

    TextTable speed({"comparison", "speedup", "paper"});
    speed.add_row(
        {"LB_Keogh vs whole-sequence DTW", fmt(dtw_us / lb_us, 1) + "x", "~100x"});
    speed.add_row({"segmented matcher vs whole-sequence DTW",
                   fmt(naive_us / seg_us, 1) + "x", ">= 2x"});
    std::printf("%s\n", speed.str().c_str());
    std::printf("(timing checksum %.3g)\n", sink);
    runner.report().add_scalar("lb_vs_dtw_speedup", dtw_us / lb_us);
    runner.report().add_scalar("segmented_vs_naive_speedup", naive_us / seg_us);
    return runner.finish();
}
