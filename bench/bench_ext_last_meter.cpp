// Sec. 9.2 extension bench ("last meter navigation"): the paper notes that
// BLE proximity is accurate within ~2 m and that folding it into LocBLE
// should push the final accuracy toward/below 1 m. This bench runs the
// navigation loop with and without the proximity assist and compares the
// final distance to the beacon.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/sim/navigation_sim.hpp"

using namespace locble;

namespace {

/// Close-range (<2.5 m) per-round estimate errors — the quantity the assist
/// actually modifies.
std::vector<double> close_round_errors(bench::Runner& runner, bool assist,
                                       int runs, std::uint64_t sweep_seed) {
    sim::Scenario office = sim::scenario(1);
    office.site.width_m = 12.0;
    office.site.height_m = 10.0;
    sim::NavigationSimulator::Config cfg;
    cfg.use_proximity_assist = assist;
    cfg.max_rounds = 7;
    const sim::NavigationSimulator nav(cfg);

    const auto per_trial = runner.run(
        runs, sweep_seed, [&](int, locble::Rng& rng) {
            sim::BeaconPlacement beacon;
            beacon.position = {rng.uniform(6.0, 11.0), rng.uniform(5.0, 9.0)};
            std::vector<double> errors;
            const auto run = nav.run(office, beacon, {1.0, 1.0}, 0.4, rng);
            for (const auto& rec : run.rounds)
                if (rec.measured && rec.distance_to_target_m < 2.5)
                    errors.push_back(rec.estimate_error_m);
            return errors;
        });
    std::vector<double> errors;
    for (const auto& e : per_trial) errors.insert(errors.end(), e.begin(), e.end());
    return errors;
}

std::vector<double> navigation_finals(bench::Runner& runner, bool assist,
                                      int runs, std::uint64_t sweep_seed) {
    sim::Scenario office = sim::scenario(1);
    office.site.width_m = 12.0;
    office.site.height_m = 10.0;

    sim::NavigationSimulator::Config cfg;
    cfg.use_proximity_assist = assist;
    cfg.max_rounds = 7;
    cfg.arrive_distance_m = 0.8;
    const sim::NavigationSimulator nav(cfg);

    return runner.run(runs, sweep_seed, [&](int, locble::Rng& rng) {
        sim::BeaconPlacement beacon;
        beacon.position = {rng.uniform(6.0, 11.0), rng.uniform(5.0, 9.0)};
        return nav.run(office, beacon, {1.0, 1.0}, 0.4, rng).final_distance_m;
    });
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("ext_last_meter", opt, 41000);

    bench::print_header("Sec. 9.2 extension — last-metre proximity assist",
                        "proximity is accurate within 2 m; blending it in "
                        "should pull the final navigation error toward 1 m");

    // The same sweep seed with and without the assist: both variants replay
    // identical worlds, isolating the assist's effect.
    const int runs = runner.trials_or(25);
    const auto finals_without =
        navigation_finals(runner, false, runs, runner.sweep_seed(1));
    const auto finals_with =
        navigation_finals(runner, true, runs, runner.sweep_seed(1));
    const EmpiricalCdf without(finals_without);
    const EmpiricalCdf with(finals_with);

    std::printf("final distance to the beacon:\n%s\n",
                format_cdf_table({{"navigation only", without},
                                  {"+ proximity assist", with}},
                                 {{0.5, 0.75, 0.9}})
                    .c_str());

    const auto close_without_errs =
        close_round_errors(runner, false, runs, runner.sweep_seed(2));
    const auto close_with_errs =
        close_round_errors(runner, true, runs, runner.sweep_seed(2));
    const EmpiricalCdf close_without(close_without_errs);
    const EmpiricalCdf close_with(close_with_errs);
    std::printf("close-range (<2.5 m) estimate error per round:\n%s\n",
                format_cdf_table({{"navigation only", close_without},
                                  {"+ proximity assist", close_with}},
                                 {{0.5, 0.75, 0.9}})
                    .c_str());
    std::printf("median close-range estimate error: %.2f m -> %.2f m\n",
                close_without.median(), close_with.median());
    std::printf("(final distance is floored by the arrival radius; the assist "
                "acts on the close-range estimate)\n");
    runner.report().add_summary("final_distance_no_assist_m", finals_without);
    runner.report().add_summary("final_distance_with_assist_m", finals_with);
    runner.report().add_summary("close_error_no_assist_m", close_without_errs);
    runner.report().add_summary("close_error_with_assist_m", close_with_errs);
    return runner.finish();
}
