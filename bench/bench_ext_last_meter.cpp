// Sec. 9.2 extension bench ("last meter navigation"): the paper notes that
// BLE proximity is accurate within ~2 m and that folding it into LocBLE
// should push the final accuracy toward/below 1 m. This bench runs the
// navigation loop with and without the proximity assist and compares the
// final distance to the beacon.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/sim/navigation_sim.hpp"

using namespace locble;

namespace {

/// Close-range (<2.5 m) per-round estimate errors — the quantity the assist
/// actually modifies.
std::vector<double> close_round_errors(bool assist, int runs) {
    sim::Scenario office = sim::scenario(1);
    office.site.width_m = 12.0;
    office.site.height_m = 10.0;
    sim::NavigationSimulator::Config cfg;
    cfg.use_proximity_assist = assist;
    cfg.max_rounds = 7;
    const sim::NavigationSimulator nav(cfg);

    std::vector<double> errors;
    locble::Rng placement(41000);
    for (int r = 0; r < runs; ++r) {
        sim::BeaconPlacement beacon;
        beacon.position = {placement.uniform(6.0, 11.0), placement.uniform(5.0, 9.0)};
        locble::Rng rng(42000 + r * 53);
        const auto run = nav.run(office, beacon, {1.0, 1.0}, 0.4, rng);
        for (const auto& rec : run.rounds)
            if (rec.measured && rec.distance_to_target_m < 2.5)
                errors.push_back(rec.estimate_error_m);
    }
    return errors;
}

std::vector<double> navigation_finals(bool assist, int runs) {
    sim::Scenario office = sim::scenario(1);
    office.site.width_m = 12.0;
    office.site.height_m = 10.0;

    sim::NavigationSimulator::Config cfg;
    cfg.use_proximity_assist = assist;
    cfg.max_rounds = 7;
    cfg.arrive_distance_m = 0.8;
    const sim::NavigationSimulator nav(cfg);

    std::vector<double> finals;
    locble::Rng placement(41000);
    for (int r = 0; r < runs; ++r) {
        sim::BeaconPlacement beacon;
        beacon.position = {placement.uniform(6.0, 11.0), placement.uniform(5.0, 9.0)};
        locble::Rng rng(42000 + r * 53);
        finals.push_back(
            nav.run(office, beacon, {1.0, 1.0}, 0.4, rng).final_distance_m);
    }
    return finals;
}

}  // namespace

int main() {
    bench::print_header("Sec. 9.2 extension — last-metre proximity assist",
                        "proximity is accurate within 2 m; blending it in "
                        "should pull the final navigation error toward 1 m");

    const int runs = 25;
    const EmpiricalCdf without(navigation_finals(false, runs));
    const EmpiricalCdf with(navigation_finals(true, runs));

    std::printf("final distance to the beacon:\n%s\n",
                format_cdf_table({{"navigation only", without},
                                  {"+ proximity assist", with}},
                                 {{0.5, 0.75, 0.9}})
                    .c_str());

    const EmpiricalCdf close_without(close_round_errors(false, runs));
    const EmpiricalCdf close_with(close_round_errors(true, runs));
    std::printf("close-range (<2.5 m) estimate error per round:\n%s\n",
                format_cdf_table({{"navigation only", close_without},
                                  {"+ proximity assist", close_with}},
                                 {{0.5, 0.75, 0.9}})
                    .c_str());
    std::printf("median close-range estimate error: %.2f m -> %.2f m\n",
                close_without.median(), close_with.median());
    std::printf("(final distance is floored by the arrival radius; the assist "
                "acts on the close-range estimate)\n");
    return 0;
}
