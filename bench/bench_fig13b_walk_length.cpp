// Fig. 13(b) reproduction: estimation error when only the first
// 100/80/70/50% of the measurement data is used. Paper: stable down to 80%
// (~3 m of walking), degrading at 70% and much worse at 50%.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

std::vector<double> errors_at_fraction(bench::Runner& runner, double fraction,
                                       int runs_per_env) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        const sim::MeasurementConfig cfg;
        // Same worlds at every fraction: seed depends on the environment
        // only; the fraction enters through truncation alone.
        const auto sweep = runner.sweep_seed(static_cast<std::uint64_t>(idx));
        const auto errs = runner.run(runs_per_env, sweep, [&](int, locble::Rng& rng) {
            const auto walk = sim::default_l_walk(sc);
            const auto cap =
                sim::CaptureRunner(cfg.capture).run(sc.site, {beacon}, walk, rng);
            auto rss = cap.rss.at(beacon.id);
            const std::size_t keep =
                static_cast<std::size_t>(fraction * static_cast<double>(rss.size()));
            rss.resize(std::max<std::size_t>(keep, 4));

            const auto motion =
                motion::DeadReckoner(cfg.reckoner).track(cap.observer_imu);
            core::LocBle::Config pcfg = cfg.pipeline;
            pcfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
            const core::LocBle pipeline(pcfg, sim::shared_envaware());
            const auto result = pipeline.locate(rss, motion);
            if (!result.fit) return 8.0;
            const auto est = sim::observer_to_site(
                result.fit->location, sc.observer_start, sc.observer_heading);
            return locble::Vec2::distance(est, beacon.position);
        });
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    return errors;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig13b_walk_length", opt, 18000);

    bench::print_header("Fig. 13(b) — data length sweep",
                        "stable at >= 80% of the walk (~3 m); worse at 70%; "
                        "much worse at 50%");

    const int runs = runner.trials_or(15);
    std::vector<std::pair<std::string, EmpiricalCdf>> curves;
    for (double f : {1.0, 0.8, 0.7, 0.5}) {
        const auto errors = errors_at_fraction(runner, f, runs);
        curves.emplace_back(fmt(100.0 * f, 0) + "%", EmpiricalCdf(errors));
        runner.report().add_summary("fraction_" + fmt(100.0 * f, 0) + "_error_m",
                                    errors);
    }

    std::printf("%s\n", format_cdf_table(curves, {{0.5, 0.75, 0.9}}).c_str());
    std::printf("shape check: 100%% ~ 80%% << 70%% << 50%% (the truncated walk "
                "loses the second leg and with it the lateral geometry)\n");
    return runner.finish();
}
