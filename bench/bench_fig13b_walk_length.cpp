// Fig. 13(b) reproduction: estimation error when only the first
// 100/80/70/50% of the measurement data is used. Paper: stable down to 80%
// (~3 m of walking), degrading at 70% and much worse at 50%.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/common/table.hpp"

using namespace locble;

namespace {

std::vector<double> errors_at_fraction(double fraction, int runs_per_env) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = sim::scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        for (int r = 0; r < runs_per_env; ++r) {
            locble::Rng rng(18000 + idx * 103 + r * 13);
            const auto walk = sim::default_l_walk(sc);
            const auto cap =
                sim::CaptureRunner(cfg.capture).run(sc.site, {beacon}, walk, rng);
            auto rss = cap.rss.at(beacon.id);
            const std::size_t keep =
                static_cast<std::size_t>(fraction * static_cast<double>(rss.size()));
            rss.resize(std::max<std::size_t>(keep, 4));

            const auto motion =
                motion::DeadReckoner(cfg.reckoner).track(cap.observer_imu);
            core::LocBle::Config pcfg = cfg.pipeline;
            pcfg.gamma_prior_dbm = beacon.profile.measured_power_dbm;
            const core::LocBle pipeline(pcfg, sim::shared_envaware());
            const auto result = pipeline.locate(rss, motion);
            if (result.fit) {
                const auto est = sim::observer_to_site(
                    result.fit->location, sc.observer_start, sc.observer_heading);
                errors.push_back(locble::Vec2::distance(est, beacon.position));
            } else {
                errors.push_back(8.0);
            }
        }
    }
    return errors;
}

}  // namespace

int main() {
    bench::print_header("Fig. 13(b) — data length sweep",
                        "stable at >= 80% of the walk (~3 m); worse at 70%; "
                        "much worse at 50%");

    const int runs = 15;
    std::vector<std::pair<std::string, EmpiricalCdf>> curves;
    for (double f : {1.0, 0.8, 0.7, 0.5})
        curves.emplace_back(fmt(100.0 * f, 0) + "%",
                            EmpiricalCdf(errors_at_fraction(f, runs)));

    std::printf("%s\n", format_cdf_table(curves, {{0.5, 0.75, 0.9}}).c_str());
    std::printf("shape check: 100%% ~ 80%% << 70%% << 50%% (the truncated walk "
                "loses the second leg and with it the lateral geometry)\n");
    return 0;
}
