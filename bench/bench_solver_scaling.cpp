// Solver hot-path scaling: naive cold re-solve per batch flush versus the
// incremental SolverWorkspace Session (ISSUE 3 tentpole).
//
// The pipeline's per-batch pattern is "append a batch, re-solve the whole
// accumulated regression". The naive baseline pays the full cold cost at
// every flush; the Session folds only the new samples into the
// per-exponent state (rho powers, linear-seed normal equations, sample
// aggregates) and, in coarse_to_fine mode, warm-starts Gauss-Newton from
// the previous flush's fit while scanning the exponent grid coarse-first.
//
// Sweep: samples-per-batch x batches x exponent-grid size. For each point
// we report the per-walk wall time of
//   naive   — cold LocationSolver::solve over the accumulated samples,
//   incr    — Session in exhaustive mode (bit-identical results),
//   coarse  — Session in coarse_to_fine mode (the production fast path),
// plus the speedup ratios. The headline gate (CI) is the largest point's
// incremental-vs-naive ratio of the coarse_to_fine session, with the
// exhaustive session asserted bit-identical to naive.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "locble/common/rng.hpp"
#include "locble/common/table.hpp"
#include "locble/core/location_solver.hpp"

using namespace locble;
using core::FusedSample;
using core::LocationFit;
using core::LocationSolver;

namespace {

struct SweepPoint {
    const char* key;
    int per_batch;
    int batches;
    double exponent_step;  // grid resolution: points ~ 4.8 / step
};

/// Noisy L-walk RSS stream split into per-flush batches.
std::vector<std::vector<FusedSample>> make_batches(const SweepPoint& pt,
                                                   std::uint64_t seed) {
    locble::Rng rng(seed);
    const locble::Vec2 target{5.0, 2.0};
    const int total = pt.per_batch * pt.batches;
    const int half = total / 2;
    std::vector<std::vector<FusedSample>> out(pt.batches);
    for (int i = 0; i < total; ++i) {
        // L-shape: first half along +x, second half along +y.
        locble::Vec2 obs;
        if (i < half) {
            obs = {4.0 * i / std::max(half - 1, 1), 0.0};
        } else {
            obs = {4.0, 3.0 * (i - half) / std::max(total - half - 1, 1)};
        }
        FusedSample s;
        s.t = 0.1 * i;
        s.p = -obs.x;
        s.q = -obs.y;
        const double l = locble::Vec2::distance(target, obs);
        s.rssi = -59.0 - 10.0 * 2.1 * std::log10(std::max(l, 0.1)) +
                 rng.gaussian(0.0, 3.0);
        out[i / pt.per_batch].push_back(s);
    }
    return out;
}

double now_us() {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool bitwise_equal(const LocationFit& a, const LocationFit& b) {
    return a.location.x == b.location.x && a.location.y == b.location.y &&
           a.exponent == b.exponent && a.gamma_dbm == b.gamma_dbm &&
           a.residual_db == b.residual_db && a.confidence == b.confidence &&
           a.ambiguous == b.ambiguous && a.segment_gammas == b.segment_gammas;
}

struct ModeResult {
    double us{1e300};              // best-of-trials wall time for the whole walk
    std::vector<double> trial_us;  // per-trial wall times, in trial order
    LocationFit fit;
    bool got_fit{false};
};

/// Median of per-trial ratios a/b. Each trial times both modes
/// back-to-back, so transient machine load cancels inside the ratio —
/// far more stable on a busy host than a ratio of independent minima.
double median_ratio(const ModeResult& a, const ModeResult& b) {
    std::vector<double> r;
    for (std::size_t i = 0; i < a.trial_us.size() && i < b.trial_us.size(); ++i)
        r.push_back(a.trial_us[i] / b.trial_us[i]);
    std::sort(r.begin(), r.end());
    if (r.empty()) return 0.0;
    const std::size_t n = r.size();
    return n % 2 ? r[n / 2] : 0.5 * (r[n / 2 - 1] + r[n / 2]);
}

/// One walk with all three modes advanced in lockstep: at every flush the
/// naive cold solve, the exhaustive Session solve, and the coarse Session
/// solve run back-to-back (milliseconds apart), so transient machine load
/// inflates all three near-identically and cancels out of the per-trial
/// time ratios. Accumulates each mode's total solve time for the walk.
void run_pass(const std::vector<std::vector<FusedSample>>& batches,
              const LocationSolver& exhaustive, const LocationSolver& coarse_solver,
              ModeResult& naive, ModeResult& incr, ModeResult& coarse) {
    LocationSolver::Session incr_session(exhaustive);
    LocationSolver::Session coarse_session(coarse_solver);
    std::vector<FusedSample> accumulated;
    double t_naive = 0.0, t_incr = 0.0, t_coarse = 0.0;
    naive.got_fit = incr.got_fit = coarse.got_fit = false;
    for (const auto& batch : batches) {
        accumulated.insert(accumulated.end(), batch.begin(), batch.end());
        incr_session.add(batch);
        coarse_session.add(batch);

        double t0 = now_us();
        if (auto fit = exhaustive.solve(accumulated)) {
            naive.fit = std::move(*fit);
            naive.got_fit = true;
        }
        t_naive += now_us() - t0;

        t0 = now_us();
        incr.got_fit = incr_session.solve_into(incr.fit) || incr.got_fit;
        t_incr += now_us() - t0;

        t0 = now_us();
        coarse.got_fit = coarse_session.solve_into(coarse.fit) || coarse.got_fit;
        t_coarse += now_us() - t0;
    }
    naive.trial_us.push_back(t_naive);
    incr.trial_us.push_back(t_incr);
    coarse.trial_us.push_back(t_coarse);
    naive.us = std::min(naive.us, t_naive);
    incr.us = std::min(incr.us, t_incr);
    coarse.us = std::min(coarse.us, t_coarse);
}

/// Min-over-trials for all three lockstep modes; one untimed warm-up pass.
void run_point(const std::vector<std::vector<FusedSample>>& batches,
               const LocationSolver& exhaustive, const LocationSolver& coarse_solver,
               int trials, ModeResult& naive, ModeResult& incr, ModeResult& coarse) {
    ModeResult warmup_n, warmup_i, warmup_c;
    run_pass(batches, exhaustive, coarse_solver, warmup_n, warmup_i, warmup_c);
    for (int trial = 0; trial < trials; ++trial)
        run_pass(batches, exhaustive, coarse_solver, naive, incr, coarse);
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("solver_scaling", opt, 47000);

    bench::print_header(
        "Solver scaling — naive cold re-solve vs incremental Session",
        "per-flush walk cost; 'incr' is bit-identical exhaustive, 'coarse' is "
        "the coarse_to_fine warm-started production fast path");

    const SweepPoint sweep[] = {
        {"small", 8, 4, 0.1},
        {"medium", 16, 8, 0.05},
        {"large", 24, 12, 0.05},
        {"xlarge", 24, 24, 0.025},
    };
    const int trials = runner.trials_or(5);

    TextTable table({"point", "samples", "grid", "naive us", "incr us", "coarse us",
                     "x incr", "x coarse"});
    const char* largest_key = sweep[std::size(sweep) - 1].key;

    for (std::size_t i = 0; i < std::size(sweep); ++i) {
        const auto& pt = sweep[i];
        const auto batches = make_batches(pt, runner.sweep_seed(i));

        LocationSolver::Config cfg;
        cfg.exponent_step = pt.exponent_step;
        const LocationSolver exhaustive(cfg);
        LocationSolver::Config coarse_cfg = cfg;
        coarse_cfg.search_mode = LocationSolver::SearchMode::coarse_to_fine;
        const LocationSolver coarse_solver(coarse_cfg);

        ModeResult naive, incr, coarse;
        run_point(batches, exhaustive, coarse_solver, trials, naive, incr, coarse);

        const bool identical = naive.got_fit == incr.got_fit &&
                               (!naive.got_fit || bitwise_equal(naive.fit, incr.fit));
        double coarse_err = 0.0;
        if (naive.got_fit && coarse.got_fit)
            coarse_err = locble::Vec2::distance(naive.fit.location, coarse.fit.location);

        const double x_incr = median_ratio(naive, incr);
        const double x_coarse = median_ratio(naive, coarse);
        const int grid = static_cast<int>((cfg.exponent_max - cfg.exponent_min) /
                                          cfg.exponent_step) + 1;
        table.add_row(pt.key,
                      {static_cast<double>(pt.per_batch * pt.batches),
                       static_cast<double>(grid), naive.us, incr.us, coarse.us,
                       x_incr, x_coarse},
                      2);

        const std::string k(pt.key);
        runner.report().add_scalar(k + ".samples", pt.per_batch * pt.batches);
        runner.report().add_scalar(k + ".grid_points", grid);
        runner.report().add_scalar(k + ".batches", pt.batches);
        runner.report().add_scalar(k + ".naive_us", naive.us);
        runner.report().add_scalar(k + ".incremental_us", incr.us);
        runner.report().add_scalar(k + ".coarse_us", coarse.us);
        runner.report().add_scalar(k + ".speedup_exhaustive", x_incr);
        runner.report().add_scalar(k + ".speedup_coarse_warm", x_coarse);
        runner.report().add_scalar(k + ".exhaustive_identical", identical ? 1.0 : 0.0);
        runner.report().add_scalar(k + ".coarse_location_delta_m", coarse_err);
        if (!identical)
            std::printf("WARNING: %s exhaustive incremental != naive!\n", pt.key);
    }
    std::printf("%s\n", table.str().c_str());
    runner.report().add_text("largest_point", largest_key);
    std::printf("headline (CI gate): %s.speedup_coarse_warm — the incremental\n"
                "warm-started production path vs naive cold re-solve\n\n",
                largest_key);
    return runner.finish();
}
