// Sec. 9.2 extension bench ("L-shaped measurement" limitation): the paper
// proposes letting the user walk *straight* and resolving the left/right
// mirror during navigation. This bench measures (a) how often the ambiguous
// straight-walk fit brackets the target with its mirror pair, and (b) how a
// second look from a rotated pose resolves the mirror.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/core/straight_walk.hpp"

using namespace locble;

int main() {
    bench::print_header("Sec. 9.2 extension — straight walk + late disambiguation",
                        "walk straight, keep both mirrors, resolve during "
                        "navigation's first turn");

    const sim::Scenario sc = sim::scenario(9);
    sim::BeaconPlacement beacon;
    beacon.position = sc.default_beacon;

    int fits = 0, ambiguous = 0, bracketed = 0, resolved_right = 0, resolved = 0;
    double resolved_err = 0.0;
    const int runs = 30;
    for (int r = 0; r < runs; ++r) {
        // First measurement: straight walk only.
        sim::MeasurementConfig cfg;
        cfg.lshape = sim::LShapeSpec{6.0, 0.0, 0.0};  // one 6 m leg, no turn
        locble::Rng rng(43000 + r * 61);
        const auto first = sim::measure_stationary(sc, beacon, cfg, rng);
        if (!first.ok) continue;
        ++fits;
        if (!first.detail.fit->ambiguous) continue;
        ++ambiguous;

        core::MirrorHypothesisTracker tracker(*first.detail.fit);
        const auto hyps = tracker.hypotheses();
        const locble::Vec2 truth = first.truth_observer_frame;
        double best_gap = 1e300;
        for (const auto& h : hyps)
            best_gap = std::min(best_gap, locble::Vec2::distance(h, truth));
        if (best_gap < 3.0) ++bracketed;

        // Second measurement after turning 90 degrees at the walk's end
        // (the "first turn in navigation").
        sim::Scenario second_pose = sc;
        const auto walk = sim::default_l_walk(sc, cfg.lshape);
        second_pose.observer_start = walk.pose_at(walk.duration()).position;
        second_pose.observer_heading = sc.observer_heading + 1.5707963;
        sim::MeasurementConfig cfg2;
        cfg2.lshape = sim::LShapeSpec{4.0, 0.0, 0.0};
        const auto second = sim::measure_stationary(second_pose, beacon, cfg2, rng);
        if (!second.ok) continue;
        // Map the second fit into the first walk's observer frame.
        const locble::Vec2 origin = sim::site_to_observer(
            second_pose.observer_start, sc.observer_start, sc.observer_heading);
        tracker.update_with_fit(*second.detail.fit, origin, 1.5707963);
        if (!tracker.resolved()) continue;
        ++resolved;
        const double err = locble::Vec2::distance(tracker.best(), truth);
        resolved_err += err;
        const double mirror_err = locble::Vec2::distance(
            {tracker.best().x, -tracker.best().y}, truth);
        if (err <= mirror_err) ++resolved_right;
    }

    TextTable table({"stage", "count / value"});
    table.add_row({"straight-walk fixes", std::to_string(fits) + " / " +
                                              std::to_string(runs)});
    table.add_row({"ambiguous (mirror pair)", std::to_string(ambiguous)});
    table.add_row({"pair brackets target (<3 m)", std::to_string(bracketed)});
    table.add_row({"resolved by second look", std::to_string(resolved)});
    table.add_row({"resolved to correct mirror", std::to_string(resolved_right)});
    if (resolved)
        table.add_row({"mean error after resolution",
                       fmt(resolved_err / resolved, 2) + " m"});
    std::printf("%s\n", table.str().c_str());
    return 0;
}
