// Sec. 9.2 extension bench ("L-shaped measurement" limitation): the paper
// proposes letting the user walk *straight* and resolving the left/right
// mirror during navigation. This bench measures (a) how often the ambiguous
// straight-walk fit brackets the target with its mirror pair, and (b) how a
// second look from a rotated pose resolves the mirror.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/table.hpp"
#include "locble/core/straight_walk.hpp"

using namespace locble;

namespace {

struct Trial {
    bool fit{false};
    bool ambiguous{false};
    bool bracketed{false};
    bool resolved{false};
    bool resolved_right{false};
    double resolved_err{0.0};
};

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("ext_straight_walk", opt, 43000);

    bench::print_header("Sec. 9.2 extension — straight walk + late disambiguation",
                        "walk straight, keep both mirrors, resolve during "
                        "navigation's first turn");

    const sim::Scenario sc = sim::scenario(9);
    sim::BeaconPlacement beacon;
    beacon.position = sc.default_beacon;

    const int runs = runner.trials_or(30);
    const auto trials =
        runner.run(runs, runner.sweep_seed(1), [&](int, locble::Rng& rng) {
            Trial out;
            // First measurement: straight walk only.
            sim::MeasurementConfig cfg;
            cfg.lshape = sim::LShapeSpec{6.0, 0.0, 0.0};  // one 6 m leg, no turn
            const auto first = sim::measure_stationary(sc, beacon, cfg, rng);
            if (!first.ok) return out;
            out.fit = true;
            if (!first.detail.fit->ambiguous) return out;
            out.ambiguous = true;

            core::MirrorHypothesisTracker tracker(*first.detail.fit);
            const auto hyps = tracker.hypotheses();
            const locble::Vec2 truth = first.truth_observer_frame;
            double best_gap = 1e300;
            for (const auto& h : hyps)
                best_gap = std::min(best_gap, locble::Vec2::distance(h, truth));
            out.bracketed = best_gap < 3.0;

            // Second measurement after turning 90 degrees at the walk's end
            // (the "first turn in navigation"); the trial's rng continues,
            // so the second capture sees a fresh world state.
            sim::Scenario second_pose = sc;
            const auto walk = sim::default_l_walk(sc, cfg.lshape);
            second_pose.observer_start = walk.pose_at(walk.duration()).position;
            second_pose.observer_heading = sc.observer_heading + 1.5707963;
            sim::MeasurementConfig cfg2;
            cfg2.lshape = sim::LShapeSpec{4.0, 0.0, 0.0};
            const auto second = sim::measure_stationary(second_pose, beacon, cfg2, rng);
            if (!second.ok) return out;
            // Map the second fit into the first walk's observer frame.
            const locble::Vec2 origin = sim::site_to_observer(
                second_pose.observer_start, sc.observer_start, sc.observer_heading);
            tracker.update_with_fit(*second.detail.fit, origin, 1.5707963);
            if (!tracker.resolved()) return out;
            out.resolved = true;
            const double err = locble::Vec2::distance(tracker.best(), truth);
            out.resolved_err = err;
            const double mirror_err = locble::Vec2::distance(
                {tracker.best().x, -tracker.best().y}, truth);
            out.resolved_right = err <= mirror_err;
            return out;
        });

    int fits = 0, ambiguous = 0, bracketed = 0, resolved_right = 0, resolved = 0;
    double resolved_err = 0.0;
    for (const auto& t : trials) {
        fits += t.fit;
        ambiguous += t.ambiguous;
        bracketed += t.bracketed;
        resolved += t.resolved;
        resolved_right += t.resolved_right;
        resolved_err += t.resolved ? t.resolved_err : 0.0;
    }

    TextTable table({"stage", "count / value"});
    table.add_row({"straight-walk fixes", std::to_string(fits) + " / " +
                                              std::to_string(runs)});
    table.add_row({"ambiguous (mirror pair)", std::to_string(ambiguous)});
    table.add_row({"pair brackets target (<3 m)", std::to_string(bracketed)});
    table.add_row({"resolved by second look", std::to_string(resolved)});
    table.add_row({"resolved to correct mirror", std::to_string(resolved_right)});
    if (resolved)
        table.add_row({"mean error after resolution",
                       fmt(resolved_err / resolved, 2) + " m"});
    std::printf("%s\n", table.str().c_str());
    runner.report().add_scalar("fix_rate", static_cast<double>(fits) / runs);
    runner.report().add_scalar("ambiguous_count", ambiguous);
    runner.report().add_scalar("bracketed_count", bracketed);
    runner.report().add_scalar("resolved_count", resolved);
    runner.report().add_scalar("resolved_right_count", resolved_right);
    if (resolved)
        runner.report().add_scalar("mean_resolved_error_m", resolved_err / resolved);
    return runner.finish();
}
