#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::bench {

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
    std::printf(
        "usage: %s [--trials N] [--threads N] [--seed S] [--out DIR] [--no-json]\n"
        "          [--metrics] [--trace FILE]\n"
        "  --trials N   override every sweep's trial count\n"
        "  --threads N  worker threads (default: LOCBLE_THREADS or all cores)\n"
        "  --seed S     master seed (results are identical for any --threads)\n"
        "  --out DIR    directory for BENCH_<name>.json (default: .)\n"
        "  --no-json    skip writing the JSON report\n"
        "  --metrics    collect stage metrics into the report's \"obs\" section\n"
        "  --trace FILE write a Chrome trace_event JSON (open in Perfetto)\n",
        argv0);
    std::exit(code);
}

long long parse_ll(const char* argv0, const char* flag, const char* value) {
    if (!value) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv0, flag);
        usage(argv0, 2);
    }
    try {
        return std::stoll(value);
    } catch (const std::exception&) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", argv0, flag, value);
        usage(argv0, 2);
    }
}

}  // namespace

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            usage(argv[0], 0);
        } else if (std::strcmp(arg, "--trials") == 0) {
            opt.trials = static_cast<int>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--threads") == 0) {
            opt.threads = static_cast<unsigned>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opt.seed = static_cast<std::uint64_t>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--out") == 0) {
            if (!next) usage(argv[0], 2);
            opt.out_dir = next;
            ++i;
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opt.json = false;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opt.metrics = true;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (!next) usage(argv[0], 2);
            opt.trace_file = next;
            ++i;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
            usage(argv[0], 2);
        }
    }
    return opt;
}

Runner::Runner(const std::string& name, const Options& opt, std::uint64_t default_seed)
    : opt_(opt),
      master_seed_(opt.seed != 0 ? opt.seed : default_seed),
      runner_(opt.threads != 0 ? opt.threads : runtime::default_thread_count()),
      report_(name),
      start_(std::chrono::steady_clock::now()) {
    if (opt_.metrics) {
        obs::Registry::global().reset();
        obs::Registry::global().set_enabled(true);
#if !LOCBLE_OBS
        std::fprintf(stderr,
                     "warning: --metrics requested but this build has "
                     "LOCBLE_OBS=0; the obs section will be empty\n");
#endif
    }
    if (!opt_.trace_file.empty()) {
        obs::Tracer::global().reset();
        obs::Tracer::global().start();
#if !LOCBLE_OBS
        std::fprintf(stderr,
                     "warning: --trace requested but this build has "
                     "LOCBLE_OBS=0; the trace will be empty\n");
#endif
    }
}

int Runner::finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    report_.set_run(trials_run_, threads(), master_seed_);
    report_.set_wall_seconds(wall);
    std::printf("[%d trials, %u threads, seed %llu, %.2f s]\n", trials_run_, threads(),
                static_cast<unsigned long long>(master_seed_), wall);
    if (opt_.metrics) {
        // Snapshot at a quiescent point: the TrialRunner's pool is idle once
        // every run() call has returned, which finish() requires.
        const auto snap = obs::Registry::global().snapshot();
        for (const auto& m : snap) {
            if (!m.deterministic) continue;  // scheduling-dependent: console only
            switch (m.kind) {
                case obs::MetricKind::counter:
                    report_.add_obs_counter(m.name, m.count);
                    break;
                case obs::MetricKind::gauge_max:
                    report_.add_obs_gauge(m.name, m.value);
                    break;
                case obs::MetricKind::histogram:
                    report_.add_obs_histogram(m.name, m.buckets, m.bounds);
                    break;
                case obs::MetricKind::quantile:
                    report_.add_obs_quantile(m.name, m.buckets, m.upper_bound);
                    break;
            }
        }
        if (!snap.empty())
            std::printf("\nobs metrics:\n%s", obs::format_summary(snap).c_str());
    }
    if (!opt_.trace_file.empty()) {
        obs::Tracer::global().stop();
        try {
            obs::Tracer::global().write(opt_.trace_file);
            std::printf("trace: %s (%zu events)\n", opt_.trace_file.c_str(),
                        obs::Tracer::global().event_count());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    if (opt_.json) {
        try {
            const std::string path = report_.write(opt_.out_dir);
            std::printf("report: %s\n", path.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}

}  // namespace locble::bench
