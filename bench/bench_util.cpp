#include "bench_util.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace locble::bench {

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
    std::printf(
        "usage: %s [--trials N] [--threads N] [--seed S] [--out DIR] [--no-json]\n"
        "  --trials N   override every sweep's trial count\n"
        "  --threads N  worker threads (default: LOCBLE_THREADS or all cores)\n"
        "  --seed S     master seed (results are identical for any --threads)\n"
        "  --out DIR    directory for BENCH_<name>.json (default: .)\n"
        "  --no-json    skip writing the JSON report\n",
        argv0);
    std::exit(code);
}

long long parse_ll(const char* argv0, const char* flag, const char* value) {
    if (!value) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv0, flag);
        usage(argv0, 2);
    }
    try {
        return std::stoll(value);
    } catch (const std::exception&) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", argv0, flag, value);
        usage(argv0, 2);
    }
}

}  // namespace

Options parse_options(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
        if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
            usage(argv[0], 0);
        } else if (std::strcmp(arg, "--trials") == 0) {
            opt.trials = static_cast<int>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--threads") == 0) {
            opt.threads = static_cast<unsigned>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--seed") == 0) {
            opt.seed = static_cast<std::uint64_t>(parse_ll(argv[0], arg, next));
            ++i;
        } else if (std::strcmp(arg, "--out") == 0) {
            if (!next) usage(argv[0], 2);
            opt.out_dir = next;
            ++i;
        } else if (std::strcmp(arg, "--no-json") == 0) {
            opt.json = false;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
            usage(argv[0], 2);
        }
    }
    return opt;
}

Runner::Runner(const std::string& name, const Options& opt, std::uint64_t default_seed)
    : opt_(opt),
      master_seed_(opt.seed != 0 ? opt.seed : default_seed),
      runner_(opt.threads != 0 ? opt.threads : runtime::default_thread_count()),
      report_(name),
      start_(std::chrono::steady_clock::now()) {}

int Runner::finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    report_.set_run(trials_run_, threads(), master_seed_);
    report_.set_wall_seconds(wall);
    std::printf("[%d trials, %u threads, seed %llu, %.2f s]\n", trials_run_, threads(),
                static_cast<unsigned long long>(master_seed_), wall);
    if (opt_.json) {
        try {
            const std::string path = report_.write(opt_.out_dir);
            std::printf("report: %s\n", path.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
    }
    return 0;
}

}  // namespace locble::bench
