// Fig. 5 reproduction: CDF of estimation error with (a) full preprocessing,
// (b) without EnvAware, (c) without ANF. The paper's setting (Sec. 4.3) is a
// *persistent* environment transition: "the observer moves from behind the
// wall (NLOS) to line-of-sight (LOS) w.r.t. the target; people randomly come
// in between during the observer's movement to form p-LOS paths".

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"

using namespace locble;

namespace {

/// Environments #2-#4 augmented so the first leg of the walk is blocked by a
/// wall edge the observer then clears — the NLOS -> LOS transition Fig. 5
/// stresses. The bedroom (#3) already has this via its partition.
sim::Scenario transition_scenario(int idx) {
    sim::Scenario sc = sim::scenario(idx);
    sc.site.ambient_crossings = 3.0;  // plus random p-LOS crossings
    if (idx == 2) {
        // A cabinet wall shadowing the corridor's first metres.
        sc.site.walls.push_back({{3.4, 0.0},
                                 {3.4, 2.2},
                                 channel::BlockageClass::heavy,
                                 12.0,
                                 "cabinet row"});
    } else if (idx == 4) {
        sc.site.walls.push_back({{3.4, 0.0},
                                 {3.4, 3.6},
                                 channel::BlockageClass::heavy,
                                 12.0,
                                 "room divider"});
    }
    return sc;
}

std::vector<double> ablation_errors(bool use_anf, bool use_envaware, int runs_per_env) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = transition_scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        cfg.pipeline.use_anf = use_anf;
        cfg.pipeline.use_envaware = use_envaware;
        const auto errs = bench::stationary_errors(sc, beacon, cfg, runs_per_env,
                                                   5000 + idx * 131);
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    return errors;
}

}  // namespace

int main() {
    bench::print_header("Fig. 5 — preprocessing ablation (error CDF)",
                        "removing EnvAware costs >1 m median; removing ANF "
                        "costs >1.5 m (Sec. 4.3)");

    const int runs = 25;
    const EmpiricalCdf full(ablation_errors(true, true, runs));
    const EmpiricalCdf no_env(ablation_errors(true, false, runs));
    const EmpiricalCdf no_anf(ablation_errors(false, true, runs));

    const std::vector<double> percentiles{0.25, 0.5, 0.75, 0.9};
    std::printf("%s\n",
                format_cdf_table({{"w. ANF + EnvAware", full},
                                  {"w/o EnvAware", no_env},
                                  {"w/o ANF", no_anf}},
                                 percentiles)
                    .c_str());

    std::printf("median penalty w/o EnvAware: %+.2f m (paper: >1 m)\n",
                no_env.median() - full.median());
    std::printf("median penalty w/o ANF:      %+.2f m (paper: >1.5 m)\n",
                no_anf.median() - full.median());
    return 0;
}
