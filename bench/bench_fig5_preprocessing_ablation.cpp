// Fig. 5 reproduction: CDF of estimation error with (a) full preprocessing,
// (b) without EnvAware, (c) without ANF. The paper's setting (Sec. 4.3) is a
// *persistent* environment transition: "the observer moves from behind the
// wall (NLOS) to line-of-sight (LOS) w.r.t. the target; people randomly come
// in between during the observer's movement to form p-LOS paths".

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"

using namespace locble;

namespace {

/// Environments #2-#4 augmented so the first leg of the walk is blocked by a
/// wall edge the observer then clears — the NLOS -> LOS transition Fig. 5
/// stresses. The bedroom (#3) already has this via its partition.
sim::Scenario transition_scenario(int idx) {
    sim::Scenario sc = sim::scenario(idx);
    sc.site.ambient_crossings = 3.0;  // plus random p-LOS crossings
    if (idx == 2) {
        // A cabinet wall shadowing the corridor's first metres.
        sc.site.walls.push_back({{3.4, 0.0},
                                 {3.4, 2.2},
                                 channel::BlockageClass::heavy,
                                 12.0,
                                 "cabinet row"});
    } else if (idx == 4) {
        sc.site.walls.push_back({{3.4, 0.0},
                                 {3.4, 3.6},
                                 channel::BlockageClass::heavy,
                                 12.0,
                                 "room divider"});
    }
    return sc;
}

std::vector<double> ablation_errors(bench::Runner& runner, bool use_anf,
                                    bool use_envaware, int runs_per_env,
                                    std::uint64_t variant_tag) {
    std::vector<double> errors;
    for (int idx = 2; idx <= 4; ++idx) {
        const sim::Scenario sc = transition_scenario(idx);
        sim::BeaconPlacement beacon;
        beacon.position = sc.default_beacon;
        sim::MeasurementConfig cfg;
        cfg.pipeline.use_anf = use_anf;
        cfg.pipeline.use_envaware = use_envaware;
        // Every variant replays the same worlds per environment: the sweep
        // seed depends on the environment only, not the variant.
        const auto errs = bench::stationary_errors(
            runner, sc, beacon, cfg, runs_per_env,
            runner.sweep_seed(static_cast<std::uint64_t>(idx)));
        errors.insert(errors.end(), errs.begin(), errs.end());
    }
    (void)variant_tag;
    return errors;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig5_preprocessing_ablation", opt, 5000);

    bench::print_header("Fig. 5 — preprocessing ablation (error CDF)",
                        "removing EnvAware costs >1 m median; removing ANF "
                        "costs >1.5 m (Sec. 4.3)");

    const int runs = runner.trials_or(25);
    const auto full_errors = ablation_errors(runner, true, true, runs, 1);
    const auto no_env_errors = ablation_errors(runner, true, false, runs, 2);
    const auto no_anf_errors = ablation_errors(runner, false, true, runs, 3);
    const EmpiricalCdf full(full_errors);
    const EmpiricalCdf no_env(no_env_errors);
    const EmpiricalCdf no_anf(no_anf_errors);

    const std::vector<double> percentiles{0.25, 0.5, 0.75, 0.9};
    std::printf("%s\n",
                format_cdf_table({{"w. ANF + EnvAware", full},
                                  {"w/o EnvAware", no_env},
                                  {"w/o ANF", no_anf}},
                                 percentiles)
                    .c_str());

    std::printf("median penalty w/o EnvAware: %+.2f m (paper: >1 m)\n",
                no_env.median() - full.median());
    std::printf("median penalty w/o ANF:      %+.2f m (paper: >1.5 m)\n",
                no_anf.median() - full.median());
    runner.report().add_summary("full_error_m", full_errors);
    runner.report().add_summary("no_envaware_error_m", no_env_errors);
    runner.report().add_summary("no_anf_error_m", no_anf_errors);
    runner.report().add_scalar("median_penalty_no_envaware_m",
                               no_env.median() - full.median());
    runner.report().add_scalar("median_penalty_no_anf_m",
                               no_anf.median() - full.median());
    return runner.finish();
}
