// Fig. 10(b) reproduction: overall navigation error CDF. The paper places a
// beacon in an office, measures, navigates, and reports the distance from
// the navigation destination to the true beacon over 20 runs: median 1.5 m,
// p75 2 m, max < 3 m.

#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/sim/navigation_sim.hpp"

using namespace locble;

int main() {
    bench::print_header("Fig. 10(b) — navigation overall error CDF",
                        "median 1.5 m, p75 2 m, max < 3 m over 20 runs, "
                        "target 4-12 m away");

    const sim::Scenario sc = sim::scenario(1);  // office-like room
    const sim::NavigationSimulator sim;

    std::vector<double> final_errors;
    locble::Rng placement_rng(2017);
    for (int run = 0; run < 20; ++run) {
        // Random beacon placement 4-12 m from the start, clamped into a
        // larger office by scaling the meeting-room site.
        sim::Scenario big = sc;
        big.site.width_m = 14.0;
        big.site.height_m = 12.0;
        sim::BeaconPlacement beacon;
        const double d = placement_rng.uniform(4.0, 12.0);
        const double ang = placement_rng.uniform(0.1, 1.4);
        beacon.position = {1.0 + d * std::cos(ang), 1.0 + d * std::sin(ang)};
        beacon.position.x = std::min(beacon.position.x, big.site.width_m - 0.5);
        beacon.position.y = std::min(beacon.position.y, big.site.height_m - 0.5);

        locble::Rng rng(300 + static_cast<std::uint64_t>(run) * 37);
        const auto result = sim.run(big, beacon, {1.0, 1.0}, 0.3, rng);
        final_errors.push_back(result.final_distance_m);
    }

    const EmpiricalCdf cdf(final_errors);
    std::printf("%s\n",
                format_cdf_table({{"overall nav error", cdf}}, {{0.5, 0.75, 0.9}})
                    .c_str());
    std::printf("median %.2f m (paper 1.5), p75 %.2f m (paper 2.0), max %.2f m "
                "(paper < 3)\n",
                cdf.median(), cdf.percentile(0.75), cdf.max());
    return 0;
}
