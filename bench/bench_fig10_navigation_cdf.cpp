// Fig. 10(b) reproduction: overall navigation error CDF. The paper places a
// beacon in an office, measures, navigates, and reports the distance from
// the navigation destination to the true beacon over 20 runs: median 1.5 m,
// p75 2 m, max < 3 m.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "locble/common/cdf.hpp"
#include "locble/sim/navigation_sim.hpp"

using namespace locble;

int main(int argc, char** argv) {
    const auto opt = bench::parse_options(argc, argv);
    bench::Runner runner("fig10_navigation_cdf", opt, 2017);

    bench::print_header("Fig. 10(b) — navigation overall error CDF",
                        "median 1.5 m, p75 2 m, max < 3 m over 20 runs, "
                        "target 4-12 m away");

    const sim::Scenario sc = sim::scenario(1);  // office-like room
    const sim::NavigationSimulator nav_sim;

    const int runs = runner.trials_or(20);
    const auto final_errors =
        runner.run(runs, runner.sweep_seed(1), [&](int, locble::Rng& rng) {
            // Random beacon placement 4-12 m from the start, clamped into a
            // larger office by scaling the meeting-room site. The placement
            // comes from the head of the trial's own stream, keeping each
            // run fully self-seeded.
            sim::Scenario big = sc;
            big.site.width_m = 14.0;
            big.site.height_m = 12.0;
            sim::BeaconPlacement beacon;
            const double d = rng.uniform(4.0, 12.0);
            const double ang = rng.uniform(0.1, 1.4);
            beacon.position = {1.0 + d * std::cos(ang), 1.0 + d * std::sin(ang)};
            beacon.position.x = std::min(beacon.position.x, big.site.width_m - 0.5);
            beacon.position.y = std::min(beacon.position.y, big.site.height_m - 0.5);

            return nav_sim.run(big, beacon, {1.0, 1.0}, 0.3, rng).final_distance_m;
        });

    const EmpiricalCdf cdf(final_errors);
    std::printf("%s\n",
                format_cdf_table({{"overall nav error", cdf}}, {{0.5, 0.75, 0.9}})
                    .c_str());
    std::printf("median %.2f m (paper 1.5), p75 %.2f m (paper 2.0), max %.2f m "
                "(paper < 3)\n",
                cdf.median(), cdf.percentile(0.75), cdf.max());
    runner.report().add_summary("final_error_m", final_errors);
    return runner.finish();
}
