#pragma once

#include <map>
#include <string>
#include <vector>

namespace locble::lint {

/// One rule violation at a specific source line.
struct Finding {
    std::string file;   ///< path as handed to lint_source (usually repo-relative)
    int line{0};        ///< 1-based
    std::string rule;   ///< rule id, e.g. "rand", "wallclock"
    std::string excerpt;///< the offending source line, trimmed
};

/// The determinism rules (docs/CORRECTNESS.md has the rationale for each):
///   rand        std::rand/srand/random_device/mt19937 outside common/rng.hpp —
///               all randomness must flow through locble::Rng seed streams.
///   wallclock   system_clock/high_resolution_clock/time()/clock_gettime/... in
///               src/ — trial and result paths may only read steady_clock, and
///               only for display-only timing.
///   unordered   std::unordered_{map,set} anywhere in src/ or bench/ —
///               iteration order is implementation-defined, which silently
///               breaks byte-identical serialization and float-sum ordering.
///   volatile    the volatile keyword — it is not a synchronization primitive
///               and usually hides a benchmark sink better expressed by
///               consuming the value.
///   raw-new     raw new/delete in solver hot-path files (core/location_solver*)
///               — the PR-3 zero-allocation guarantee requires every buffer to
///               live in SolverWorkspace.
///   obs-guard   direct obs::Registry/Tracer::global() use in src/ outside
///               src/locble/obs/ — instrumentation must go through the
///               LOCBLE_* macros so -DLOCBLE_OBS=OFF removes the call site.
///   float-reduce  scheduling-ordered floating-point accumulation:
///               std::atomic<double|float> cells, std::reduce /
///               transform_reduce with an std::execution policy, and OpenMP
///               reduction pragmas. Float addition is not associative, so
///               any sum whose order follows thread scheduling breaks the
///               byte-identical-across-thread-counts contract; merge u64
///               counts (or per-shard values folded in index order) instead.
///
/// Scope: src/ and bench/ get every rule. tests/ is scanned too, but only
/// for the reproducibility rules (rand, wallclock) — hidden entropy or
/// wall-clock reads make tests flaky, while the structural rules
/// (unordered, volatile, raw-new, obs-guard, float-reduce) target
/// library/bench code that tests legitimately need to exercise.
///
/// A line is exempt when it, or the line directly above it, carries a
/// `// locble-lint: allow(rule)` (or `allow(rule1,rule2)`) comment.
std::vector<std::string> rule_ids();

/// Lint one file's contents. `path` should be repo-relative with forward
/// slashes; it selects which rules apply (see rule list above).
std::vector<Finding> lint_source(const std::string& path, const std::string& contents);

/// Expected-findings baseline: rule violations that predate the linter and
/// are tracked rather than fixed. Text format, one entry per line:
///
///   <path>:<rule>:<count>
///
/// '#' starts a comment. Returns a map from "<path>:<rule>" to count.
std::map<std::string, int> parse_baseline(const std::string& text);

/// Partition findings against a baseline: returns the findings NOT covered
/// by the baseline (these fail the lint), and reports stale baseline entries
/// (more findings budgeted than exist) into `stale` as "<path>:<rule>" keys.
std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::map<std::string, int>& baseline,
                                    std::vector<std::string>& stale);

}  // namespace locble::lint
