// locble determinism linter (docs/CORRECTNESS.md).
//
// Scans C++ sources for the project's banned nondeterminism patterns —
// ambient randomness, wall-clock reads, unordered-container iteration,
// volatile, raw allocation in the solver hot path, unguarded obs calls —
// and fails if any finding is neither `// locble-lint: allow(<rule>)`-ed
// inline nor budgeted in the expected-findings baseline.
//
// Usage:
//   determinism_lint [--root DIR] [--baseline FILE] <path>...
//
// Paths may be files or directories (searched recursively for
// .cpp/.cc/.hpp/.h). --root makes reported paths (and baseline keys)
// relative to DIR. Exit code 0 = clean, 1 = unsuppressed findings,
// 2 = usage/IO error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace fs = std::filesystem;

namespace {

bool has_cxx_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

std::string read_file(const fs::path& p, bool& ok) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    ok = true;
    return ss.str();
}

/// Forward-slashed path relative to root (or unchanged if not under root).
std::string relativize(const fs::path& p, const fs::path& root) {
    std::error_code ec;
    fs::path rel = fs::relative(p, root, ec);
    const fs::path& use = (ec || rel.empty() || *rel.begin() == "..") ? p : rel;
    return use.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = fs::current_path();
    fs::path baseline_file;
    std::vector<fs::path> inputs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
            root = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline_file = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: determinism_lint [--root DIR] [--baseline FILE] <path>...\n");
            return 0;
        } else {
            inputs.emplace_back(argv[i]);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "determinism_lint: no input paths (try --help)\n");
        return 2;
    }

    std::vector<fs::path> files;
    for (const fs::path& in : inputs) {
        std::error_code ec;
        if (fs::is_directory(in, ec)) {
            for (const auto& entry : fs::recursive_directory_iterator(in, ec))
                if (entry.is_regular_file() && has_cxx_extension(entry.path()))
                    files.push_back(entry.path());
            if (ec) {
                std::fprintf(stderr, "determinism_lint: cannot walk %s: %s\n",
                             in.string().c_str(), ec.message().c_str());
                return 2;
            }
        } else if (fs::is_regular_file(in, ec)) {
            files.push_back(in);
        } else {
            std::fprintf(stderr, "determinism_lint: no such path: %s\n",
                         in.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::map<std::string, int> baseline;
    if (!baseline_file.empty()) {
        bool ok = false;
        const std::string text = read_file(baseline_file, ok);
        if (!ok) {
            std::fprintf(stderr, "determinism_lint: cannot read baseline %s\n",
                         baseline_file.string().c_str());
            return 2;
        }
        baseline = locble::lint::parse_baseline(text);
    }

    std::vector<locble::lint::Finding> findings;
    for (const fs::path& file : files) {
        bool ok = false;
        const std::string contents = read_file(file, ok);
        if (!ok) {
            std::fprintf(stderr, "determinism_lint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        const auto file_findings =
            locble::lint::lint_source(relativize(file, root), contents);
        findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }

    std::vector<std::string> stale;
    const auto failing = locble::lint::apply_baseline(findings, baseline, stale);

    for (const auto& f : failing)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                     f.rule.c_str(), f.excerpt.c_str());
    for (const auto& key : stale)
        std::fprintf(stderr,
                     "determinism_lint: stale baseline entry '%s' — the finding "
                     "is gone, remove it from the baseline\n",
                     key.c_str());

    std::printf("determinism_lint: %zu files, %zu findings (%zu baselined), %zu failing\n",
                files.size(), findings.size(), findings.size() - failing.size(),
                failing.size());
    return failing.empty() ? 0 : 1;
}
