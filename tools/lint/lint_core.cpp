#include "lint_core.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace locble::lint {

namespace {

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replace comments and string/character literals with spaces (newlines kept,
/// so line numbers survive). Keeps rule matching away from prose like "the
/// new solver" in a comment or "time(" inside a log message.
std::string strip_comments_and_strings(const std::string& src) {
    std::string out(src.size(), ' ');
    enum class State { code, line_comment, block_comment, string, chr, raw_string };
    State state = State::code;
    std::string raw_close;  // ")<delim>\"" for the active raw string
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char next = i + 1 < src.size() ? src[i + 1] : '\0';
        if (c == '\n') out[i] = '\n';
        switch (state) {
            case State::code:
                if (c == '/' && next == '/') {
                    state = State::line_comment;
                } else if (c == '/' && next == '*') {
                    state = State::block_comment;
                    ++i;
                } else if (c == 'R' && next == '"' &&
                           (i == 0 || !ident_char(src[i - 1]))) {
                    // R"<delim>( ... )<delim>"
                    std::size_t open = src.find('(', i + 2);
                    if (open == std::string::npos) { out[i] = c; break; }
                    raw_close = ")" + src.substr(i + 2, open - (i + 2)) + "\"";
                    out[i] = c;
                    i = open;  // literal body starts after '('
                    state = State::raw_string;
                } else if (c == '"' && (i == 0 || src[i - 1] != '\\')) {
                    state = State::string;
                } else if (c == '\'' && (i == 0 || !ident_char(src[i - 1]))) {
                    // ident check skips digit separators like 1'000'000
                    state = State::chr;
                } else {
                    out[i] = c;
                }
                break;
            case State::line_comment:
                if (c == '\n') state = State::code;
                break;
            case State::block_comment:
                if (c == '*' && next == '/') {
                    ++i;
                    state = State::code;
                }
                break;
            case State::string:
                if (c == '\\') ++i;
                else if (c == '"') state = State::code;
                break;
            case State::chr:
                if (c == '\\') ++i;
                else if (c == '\'') state = State::code;
                break;
            case State::raw_string:
                if (src.compare(i, raw_close.size(), raw_close) == 0) {
                    i += raw_close.size() - 1;
                    state = State::code;
                }
                break;
        }
    }
    return out;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

/// Does `line` contain `word` as a whole identifier?
bool has_word(const std::string& line, const std::string& word) {
    std::size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok = end >= line.size() || !ident_char(line[end]);
        if (left_ok && right_ok) return true;
        pos = end;
    }
    return false;
}

/// Whole word `word` immediately followed (modulo spaces) by '('.
bool has_call(const std::string& line, const std::string& word) {
    std::size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
        std::size_t end = pos + word.size();
        if (left_ok && (end >= line.size() || !ident_char(line[end]))) {
            std::size_t p = end;
            while (p < line.size() && line[p] == ' ') ++p;
            if (p < line.size() && line[p] == '(') return true;
        }
        pos = end;
    }
    return false;
}

/// `delete` used as an operator (not `= delete;` / `= delete ;` defaults).
bool has_operator_delete(const std::string& line) {
    std::size_t pos = 0;
    while ((pos = line.find("delete", pos)) != std::string::npos) {
        const bool left_ident = pos > 0 && ident_char(line[pos - 1]);
        const std::size_t end = pos + 6;
        const bool right_ident = end < line.size() && ident_char(line[end]);
        if (left_ident || right_ident) { pos = end; continue; }
        // Walk left past spaces; '=' means a deleted special member.
        std::size_t l = pos;
        while (l > 0 && line[l - 1] == ' ') --l;
        const bool deleted_fn = l > 0 && line[l - 1] == '=';
        // Walk right past "[]" and spaces; ';' or end means no operand.
        std::size_t r = end;
        while (r < line.size() && (line[r] == ' ' || line[r] == '[' || line[r] == ']')) ++r;
        const bool no_operand = r >= line.size() || line[r] == ';';
        if (!deleted_fn && !no_operand) return true;
        pos = end;
    }
    return false;
}

std::string trim(const std::string& s) {
    std::size_t a = s.find_first_not_of(" \t");
    if (a == std::string::npos) return "";
    std::size_t b = s.find_last_not_of(" \t");
    return s.substr(a, b - a + 1);
}

/// Rules allowed on `line_no` (1-based) via a `// locble-lint: allow(...)`
/// pragma on this line or the one above. Parsed from the RAW text, since
/// pragmas live in comments.
bool is_allowed(const std::vector<std::string>& raw_lines, int line_no,
                const std::string& rule) {
    for (int l = line_no - 1; l <= line_no; ++l) {
        if (l < 1 || l > static_cast<int>(raw_lines.size())) continue;
        const std::string& text = raw_lines[static_cast<std::size_t>(l - 1)];
        std::size_t tag = text.find("locble-lint:");
        if (tag == std::string::npos) continue;
        std::size_t open = text.find("allow(", tag);
        if (open == std::string::npos) continue;
        std::size_t close = text.find(')', open);
        if (close == std::string::npos) continue;
        std::stringstream list(text.substr(open + 6, close - open - 6));
        std::string item;
        while (std::getline(list, item, ','))
            if (trim(item) == rule) return true;
    }
    return false;
}

bool path_contains(const std::string& path, const std::string& part) {
    return path.find(part) != std::string::npos;
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

}  // namespace

std::vector<std::string> rule_ids() {
    return {"rand",    "wallclock", "unordered",   "volatile",
            "raw-new", "obs-guard", "float-reduce"};
}

std::vector<Finding> lint_source(const std::string& path, const std::string& contents) {
    const std::vector<std::string> raw_lines = split_lines(contents);
    const std::vector<std::string> code_lines =
        split_lines(strip_comments_and_strings(contents));

    const bool is_rng_home = path_contains(path, "common/rng.hpp");
    const bool is_solver_hot_path = path_contains(path, "core/location_solver");
    const bool is_src = starts_with(path, "src/") || path_contains(path, "/src/");
    const bool is_obs_home = path_contains(path, "locble/obs/");
    // tests/ runs under the reproducibility rules only: hidden entropy
    // (rand) and hidden time dependence (wallclock) make tests flaky, but
    // tests legitimately exercise unordered containers, volatile, raw new
    // and the obs registry itself, so the structural rules stay src/bench
    // scoped.
    const bool is_tests =
        starts_with(path, "tests/") || path_contains(path, "/tests/");

    std::vector<Finding> findings;
    const auto report = [&](int line_no, const char* rule) {
        if (is_allowed(raw_lines, line_no, rule)) return;
        findings.push_back({path, line_no, rule,
                            trim(raw_lines[static_cast<std::size_t>(line_no - 1)])});
    };

    for (std::size_t i = 0; i < code_lines.size(); ++i) {
        const std::string& line = code_lines[i];
        if (line.find_first_not_of(' ') == std::string::npos) continue;
        const int n = static_cast<int>(i) + 1;

        if (!is_rng_home &&
            (has_word(line, "rand") || has_word(line, "srand") ||
             has_word(line, "random_device") || has_word(line, "mt19937") ||
             has_word(line, "mt19937_64") || has_word(line, "minstd_rand") ||
             has_word(line, "default_random_engine")))
            report(n, "rand");

        if (has_word(line, "system_clock") || has_word(line, "high_resolution_clock") ||
            has_word(line, "gettimeofday") || has_word(line, "clock_gettime") ||
            has_word(line, "localtime") || has_word(line, "gmtime") ||
            has_call(line, "time") || has_call(line, "clock"))
            report(n, "wallclock");

        if (!is_tests &&
            (has_word(line, "unordered_map") || has_word(line, "unordered_set") ||
             has_word(line, "unordered_multimap") ||
             has_word(line, "unordered_multiset")))
            report(n, "unordered");

        if (!is_tests && has_word(line, "volatile")) report(n, "volatile");

        if (is_solver_hot_path && !is_tests &&
            (has_word(line, "new") || has_operator_delete(line)))
            report(n, "raw-new");

        if (is_src && !is_obs_home && !is_tests &&
            (line.find("Registry::global") != std::string::npos ||
             line.find("Tracer::global") != std::string::npos))
            report(n, "obs-guard");

        if (!is_tests) {
            // Scheduling-ordered floating-point accumulation: atomic
            // float/double cells (RMW interleaving picks the sum order),
            // parallel std::reduce/transform_reduce, OpenMP reductions.
            const bool atomic_float =
                has_word(line, "atomic") &&
                (line.find("<double") != std::string::npos ||
                 line.find("< double") != std::string::npos ||
                 line.find("<float") != std::string::npos ||
                 line.find("< float") != std::string::npos);
            const bool par_reduce =
                line.find("execution::") != std::string::npos &&
                (has_call(line, "reduce") || has_call(line, "transform_reduce"));
            const bool omp_reduce =
                has_word(line, "omp") && line.find("reduction") != std::string::npos;
            if (atomic_float || par_reduce || omp_reduce)
                report(n, "float-reduce");
        }
    }
    return findings;
}

std::map<std::string, int> parse_baseline(const std::string& text) {
    std::map<std::string, int> baseline;
    std::stringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line = line.substr(0, hash);
        line = trim(line);
        if (line.empty()) continue;
        const std::size_t last = line.rfind(':');
        if (last == std::string::npos) continue;
        const std::string key = line.substr(0, last);
        baseline[key] += std::atoi(line.c_str() + last + 1);
    }
    return baseline;
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::map<std::string, int>& baseline,
                                    std::vector<std::string>& stale) {
    std::map<std::string, int> budget = baseline;
    std::vector<Finding> failing;
    for (const Finding& f : findings) {
        const std::string key = f.file + ":" + f.rule;
        auto it = budget.find(key);
        if (it != budget.end() && it->second > 0) {
            --it->second;
        } else {
            failing.push_back(f);
        }
    }
    for (const auto& [key, remaining] : budget)
        if (remaining > 0) stale.push_back(key);
    std::sort(stale.begin(), stale.end());
    return failing;
}

}  // namespace locble::lint
