#!/usr/bin/env python3
"""Docs link checker: every relative link and file reference in the
repository's markdown must resolve.

Checks, over README.md and docs/*.md (plus any extra paths given on the
command line):

  - inline markdown links [text](target): relative targets must exist
    (anchors are stripped; http(s)/mailto links are not fetched);
  - bare repo-path references in backticks like `docs/SERVING.md` or
    `tools/docs/check_links.py` when they look like a path into a
    top-level repo directory: the file or directory must exist.

Exits nonzero listing every broken reference. Run from the repo root:

    python3 tools/docs/check_links.py
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_PATH_RE = re.compile(r"`([A-Za-z0-9_.~/-]+)`")

# Backticked strings are only treated as repo paths when they start with one
# of these top-level directories (or are a top-level markdown/config file).
PATH_PREFIXES = (
    "docs/", "src/", "tests/", "bench/", "tools/", "examples/",
    ".github/",
)
CODE_SUFFIXES = (".md", ".py", ".yml", ".json", ".txt", ".cmake")


def check_file(md_path: str, repo_root: str) -> list[str]:
    errors = []
    base = os.path.dirname(md_path)
    text = open(md_path, encoding="utf-8").read()

    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = os.path.normpath(os.path.join(base, path))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: broken link -> {target}")

    for m in BACKTICK_PATH_RE.finditer(text):
        ref = m.group(1)
        looks_like_path = ref.startswith(PATH_PREFIXES) or (
            "/" not in ref and ref.endswith(CODE_SUFFIXES) and ref.count(".") == 1
        )
        if not looks_like_path:
            continue
        # Globs and <placeholders> document patterns, not single files.
        if any(ch in ref for ch in "*<>{}$"):
            continue
        resolved = os.path.normpath(os.path.join(repo_root, ref))
        if not os.path.exists(resolved):
            errors.append(f"{md_path}: missing path reference -> {ref}")

    return errors


def main() -> int:
    repo_root = os.getcwd()
    targets = sys.argv[1:] or (
        ["README.md"] + sorted(glob.glob("docs/*.md")) + ["ROADMAP.md"]
    )
    all_errors = []
    checked = 0
    for path in targets:
        if not os.path.exists(path):
            all_errors.append(f"{path}: file not found")
            continue
        checked += 1
        all_errors.extend(check_file(path, repo_root))

    if all_errors:
        for e in all_errors:
            print(e, file=sys.stderr)
        print(f"\n{len(all_errors)} broken reference(s) in {checked} file(s)",
              file=sys.stderr)
        return 1
    print(f"docs link check OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
