#pragma once

#include <vector>

#include "locble/common/rng.hpp"
#include "locble/common/vec2.hpp"

namespace locble::imu {

/// Instantaneous kinematic state of a walker.
struct Pose {
    locble::Vec2 position;
    double heading{0.0};  ///< radians from +x
    bool walking{false};
    double speed{0.0};  ///< m/s along heading while walking
};

/// A pedestrian trajectory built from waypoints with a stop-and-turn model:
/// the walker moves between waypoints at constant speed and pauses at each
/// interior waypoint to rotate toward the next leg. This produces the
/// signal morphology LocBLE's motion tracker expects — clean gait cycles
/// on legs and distinct gyro "bumps" at turns (Sec. 5.2).
class Trajectory {
public:
    struct Config {
        double walk_speed{1.1};          ///< m/s
        double turn_rate{1.8};           ///< rad/s while rotating
        double min_turn_duration{0.35};  ///< s, even tiny corrections pause
        double initial_pause{0.5};       ///< s standing before the first leg
        double final_pause{0.5};         ///< s standing at the end
    };

    /// Build from at least one waypoint; the initial heading faces the first
    /// leg (or +x for a single point). Throws std::invalid_argument when
    /// `waypoints` is empty.
    explicit Trajectory(std::vector<locble::Vec2> waypoints)
        : Trajectory(std::move(waypoints), Config{}) {}
    Trajectory(std::vector<locble::Vec2> waypoints, const Config& cfg);

    Pose pose_at(double t) const;
    double duration() const { return duration_; }
    const std::vector<locble::Vec2>& waypoints() const { return waypoints_; }
    /// Ground-truth walked distance (sum of leg lengths).
    double walked_distance() const;
    /// Ground-truth turn angles at interior waypoints (signed, radians).
    std::vector<double> turn_angles() const;

private:
    struct Phase {
        enum class Kind { pause, walk, turn } kind{Kind::pause};
        double t0{0.0};
        double t1{0.0};
        locble::Vec2 from;
        locble::Vec2 to;
        double heading0{0.0};
        double heading1{0.0};
    };

    std::vector<locble::Vec2> waypoints_;
    Config cfg_;
    std::vector<Phase> phases_;
    double duration_{0.0};
};

/// The paper's measurement walk (Sec. 5.1): start at `start`, walk
/// `leg1_m` along `initial_heading`, turn by `turn_rad` (default +90°),
/// walk `leg2_m`.
Trajectory make_l_shape(const locble::Vec2& start, double initial_heading, double leg1_m,
                        double leg2_m, double turn_rad, const Trajectory::Config& cfg = {});

/// A straight walk of `length_m` from `start` along `heading`.
Trajectory make_straight(const locble::Vec2& start, double heading, double length_m,
                         const Trajectory::Config& cfg = {});

/// Random waypoint walk inside the rectangle [0,w]x[0,h] with `legs` legs of
/// length in [min_leg, max_leg]; used for moving-target experiments.
Trajectory make_random_walk(double width, double height, int legs, double min_leg,
                            double max_leg, locble::Rng& rng,
                            const Trajectory::Config& cfg = {});

}  // namespace locble::imu
