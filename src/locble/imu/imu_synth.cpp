#include "locble/imu/imu_synth.hpp"

#include <cmath>
#include <numbers>

namespace locble::imu {

double GaitModel::frequency_for_speed(double speed) const {
    if (speed <= 0.0) return 0.0;
    // Solve b f^2 + a f - v = 0 for f > 0.
    const double a = length_intercept;
    const double b = length_slope;
    if (b <= 0.0) return speed / a;
    return (-a + std::sqrt(a * a + 4.0 * b * speed)) / (2.0 * b);
}

ImuTrace ImuSynthesizer::synthesize(const Trajectory& trajectory,
                                    locble::Rng& rng) const {
    ImuTrace out;
    const double dt = 1.0 / cfg_.sample_rate_hz;
    const double duration = trajectory.duration();

    locble::Rng accel_rng = rng.fork();
    locble::Rng gyro_rng = rng.fork();
    locble::Rng mag_rng = rng.fork();

    double gait_phase = 0.0;
    double mag_disturbance = mag_rng.gaussian(0.0, cfg_.mag_disturbance_rad);
    const double dist_rho = std::exp(-dt / cfg_.mag_disturbance_tau_s);
    const double dist_innov =
        cfg_.mag_disturbance_rad * std::sqrt(1.0 - dist_rho * dist_rho);

    double prev_heading = trajectory.pose_at(0.0).heading;
    for (double t = 0.0; t <= duration + 1e-9; t += dt) {
        const Pose pose = trajectory.pose_at(t);

        // --- accelerometer: gait oscillation while walking, noise otherwise
        double accel = accel_rng.gaussian(0.0, cfg_.accel_noise);
        if (pose.walking) {
            const double f = cfg_.gait.frequency_for_speed(pose.speed);
            gait_phase += 2.0 * std::numbers::pi * f * dt;
            out.true_steps += f * dt;
            accel += cfg_.accel_amplitude * std::sin(gait_phase) +
                     cfg_.accel_amplitude * cfg_.accel_harmonic_ratio *
                         std::sin(2.0 * gait_phase + 0.7);
        }
        out.accel_vertical.push_back({t, accel});

        // --- gyroscope: true yaw rate + noise
        const double yaw_rate = locble::angle_diff(pose.heading, prev_heading) / dt;
        prev_heading = pose.heading;
        out.gyro_z.push_back({t, yaw_rate + gyro_rng.gaussian(0.0, cfg_.gyro_noise)});

        // --- magnetometer: heading + slow disturbance + white noise
        mag_disturbance = dist_rho * mag_disturbance + mag_rng.gaussian(0.0, dist_innov);
        const double heading = locble::wrap_angle(
            pose.heading + mag_disturbance +
            mag_rng.gaussian(0.0, cfg_.mag_white_noise_rad));
        out.mag_heading.push_back({t, heading});
    }
    return out;
}

}  // namespace locble::imu
