#include "locble/imu/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace locble::imu {

Trajectory::Trajectory(std::vector<locble::Vec2> waypoints, const Config& cfg)
    : waypoints_(std::move(waypoints)), cfg_(cfg) {
    if (waypoints_.empty())
        throw std::invalid_argument("Trajectory: need at least one waypoint");

    double heading = 0.0;
    if (waypoints_.size() >= 2)
        heading = (waypoints_[1] - waypoints_[0]).angle();

    double t = 0.0;
    auto push = [&](Phase p) {
        phases_.push_back(p);
        t = p.t1;
    };

    push({Phase::Kind::pause, 0.0, cfg_.initial_pause, waypoints_.front(),
          waypoints_.front(), heading, heading});

    for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
        const locble::Vec2 from = waypoints_[i];
        const locble::Vec2 to = waypoints_[i + 1];
        const double leg_heading = (to - from).angle();
        // Rotate in place toward the next leg when the heading changes.
        const double delta = locble::angle_diff(leg_heading, heading);
        if (std::abs(delta) > 1e-6) {
            const double dur =
                std::max(std::abs(delta) / cfg_.turn_rate, cfg_.min_turn_duration);
            push({Phase::Kind::turn, t, t + dur, from, from, heading, leg_heading});
            heading = leg_heading;
        }
        const double leg_len = locble::Vec2::distance(from, to);
        if (leg_len > 1e-9) {
            const double dur = leg_len / cfg_.walk_speed;
            push({Phase::Kind::walk, t, t + dur, from, to, heading, heading});
        }
    }

    push({Phase::Kind::pause, t, t + cfg_.final_pause, waypoints_.back(),
          waypoints_.back(), heading, heading});
    duration_ = t + cfg_.final_pause;
}

Pose Trajectory::pose_at(double t) const {
    t = std::clamp(t, 0.0, duration_);
    const Phase* phase = &phases_.back();
    for (const auto& p : phases_) {
        if (t <= p.t1) {
            phase = &p;
            break;
        }
    }
    const double f =
        phase->t1 > phase->t0 ? (t - phase->t0) / (phase->t1 - phase->t0) : 1.0;
    Pose pose;
    switch (phase->kind) {
        case Phase::Kind::pause:
            pose.position = phase->from;
            pose.heading = phase->heading0;
            break;
        case Phase::Kind::turn: {
            pose.position = phase->from;
            const double delta = locble::angle_diff(phase->heading1, phase->heading0);
            pose.heading = locble::wrap_angle(phase->heading0 + delta * f);
            break;
        }
        case Phase::Kind::walk:
            pose.position = phase->from + (phase->to - phase->from) * f;
            pose.heading = phase->heading0;
            pose.walking = true;
            pose.speed = cfg_.walk_speed;
            break;
    }
    return pose;
}

double Trajectory::walked_distance() const {
    double d = 0.0;
    for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i)
        d += locble::Vec2::distance(waypoints_[i], waypoints_[i + 1]);
    return d;
}

std::vector<double> Trajectory::turn_angles() const {
    std::vector<double> out;
    for (std::size_t i = 1; i + 1 < waypoints_.size(); ++i) {
        const double h0 = (waypoints_[i] - waypoints_[i - 1]).angle();
        const double h1 = (waypoints_[i + 1] - waypoints_[i]).angle();
        out.push_back(locble::angle_diff(h1, h0));
    }
    return out;
}

Trajectory make_l_shape(const locble::Vec2& start, double initial_heading, double leg1_m,
                        double leg2_m, double turn_rad, const Trajectory::Config& cfg) {
    const locble::Vec2 mid = start + unit_from_angle(initial_heading) * leg1_m;
    const locble::Vec2 end =
        mid + unit_from_angle(initial_heading + turn_rad) * leg2_m;
    return Trajectory({start, mid, end}, cfg);
}

Trajectory make_straight(const locble::Vec2& start, double heading, double length_m,
                         const Trajectory::Config& cfg) {
    return Trajectory({start, start + unit_from_angle(heading) * length_m}, cfg);
}

Trajectory make_random_walk(double width, double height, int legs, double min_leg,
                            double max_leg, locble::Rng& rng,
                            const Trajectory::Config& cfg) {
    if (legs < 1) throw std::invalid_argument("make_random_walk: need >= 1 leg");
    std::vector<locble::Vec2> wps;
    locble::Vec2 p{rng.uniform(0.15 * width, 0.85 * width),
                   rng.uniform(0.15 * height, 0.85 * height)};
    wps.push_back(p);
    for (int i = 0; i < legs; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            const double heading = rng.uniform(-std::numbers::pi, std::numbers::pi);
            const double len = rng.uniform(min_leg, max_leg);
            const locble::Vec2 q = p + unit_from_angle(heading) * len;
            if (q.x >= 0.05 * width && q.x <= 0.95 * width && q.y >= 0.05 * height &&
                q.y <= 0.95 * height) {
                p = q;
                wps.push_back(p);
                break;
            }
        }
    }
    return Trajectory(std::move(wps), cfg);
}

}  // namespace locble::imu
