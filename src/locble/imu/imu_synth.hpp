#pragma once

#include "locble/common/rng.hpp"
#include "locble/common/timeseries.hpp"
#include "locble/imu/trajectory.hpp"

namespace locble::imu {

/// Gait model tying walking speed, step frequency and step length together.
///
/// The paper's step-length inference "inspects the step frequency"
/// (Sec. 5.2.1, citing [26]); the standard linear relation is
///   step_length = a + b * step_frequency
/// and speed = frequency * length. Both the synthesizer and the motion
/// tracker share this model so that the tracker's step-length estimate is
/// correct up to sensing noise.
struct GaitModel {
    double length_intercept{0.3};  ///< a (m)
    double length_slope{0.25};     ///< b (m per Hz)

    /// Step frequency that realizes `speed` under this model (positive root
    /// of b f^2 + a f - v = 0).
    double frequency_for_speed(double speed) const;
    double length_for_frequency(double f) const { return length_intercept + length_slope * f; }
};

/// One synthesized phone sensor capture, earth-aligned (the phone->earth
/// coordinate alignment of Sec. 5.2 is assumed already applied; its error
/// is folded into the noise terms).
struct ImuTrace {
    locble::TimeSeries accel_vertical;  ///< gait oscillation component (m/s^2)
    locble::TimeSeries gyro_z;          ///< yaw rate (rad/s)
    locble::TimeSeries mag_heading;     ///< magnetic heading (rad, wrapped)
    double true_steps{0.0};             ///< ground-truth (fractional) step count
};

/// Synthesizes accelerometer / gyroscope / magnetometer streams for a
/// trajectory.
class ImuSynthesizer {
public:
    struct Config {
        double sample_rate_hz{100.0};
        GaitModel gait{};
        double accel_amplitude{1.8};       ///< gait oscillation peak (m/s^2)
        double accel_harmonic_ratio{0.35}; ///< 2nd harmonic relative amplitude
        double accel_noise{0.25};          ///< white noise std (m/s^2)
        double gyro_noise{0.03};           ///< white noise std (rad/s)
        double mag_white_noise_rad{0.035}; ///< ~2 deg white heading noise
        double mag_disturbance_rad{0.09};  ///< ~5 deg slow indoor disturbance
        double mag_disturbance_tau_s{20.0};///< disturbance correlation time
    };

    ImuSynthesizer() : ImuSynthesizer(Config{}) {}
    explicit ImuSynthesizer(const Config& cfg) : cfg_(cfg) {}

    /// Generate the full sensor capture for `trajectory`.
    ImuTrace synthesize(const Trajectory& trajectory, locble::Rng& rng) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::imu
