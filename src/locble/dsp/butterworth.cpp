#include "locble/dsp/butterworth.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace locble::dsp {

namespace {

/// Bilinear transform of one analog second-order-section denominator
/// s^2 + a1 s + a0 with unity numerator gain a0 (low-pass pair), at
/// sampling constant K = 2 fs.
BiquadCoeffs bilinear_pair(double a1, double a0, double K) {
    const double d0 = K * K + a1 * K + a0;
    BiquadCoeffs c;
    c.b0 = a0 / d0;
    c.b1 = 2.0 * a0 / d0;
    c.b2 = a0 / d0;
    c.a1 = (2.0 * a0 - 2.0 * K * K) / d0;
    c.a2 = (K * K - a1 * K + a0) / d0;
    return c;
}

/// Bilinear transform of one real analog pole section (s + wc) with
/// numerator wc, expressed as a degenerate biquad.
BiquadCoeffs bilinear_single(double wc, double K) {
    const double d0 = K + wc;
    BiquadCoeffs c;
    c.b0 = wc / d0;
    c.b1 = wc / d0;
    c.b2 = 0.0;
    c.a1 = (wc - K) / d0;
    c.a2 = 0.0;
    return c;
}

}  // namespace

BiquadCascade design_butterworth_lowpass(int order, double cutoff_hz,
                                         double sample_rate_hz) {
    if (order < 1) throw std::invalid_argument("butterworth: order must be >= 1");
    if (!(cutoff_hz > 0.0) || !(cutoff_hz < sample_rate_hz / 2.0))
        throw std::invalid_argument("butterworth: cutoff must lie in (0, fs/2)");

    const double K = 2.0 * sample_rate_hz;
    // Pre-warped analog cutoff so the digital response hits -3 dB exactly at
    // cutoff_hz after the bilinear transform.
    const double wc = K * std::tan(std::numbers::pi * cutoff_hz / sample_rate_hz);

    std::vector<Biquad> sections;
    const int pairs = order / 2;
    for (int k = 0; k < pairs; ++k) {
        // Prototype pole angle for the k-th conjugate pair.
        const double theta =
            std::numbers::pi * (2.0 * k + 1.0) / (2.0 * order) + std::numbers::pi / 2.0;
        const double re = std::cos(theta);  // negative (left half-plane)
        // Pair contributes s^2 - 2 re wc s + wc^2.
        sections.emplace_back(bilinear_pair(-2.0 * re * wc, wc * wc, K));
    }
    if (order % 2 == 1) sections.emplace_back(bilinear_single(wc, K));
    return BiquadCascade(std::move(sections), 1.0);
}

std::vector<double> filter_signal(BiquadCascade filter,
                                  const std::vector<double>& input) {
    std::vector<double> out;
    out.reserve(input.size());
    if (!input.empty()) filter.prime(input.front());
    for (double x : input) out.push_back(filter.process(x));
    return out;
}

std::vector<double> filtfilt(const BiquadCascade& filter,
                             const std::vector<double>& input) {
    std::vector<double> fwd = filter_signal(filter, input);
    std::reverse(fwd.begin(), fwd.end());
    std::vector<double> bwd = filter_signal(filter, fwd);
    std::reverse(bwd.begin(), bwd.end());
    return bwd;
}

}  // namespace locble::dsp
