#include "locble/dsp/moving_average.hpp"

#include <algorithm>
#include <stdexcept>

namespace locble::dsp {

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
    if (window == 0) throw std::invalid_argument("MovingAverage: window must be > 0");
}

double MovingAverage::process(double x) {
    buf_.push_back(x);
    sum_ += x;
    if (buf_.size() > window_) {
        sum_ -= buf_.front();
        buf_.pop_front();
    }
    return sum_ / static_cast<double>(buf_.size());
}

void MovingAverage::reset() {
    buf_.clear();
    sum_ = 0.0;
}

std::vector<double> centered_moving_average(const std::vector<double>& input,
                                            std::size_t half_window) {
    std::vector<double> out(input.size());
    for (std::size_t i = 0; i < input.size(); ++i) {
        const std::size_t lo = i >= half_window ? i - half_window : 0;
        const std::size_t hi = std::min(i + half_window, input.size() - 1);
        double s = 0.0;
        for (std::size_t j = lo; j <= hi; ++j) s += input[j];
        out[i] = s / static_cast<double>(hi - lo + 1);
    }
    return out;
}

}  // namespace locble::dsp
