#pragma once

#include <vector>

#include "locble/common/timeseries.hpp"
#include "locble/dsp/butterworth.hpp"
#include "locble/dsp/kalman.hpp"

namespace locble::dsp {

/// Adaptive Noise Filter — LocBLE's RSS preprocessing stage (Sec. 4.2).
///
/// Raw RSS passes through a fine-tuned low-pass Butterworth filter (default:
/// 6th order) to remove fast fading, then an adaptive Kalman filter fuses
/// the raw and filtered streams to recover the responsiveness the high-order
/// Butterworth costs.
class Anf {
public:
    struct Config {
        int butterworth_order{6};
        double cutoff_hz{0.7};    ///< passes slow path-loss trends only
        double sample_rate_hz{10.0};
        AdaptiveKalman::Config akf{};
    };

    Anf() : Anf(Config{}) {}
    explicit Anf(const Config& cfg);

    /// Process one raw RSS sample; returns the denoised value.
    double process(double raw_rssi);

    /// Convenience: filter a whole series causally, preserving timestamps.
    locble::TimeSeries process(const locble::TimeSeries& raw);

    /// Offline variant for recorded measurements (Algo. 1 runs on complete
    /// batches): the Butterworth stage is applied forward-backward
    /// (zero-phase), then the adaptive Kalman fuses raw against the
    /// undelayed reference — so the output tracks the true level with no
    /// group delay to compensate. Does not disturb streaming state.
    locble::TimeSeries process_offline(const locble::TimeSeries& raw) const;

    /// The intermediate Butterworth-only output of the last process() call —
    /// exposed so the Fig. 4 bench can show BF vs BF+AKF.
    double last_bf_output() const { return last_bf_; }

    /// Effective group delay of the whole ANF chain in seconds, measured at
    /// construction by driving a copy with a ramp. The location pipeline
    /// pairs each denoised RSS value with the observer position this many
    /// seconds *earlier*, so filtering does not skew the motion/RSS fusion.
    double group_delay_s() const { return group_delay_s_; }

    void reset();
    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    BiquadCascade bf_;
    AdaptiveKalman akf_;
    bool primed_{false};
    double last_bf_{0.0};
    double group_delay_s_{0.0};
};

/// Offline ablation helper: Butterworth-only filtering of a series.
locble::TimeSeries butterworth_only(const locble::TimeSeries& raw,
                                    const Anf::Config& cfg = {});

}  // namespace locble::dsp
