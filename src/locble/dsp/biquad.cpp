#include "locble/dsp/biquad.hpp"

#include <vector>

namespace locble::dsp {

double Biquad::dc_gain() const {
    const double num = c_.b0 + c_.b1 + c_.b2;
    const double den = 1.0 + c_.a1 + c_.a2;
    return num / den;
}

void Biquad::prime(double x0) {
    // Steady state for constant input x0: y = x0 * dc_gain, and the DF2T
    // states follow directly from the update equations with x,y constant.
    const double y = x0 * dc_gain();
    s2_ = c_.b2 * x0 - c_.a2 * y;
    s1_ = c_.b1 * x0 - c_.a1 * y + s2_;
}

void BiquadCascade::prime(double x0) {
    double x = x0 * gain_;
    for (auto& s : sections_) {
        s.prime(x);
        x *= s.dc_gain();
    }
}

double BiquadCascade::dc_gain() const {
    double g = gain_;
    for (const auto& s : sections_) g *= s.dc_gain();
    return g;
}

}  // namespace locble::dsp
