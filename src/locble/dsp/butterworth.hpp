#pragma once

#include "locble/dsp/biquad.hpp"

namespace locble::dsp {

/// Design an N-th order Butterworth low-pass filter as a cascade of
/// second-order sections (plus one first-order section for odd N).
///
/// The design places the analog prototype poles on the unit circle,
/// pre-warps the cutoff, and maps sections through the bilinear transform —
/// the textbook procedure, so the magnitude response is maximally flat with
/// -3 dB at `cutoff_hz`.
///
/// LocBLE's ANF (Sec. 4.2) uses order 6 with a sub-hertz cutoff to strip
/// fast fading off 8-10 Hz RSS streams.
///
/// Throws std::invalid_argument when order < 1 or the cutoff is not inside
/// (0, sample_rate/2).
BiquadCascade design_butterworth_lowpass(int order, double cutoff_hz,
                                         double sample_rate_hz);

/// Zero-phase offline filtering (forward-backward application of `filter`),
/// useful when post-processing recorded traces; doubles the effective order
/// and cancels group delay.
std::vector<double> filtfilt(const BiquadCascade& filter,
                             const std::vector<double>& input);

/// Apply `filter` causally over `input`, priming it on the first sample so
/// there is no startup transient.
std::vector<double> filter_signal(BiquadCascade filter,
                                  const std::vector<double>& input);

}  // namespace locble::dsp
