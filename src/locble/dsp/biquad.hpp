#pragma once

#include <cstddef>
#include <vector>

namespace locble::dsp {

/// One second-order IIR section (Direct Form II transposed).
///
/// Coefficients are normalized so a0 == 1:
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
struct BiquadCoeffs {
    double b0{1.0}, b1{0.0}, b2{0.0};
    double a1{0.0}, a2{0.0};
};

/// Stateful biquad filter.
class Biquad {
public:
    Biquad() = default;
    explicit Biquad(const BiquadCoeffs& c) : c_(c) {}

    /// Process one sample.
    double process(double x) {
        const double y = c_.b0 * x + s1_;
        s1_ = c_.b1 * x - c_.a1 * y + s2_;
        s2_ = c_.b2 * x - c_.a2 * y;
        return y;
    }

    /// Clear internal state (zero input history).
    void reset() { s1_ = s2_ = 0.0; }

    /// Initialize internal state to the steady-state response for a constant
    /// input `x0`, so the filter starts without a startup transient. For a
    /// unity-DC-gain low-pass this makes the first output equal x0.
    void prime(double x0);

    /// DC gain of this section.
    double dc_gain() const;

    const BiquadCoeffs& coeffs() const { return c_; }

private:
    BiquadCoeffs c_{};
    double s1_{0.0};
    double s2_{0.0};
};

/// A cascade of biquad sections (+ overall gain), e.g. a designed
/// Butterworth filter factored into second-order sections.
class BiquadCascade {
public:
    BiquadCascade() = default;
    BiquadCascade(std::vector<Biquad> sections, double gain)
        : sections_(std::move(sections)), gain_(gain) {}

    double process(double x) {
        double y = x * gain_;
        for (auto& s : sections_) y = s.process(y);
        return y;
    }

    void reset() {
        for (auto& s : sections_) s.reset();
    }

    /// Prime every section for constant input `x0` (propagating each
    /// section's DC output to the next).
    void prime(double x0);

    double dc_gain() const;
    std::size_t order() const { return sections_.size() * 2; }
    const std::vector<Biquad>& sections() const { return sections_; }

private:
    std::vector<Biquad> sections_;
    double gain_{1.0};
};

}  // namespace locble::dsp
