#include "locble/dsp/kalman.hpp"

#include <algorithm>
#include <cmath>

namespace locble::dsp {

double AdaptiveKalman::update(double raw, double filtered) {
    if (!kf_.initialized()) {
        bias_ = 0.0;
        kf_.update_with_r(raw, cfg_.r_raw);
        return kf_.state();
    }

    // Track the signed innovation of raw samples against the current state.
    const double innovation = raw - kf_.state();
    bias_ = (1.0 - cfg_.bias_alpha) * bias_ + cfg_.bias_alpha * innovation;

    // A persistent one-sided bias means the level genuinely moved and the
    // Butterworth branch is lagging: loosen the state, distrust the lagging
    // filtered branch, and boost trust in raw measurements.
    const double noise_band = std::sqrt(cfg_.r_raw);
    const double severity = std::min(std::abs(bias_) / noise_band, 1.0);
    const double boost = cfg_.adapt_gain * severity * severity;
    const double r_raw_eff = cfg_.r_raw / (1.0 + 8.0 * boost);
    const double r_filtered_eff = cfg_.r_filtered * (1.0 + 16.0 * boost);

    kf_.add_process_noise(cfg_.q * 40.0 * boost);
    kf_.update_with_r(filtered, r_filtered_eff);
    kf_.update_with_r(raw, r_raw_eff);
    return kf_.state();
}

void AdaptiveKalman::reset() {
    kf_.reset();
    bias_ = 0.0;
}

}  // namespace locble::dsp
