#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace locble::dsp {

/// Causal moving-average filter over the last `window` samples.
/// LocBLE's step counter smooths accelerometer data with this before peak
/// voting (Sec. 5.2.1).
class MovingAverage {
public:
    explicit MovingAverage(std::size_t window);

    /// Push one sample; returns the mean of the samples seen so far,
    /// bounded by the window size.
    double process(double x);

    void reset();
    std::size_t window() const { return window_; }

private:
    std::size_t window_;
    std::deque<double> buf_;
    double sum_{0.0};
};

/// Offline centered moving average (half window each side, shrinking at the
/// edges). Preserves signal alignment, so peaks stay where they are.
std::vector<double> centered_moving_average(const std::vector<double>& input,
                                            std::size_t half_window);

}  // namespace locble::dsp
