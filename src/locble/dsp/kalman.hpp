#pragma once

namespace locble::dsp {

/// Scalar random-walk Kalman filter.
///
/// State model:  x[k] = x[k-1] + w,  w ~ N(0, Q)
/// Measurement:  z[k] = x[k]   + v,  v ~ N(0, R)
class ScalarKalman {
public:
    /// `q` process noise variance, `r` measurement noise variance,
    /// `initial_p` initial estimate variance.
    ScalarKalman(double q, double r, double initial_p = 1.0)
        : q_(q), r_(r), p_(initial_p) {}

    /// Predict + update with one measurement; returns the posterior state.
    double update(double z) {
        if (!initialized_) {
            x_ = z;
            initialized_ = true;
            return x_;
        }
        p_ += q_;
        const double k = p_ / (p_ + r_);
        x_ += k * (z - x_);
        p_ *= (1.0 - k);
        return x_;
    }

    /// Update against an explicit measurement variance (used by the adaptive
    /// filter to revalue a measurement on the fly).
    double update_with_r(double z, double r) {
        if (!initialized_) {
            x_ = z;
            initialized_ = true;
            return x_;
        }
        p_ += q_;
        const double k = p_ / (p_ + r);
        x_ += k * (z - x_);
        p_ *= (1.0 - k);
        return x_;
    }

    /// Add extra prediction variance before the next update (used by the
    /// adaptive filter to loosen the state when a level change is detected).
    void add_process_noise(double v) { p_ += v; }

    double state() const { return x_; }
    double covariance() const { return p_; }
    bool initialized() const { return initialized_; }
    void reset() {
        initialized_ = false;
        x_ = 0.0;
        p_ = 1.0;
    }

private:
    double q_;
    double r_;
    double x_{0.0};
    double p_{1.0};
    bool initialized_{false};
};

/// Adaptive Kalman filter (AKF) from LocBLE's ANF (Sec. 4.2).
///
/// The 6th-order Butterworth output is smooth but delayed; raw RSS is prompt
/// but noisy. The AKF runs a random-walk Kalman whose state is updated by
/// both signals per sample:
///   - the Butterworth output as a low-noise measurement, and
///   - the raw sample as a high-noise measurement whose variance is scaled
///     *down* when the innovation sequence indicates a genuine level change
///     (consistent-sign, large innovations), restoring responsiveness.
///
/// The adaptation follows the innovation-based scheme: an EWMA of the raw
/// innovation tracks bias; when |bias| grows beyond the expected noise
/// band, raw trust and process noise both increase proportionally.
class AdaptiveKalman {
public:
    struct Config {
        double q{0.02};           ///< base process noise (dB^2 per sample)
        double r_filtered{0.5};   ///< variance assigned to the BF output
        double r_raw{16.0};       ///< base variance assigned to raw samples
        double bias_alpha{0.25};  ///< EWMA factor for the innovation bias
        double adapt_gain{3.0};   ///< how strongly bias boosts responsiveness
    };

    AdaptiveKalman() : AdaptiveKalman(Config{}) {}
    explicit AdaptiveKalman(const Config& cfg) : cfg_(cfg), kf_(cfg.q, cfg.r_raw) {}

    /// Fuse one (raw, filtered) pair; returns the fused estimate.
    double update(double raw, double filtered);

    double state() const { return kf_.state(); }
    void reset();

private:
    Config cfg_;
    ScalarKalman kf_;
    double bias_{0.0};
};

}  // namespace locble::dsp
