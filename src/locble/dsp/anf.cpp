#include "locble/dsp/anf.hpp"

#include <algorithm>

#include "locble/obs/obs.hpp"

namespace locble::dsp {

Anf::Anf(const Config& cfg)
    : cfg_(cfg),
      bf_(design_butterworth_lowpass(cfg.butterworth_order, cfg.cutoff_hz,
                                     cfg.sample_rate_hz)),
      akf_(cfg.akf) {
    // Measure the chain's steady-state ramp lag: for a unit-slope input the
    // settled output equals input(t - tau_g).
    Anf probe(*this);
    constexpr int kSettle = 80;
    constexpr int kRamp = 300;
    double out = 0.0;
    for (int i = 0; i < kSettle; ++i) out = probe.process(0.0);
    double in = 0.0;
    for (int i = 1; i <= kRamp; ++i) {
        in = static_cast<double>(i);
        out = probe.process(in);
    }
    group_delay_s_ = std::max(0.0, (in - out) / cfg.sample_rate_hz);
}

double Anf::process(double raw_rssi) {
    if (!primed_) {
        bf_.prime(raw_rssi);
        primed_ = true;
    }
    last_bf_ = bf_.process(raw_rssi);
    return akf_.update(raw_rssi, last_bf_);
}

locble::TimeSeries Anf::process(const locble::TimeSeries& raw) {
    locble::TimeSeries out;
    out.reserve(raw.size());
    for (const auto& s : raw) out.push_back({s.t, process(s.value)});
    return out;
}

locble::TimeSeries Anf::process_offline(const locble::TimeSeries& raw) const {
    LOCBLE_SPAN("anf.process_offline");
    locble::TimeSeries out;
    if (raw.empty()) return out;
    LOCBLE_COUNT("anf.offline_passes", 1);
    LOCBLE_COUNT("anf.samples", raw.size());
    const auto bf = design_butterworth_lowpass(cfg_.butterworth_order, cfg_.cutoff_hz,
                                               cfg_.sample_rate_hz);
    const std::vector<double> smooth = filtfilt(bf, locble::values_of(raw));

    // Run the adaptive Kalman in both directions and average: each pass has
    // a small signal-dependent lag, equal and opposite, so the average is a
    // zero-lag smoother.
    const std::size_t n = raw.size();
    std::vector<double> fwd(n), bwd(n);
    AdaptiveKalman akf_f(cfg_.akf);
    for (std::size_t i = 0; i < n; ++i) fwd[i] = akf_f.update(raw[i].value, smooth[i]);
    AdaptiveKalman akf_b(cfg_.akf);
    for (std::size_t i = n; i-- > 0;) bwd[i] = akf_b.update(raw[i].value, smooth[i]);

    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({raw[i].t, 0.5 * (fwd[i] + bwd[i])});
    return out;
}

void Anf::reset() {
    bf_.reset();
    akf_.reset();
    primed_ = false;
    last_bf_ = 0.0;
}

locble::TimeSeries butterworth_only(const locble::TimeSeries& raw,
                                    const Anf::Config& cfg) {
    auto bf = design_butterworth_lowpass(cfg.butterworth_order, cfg.cutoff_hz,
                                         cfg.sample_rate_hz);
    locble::TimeSeries out;
    out.reserve(raw.size());
    bool primed = false;
    for (const auto& s : raw) {
        if (!primed) {
            bf.prime(s.value);
            primed = true;
        }
        out.push_back({s.t, bf.process(s.value)});
    }
    return out;
}

}  // namespace locble::dsp
