#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "locble/ble/pdu.hpp"
#include "locble/ble/scanner.hpp"
#include "locble/channel/fading.hpp"
#include "locble/channel/obstacles.hpp"
#include "locble/channel/pathloss.hpp"
#include "locble/common/rng.hpp"
#include "locble/common/vec2.hpp"

namespace locble::channel {

/// Physical description of one test site: bounds, obstacle geometry, and
/// ambient interference level. The nine Table-1 environments are instances
/// of this type (built in locble::sim).
struct SiteModel {
    std::string name{"site"};
    double width_m{10.0};
    double height_m{10.0};
    std::vector<Wall> walls;
    std::vector<DiskBlocker> blockers;
    /// Extra white RSSI noise std from coexisting WiFi/BLE traffic.
    double interference_noise_db{0.5};
    /// Frequency-selective spread across the 3 advertising channels.
    double channel_offset_spread_db{1.5};
    /// Multipath richness multiplier; >1 in cluttered sites (racks, metal)
    /// deepens fades by lowering the effective Rician K.
    double clutter_factor{1.0};
    /// Site-level multiplier on the per-class shadowing sigma: open outdoor
    /// spaces shadow far less than cluttered interiors.
    double shadowing_scale{1.0};
    /// Expected number of passers-by crossing the area during a ~10 s
    /// measurement. Each becomes a short-lived light blocker; co-located
    /// beacons dip together when one crosses their shared path — the common
    /// structure Sec. 6.1's DTW clustering keys on.
    double ambient_crossings{3.0};
};

/// Stateful simulator for one beacon -> one receiver radio link inside a
/// site. Owns the correlated shadowing/fading processes so consecutive
/// queries along a walk produce a realistic, temporally coherent RSS trace.
class LinkSimulator {
public:
    /// `gamma_dbm` is the link's LOS RSSI at 1 m before receiver effects
    /// (derived from the advertiser's radiated power). `shadowing` is the
    /// site's shared shadowing field — all links of a capture must use the
    /// same field so that co-located beacons shadow together; pass nullptr
    /// to give this link a private field (single-link experiments).
    LinkSimulator(const SiteModel& site, double gamma_dbm,
                  std::shared_ptr<const ShadowingField> shadowing, locble::Rng rng);
    LinkSimulator(const SiteModel& site, double gamma_dbm, locble::Rng rng)
        : LinkSimulator(site, gamma_dbm, nullptr, rng) {}

    /// RSSI (pre-receiver) for a transmission at time `t` on `channel` with
    /// the beacon at `tx` and the phone at `rx`.
    double rssi(const locble::Vec2& tx, const locble::Vec2& rx, double t,
                ble::AdvChannel channel);

    /// Propagation class of the most recent rssi() query.
    PropagationClass last_class() const { return last_class_; }

    const SiteModel& site() const { return site_; }

private:
    const SiteModel& site_;
    double gamma_dbm_;
    locble::Rng rng_;
    std::shared_ptr<const ShadowingField> shadowing_;
    std::vector<FadingProcess> fading_;  ///< one per advertising channel
    std::array<double, 3> channel_offsets_{};
    locble::Vec2 last_rx_{};
    locble::Vec2 last_tx_{};
    bool has_last_{false};
    PropagationClass last_class_{PropagationClass::los};
};

/// Apply receiver-side effects (chipset offset, measurement noise, RSSI
/// quantization) to a pre-receiver RSSI value (Sec. 2.4).
double apply_receiver(double rssi, const ble::ReceiverProfile& rx, locble::Rng& rng);

/// Generate a synthetic RSS sample for a *parametric* propagation class at
/// distance `d` — used to build labeled training data for EnvAware without
/// site geometry. `fading` and `shadowing` must be processes configured for
/// the class.
double rssi_from_class(const LogDistanceModel& base, double d,
                       const PropagationParams& params, FadingProcess& fading,
                       ShadowingProcess& shadowing, double moved_m);

}  // namespace locble::channel
