#pragma once

#include <string>
#include <vector>

#include "locble/channel/pathloss.hpp"
#include "locble/common/vec2.hpp"

namespace locble::channel {

/// How strongly an obstacle degrades a path crossing it. The paper's
/// taxonomy (Sec. 4.1): "light" blockage (glass, wooden door, human body)
/// yields p-LOS, "heavy" blockage (concrete, cinder, metal) yields NLOS.
enum class BlockageClass { light, heavy };

/// A wall: a line segment with a blockage class and insertion loss.
struct Wall {
    locble::Vec2 a;
    locble::Vec2 b;
    BlockageClass blockage{BlockageClass::heavy};
    double attenuation_db{10.0};
    std::string label;
};

/// A disk blocker (rack, pillar, human) that may exist only during a time
/// window — this models "people randomly come in between during the
/// observer's movement" in the Fig. 5 experiment.
struct DiskBlocker {
    locble::Vec2 center;
    double radius{0.3};
    BlockageClass blockage{BlockageClass::light};
    double attenuation_db{3.0};
    double t_start{0.0};
    double t_end{1e18};  ///< effectively "always present"
    std::string label;

    bool active_at(double t) const { return t >= t_start && t <= t_end; }
};

/// Does segment pq intersect segment ab (inclusive of touching)?
bool segments_intersect(const locble::Vec2& p, const locble::Vec2& q,
                        const locble::Vec2& a, const locble::Vec2& b);

/// Does segment pq pass through the disk (center, radius)?
bool segment_hits_disk(const locble::Vec2& p, const locble::Vec2& q,
                       const locble::Vec2& center, double radius);

/// What a path between two points encounters.
struct PathBlockage {
    PropagationClass propagation{PropagationClass::los};
    double total_attenuation_db{0.0};
    int light_crossings{0};
    int heavy_crossings{0};
};

/// Classify the straight path from `from` to `to` at time `t` against the
/// given obstacles: any heavy crossing makes NLOS, otherwise any light
/// crossing makes p-LOS, otherwise LOS. Attenuations accumulate.
PathBlockage classify_path(const locble::Vec2& from, const locble::Vec2& to, double t,
                           const std::vector<Wall>& walls,
                           const std::vector<DiskBlocker>& blockers);

}  // namespace locble::channel
