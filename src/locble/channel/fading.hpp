#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "locble/channel/pathloss.hpp"
#include "locble/common/vec2.hpp"
#include "locble/common/rng.hpp"

namespace locble::channel {

/// Spatially correlated Rician/Rayleigh fast fading for one radio link on
/// one advertising channel.
///
/// The scattered component is a complex Gaussian whose in-phase and
/// quadrature parts evolve as an AR(1) process over *distance moved*, so a
/// stationary observer sees a nearly static fade while a walking observer
/// decorrelates within half a wavelength — exactly the "low channel
/// coherence time due to user movements" ANF must smooth (Sec. 4.3).
class FadingProcess {
public:
    /// `k_db`: Rician K factor (ratio of specular to scattered power);
    /// values below about -30 dB behave as pure Rayleigh.
    FadingProcess(double k_db, double coherence_distance_m, locble::Rng rng);

    /// Advance by `moved_m` metres of relative motion and return the fading
    /// gain in dB (0 dB = no fade).
    double step(double moved_m);

    /// Change the K factor (e.g. the link transitioned LOS -> NLOS).
    void set_k_db(double k_db) { k_db_ = k_db; }
    double k_db() const { return k_db_; }

private:
    double k_db_;
    double coherence_m_;
    locble::Rng rng_;
    double in_phase_{0.0};
    double quadrature_{0.0};
    bool initialized_{false};
};

/// Lognormal shadowing, AR(1)-correlated over distance moved with the
/// configured decorrelation distance (Gudmundson model).
class ShadowingProcess {
public:
    ShadowingProcess(double sigma_db, double decorrelation_m, locble::Rng rng);

    /// Advance by `moved_m` metres and return the shadowing term in dB.
    double step(double moved_m);

    void set_sigma_db(double sigma_db) { sigma_db_ = sigma_db; }
    double sigma_db() const { return sigma_db_; }

private:
    double sigma_db_;
    double decorrelation_m_;
    locble::Rng rng_;
    double value_{0.0};
    bool initialized_{false};
};

/// A smooth, zero-mean, unit-variance Gaussian random field over the site
/// plane (sum-of-random-cosines construction) with the given correlation
/// length. Shadowing is modelled as sigma * (f(tx) + f(rx)) / sqrt(2): it is
/// a property of *where* the endpoints are, so two co-located beacons see
/// nearly identical shadowing toward the same phone — the shared large-scale
/// structure LocBLE's DTW clustering keys on (Sec. 6.1).
class ShadowingField {
public:
    ShadowingField(double correlation_length_m, locble::Rng rng,
                   std::size_t num_waves = 64);

    /// Field value at a position (unit variance across space).
    double at(const locble::Vec2& p) const;

    /// Shadowing in dB for a link between `tx` and `rx`.
    double link_shadow_db(const locble::Vec2& tx, const locble::Vec2& rx,
                          double sigma_db) const;

private:
    struct Wave {
        double kx{0.0};
        double ky{0.0};
        double phase{0.0};
    };
    std::vector<Wave> waves_;
    double amplitude_{0.0};
};

/// Static per-(link, channel) gain offsets modelling frequency-selective
/// fading across the three widely spaced advertising channels
/// (2402/2426/2480 MHz): each channel of a link sees a different standing-
/// wave pattern, so a fixed draw per channel captures the inter-channel
/// RSSI spread (Sec. 2.2).
std::array<double, 3> draw_channel_offsets(double spread_db, locble::Rng& rng);

}  // namespace locble::channel
