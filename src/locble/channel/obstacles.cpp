#include "locble/channel/obstacles.hpp"

#include <algorithm>
#include <cmath>

namespace locble::channel {

namespace {

int orientation(const locble::Vec2& a, const locble::Vec2& b, const locble::Vec2& c) {
    const double v = (b - a).cross(c - a);
    constexpr double kEps = 1e-12;
    if (v > kEps) return 1;
    if (v < -kEps) return -1;
    return 0;
}

bool on_segment(const locble::Vec2& a, const locble::Vec2& b, const locble::Vec2& p) {
    return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
           std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}

}  // namespace

bool segments_intersect(const locble::Vec2& p, const locble::Vec2& q,
                        const locble::Vec2& a, const locble::Vec2& b) {
    const int o1 = orientation(p, q, a);
    const int o2 = orientation(p, q, b);
    const int o3 = orientation(a, b, p);
    const int o4 = orientation(a, b, q);
    if (o1 != o2 && o3 != o4) return true;
    if (o1 == 0 && on_segment(p, q, a)) return true;
    if (o2 == 0 && on_segment(p, q, b)) return true;
    if (o3 == 0 && on_segment(a, b, p)) return true;
    if (o4 == 0 && on_segment(a, b, q)) return true;
    return false;
}

bool segment_hits_disk(const locble::Vec2& p, const locble::Vec2& q,
                       const locble::Vec2& center, double radius) {
    const locble::Vec2 d = q - p;
    const double len2 = d.norm2();
    double t = 0.0;
    if (len2 > 0.0) t = std::clamp((center - p).dot(d) / len2, 0.0, 1.0);
    const locble::Vec2 closest = p + d * t;
    return locble::Vec2::distance(closest, center) <= radius;
}

PathBlockage classify_path(const locble::Vec2& from, const locble::Vec2& to, double t,
                           const std::vector<Wall>& walls,
                           const std::vector<DiskBlocker>& blockers) {
    PathBlockage out;
    for (const auto& w : walls) {
        if (!segments_intersect(from, to, w.a, w.b)) continue;
        out.total_attenuation_db += w.attenuation_db;
        if (w.blockage == BlockageClass::heavy)
            out.heavy_crossings++;
        else
            out.light_crossings++;
    }
    for (const auto& d : blockers) {
        if (!d.active_at(t)) continue;
        if (!segment_hits_disk(from, to, d.center, d.radius)) continue;
        out.total_attenuation_db += d.attenuation_db;
        if (d.blockage == BlockageClass::heavy)
            out.heavy_crossings++;
        else
            out.light_crossings++;
    }
    if (out.heavy_crossings > 0)
        out.propagation = PropagationClass::nlos;
    else if (out.light_crossings > 0)
        out.propagation = PropagationClass::plos;
    else
        out.propagation = PropagationClass::los;
    return out;
}

}  // namespace locble::channel
