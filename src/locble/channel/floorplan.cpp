#include "locble/channel/floorplan.hpp"

#include <cmath>
#include <stdexcept>

namespace locble::channel {

namespace {

/// Append the wall from `a` to `b`, split by a door at [offset,
/// offset+width) along it when offset >= 0.
void emit_side(std::vector<Wall>& out, const locble::Vec2& a, const locble::Vec2& b,
               double door_offset, double door_width, const RoomSpec& spec) {
    const double len = locble::Vec2::distance(a, b);
    const locble::Vec2 dir = (b - a) / len;
    const auto wall = [&](const locble::Vec2& from, const locble::Vec2& to) {
        if (locble::Vec2::distance(from, to) < 1e-9) return;
        out.push_back({from, to, spec.blockage, spec.attenuation_db, spec.label});
    };
    if (door_offset < 0.0) {
        wall(a, b);
        return;
    }
    if (door_offset + door_width > len + 1e-9)
        throw std::invalid_argument("make_room: door wider than its wall");
    wall(a, a + dir * door_offset);
    wall(a + dir * (door_offset + door_width), b);
}

}  // namespace

std::vector<Wall> make_room(const RoomSpec& spec) {
    if (spec.width <= 0.0 || spec.height <= 0.0)
        throw std::invalid_argument("make_room: non-positive dimensions");
    const locble::Vec2 o = spec.origin;
    const locble::Vec2 br{o.x + spec.width, o.y};
    const locble::Vec2 tr{o.x + spec.width, o.y + spec.height};
    const locble::Vec2 tl{o.x, o.y + spec.height};

    std::vector<Wall> out;
    emit_side(out, o, br, spec.door_offset[0], spec.door_width, spec);   // bottom
    emit_side(out, br, tr, spec.door_offset[1], spec.door_width, spec);  // right
    emit_side(out, tr, tl, spec.door_offset[2], spec.door_width, spec);  // top
    emit_side(out, tl, o, spec.door_offset[3], spec.door_width, spec);   // left
    return out;
}

std::vector<Wall> make_shelf_row(const locble::Vec2& start, const locble::Vec2& end,
                                 int segments, double gap_fraction,
                                 double attenuation_db, const std::string& label) {
    if (segments < 1) throw std::invalid_argument("make_shelf_row: need >= 1 segment");
    if (gap_fraction < 0.0 || gap_fraction >= 1.0)
        throw std::invalid_argument("make_shelf_row: gap fraction outside [0,1)");
    const locble::Vec2 span = end - start;
    std::vector<Wall> out;
    const double pitch = 1.0 / segments;
    const double shelf = pitch * (1.0 - gap_fraction);
    for (int i = 0; i < segments; ++i) {
        const double t0 = i * pitch;
        out.push_back({start + span * t0, start + span * (t0 + shelf),
                       BlockageClass::heavy, attenuation_db,
                       label + " #" + std::to_string(i + 1)});
    }
    return out;
}

std::vector<DiskBlocker> scatter_furniture(double width, double height, int count,
                                           double margin, locble::Rng& rng) {
    if (count < 0) throw std::invalid_argument("scatter_furniture: negative count");
    std::vector<DiskBlocker> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        DiskBlocker d;
        d.center = {rng.uniform(margin, width - margin),
                    rng.uniform(margin, height - margin)};
        d.radius = rng.uniform(0.25, 0.6);
        d.blockage = BlockageClass::light;
        d.attenuation_db = rng.uniform(1.5, 3.5);
        d.label = "furniture #" + std::to_string(i + 1);
        out.push_back(d);
    }
    return out;
}

}  // namespace locble::channel
