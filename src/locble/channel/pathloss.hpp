#pragma once

namespace locble::channel {

/// Log-distance path-loss model — the paper's Eq. (1):
///
///   RS = Gamma(e) - 10 n(e) log10(d)
///
/// `gamma_dbm` is the expected RSSI at 1 m (it folds transmit power, antenna
/// gains and the hardware power offset P together), `exponent` is the
/// environment-dependent fading coefficient n(e).
struct LogDistanceModel {
    double gamma_dbm{-59.0};
    double exponent{2.0};

    /// Expected RSSI at distance `d` metres (d clamped to >= 0.1 to avoid
    /// the near-field singularity).
    double rssi_at(double d) const;

    /// Distance that produces `rssi` under this model.
    double distance_for(double rssi) const;
};

/// The three propagation classes EnvAware distinguishes (Sec. 4.1).
enum class PropagationClass { los = 0, plos = 1, nlos = 2 };

const char* to_string(PropagationClass c);

/// Channel statistics for one propagation class. Values follow the standard
/// indoor ranges (Rappaport) and are tuned so LocBLE's published accuracy
/// bands are reachable: LOS is near-free-space Rician, NLOS is lossy
/// Rayleigh through heavy blockage.
struct PropagationParams {
    double exponent{2.0};        ///< path-loss exponent n(e)
    double extra_attenuation_db{0.0};  ///< blockage insertion loss
    double shadowing_sigma_db{1.5};    ///< lognormal shadowing std
    double rician_k_db{8.0};     ///< fast-fading K factor (-inf => Rayleigh)
    double coherence_distance_m{0.06};  ///< ~lambda/2 at 2.4 GHz
    double shadowing_decorrelation_m{2.0};
};

/// Default parameters per class.
PropagationParams params_for(PropagationClass c);

}  // namespace locble::channel
