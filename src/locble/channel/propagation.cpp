#include "locble/channel/propagation.hpp"

#include <cmath>

namespace locble::channel {

namespace {

std::size_t channel_index(ble::AdvChannel ch) {
    switch (ch) {
        case ble::AdvChannel::ch37: return 0;
        case ble::AdvChannel::ch38: return 1;
        case ble::AdvChannel::ch39: return 2;
    }
    return 0;
}

}  // namespace

LinkSimulator::LinkSimulator(const SiteModel& site, double gamma_dbm,
                             std::shared_ptr<const ShadowingField> shadowing,
                             locble::Rng rng)
    : site_(site), gamma_dbm_(gamma_dbm), rng_(rng), shadowing_(std::move(shadowing)) {
    if (!shadowing_) {
        shadowing_ = std::make_shared<ShadowingField>(
            params_for(PropagationClass::los).shadowing_decorrelation_m, rng_.fork());
    }
    for (std::size_t c = 0; c < 3; ++c)
        fading_.emplace_back(params_for(PropagationClass::los).rician_k_db,
                             params_for(PropagationClass::los).coherence_distance_m,
                             rng_.fork());
    channel_offsets_ = draw_channel_offsets(site.channel_offset_spread_db, rng_);
}

double LinkSimulator::rssi(const locble::Vec2& tx, const locble::Vec2& rx, double t,
                           ble::AdvChannel channel) {
    const PathBlockage blockage = classify_path(rx, tx, t, site_.walls, site_.blockers);
    last_class_ = blockage.propagation;
    const PropagationParams params = params_for(blockage.propagation);

    // Relative displacement drives the spatial correlation of both fading
    // and shadowing (either endpoint moving decorrelates the link).
    double moved = 0.0;
    if (has_last_) moved = (rx - last_rx_).norm() + (tx - last_tx_).norm();
    last_rx_ = rx;
    last_tx_ = tx;
    has_last_ = true;

    auto& fade = fading_[channel_index(channel)];
    // Cluttered sites see deeper fades: reduce the effective K factor.
    fade.set_k_db(params.rician_k_db - 10.0 * std::log10(site_.clutter_factor));

    const double d = locble::Vec2::distance(tx, rx);
    const LogDistanceModel model{gamma_dbm_, params.exponent};
    double rssi = model.rssi_at(d);
    rssi -= blockage.total_attenuation_db;
    rssi += shadowing_->link_shadow_db(tx, rx,
                                       params.shadowing_sigma_db * site_.shadowing_scale);
    rssi += fade.step(moved);
    rssi += channel_offsets_[channel_index(channel)];
    if (site_.interference_noise_db > 0.0)
        rssi += rng_.gaussian(0.0, site_.interference_noise_db);
    return rssi;
}

double apply_receiver(double rssi, const ble::ReceiverProfile& rx, locble::Rng& rng) {
    double v = rssi + rx.rssi_offset_db;
    if (rx.rssi_noise_db > 0.0) v += rng.gaussian(0.0, rx.rssi_noise_db);
    if (rx.quantization_db > 0.0)
        v = std::round(v / rx.quantization_db) * rx.quantization_db;
    return v;
}

double rssi_from_class(const LogDistanceModel& base, double d,
                       const PropagationParams& params, FadingProcess& fading,
                       ShadowingProcess& shadowing, double moved_m) {
    const LogDistanceModel model{base.gamma_dbm, params.exponent};
    double rssi = model.rssi_at(d);
    rssi -= params.extra_attenuation_db;
    rssi += shadowing.step(moved_m);
    rssi += fading.step(moved_m);
    return rssi;
}

}  // namespace locble::channel
