#include "locble/channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

namespace locble::channel {

double LogDistanceModel::rssi_at(double d) const {
    return gamma_dbm - 10.0 * exponent * std::log10(std::max(d, 0.1));
}

double LogDistanceModel::distance_for(double rssi) const {
    return std::pow(10.0, (gamma_dbm - rssi) / (10.0 * exponent));
}

const char* to_string(PropagationClass c) {
    switch (c) {
        case PropagationClass::los: return "LOS";
        case PropagationClass::plos: return "p-LOS";
        case PropagationClass::nlos: return "NLOS";
    }
    return "?";
}

PropagationParams params_for(PropagationClass c) {
    PropagationParams p;
    switch (c) {
        case PropagationClass::los:
            p.exponent = 2.0;
            p.extra_attenuation_db = 0.0;
            p.shadowing_sigma_db = 1.3;
            p.rician_k_db = 9.0;
            break;
        case PropagationClass::plos:
            p.exponent = 2.6;
            p.extra_attenuation_db = 5.0;
            p.shadowing_sigma_db = 2.2;
            p.rician_k_db = 3.0;
            break;
        case PropagationClass::nlos:
            p.exponent = 3.3;
            p.extra_attenuation_db = 13.0;
            p.shadowing_sigma_db = 3.2;
            p.rician_k_db = -100.0;  // effectively Rayleigh
            break;
    }
    return p;
}

}  // namespace locble::channel
