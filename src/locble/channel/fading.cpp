#include "locble/channel/fading.hpp"

#include <cmath>
#include <numbers>

#include "locble/common/units.hpp"

namespace locble::channel {

FadingProcess::FadingProcess(double k_db, double coherence_distance_m, locble::Rng rng)
    : k_db_(k_db), coherence_m_(coherence_distance_m), rng_(rng) {}

double FadingProcess::step(double moved_m) {
    // Scattered power sigma^2 per quadrature such that E[|scatter|^2] = 1.
    constexpr double kQuadratureSigma = 0.7071067811865476;  // 1/sqrt(2)
    if (!initialized_) {
        in_phase_ = rng_.gaussian(0.0, kQuadratureSigma);
        quadrature_ = rng_.gaussian(0.0, kQuadratureSigma);
        initialized_ = true;
    } else {
        const double rho = std::exp(-std::abs(moved_m) / coherence_m_);
        const double innov = kQuadratureSigma * std::sqrt(1.0 - rho * rho);
        in_phase_ = rho * in_phase_ + rng_.gaussian(0.0, innov);
        quadrature_ = rho * quadrature_ + rng_.gaussian(0.0, innov);
    }

    const double k = locble::db_to_ratio(k_db_);
    // Normalize total mean power to 1: specular amplitude and scatter scale.
    const double specular = std::sqrt(k / (k + 1.0));
    const double scatter_scale = std::sqrt(1.0 / (k + 1.0));
    const double re = specular + scatter_scale * in_phase_;
    const double im = scatter_scale * quadrature_;
    const double power = re * re + im * im;
    constexpr double kFloor = 1e-6;  // -60 dB deep-fade floor
    return locble::ratio_to_db(std::max(power, kFloor));
}

ShadowingProcess::ShadowingProcess(double sigma_db, double decorrelation_m,
                                   locble::Rng rng)
    : sigma_db_(sigma_db), decorrelation_m_(decorrelation_m), rng_(rng) {}

double ShadowingProcess::step(double moved_m) {
    if (!initialized_) {
        value_ = rng_.gaussian(0.0, 1.0);
        initialized_ = true;
        return value_ * sigma_db_;
    }
    const double rho = std::exp(-std::abs(moved_m) / decorrelation_m_);
    value_ = rho * value_ + rng_.gaussian(0.0, std::sqrt(1.0 - rho * rho));
    return value_ * sigma_db_;
}

ShadowingField::ShadowingField(double correlation_length_m, locble::Rng rng,
                               std::size_t num_waves) {
    waves_.reserve(num_waves);
    // Rayleigh-distributed wavenumbers give an approximately Gaussian
    // spatial autocorrelation with the requested correlation length.
    const double k_scale = 1.0 / std::max(correlation_length_m, 1e-3);
    for (std::size_t i = 0; i < num_waves; ++i) {
        const double k = rng.rayleigh(k_scale);
        const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
        waves_.push_back({k * std::cos(theta), k * std::sin(theta),
                          rng.uniform(0.0, 2.0 * std::numbers::pi)});
    }
    amplitude_ = std::sqrt(2.0 / static_cast<double>(num_waves));
}

double ShadowingField::at(const locble::Vec2& p) const {
    double s = 0.0;
    for (const auto& w : waves_) s += std::cos(w.kx * p.x + w.ky * p.y + w.phase);
    return amplitude_ * s;
}

double ShadowingField::link_shadow_db(const locble::Vec2& tx, const locble::Vec2& rx,
                                      double sigma_db) const {
    // Evaluate at the path midpoint: shadowing is dominated by the clutter
    // the path crosses. Co-located transmitters to the same receiver share
    // midpoints (correlated shadow, what DTW clustering keys on) while
    // well-separated transmitters decorrelate with half their separation.
    return sigma_db * at((tx + rx) * 0.5);
}

std::array<double, 3> draw_channel_offsets(double spread_db, locble::Rng& rng) {
    std::array<double, 3> out{};
    double sum = 0.0;
    for (auto& v : out) {
        v = rng.gaussian(0.0, spread_db);
        sum += v;
    }
    // Zero-mean across channels so the offsets redistribute rather than
    // shift total received power.
    for (auto& v : out) v -= sum / 3.0;
    return out;
}

}  // namespace locble::channel
