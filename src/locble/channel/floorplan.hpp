#pragma once

#include <string>
#include <vector>

#include "locble/channel/obstacles.hpp"
#include "locble/channel/propagation.hpp"

namespace locble::channel {

/// Helpers for assembling SiteModel geometry from floor-plan primitives —
/// rooms with doorways, shelf rows, furniture groups. Used to build the
/// Table-1 scenario layouts and custom sites for new experiments.

/// Four walls of an axis-aligned room with optional door gaps. A gap is
/// specified per wall side as [offset, offset+width) along that wall; pass
/// a negative offset for a solid wall.
struct RoomSpec {
    locble::Vec2 origin;       ///< lower-left corner
    double width{4.0};
    double height{4.0};
    BlockageClass blockage{BlockageClass::heavy};
    double attenuation_db{9.0};
    std::string label{"room"};
    /// Door gap on each side (bottom, right, top, left); negative = none.
    double door_offset[4]{-1.0, -1.0, -1.0, -1.0};
    double door_width{0.9};
};

/// Emit the wall segments of `room` (2 segments per side with a door, 1
/// otherwise). Throws std::invalid_argument for non-positive dimensions or
/// a door wider than its wall.
std::vector<Wall> make_room(const RoomSpec& spec);

/// A row of shelf/rack segments along a line, with aisle gaps between
/// segments (retail layouts, the Store scenario's generalization).
std::vector<Wall> make_shelf_row(const locble::Vec2& start, const locble::Vec2& end,
                                 int segments, double gap_fraction,
                                 double attenuation_db, const std::string& label);

/// Scatter `count` light furniture disks uniformly inside the rectangle,
/// keeping `margin` clear of the edges. Deterministic for an Rng state.
std::vector<DiskBlocker> scatter_furniture(double width, double height, int count,
                                           double margin, locble::Rng& rng);

}  // namespace locble::channel
