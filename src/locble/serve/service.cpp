#include "locble/serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "locble/obs/obs.hpp"

namespace locble::serve {

namespace {

/// Round-trip-exact double formatting for the canonical snapshot text.
std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/// This epoch's increment of the merged stats: exact u64 subtraction of
/// consecutive barrier views (both monotone, so never underflows).
IngestStats stats_delta(const IngestStats& now, const IngestStats& prev) {
    IngestStats d;
    d.submitted = now.submitted - prev.submitted;
    d.accepted = now.accepted - prev.accepted;
    d.dropped = now.dropped - prev.dropped;
    d.rejected = now.rejected - prev.rejected;
    d.late = now.late - prev.late;
    d.epochs = now.epochs - prev.epochs;
    d.clients_created = now.clients_created - prev.clients_created;
    d.clients_evicted = now.clients_evicted - prev.clients_evicted;
    d.sessions_created = now.sessions_created - prev.sessions_created;
    d.sessions_evicted = now.sessions_evicted - prev.sessions_evicted;
    d.sessions_reset = now.sessions_reset - prev.sessions_reset;
    d.batches_flushed = now.batches_flushed - prev.batches_flushed;
    d.solves = now.solves - prev.solves;
    d.cluster_runs = now.cluster_runs - prev.cluster_runs;
    return d;
}

/// Nearest-rank percentile of an unsorted sample (sorted in place). Only
/// used for the ND wall-clock fields — event-time quantiles go through the
/// deterministic sketch.
double nearest_rank(std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto n = static_cast<double>(v.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    if (rank == 0) rank = 1;
    if (rank > v.size()) rank = v.size();
    return v[rank - 1];
}

BeaconEstimate make_estimate(ClientId client, BeaconId beacon,
                             const TrackingSession& session) {
    BeaconEstimate e;
    e.client = client;
    e.beacon = beacon;
    e.has_fit = session.has_fit();
    if (e.has_fit) e.fit = session.fit();
    e.samples_used = session.samples_used();
    e.samples_seen = session.samples_seen();
    e.regression_restarts = session.regression_restarts();
    e.resets = session.resets();
    e.last_event_t = session.last_event_t();
    e.has_cluster = session.has_cluster();
    if (e.has_cluster) e.cluster = session.cluster();
    return e;
}

}  // namespace

std::string canonical_text(const ServiceSnapshot& snap) {
    std::string out;
    out.reserve(128 + snap.estimates.size() * 256);
    out += "snapshot epoch=" + std::to_string(snap.epoch) +
           " horizon=" + fmt(snap.horizon) +
           " estimates=" + std::to_string(snap.estimates.size()) +
           " live=" + std::to_string(snap.sessions_live) +
           " delta=" + (snap.incremental ? std::string("1") : std::string("0")) +
           "\n";
    const IngestStats& s = snap.stats;
    out += "stats submitted=" + std::to_string(s.submitted) +
           " accepted=" + std::to_string(s.accepted) +
           " dropped=" + std::to_string(s.dropped) +
           " rejected=" + std::to_string(s.rejected) +
           " late=" + std::to_string(s.late) +
           " epochs=" + std::to_string(s.epochs) +
           " clients_created=" + std::to_string(s.clients_created) +
           " clients_evicted=" + std::to_string(s.clients_evicted) +
           " sessions_created=" + std::to_string(s.sessions_created) +
           " sessions_evicted=" + std::to_string(s.sessions_evicted) +
           " sessions_reset=" + std::to_string(s.sessions_reset) +
           " batches_flushed=" + std::to_string(s.batches_flushed) +
           " solves=" + std::to_string(s.solves) +
           " cluster_runs=" + std::to_string(s.cluster_runs) + "\n";
    for (const BeaconEstimate& e : snap.estimates) {
        out += "client=" + std::to_string(e.client) +
               " beacon=" + std::to_string(e.beacon) +
               " fit=" + (e.has_fit ? std::string("1") : std::string("0"));
        if (e.has_fit) {
            out += " x=" + fmt(e.fit.location.x) + " y=" + fmt(e.fit.location.y) +
                   " n=" + fmt(e.fit.exponent) + " gamma=" + fmt(e.fit.gamma_dbm) +
                   " resid=" + fmt(e.fit.residual_db) +
                   " conf=" + fmt(e.fit.confidence) +
                   " ambiguous=" + (e.fit.ambiguous ? std::string("1")
                                                    : std::string("0")) +
                   " gammas=[";
            for (std::size_t i = 0; i < e.fit.segment_gammas.size(); ++i) {
                if (i > 0) out += ",";
                out += fmt(e.fit.segment_gammas[i]);
            }
            out += "]";
        }
        out += " used=" + std::to_string(e.samples_used) +
               " seen=" + std::to_string(e.samples_seen) +
               " restarts=" + std::to_string(e.regression_restarts) +
               " resets=" + std::to_string(e.resets) +
               " last_t=" + fmt(e.last_event_t) +
               " cluster=" + (e.has_cluster ? std::string("1") : std::string("0"));
        if (e.has_cluster) {
            out += " cx=" + fmt(e.cluster.calibrated.x) +
                   " cy=" + fmt(e.cluster.calibrated.y) +
                   " cconf=" + fmt(e.cluster.combined_confidence) + " members=[";
            for (std::size_t i = 0; i < e.cluster.members.size(); ++i) {
                if (i > 0) out += ",";
                out += std::to_string(e.cluster.members[i]);
            }
            out += "] crejected=" + std::to_string(e.cluster.rejected);
        }
        out += "\n";
    }
    return out;
}

const char* health_name(ServiceHealth h) {
    switch (h) {
        case ServiceHealth::ok: return "ok";
        case ServiceHealth::degraded: return "degraded";
        case ServiceHealth::overloaded: return "overloaded";
    }
    return "ok";
}

std::string status_json(const ServiceStatus& s) {
    std::string out;
    out.reserve(768);
    out += "{\"schema_version\":1,\"deterministic\":{";
    out += "\"epoch\":" + std::to_string(s.epoch);
    out += ",\"horizon\":" + fmt(s.horizon);
    out += ",\"window_epochs\":" + std::to_string(s.window_epochs);
    out += ",\"sessions_live\":" + std::to_string(s.sessions_live);
    out += ",\"sessions_no_fit\":" + std::to_string(s.sessions_no_fit);
    out += ",\"window\":{";
    out += "\"submitted\":" + std::to_string(s.window_submitted);
    out += ",\"dropped\":" + std::to_string(s.window_dropped);
    out += ",\"rejected\":" + std::to_string(s.window_rejected);
    out += ",\"clients_evicted\":" + std::to_string(s.window_clients_evicted);
    out += "}";
    out += ",\"drop_rate\":" + fmt(s.drop_rate);
    out += ",\"no_fix_rate\":" + fmt(s.no_fix_rate);
    out += ",\"eviction_rate\":" + fmt(s.eviction_rate);
    out += ",\"staleness_s\":{";
    out += "\"p50\":" + fmt(s.staleness_p50_s);
    out += ",\"p95\":" + fmt(s.staleness_p95_s);
    out += ",\"p99\":" + fmt(s.staleness_p99_s);
    out += ",\"max\":" + fmt(s.staleness_max_s);
    out += "}";
    out += ",\"health\":\"";
    out += health_name(s.health);
    out += "\"},\"nd\":{";
    out += "\"epoch_wall_p50_us\":" + fmt(s.epoch_wall_p50_us);
    out += ",\"epoch_wall_p99_us\":" + fmt(s.epoch_wall_p99_us);
    out += ",\"epoch_wall_max_us\":" + fmt(s.epoch_wall_max_us);
    out += "}}\n";
    return out;
}

TrackingService::TrackingService(const Config& cfg,
                                 std::optional<core::EnvAware> envaware)
    : cfg_(cfg), envaware_(std::move(envaware)) {
    const unsigned nshards = cfg_.shards == 0 ? 1u : cfg_.shards;
    // Shard telemetry exists to feed the recorder; deriving the flag here
    // (rather than exposing it) keeps the two from disagreeing — including
    // across resize_shards(), which rebuilds shards from this same config.
    cfg_.shard.telemetry = cfg_.flight_recorder_epochs > 0;
    recorder_ = FlightRecorder(cfg_.flight_recorder_epochs);
    if (cfg_.shard.session.pipeline.use_envaware && !envaware_)
        throw std::invalid_argument(
            "TrackingService: session config enables EnvAware but no model "
            "was provided");
    const core::EnvAware* env = envaware_ ? &*envaware_ : nullptr;
    shards_.reserve(nshards);
    for (unsigned i = 0; i < nshards; ++i)
        shards_.push_back(std::make_unique<Shard>(cfg_.shard, env));
    threads_ = cfg_.threads == 0 ? nshards : std::min(cfg_.threads, nshards);
    // One pool for the service lifetime; with a single worker begin_epoch()
    // runs the whole epoch inline, so threads == 1 needs no pool at all.
    if (threads_ > 1) pool_.emplace(threads_);
}

TrackingService::~TrackingService() {
    try {
        end_epoch();
    } catch (...) {
        // A shard worker failed during teardown; the epoch's results are
        // being discarded anyway.
    }
}

void TrackingService::submit(const Event& e) {
    Shard& shard = *shards_[shard_of(e.client, static_cast<std::uint32_t>(
                                                   shards_.size()))];
    // The horizon (the service's event-time clock) advances on the driver
    // thread over *accepted* events only, so batch closing and eviction see
    // the same clock whatever the shard count. enqueue() reports acceptance
    // directly: the driver must not read shard stats while an epoch is in
    // flight (the worker owns half of them).
    if (shard.enqueue(e)) {
        horizon_ = has_horizon_ ? std::max(horizon_, e.t) : e.t;
        has_horizon_ = true;
    }
}

void TrackingService::submit(const std::vector<Event>& events) {
    for (const Event& e : events) submit(e);
}

std::uint64_t TrackingService::begin_epoch() {
    if (in_flight_)
        throw std::logic_error("TrackingService::begin_epoch: epoch in flight");
    LOCBLE_SPAN("serve.epoch.swap");
    ++epoch_;
    LOCBLE_COUNT("serve.epochs", 1);
    epoch_horizon_ = horizon_;
    // The swap: from here on the driver may submit freely — new events land
    // in the fresh ingest buffers and belong to the next epoch.
    for (auto& s : shards_) s->begin_epoch(epoch_horizon_);
    if (recorder_.enabled()) {
        epoch_t0_ = std::chrono::steady_clock::now();
        std::size_t queued = 0;
        for (const auto& s : shards_) queued += s->inbox_events();
        LOCBLE_TRACE_COUNTER("serve.queue_depth", queued);
    }
    if (!pool_) {
        LOCBLE_SPAN("serve.epoch");
        for (auto& s : shards_) s->process_epoch();
        finalize_epoch_record();
        return epoch_;
    }
    in_flight_ = true;
    next_shard_.store(0, std::memory_order_relaxed);
    const std::size_t workers =
        std::min<std::size_t>(threads_, shards_.size());
    inflight_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        inflight_.push_back(pool_->submit([this] {
            // Dynamic shard scheduling; which worker runs which shard never
            // matters because a shard's epoch is a pure function of its own
            // state.
            for (;;) {
                const std::size_t i =
                    next_shard_.fetch_add(1, std::memory_order_relaxed);
                if (i >= shards_.size()) return;
                shards_[i]->process_epoch();
            }
        }));
    }
    return epoch_;
}

void TrackingService::end_epoch() {
    if (!in_flight_) return;
    LOCBLE_SPAN("serve.epoch.barrier");
    // Drain every worker before rethrowing, so a failure still leaves the
    // service quiescent (no worker left touching shard state).
    std::exception_ptr first;
    for (auto& f : inflight_) {
        try {
            f.get();
        } catch (...) {
            if (!first) first = std::current_exception();
        }
    }
    inflight_.clear();
    in_flight_ = false;
    if (first) std::rethrow_exception(first);
    finalize_epoch_record();
}

void TrackingService::finalize_epoch_record() {
    if (!recorder_.enabled()) return;
    EpochRecord rec;
    rec.epoch = epoch_;
    rec.horizon = epoch_horizon_;
    const IngestStats now = merged_stats(/*barrier_view=*/true);
    rec.delta = stats_delta(now, last_record_stats_);
    last_record_stats_ = now;
    for (const auto& s : shards_) {
        const Shard::EpochTelemetry& t = s->telemetry();
        rec.shards.push_back({t.events_drained, t.clients_visited,
                              t.sessions_live, t.sessions_no_fit, t.wall_us});
        rec.sessions_live += t.sessions_live;
        rec.sessions_no_fit += t.sessions_no_fit;
        rec.staleness_s.merge(t.staleness_s);
    }
    rec.wall_epoch_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - epoch_t0_)
                            .count();
    LOCBLE_TRACE_COUNTER("serve.live_sessions", rec.sessions_live);
    recorder_.push(std::move(rec));
}

std::uint64_t TrackingService::run_epoch() {
    LOCBLE_SPAN("serve.epoch");
    begin_epoch();
    end_epoch();
    return epoch_;
}

ServiceSnapshot TrackingService::snapshot(SnapshotMode mode) {
    if (in_flight_)
        throw std::logic_error("TrackingService::snapshot: epoch in flight");
    LOCBLE_SPAN("serve.snapshot");
    ServiceSnapshot snap;
    snap.epoch = epoch_;
    snap.horizon = epoch_horizon_;
    snap.incremental = mode == SnapshotMode::incremental;
    snap.stats = merged_stats(/*barrier_view=*/true);
    for (auto& shard : shards_) {
        snap.sessions_live += shard->live_sessions();
        if (mode == SnapshotMode::full) {
            for (auto& [client, state] : shard->clients_mut()) {
                for (auto& [beacon, session] : state.sessions) {
                    snap.estimates.push_back(
                        make_estimate(client, beacon, session));
                    session.clear_snapshot_dirty();
                }
            }
        } else {
            auto& clients = shard->clients_mut();
            for (const auto& [client, beacon] : shard->dirty_sessions()) {
                auto cit = clients.find(client);
                if (cit == clients.end()) continue;  // evicted since listed
                auto sit = cit->second.sessions.find(beacon);
                if (sit == cit->second.sessions.end()) continue;
                snap.estimates.push_back(
                    make_estimate(client, beacon, sit->second));
                sit->second.clear_snapshot_dirty();
            }
        }
        // Either mode resets the incremental baseline: the next delta
        // reports changes relative to this snapshot.
        shard->dirty_sessions().clear();
    }
    LOCBLE_COUNT("serve.snapshot.rows",
                 static_cast<std::uint64_t>(snap.estimates.size()));
    recorder_.note_snapshot_rows(epoch_,
                                 static_cast<std::uint64_t>(snap.estimates.size()));
    // Shards are visited in index order, but the global order must not
    // depend on the client -> shard hash: sort by (client, beacon).
    std::sort(snap.estimates.begin(), snap.estimates.end(),
              [](const BeaconEstimate& a, const BeaconEstimate& b) {
                  return a.client != b.client ? a.client < b.client
                                              : a.beacon < b.beacon;
              });
    return snap;
}

IngestStats TrackingService::stats() const {
    if (in_flight_)
        throw std::logic_error("TrackingService::stats: epoch in flight");
    return merged_stats(/*barrier_view=*/false);
}

ServiceStatus TrackingService::status() const {
    if (in_flight_)
        throw std::logic_error("TrackingService::status: epoch in flight");
    ServiceStatus st;
    st.epoch = epoch_;
    st.horizon = epoch_horizon_;
    const std::vector<EpochRecord> recs = recorder_.records();
    const std::size_t window = std::min(cfg_.status_window_epochs, recs.size());
    st.window_epochs = window;
    if (window == 0) return st;  // nothing recorded: all zero, health ok

    obs::QuantileSketch staleness;
    std::vector<double> walls;
    walls.reserve(window);
    for (std::size_t i = recs.size() - window; i < recs.size(); ++i) {
        const EpochRecord& r = recs[i];
        st.window_submitted += r.delta.submitted;
        st.window_dropped += r.delta.dropped;
        st.window_rejected += r.delta.rejected;
        st.window_clients_evicted += r.delta.clients_evicted;
        walls.push_back(r.wall_epoch_us);
    }
    // Point-in-time fields come from the newest record; staleness quantiles
    // likewise describe the fleet *now* (the deterministic sketch merged
    // across shards at the last barrier), not a blur over the window.
    const EpochRecord& latest = recs.back();
    st.sessions_live = latest.sessions_live;
    st.sessions_no_fit = latest.sessions_no_fit;
    staleness = latest.staleness_s;

    st.drop_rate =
        st.window_submitted > 0
            ? static_cast<double>(st.window_dropped + st.window_rejected) /
                  static_cast<double>(st.window_submitted)
            : 0.0;
    st.no_fix_rate = st.sessions_live > 0
                         ? static_cast<double>(st.sessions_no_fit) /
                               static_cast<double>(st.sessions_live)
                         : 0.0;
    st.eviction_rate = static_cast<double>(st.window_clients_evicted) /
                       static_cast<double>(window);
    st.staleness_p50_s = staleness.quantile(0.50);
    st.staleness_p95_s = staleness.quantile(0.95);
    st.staleness_p99_s = staleness.quantile(0.99);
    st.staleness_max_s = staleness.max();

    const StatusThresholds& th = cfg_.status;
    if (st.drop_rate >= th.overloaded_drop_rate ||
        st.staleness_p99_s >= th.overloaded_staleness_p99_s)
        st.health = ServiceHealth::overloaded;
    else if (st.drop_rate >= th.degraded_drop_rate ||
             st.staleness_p99_s >= th.degraded_staleness_p99_s ||
             st.no_fix_rate >= th.degraded_no_fix_rate)
        st.health = ServiceHealth::degraded;

    st.epoch_wall_p50_us = nearest_rank(walls, 0.50);
    st.epoch_wall_p99_us = nearest_rank(walls, 0.99);
    st.epoch_wall_max_us = walls.empty() ? 0.0 : walls.back();
    return st;
}

IngestStats TrackingService::merged_stats(bool barrier_view) const {
    IngestStats total = retired_ingest_;
    total += retired_epoch_;
    for (const auto& s : shards_)
        total += barrier_view ? s->barrier_stats() : s->stats();
    total.epochs = epoch_;
    return total;
}

void TrackingService::resize_shards(unsigned shards) {
    if (in_flight_)
        throw std::logic_error(
            "TrackingService::resize_shards: epoch in flight");
    const unsigned n = shards == 0 ? 1u : shards;
    if (n == shards_.size()) return;
    LOCBLE_SPAN("serve.resize");
    LOCBLE_COUNT("serve.resizes", 1);
    const core::EnvAware* env = envaware_ ? &*envaware_ : nullptr;
    std::vector<std::unique_ptr<Shard>> next;
    next.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        next.push_back(std::make_unique<Shard>(cfg_.shard, env));
    // The rendezvous hash keeps all clients whose assignment is unchanged
    // in place conceptually; here every client object moves, but its
    // observable state — sessions, buffered events, dirty marks — moves
    // with it, so the canonical snapshot stream does not notice.
    for (auto& s : shards_) s->migrate_into(next, retired_ingest_, retired_epoch_);
    shards_ = std::move(next);
    threads_ = cfg_.threads == 0 ? n : std::min(cfg_.threads, n);
    pool_.reset();
    if (threads_ > 1) pool_.emplace(threads_);
}

}  // namespace locble::serve
