#include "locble/serve/service.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::serve {

namespace {

/// Round-trip-exact double formatting for the canonical snapshot text.
std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::string canonical_text(const ServiceSnapshot& snap) {
    std::string out;
    out.reserve(128 + snap.estimates.size() * 256);
    out += "snapshot epoch=" + std::to_string(snap.epoch) +
           " horizon=" + fmt(snap.horizon) +
           " estimates=" + std::to_string(snap.estimates.size()) + "\n";
    const IngestStats& s = snap.stats;
    out += "stats submitted=" + std::to_string(s.submitted) +
           " accepted=" + std::to_string(s.accepted) +
           " dropped=" + std::to_string(s.dropped) +
           " rejected=" + std::to_string(s.rejected) +
           " late=" + std::to_string(s.late) +
           " epochs=" + std::to_string(s.epochs) +
           " clients_created=" + std::to_string(s.clients_created) +
           " clients_evicted=" + std::to_string(s.clients_evicted) +
           " sessions_created=" + std::to_string(s.sessions_created) +
           " sessions_evicted=" + std::to_string(s.sessions_evicted) +
           " sessions_reset=" + std::to_string(s.sessions_reset) +
           " batches_flushed=" + std::to_string(s.batches_flushed) +
           " solves=" + std::to_string(s.solves) +
           " cluster_runs=" + std::to_string(s.cluster_runs) + "\n";
    for (const BeaconEstimate& e : snap.estimates) {
        out += "client=" + std::to_string(e.client) +
               " beacon=" + std::to_string(e.beacon) +
               " fit=" + (e.has_fit ? std::string("1") : std::string("0"));
        if (e.has_fit) {
            out += " x=" + fmt(e.fit.location.x) + " y=" + fmt(e.fit.location.y) +
                   " n=" + fmt(e.fit.exponent) + " gamma=" + fmt(e.fit.gamma_dbm) +
                   " resid=" + fmt(e.fit.residual_db) +
                   " conf=" + fmt(e.fit.confidence) +
                   " ambiguous=" + (e.fit.ambiguous ? std::string("1")
                                                    : std::string("0")) +
                   " gammas=[";
            for (std::size_t i = 0; i < e.fit.segment_gammas.size(); ++i) {
                if (i > 0) out += ",";
                out += fmt(e.fit.segment_gammas[i]);
            }
            out += "]";
        }
        out += " used=" + std::to_string(e.samples_used) +
               " seen=" + std::to_string(e.samples_seen) +
               " restarts=" + std::to_string(e.regression_restarts) +
               " resets=" + std::to_string(e.resets) +
               " last_t=" + fmt(e.last_event_t) +
               " cluster=" + (e.has_cluster ? std::string("1") : std::string("0"));
        if (e.has_cluster) {
            out += " cx=" + fmt(e.cluster.calibrated.x) +
                   " cy=" + fmt(e.cluster.calibrated.y) +
                   " cconf=" + fmt(e.cluster.combined_confidence) + " members=[";
            for (std::size_t i = 0; i < e.cluster.members.size(); ++i) {
                if (i > 0) out += ",";
                out += std::to_string(e.cluster.members[i]);
            }
            out += "] crejected=" + std::to_string(e.cluster.rejected);
        }
        out += "\n";
    }
    return out;
}

TrackingService::TrackingService(const Config& cfg,
                                 std::optional<core::EnvAware> envaware)
    : cfg_(cfg), envaware_(std::move(envaware)) {
    const unsigned nshards = cfg_.shards == 0 ? 1u : cfg_.shards;
    threads_ = cfg_.threads == 0 ? nshards : std::min(cfg_.threads, nshards);
    if (cfg_.shard.session.pipeline.use_envaware && !envaware_)
        throw std::invalid_argument(
            "TrackingService: session config enables EnvAware but no model "
            "was provided");
    const core::EnvAware* env = envaware_ ? &*envaware_ : nullptr;
    shards_.reserve(nshards);
    for (unsigned i = 0; i < nshards; ++i)
        shards_.push_back(std::make_unique<Shard>(cfg_.shard, env));
    // One pool for the service lifetime; with a single worker the epoch
    // loop runs inline (run_indexed's serial path), so threads == 1 needs
    // no pool at all.
    if (threads_ > 1) pool_.emplace(threads_);
}

void TrackingService::submit(const Event& e) {
    // The horizon (the service's event-time clock) advances on the ingest
    // thread over *accepted* events only, so batch closing and eviction
    // see the same clock whatever the shard count.
    Shard& shard = *shards_[shard_of(e.client, static_cast<std::uint32_t>(
                                                   shards_.size()))];
    const std::uint64_t before = shard.stats().accepted;
    shard.enqueue(e);
    if (shard.stats().accepted != before) {
        horizon_ = has_horizon_ ? std::max(horizon_, e.t) : e.t;
        has_horizon_ = true;
    }
}

void TrackingService::submit(const std::vector<Event>& events) {
    for (const Event& e : events) submit(e);
}

std::uint64_t TrackingService::run_epoch() {
    LOCBLE_SPAN("serve.epoch");
    ++epoch_;
    LOCBLE_COUNT("serve.epochs", 1);
    const double horizon = horizon_;
    if (pool_) {
        pool_->run_indexed(shards_.size(), [&](std::size_t i) {
            shards_[i]->process_epoch(horizon);
        });
    } else {
        for (auto& s : shards_) s->process_epoch(horizon);
    }
    return epoch_;
}

ServiceSnapshot TrackingService::snapshot() const {
    LOCBLE_SPAN("serve.snapshot");
    ServiceSnapshot snap;
    snap.epoch = epoch_;
    snap.horizon = horizon_;
    snap.stats = stats();
    for (const auto& shard : shards_) {
        for (const auto& [client, state] : shard->clients()) {
            for (const auto& [beacon, session] : state.sessions) {
                BeaconEstimate e;
                e.client = client;
                e.beacon = beacon;
                e.has_fit = session.has_fit();
                if (e.has_fit) e.fit = session.fit();
                e.samples_used = session.samples_used();
                e.samples_seen = session.samples_seen();
                e.regression_restarts = session.regression_restarts();
                e.resets = session.resets();
                e.last_event_t = session.last_event_t();
                e.has_cluster = session.has_cluster();
                if (e.has_cluster) e.cluster = session.cluster();
                snap.estimates.push_back(std::move(e));
            }
        }
    }
    // Shards are visited in index order, but the global order must not
    // depend on the client -> shard hash: sort by (client, beacon).
    std::sort(snap.estimates.begin(), snap.estimates.end(),
              [](const BeaconEstimate& a, const BeaconEstimate& b) {
                  return a.client != b.client ? a.client < b.client
                                              : a.beacon < b.beacon;
              });
    return snap;
}

IngestStats TrackingService::stats() const {
    IngestStats total;
    for (const auto& s : shards_) total += s->stats();
    total.epochs = epoch_;
    return total;
}

}  // namespace locble::serve
