#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "locble/core/clustering.hpp"
#include "locble/motion/dead_reckoning.hpp"
#include "locble/obs/quantile.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/stats.hpp"
#include "locble/serve/tracking_session.hpp"

namespace locble::serve {

/// One shard of the tracking service: exclusive owner of every client whose
/// id hashes to it — their double-buffered ingest queues, pose tracks and
/// per-beacon tracking sessions.
///
/// Threading contract (docs/SERVING.md): state is split into two disjoint
/// halves so ingest can overlap epoch execution.
///
///  - *Ingest side* (`ingest_`, `ingest_stats_`) is touched only by the
///    driver thread, at any time — including while an epoch is in flight.
///  - *Worker side* (`clients_`, `epoch_stats_`, `dirty_`) is touched only
///    by the one worker thread running `process_epoch()`, and read at
///    quiescent points (between epochs) for snapshots.
///  - The handoff (`inbox_`, `epoch_horizon_`, `ingest_stats_at_swap_`) is
///    written by `begin_epoch()` on the driver thread while no epoch is in
///    flight, then consumed by the worker; the epoch barrier orders the
///    two, so nothing is ever touched concurrently and the hot path takes
///    no locks.
class Shard {
public:
    struct Config {
        TrackingSession::Config session{};
        /// Bounded ingest buffer capacity in events, *per client*, per
        /// epoch interval (the buffer swaps empty at every epoch start). A
        /// per-client bound (rather than per-shard) keeps the overflow
        /// decision a pure function of that client's own stream, so drops
        /// are identical whatever the shard count — and one chatty client
        /// can never evict its neighbors' events.
        std::size_t queue_capacity{512};
        OverflowPolicy overflow{OverflowPolicy::drop_oldest};
        /// Evict a client (and its sessions) once its newest event is this
        /// far behind the service horizon, in event-time seconds.
        double idle_timeout_s{60.0};
        /// Forget pose samples older than this behind the horizon (enough
        /// history must remain to pair delayed advertisements). Pruning is
        /// lazy: it runs when the client is next processed, so an idle
        /// client's path is frozen, not leaked.
        double pose_history_s{30.0};
        /// Run the Sec. 6 clustering calibration across a client's fitted
        /// beacons at the end of each epoch (only for clients whose fits
        /// changed).
        bool enable_clustering{false};
        core::ClusteringCalibrator::Config clustering{};
        /// Collect per-epoch telemetry for the service flight recorder:
        /// event counts, a session-staleness quantile sketch, and the
        /// (wall-clock, ND) shard epoch duration. TrackingService sets this
        /// from its flight_recorder_epochs; when false, process_epoch()
        /// reads no clock and walks no sessions beyond its normal work.
        bool telemetry{false};
        /// Staleness sketch domain (0, max_s] split into `resolution`
        /// uniform buckets; sessions staler than the bound saturate the
        /// reported quantiles at it. Defaults give 0.5 s resolution out to
        /// two idle-eviction timeouts.
        double staleness_max_s{120.0};
        std::uint32_t staleness_resolution{240};
    };

    /// `envaware` may be null when the session config does not use it; it
    /// must outlive the shard.
    Shard(const Config& cfg, const core::EnvAware* envaware)
        : cfg_(cfg), envaware_(envaware), calibrator_(cfg.clustering) {}

    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    /// Route one event into its client's bounded ingest buffer (creating
    /// the client on first contact). Driver thread; may overlap a running
    /// epoch — it only ever touches ingest-side state. Returns whether the
    /// event was accepted (false only under OverflowPolicy::reject), so the
    /// caller can advance its horizon without reading worker-side stats.
    bool enqueue(const Event& e);

    /// The epoch swap (driver thread, no epoch in flight): move every
    /// client's accumulated buffer into the epoch inbox, decide idle
    /// evictions against `horizon` (the decision is a pure function of the
    /// ingest-side timestamps, so it lands identically whatever the shard
    /// count), and capture the ingest-side stats for epoch-consistent
    /// snapshots.
    void begin_epoch(double horizon);

    /// Drain the inbox, drive the tracking sessions, close batches up to
    /// the swap horizon, solve, cluster, and apply the evictions decided at
    /// the swap. Exactly one worker thread per epoch.
    void process_epoch();

    /// Live merged accounting: everything ingested and processed so far.
    /// Quiescent point required (the worker writes half of it mid-epoch).
    IngestStats stats() const;

    /// Epoch-consistent accounting: ingest-side counters as captured at the
    /// last begin_epoch() plus the worker-side counters (final once the
    /// barrier passed). This is the stats view a snapshot reports, equal to
    /// stats() whenever ingest never overlapped an epoch.
    IngestStats barrier_stats() const;

    struct ClientState {
        std::vector<motion::TimedPosition> path;  ///< pose track, time-ordered
        std::size_t path_cursor{0};               ///< monotone interpolation hint
        std::map<BeaconId, TrackingSession> sessions;
        /// Some session still holds un-flushed batch samples: keep visiting
        /// this client at epoch end even when no new events arrive.
        bool open_batches{false};
    };

    /// Owned clients in id order (quiescent point required; the snapshot
    /// assembly reads estimates through this).
    const std::map<ClientId, ClientState>& clients() const { return clients_; }
    /// Mutable access for the snapshot assembly (it clears per-session
    /// dirty flags). Quiescent point required.
    std::map<ClientId, ClientState>& clients_mut() { return clients_; }

    /// Sessions dirtied since the last snapshot, in the order the worker
    /// discovered them (deduplicated via TrackingSession::dirty_listed).
    /// The service consumes — and clears — this at snapshot assembly.
    std::vector<std::pair<ClientId, BeaconId>>& dirty_sessions() {
        return dirty_;
    }

    /// Live session count across this shard's clients (maintained by the
    /// worker; quiescent point required).
    std::size_t live_sessions() const { return live_sessions_; }

    /// Per-epoch telemetry for the service flight recorder, rebuilt by each
    /// process_epoch() when Config::telemetry is set. Worker-side state:
    /// read at quiescent points only (the service reads it at the barrier).
    struct EpochTelemetry {
        std::uint64_t events_drained{0};
        std::uint64_t clients_visited{0};
        std::uint64_t sessions_live{0};
        std::uint64_t sessions_no_fit{0};
        /// Staleness (horizon - last event fed to the session, seconds) of
        /// every live session at epoch end — the deterministic,
        /// event-time-only definition. The sketch's max() is the exact
        /// per-shard maximum (merge by max, order-invariant).
        obs::QuantileSketch staleness_s;
        double wall_us{0.0};  ///< wall-clock process_epoch duration (ND)
    };
    const EpochTelemetry& telemetry() const { return telem_; }

    /// Events handed to the worker by the last begin_epoch() swap. Driver
    /// thread; valid from the swap until the next one (the service reads it
    /// right after swapping to emit the queue-depth trace counter).
    std::size_t inbox_events() const { return inbox_events_; }

    /// Move every client — ingest buffers, session state, dirty marks —
    /// into the shard of `dst` selected by shard_of(client, dst.size()),
    /// and fold this shard's accumulated stats into the retired totals.
    /// Driver thread, no epoch in flight (TrackingService::resize_shards).
    void migrate_into(std::vector<std::unique_ptr<Shard>>& dst,
                      IngestStats& retired_ingest, IngestStats& retired_epoch);

private:
    /// Ingest half of one client: the accumulating event buffer plus the
    /// event-time bookkeeping that backpressure, late detection and idle
    /// eviction run on.
    struct IngestQueue {
        std::deque<Event> buf;
        double last_event_t{0.0};  ///< newest accepted event timestamp
        bool has_event_t{false};
    };

    /// One swapped-out buffer handed to the worker at the epoch barrier.
    struct Delivery {
        ClientId client{0};
        std::deque<Event> events;
        bool evict{false};  ///< idle-evict after processing (decided at swap)
    };

    void process_client(ClientId id, ClientState& c, std::deque<Event>* events,
                        double horizon);
    void run_clustering(ClientState& c);
    locble::Vec2 pose_at(ClientState& c, double t) const;

    Config cfg_;
    const core::EnvAware* envaware_;
    core::ClusteringCalibrator calibrator_;

    // --- ingest side (driver thread, any time) ---
    std::map<ClientId, IngestQueue> ingest_;
    IngestStats ingest_stats_;

    // --- barrier handoff (written at begin_epoch, read by the worker) ---
    std::vector<Delivery> inbox_;
    double epoch_horizon_{0.0};
    IngestStats ingest_stats_at_swap_;
    std::size_t inbox_events_{0};

    // --- worker side (one worker thread per epoch) ---
    std::map<ClientId, ClientState> clients_;
    IngestStats epoch_stats_;
    std::vector<std::pair<ClientId, BeaconId>> dirty_;
    std::size_t live_sessions_{0};
    EpochTelemetry telem_;
};

}  // namespace locble::serve
