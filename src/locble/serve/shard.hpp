#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "locble/core/clustering.hpp"
#include "locble/motion/dead_reckoning.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/stats.hpp"
#include "locble/serve/tracking_session.hpp"

namespace locble::serve {

/// One shard of the tracking service: exclusive owner of every client whose
/// id hashes to it, including their bounded ingest queues, pose tracks and
/// per-beacon tracking sessions.
///
/// Threading contract (docs/SERVING.md): enqueue() runs on the ingest
/// thread strictly between epochs; process_epoch() runs on exactly one
/// worker thread per epoch. The epoch barrier (ThreadPool::run_indexed)
/// orders the two, so no shard state is ever touched concurrently and the
/// hot path takes no locks.
class Shard {
public:
    struct Config {
        TrackingSession::Config session{};
        /// Bounded ingest queue capacity in events, *per client*. A
        /// per-client bound (rather than per-shard) keeps the overflow
        /// decision a pure function of that client's own stream, so drops
        /// are identical whatever the shard count — and one chatty client
        /// can never evict its neighbors' events.
        std::size_t queue_capacity{512};
        OverflowPolicy overflow{OverflowPolicy::drop_oldest};
        /// Evict a client (and its sessions) once its newest event is this
        /// far behind the service horizon, in event-time seconds.
        double idle_timeout_s{60.0};
        /// Forget pose samples older than this behind the horizon (enough
        /// history must remain to pair delayed advertisements).
        double pose_history_s{30.0};
        /// Run the Sec. 6 clustering calibration across a client's fitted
        /// beacons at the end of each epoch (only for clients whose fits
        /// changed).
        bool enable_clustering{false};
        core::ClusteringCalibrator::Config clustering{};
    };

    /// `envaware` may be null when the session config does not use it; it
    /// must outlive the shard.
    Shard(const Config& cfg, const core::EnvAware* envaware)
        : cfg_(cfg), envaware_(envaware), calibrator_(cfg.clustering) {}

    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    /// Route one event into its client's bounded queue (creating the client
    /// on first contact). Ingest-thread only.
    void enqueue(const Event& e);

    /// Drain every queue, drive the tracking sessions, close batches up to
    /// `horizon`, solve, cluster, and evict idle clients. Worker-thread
    /// only; `horizon` is the newest timestamp accepted service-wide.
    void process_epoch(double horizon);

    /// Stats accumulated by this shard (quiescent point required).
    const IngestStats& stats() const { return stats_; }

    struct ClientState {
        std::deque<Event> pending;
        std::vector<motion::TimedPosition> path;  ///< pose track, time-ordered
        std::size_t path_cursor{0};               ///< monotone interpolation hint
        std::map<BeaconId, TrackingSession> sessions;
        double last_event_t{0.0};  ///< newest accepted event timestamp
        bool has_event_t{false};
    };

    /// Owned clients in id order (quiescent point required; the snapshot
    /// assembly reads estimates through this).
    const std::map<ClientId, ClientState>& clients() const { return clients_; }

private:
    void process_client(ClientId id, ClientState& c, double horizon);
    void run_clustering(ClientState& c);
    locble::Vec2 pose_at(ClientState& c, double t) const;

    Config cfg_;
    const core::EnvAware* envaware_;
    core::ClusteringCalibrator calibrator_;
    std::map<ClientId, ClientState> clients_;
    IngestStats stats_;
};

}  // namespace locble::serve
