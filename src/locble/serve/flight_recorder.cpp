#include "locble/serve/flight_recorder.hpp"

#include <cstdio>
#include <utility>

namespace locble::serve {

namespace {

/// Round-trip-exact double formatting, matching the canonical snapshot text.
std::string fmt(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string u64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void FlightRecorder::push(EpochRecord rec) {
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(rec));
    } else {
        ring_[next_] = std::move(rec);
        next_ = (next_ + 1) % capacity_;
    }
    ++total_pushed_;
}

std::vector<EpochRecord> FlightRecorder::records() const {
    std::vector<EpochRecord> out;
    out.reserve(ring_.size());
    // Before the ring wraps, insertion order is index order and next_ stays
    // 0; afterwards next_ points at the oldest record.
    const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

const EpochRecord* FlightRecorder::latest() const {
    if (ring_.empty()) return nullptr;
    if (ring_.size() < capacity_) return &ring_.back();
    return &ring_[(next_ + capacity_ - 1) % capacity_];
}

void FlightRecorder::note_snapshot_rows(std::uint64_t epoch, std::uint64_t rows) {
    for (auto& rec : ring_)
        if (rec.epoch == epoch) {
            rec.snapshot_rows = rows;
            return;
        }
}

void FlightRecorder::clear() {
    ring_.clear();
    next_ = 0;
    total_pushed_ = 0;
}

std::string FlightRecorder::to_json() const {
    const std::vector<EpochRecord> recs = records();
    std::string out;
    out.reserve(256 + recs.size() * 512);
    out += "{\"schema_version\":1";
    out += ",\"capacity\":" + u64(capacity_);
    out += ",\"epochs_recorded\":" + u64(total_pushed_);
    out += ",\"records\":[";
    for (std::size_t r = 0; r < recs.size(); ++r) {
        const EpochRecord& rec = recs[r];
        if (r) out += ",";
        out += "\n  {\"epoch\":" + u64(rec.epoch);
        out += ",\"horizon\":" + fmt(rec.horizon);
        const IngestStats& d = rec.delta;
        out += ",\"submitted\":" + u64(d.submitted);
        out += ",\"accepted\":" + u64(d.accepted);
        out += ",\"dropped\":" + u64(d.dropped);
        out += ",\"rejected\":" + u64(d.rejected);
        out += ",\"late\":" + u64(d.late);
        out += ",\"clients_created\":" + u64(d.clients_created);
        out += ",\"clients_evicted\":" + u64(d.clients_evicted);
        out += ",\"sessions_created\":" + u64(d.sessions_created);
        out += ",\"sessions_evicted\":" + u64(d.sessions_evicted);
        out += ",\"batches_flushed\":" + u64(d.batches_flushed);
        out += ",\"solves\":" + u64(d.solves);
        out += ",\"snapshot_rows\":" + u64(rec.snapshot_rows);
        out += ",\"sessions_live\":" + u64(rec.sessions_live);
        out += ",\"sessions_no_fit\":" + u64(rec.sessions_no_fit);
        out += ",\"staleness_s\":{";
        out += "\"count\":" + u64(rec.staleness_s.count());
        out += ",\"upper_bound\":" + fmt(rec.staleness_s.upper_bound());
        out += ",\"p50\":" + fmt(rec.staleness_s.quantile(0.50));
        out += ",\"p95\":" + fmt(rec.staleness_s.quantile(0.95));
        out += ",\"p99\":" + fmt(rec.staleness_s.quantile(0.99));
        out += ",\"max\":" + fmt(rec.staleness_s.max());
        out += "}";
        out += ",\"nd\":{\"wall_epoch_us\":" + fmt(rec.wall_epoch_us);
        out += ",\"shards\":[";
        for (std::size_t s = 0; s < rec.shards.size(); ++s) {
            const ShardEpochRecord& sh = rec.shards[s];
            if (s) out += ",";
            out += "{\"events_drained\":" + u64(sh.events_drained);
            out += ",\"clients_visited\":" + u64(sh.clients_visited);
            out += ",\"sessions_live\":" + u64(sh.sessions_live);
            out += ",\"sessions_no_fit\":" + u64(sh.sessions_no_fit);
            out += ",\"wall_us\":" + fmt(sh.wall_us);
            out += "}";
        }
        out += "]}}";
    }
    out += "\n]}\n";
    return out;
}

}  // namespace locble::serve
