#pragma once

#include <cstdint>

#include "locble/common/vec2.hpp"

namespace locble::serve {

/// Stable identifier of one connected phone (tracking client).
using ClientId = std::uint64_t;
/// Stable identifier of one advertised beacon.
using BeaconId = std::uint64_t;

/// What one ingest event carries.
enum class EventKind : std::uint8_t {
    /// A BLE advertisement report: (beacon, rssi_dbm) at time t.
    adv,
    /// A dead-reckoned pose sample: the client's on-device pedestrian dead
    /// reckoning (Sec. 5.2 runs on the phone) uploads its position in the
    /// client's observer frame at time t.
    pose,
};

/// One interleaved ingest event from one client. Deliberately a flat POD:
/// events are copied through bounded queues on the ingest hot path, so
/// there must be nothing to allocate or destroy.
///
/// Timestamps are client-clock seconds; per client they must be
/// non-decreasing (late events are accepted into the current batch and
/// counted under `serve.ingest.late`).
struct Event {
    ClientId client{0};
    double t{0.0};
    EventKind kind{EventKind::adv};
    BeaconId beacon{0};          ///< adv only
    double rssi_dbm{0.0};        ///< adv only
    locble::Vec2 position{};     ///< pose only (observer frame)
};

/// Advertisement event shorthand.
inline Event adv_event(ClientId client, double t, BeaconId beacon, double rssi_dbm) {
    Event e;
    e.client = client;
    e.t = t;
    e.kind = EventKind::adv;
    e.beacon = beacon;
    e.rssi_dbm = rssi_dbm;
    return e;
}

/// Pose event shorthand.
inline Event pose_event(ClientId client, double t, const locble::Vec2& position) {
    Event e;
    e.client = client;
    e.t = t;
    e.kind = EventKind::pose;
    e.position = position;
    return e;
}

/// SplitMix64 finalizer: the per-(client, shard) weight mix behind the
/// rendezvous assignment below.
inline std::uint64_t shard_weight_mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Stable client -> shard assignment by rendezvous (highest-random-weight)
/// hashing: every (client, shard index) pair gets a SplitMix64 weight and
/// the client belongs to the argmax shard (lowest index wins ties). Pure
/// function of (client, shards), so the assignment never depends on arrival
/// order, map occupancy or thread count — one of the legs the serve
/// determinism contract stands on.
///
/// Unlike the previous `hash % shards` reduction this is a *consistent*
/// hash: growing from n to n+1 shards leaves a client either where it was
/// or moves it to the new shard n (the old shards' weights are unchanged,
/// only the new index can win), so shrinking by one moves only the removed
/// shard's clients. TrackingService::resize_shards relies on this to
/// migrate ~1/n of the fleet instead of all of it when the shard count
/// changes between epochs.
inline std::uint32_t shard_of(ClientId client, std::uint32_t shards) {
    if (shards <= 1) return 0;
    std::uint32_t best = 0;
    std::uint64_t best_w = 0;
    for (std::uint32_t i = 0; i < shards; ++i) {
        const std::uint64_t w =
            shard_weight_mix(client ^ (0x100000001b3ull * (i + 1)));
        if (w > best_w) {
            best_w = w;
            best = i;
        }
    }
    return best;
}

}  // namespace locble::serve
