#include "locble/serve/shard.hpp"

#include <algorithm>
#include <chrono>

#include "locble/obs/obs.hpp"

namespace locble::serve {

bool Shard::enqueue(const Event& e) {
    ++ingest_stats_.submitted;
    auto [it, created] = ingest_.try_emplace(e.client);
    IngestQueue& q = it->second;
    if (created) {
        ++ingest_stats_.clients_created;
        LOCBLE_COUNT("serve.clients.created", 1);
    }
    if (q.has_event_t && e.t < q.last_event_t) {
        ++ingest_stats_.late;
        LOCBLE_COUNT("serve.ingest.late", 1);
    }
    if (q.buf.size() >= cfg_.queue_capacity) {
        // Backpressure. The bound is per client, so this decision depends
        // only on the client's own stream — identical whatever the shard
        // count (docs/SERVING.md).
        if (cfg_.overflow == OverflowPolicy::reject) {
            ++ingest_stats_.rejected;
            LOCBLE_COUNT("serve.ingest.rejected", 1);
            return false;
        }
        q.buf.pop_front();
        ++ingest_stats_.dropped;
        LOCBLE_COUNT("serve.ingest.dropped", 1);
    }
    q.buf.push_back(e);
    ++ingest_stats_.accepted;
    LOCBLE_COUNT("serve.ingest.accepted", 1);
    q.last_event_t = q.has_event_t ? std::max(q.last_event_t, e.t) : e.t;
    q.has_event_t = true;
    LOCBLE_GAUGE_MAX_ND("serve.queue.high_water", q.buf.size());
    return true;
}

void Shard::begin_epoch(double horizon) {
    epoch_horizon_ = horizon;
    inbox_.clear();
    for (auto it = ingest_.begin(); it != ingest_.end();) {
        IngestQueue& q = it->second;
        // Idle eviction, driven by event time against the service horizon —
        // never the wall clock (a stalled client is exactly as evicted in a
        // replay as it was live). last_event_t already covers every event
        // accepted up to this swap, so the decision is the same one the
        // phase-separated service would make after draining.
        const bool evict = q.has_event_t &&
                           horizon - q.last_event_t > cfg_.idle_timeout_s;
        if (!q.buf.empty() || evict) {
            Delivery d;
            d.client = it->first;
            d.events = std::move(q.buf);
            d.evict = evict;
            inbox_.push_back(std::move(d));
            q.buf.clear();  // moved-from: make it definitively empty
        }
        if (evict)
            it = ingest_.erase(it);
        else
            ++it;
    }
    ingest_stats_at_swap_ = ingest_stats_;
    inbox_events_ = 0;
    for (const Delivery& d : inbox_) inbox_events_ += d.events.size();
}

void Shard::process_epoch() {
    LOCBLE_SPAN("serve.shard.epoch");
    const double horizon = epoch_horizon_;

    // Telemetry is flight-recorder state, not obs: it stays on under
    // LOCBLE_OBS=OFF (the recorder, like IngestStats, is service API of
    // record) and off — clock reads included — when the recorder is
    // disabled. The wall clock here is the steady clock, measured only;
    // nothing event-time ever depends on it.
    const bool telemetry = cfg_.telemetry;
    std::chrono::steady_clock::time_point t0;
    if (telemetry) {
        telem_ = EpochTelemetry{};
        telem_.staleness_s =
            obs::QuantileSketch(cfg_.staleness_max_s, cfg_.staleness_resolution);
        t0 = std::chrono::steady_clock::now();
    }

    // Merge-walk the inbox (sorted by client id — built from the ordered
    // ingest map) against the resident clients. A resident client with no
    // delivery is visited only while it still holds an open batch; fully
    // idle clients cost nothing per epoch.
    std::size_t d = 0;
    auto it = clients_.begin();
    while (d < inbox_.size() || it != clients_.end()) {
        const bool has_delivery =
            d < inbox_.size() &&
            (it == clients_.end() || inbox_[d].client <= it->first);
        const ClientId id = has_delivery ? inbox_[d].client : it->first;
        const bool resident = it != clients_.end() && it->first == id;

        if (!has_delivery) {
            if (!it->second.open_batches) {
                ++it;
                continue;
            }
            if (telemetry) ++telem_.clients_visited;
            process_client(id, it->second, nullptr, horizon);
            ++it;
            continue;
        }

        Delivery& del = inbox_[d++];
        auto s = resident ? it : clients_.try_emplace(id).first;
        if (resident) ++it;
        if (telemetry) {
            ++telem_.clients_visited;
            telem_.events_drained += del.events.size();
        }
        process_client(id, s->second, &del.events, horizon);
        if (del.evict) {
            ClientState& c = s->second;
            epoch_stats_.sessions_evicted += c.sessions.size();
            ++epoch_stats_.clients_evicted;
            live_sessions_ -= c.sessions.size();
            LOCBLE_COUNT("serve.sessions.evicted",
                         static_cast<std::uint64_t>(c.sessions.size()));
            LOCBLE_COUNT("serve.clients.evicted", 1);
            clients_.erase(s);
        }
    }

    if (telemetry) {
        // Staleness of every live session at the barrier: horizon minus the
        // last event folded into the session — pure event time, so the
        // merged sketch (bucket-sum across shards) is byte-identical for
        // any shard count. The obs quantile mirrors it with fixed default
        // bounds so --metrics reports see the same tail.
        for (auto& [id, c] : clients_) {
            for (auto& [beacon, sess] : c.sessions) {
                const double stale = std::max(0.0, horizon - sess.last_event_t());
                telem_.staleness_s.record(stale);
                if (!sess.has_fit()) ++telem_.sessions_no_fit;
                LOCBLE_QUANTILE("serve.staleness_s", stale, 120.0, 240u);
            }
        }
        telem_.sessions_live = live_sessions_;
        telem_.wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
    }
}

void Shard::process_client(ClientId id, ClientState& c,
                           std::deque<Event>* events, double horizon) {
    // Drain the delivered buffer in arrival order. Poses extend the path;
    // advertisements are fused with the interpolated pose at the
    // group-delay-compensated pairing time and fed to the beacon's session.
    if (events != nullptr) {
        while (!events->empty()) {
            const Event e = events->front();
            events->pop_front();
            // Queue residency: how far behind the epoch horizon the event
            // is when drained — event time only, so the merged quantiles
            // are shard-count-invariant.
            LOCBLE_QUANTILE("serve.queue.residency_s", horizon - e.t, 30.0, 300u);
            if (e.kind == EventKind::pose) {
                // Keep the path time-ordered; a late pose (counted at
                // ingest) would corrupt interpolation, so it is ignored.
                if (c.path.empty() || e.t >= c.path.back().t)
                    c.path.push_back({e.t, e.position});
                continue;
            }
            auto [sit, created] = c.sessions.try_emplace(
                e.beacon, cfg_.session, envaware_, &epoch_stats_);
            if (created) {
                ++epoch_stats_.sessions_created;
                ++live_sessions_;
                LOCBLE_COUNT("serve.sessions.created", 1);
            }
            TrackingSession& s = sit->second;
            if (c.path.empty()) continue;  // no pose yet: nothing to fuse
            const locble::Vec2 obs = pose_at(c, e.t - s.pose_lag_s());
            // Beacon position is the unknown; the regression consumes the
            // *relative* displacement target - observer with the target at
            // the frame origin — the same convention as the offline
            // pipeline.
            s.on_adv(e.t, e.rssi_dbm, -obs.x, -obs.y);
        }
    }

    // Close batches up to the horizon and run the deferred warm-started
    // solves; remember whether any fit moved for the clustering pass, and
    // whether any batch window is still open (so the next epoch revisits).
    bool changed = false;
    bool open = false;
    for (auto& [beacon, s] : c.sessions) {
        s.finish_epoch(horizon);
        if (s.take_epoch_changed()) changed = true;
        if (s.has_open_batch()) open = true;
    }
    c.open_batches = open;
    if (changed && cfg_.enable_clustering) run_clustering(c);

    // Record sessions whose snapshot row changed for the incremental
    // snapshot path (docs/SERVING.md); dirty_listed dedupes across epochs.
    for (auto& [beacon, s] : c.sessions) {
        if (s.snapshot_dirty() && !s.dirty_listed()) {
            s.mark_dirty_listed();
            dirty_.emplace_back(id, beacon);
        }
    }

    // Prune pose history that can no longer pair with any admissible
    // advertisement; keep the last two points so interpolation never loses
    // its bracket. Lazy: runs only when the client is visited.
    const double keep_after = horizon - cfg_.pose_history_s;
    std::size_t drop = 0;
    while (drop + 2 < c.path.size() && c.path[drop + 1].t < keep_after) ++drop;
    if (drop > 0) {
        c.path.erase(c.path.begin(),
                     c.path.begin() + static_cast<std::ptrdiff_t>(drop));
        c.path_cursor = c.path_cursor > drop ? c.path_cursor - drop : 0;
    }
}

IngestStats Shard::stats() const {
    IngestStats total = ingest_stats_;
    total += epoch_stats_;
    return total;
}

IngestStats Shard::barrier_stats() const {
    IngestStats total = ingest_stats_at_swap_;
    total += epoch_stats_;
    return total;
}

void Shard::migrate_into(std::vector<std::unique_ptr<Shard>>& dst,
                         IngestStats& retired_ingest,
                         IngestStats& retired_epoch) {
    const auto n = static_cast<std::uint32_t>(dst.size());
    for (auto& [id, q] : ingest_)
        dst[shard_of(id, n)]->ingest_.emplace(id, std::move(q));
    ingest_.clear();
    while (!clients_.empty()) {
        auto node = clients_.extract(clients_.begin());
        Shard& target = *dst[shard_of(node.key(), n)];
        ClientState& c = node.mapped();
        target.live_sessions_ += c.sessions.size();
        // Sessions keep pumping lifecycle counters into their shard's
        // stats; re-point them at the new owner (node-based maps never
        // relocate the sessions themselves).
        for (auto& [beacon, s] : c.sessions) s.rebind_stats(&target.epoch_stats_);
        target.clients_.insert(std::move(node));
    }
    live_sessions_ = 0;
    for (const auto& key : dirty_)
        dst[shard_of(key.first, n)]->dirty_.push_back(key);
    dirty_.clear();
    telem_ = EpochTelemetry{};
    inbox_events_ = 0;
    retired_ingest += ingest_stats_;
    retired_epoch += epoch_stats_;
    ingest_stats_ = IngestStats{};
    epoch_stats_ = IngestStats{};
    ingest_stats_at_swap_ = IngestStats{};
}

void Shard::run_clustering(ClientState& c) {
    std::vector<BeaconId> fitted;
    fitted.reserve(c.sessions.size());
    for (const auto& [beacon, s] : c.sessions)
        if (s.has_fit()) fitted.push_back(beacon);
    if (fitted.size() < 2) return;

    std::vector<core::ClusterCandidate> cands;
    cands.reserve(fitted.size());
    for (const BeaconId beacon : fitted) {
        const TrackingSession& s = c.sessions.at(beacon);
        cands.push_back({beacon, s.rss_series(), s.fit()});
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
        std::vector<core::ClusterCandidate> neighbors;
        neighbors.reserve(cands.size() - 1);
        for (std::size_t j = 0; j < cands.size(); ++j)
            if (j != i) neighbors.push_back(cands[j]);
        const auto cal = calibrator_.calibrate(cands[i], neighbors);
        c.sessions.at(fitted[i]).set_cluster(cal);
        ++epoch_stats_.cluster_runs;
        LOCBLE_COUNT("serve.cluster.runs", 1);
    }
}

locble::Vec2 Shard::pose_at(ClientState& c, double t) const {
    const auto& path = c.path;
    if (t <= path.front().t) return path.front().position;
    if (t >= path.back().t) return path.back().position;
    // Cursor-hinted bracket search: pairing times are near-monotone within
    // a drain, so this is O(1) amortized instead of a per-event scan. The
    // cursor only ever changes results' cost, never their value.
    std::size_t i = std::min(c.path_cursor, path.size() - 2);
    while (i > 0 && path[i].t > t) --i;
    while (i + 2 < path.size() && path[i + 1].t < t) ++i;
    c.path_cursor = i;
    const auto& a = path[i];
    const auto& b = path[i + 1];
    const double f = b.t > a.t ? (t - a.t) / (b.t - a.t) : 1.0;
    return {a.position.x + (b.position.x - a.position.x) * f,
            a.position.y + (b.position.y - a.position.y) * f};
}

}  // namespace locble::serve
