#include "locble/serve/shard.hpp"

#include <algorithm>

#include "locble/obs/obs.hpp"

namespace locble::serve {

void Shard::enqueue(const Event& e) {
    ++stats_.submitted;
    auto [it, created] = clients_.try_emplace(e.client);
    ClientState& c = it->second;
    if (created) {
        ++stats_.clients_created;
        LOCBLE_COUNT("serve.clients.created", 1);
    }
    if (c.has_event_t && e.t < c.last_event_t) {
        ++stats_.late;
        LOCBLE_COUNT("serve.ingest.late", 1);
    }
    if (c.pending.size() >= cfg_.queue_capacity) {
        // Backpressure. The bound is per client, so this decision depends
        // only on the client's own stream — identical whatever the shard
        // count (docs/SERVING.md).
        if (cfg_.overflow == OverflowPolicy::reject) {
            ++stats_.rejected;
            LOCBLE_COUNT("serve.ingest.rejected", 1);
            return;
        }
        c.pending.pop_front();
        ++stats_.dropped;
        LOCBLE_COUNT("serve.ingest.dropped", 1);
    }
    c.pending.push_back(e);
    ++stats_.accepted;
    LOCBLE_COUNT("serve.ingest.accepted", 1);
    c.last_event_t = c.has_event_t ? std::max(c.last_event_t, e.t) : e.t;
    c.has_event_t = true;
    LOCBLE_GAUGE_MAX_ND("serve.queue.high_water", c.pending.size());
}

void Shard::process_epoch(double horizon) {
    LOCBLE_SPAN("serve.shard.epoch");
    for (auto& [id, c] : clients_) process_client(id, c, horizon);

    // Idle eviction, driven by event time against the service horizon —
    // never the wall clock (a stalled client is exactly as evicted in a
    // replay as it was live).
    for (auto it = clients_.begin(); it != clients_.end();) {
        ClientState& c = it->second;
        const bool idle = c.has_event_t && c.pending.empty() &&
                          horizon - c.last_event_t > cfg_.idle_timeout_s;
        if (idle) {
            stats_.sessions_evicted += c.sessions.size();
            ++stats_.clients_evicted;
            LOCBLE_COUNT("serve.sessions.evicted",
                         static_cast<std::uint64_t>(c.sessions.size()));
            LOCBLE_COUNT("serve.clients.evicted", 1);
            it = clients_.erase(it);
        } else {
            ++it;
        }
    }
}

void Shard::process_client(ClientId id, ClientState& c, double horizon) {
    (void)id;
    // Drain the bounded queue in arrival order. Poses extend the path;
    // advertisements are fused with the interpolated pose at the
    // group-delay-compensated pairing time and fed to the beacon's session.
    while (!c.pending.empty()) {
        const Event e = c.pending.front();
        c.pending.pop_front();
        if (e.kind == EventKind::pose) {
            // Keep the path time-ordered; a late pose (counted at ingest)
            // would corrupt interpolation, so it is ignored.
            if (c.path.empty() || e.t >= c.path.back().t)
                c.path.push_back({e.t, e.position});
            continue;
        }
        auto [sit, created] = c.sessions.try_emplace(e.beacon, cfg_.session,
                                                     envaware_, &stats_);
        if (created) {
            ++stats_.sessions_created;
            LOCBLE_COUNT("serve.sessions.created", 1);
        }
        TrackingSession& s = sit->second;
        if (c.path.empty()) continue;  // no pose yet: nothing to fuse against
        const locble::Vec2 obs = pose_at(c, e.t - s.pose_lag_s());
        // Beacon position is the unknown; the regression consumes the
        // *relative* displacement target - observer with the target at the
        // frame origin — the same convention as the offline pipeline.
        s.on_adv(e.t, e.rssi_dbm, -obs.x, -obs.y);
    }

    // Close batches up to the horizon and run the deferred warm-started
    // solves; remember whether any fit moved for the clustering pass.
    bool changed = false;
    for (auto& [beacon, s] : c.sessions) {
        s.finish_epoch(horizon);
        if (s.take_epoch_changed()) changed = true;
    }
    if (changed && cfg_.enable_clustering) run_clustering(c);

    // Prune pose history that can no longer pair with any admissible
    // advertisement; keep the last two points so interpolation never loses
    // its bracket.
    const double keep_after = horizon - cfg_.pose_history_s;
    std::size_t drop = 0;
    while (drop + 2 < c.path.size() && c.path[drop + 1].t < keep_after) ++drop;
    if (drop > 0) {
        c.path.erase(c.path.begin(),
                     c.path.begin() + static_cast<std::ptrdiff_t>(drop));
        c.path_cursor = c.path_cursor > drop ? c.path_cursor - drop : 0;
    }
}

void Shard::run_clustering(ClientState& c) {
    std::vector<BeaconId> fitted;
    fitted.reserve(c.sessions.size());
    for (const auto& [beacon, s] : c.sessions)
        if (s.has_fit()) fitted.push_back(beacon);
    if (fitted.size() < 2) return;

    std::vector<core::ClusterCandidate> cands;
    cands.reserve(fitted.size());
    for (const BeaconId beacon : fitted) {
        const TrackingSession& s = c.sessions.at(beacon);
        cands.push_back({beacon, s.rss_series(), s.fit()});
    }
    for (std::size_t i = 0; i < cands.size(); ++i) {
        std::vector<core::ClusterCandidate> neighbors;
        neighbors.reserve(cands.size() - 1);
        for (std::size_t j = 0; j < cands.size(); ++j)
            if (j != i) neighbors.push_back(cands[j]);
        const auto cal = calibrator_.calibrate(cands[i], neighbors);
        c.sessions.at(fitted[i]).set_cluster(cal);
        ++stats_.cluster_runs;
        LOCBLE_COUNT("serve.cluster.runs", 1);
    }
}

locble::Vec2 Shard::pose_at(ClientState& c, double t) const {
    const auto& path = c.path;
    if (t <= path.front().t) return path.front().position;
    if (t >= path.back().t) return path.back().position;
    // Cursor-hinted bracket search: pairing times are near-monotone within
    // a drain, so this is O(1) amortized instead of a per-event scan. The
    // cursor only ever changes results' cost, never their value.
    std::size_t i = std::min(c.path_cursor, path.size() - 2);
    while (i > 0 && path[i].t > t) --i;
    while (i + 2 < path.size() && path[i + 1].t < t) ++i;
    c.path_cursor = i;
    const auto& a = path[i];
    const auto& b = path[i + 1];
    const double f = b.t > a.t ? (t - a.t) / (b.t - a.t) : 1.0;
    return {a.position.x + (b.position.x - a.position.x) * f,
            a.position.y + (b.position.y - a.position.y) * f};
}

}  // namespace locble::serve
