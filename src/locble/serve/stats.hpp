#pragma once

#include <cstdint>

namespace locble::serve {

/// Backpressure policy of a full per-client ingest queue.
enum class OverflowPolicy : std::uint8_t {
    /// Evict the oldest queued event to admit the new one (freshest-data
    /// wins; the drop is counted in `serve.ingest.dropped`).
    drop_oldest,
    /// Refuse the new event (history wins; counted in
    /// `serve.ingest.rejected`).
    reject,
};

/// Monotonic u64 accounting of the service. Each shard owns one instance
/// (touched only by the ingest thread between epochs and by that shard's
/// worker during an epoch); the service merges them by exact u64 addition,
/// so every total is identical whatever the shard/thread count. Available
/// even in LOCBLE_OBS=OFF builds — this struct, not the obs registry, is
/// the backpressure API of record.
struct IngestStats {
    std::uint64_t submitted{0};
    std::uint64_t accepted{0};
    std::uint64_t dropped{0};   ///< drop_oldest evictions
    std::uint64_t rejected{0};  ///< reject refusals
    std::uint64_t late{0};      ///< t went backwards within a client stream
    std::uint64_t epochs{0};
    std::uint64_t clients_created{0};
    std::uint64_t clients_evicted{0};
    std::uint64_t sessions_created{0};
    std::uint64_t sessions_evicted{0};
    std::uint64_t sessions_reset{0};
    std::uint64_t batches_flushed{0};
    std::uint64_t solves{0};
    std::uint64_t cluster_runs{0};

    IngestStats& operator+=(const IngestStats& o) {
        submitted += o.submitted;
        accepted += o.accepted;
        dropped += o.dropped;
        rejected += o.rejected;
        late += o.late;
        epochs += o.epochs;
        clients_created += o.clients_created;
        clients_evicted += o.clients_evicted;
        sessions_created += o.sessions_created;
        sessions_evicted += o.sessions_evicted;
        sessions_reset += o.sessions_reset;
        batches_flushed += o.batches_flushed;
        solves += o.solves;
        cluster_runs += o.cluster_runs;
        return *this;
    }
};

}  // namespace locble::serve
