#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <chrono>

#include "locble/core/envaware.hpp"
#include "locble/runtime/thread_pool.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/flight_recorder.hpp"
#include "locble/serve/shard.hpp"
#include "locble/serve/stats.hpp"

namespace locble::serve {

/// One (client, beacon) row of a service snapshot.
struct BeaconEstimate {
    ClientId client{0};
    BeaconId beacon{0};
    bool has_fit{false};
    core::LocationFit fit{};
    std::size_t samples_used{0};
    std::size_t samples_seen{0};
    int regression_restarts{0};
    int resets{0};
    double last_event_t{0.0};
    bool has_cluster{false};
    core::ClusterCalibration cluster{};
};

/// Which sessions a snapshot covers.
enum class SnapshotMode : std::uint8_t {
    /// Every live session — the `full=true` escape hatch; also resets the
    /// incremental baseline.
    full,
    /// Only sessions whose row changed since the last snapshot (of either
    /// mode). Cost scales with the dirty set, not the fleet: a large idle
    /// cohort contributes nothing. Evicted sessions simply stop appearing —
    /// there are no tombstone rows (docs/SERVING.md, staleness caveats).
    incremental,
};

/// View of the service as of the last epoch barrier: tracked sessions'
/// latest estimates, sorted globally by (client, beacon) so the order
/// carries no trace of the sharding. `incremental` snapshots carry only the
/// rows dirtied since the last snapshot; `sessions_live` always counts the
/// whole live fleet so consumers can tell coverage from fleet size.
struct ServiceSnapshot {
    std::uint64_t epoch{0};
    double horizon{0.0};
    bool incremental{false};
    std::size_t sessions_live{0};
    IngestStats stats{};
    std::vector<BeaconEstimate> estimates;
};

/// Canonical text form of a snapshot: fixed field order, one row per
/// estimate, doubles printed with %.17g (round-trip exact). Two runs of the
/// same event stream must produce byte-identical canonical text whatever
/// their shard/thread counts — the determinism suite diffs these strings.
std::string canonical_text(const ServiceSnapshot& snap);

/// Overload classification of the status surface.
enum class ServiceHealth : std::uint8_t { ok, degraded, overloaded };

/// Lowercase name ("ok" / "degraded" / "overloaded") for reports.
const char* health_name(ServiceHealth h);

/// Thresholds the ok/degraded/overloaded classification runs on, checked
/// worst-first (any overloaded trigger wins over any degraded one). The
/// defaults are documented in docs/SERVING.md; every rate is computed over
/// the status rolling window.
struct StatusThresholds {
    /// (dropped + rejected) / submitted: above 1% is degraded, above 10%
    /// the service is shedding so much load it counts as overloaded.
    double degraded_drop_rate{0.01};
    double overloaded_drop_rate{0.10};
    /// Event-time staleness p99 across live sessions, in seconds: above
    /// half the default idle timeout is degraded, above 1.5x it the fleet
    /// is mostly waiting to be evicted — overloaded.
    double degraded_staleness_p99_s{30.0};
    double overloaded_staleness_p99_s{90.0};
    /// Live sessions without a location fit / live sessions. High at
    /// warm-up by nature, so only an extreme value (default 90%) degrades —
    /// a service that cannot converge is unhealthy even with empty queues.
    double degraded_no_fix_rate{0.90};
};

/// Rolling-window health report assembled from the flight recorder. Every
/// field except the `epoch_wall_*` wall-clock percentiles derives from
/// event-time u64/sketch data, so the deterministic half of status_json()
/// is byte-identical for any shard/thread count.
struct ServiceStatus {
    std::uint64_t epoch{0};
    double horizon{0.0};
    /// Flight-recorder records the window actually covered (<= the
    /// configured window; fewer right after start/clear).
    std::uint64_t window_epochs{0};
    std::uint64_t sessions_live{0};
    std::uint64_t sessions_no_fit{0};
    /// Window totals the rates derive from (exact u64 sums of per-epoch
    /// deltas).
    std::uint64_t window_submitted{0};
    std::uint64_t window_dropped{0};
    std::uint64_t window_rejected{0};
    std::uint64_t window_clients_evicted{0};
    double drop_rate{0.0};      ///< (dropped + rejected) / submitted; 0 when idle
    double no_fix_rate{0.0};    ///< sessions_no_fit / sessions_live; 0 when empty
    double eviction_rate{0.0};  ///< clients evicted per epoch over the window
    double staleness_p50_s{0.0};
    double staleness_p95_s{0.0};
    double staleness_p99_s{0.0};
    double staleness_max_s{0.0};
    ServiceHealth health{ServiceHealth::ok};
    // --- wall clock (ND): reported, never part of determinism checks ---
    double epoch_wall_p50_us{0.0};
    double epoch_wall_p99_us{0.0};
    double epoch_wall_max_us{0.0};
};

/// Versioned JSON form of a status report, shaped for determinism tooling:
/// {"schema_version":1,"deterministic":{...},"nd":{...}} — the
/// "deterministic" object must be byte-identical across shard/thread
/// counts (CI diffs it at 1 vs 8 shards); "nd" holds the wall-clock epoch
/// percentiles. Doubles print %.17g (round-trip exact).
std::string status_json(const ServiceStatus& status);

/// Sharded multi-client tracking service with a pipelined epoch loop (the
/// serve tentpole, reworked for ingest/epoch overlap in PR 6).
///
/// Sessions are sharded by a consistent (rendezvous) hash of the client id
/// (shard_of); a shard owns its clients exclusively, so the epoch hot path
/// takes no locks. The driver thread runs either the classic phased loop
///
///   submit(events...);   // ingest: route into double-buffered queues
///   run_epoch();         // swap + drain every shard, barrier at the end
///   snapshot();          // merged view as of the barrier
///
/// or the pipelined loop that overlaps ingest with epoch execution:
///
///   begin_epoch();       // swap buffers, launch shard workers, return
///   submit(events...);   // lands in the fresh ingest buffers, overlapped
///   end_epoch();         // barrier
///
/// Overlap changes nothing observable: submissions made while an epoch is
/// in flight are processed by the *next* epoch, exactly as if they had been
/// submitted after end_epoch() — the overlapped and phase-separated
/// schedules produce byte-identical snapshot streams (property-tested in
/// tests/serve/test_service_pipeline.cpp). Under that contract the service
/// stays deterministic end to end: estimates, stats, canonical snapshots
/// and deterministic obs metrics are bit-identical for any (shards,
/// threads) combination — and across resize_shards() calls between epochs
/// (docs/SERVING.md spells out why).
///
/// All driver-side entry points (submit, begin/end_epoch, snapshot, stats,
/// resize_shards) must be called from one thread; only shard processing is
/// concurrent.
class TrackingService {
public:
    struct Config {
        /// Number of shards (0 is taken as 1). More shards means finer
        /// parallelism; results never change.
        unsigned shards{1};
        /// Worker threads driving shard epochs: 0 means one per shard,
        /// otherwise capped at the shard count. 1 runs epochs inline on the
        /// calling thread with no pool at all (begin_epoch then completes
        /// the epoch synchronously).
        unsigned threads{1};
        Shard::Config shard{};
        /// Flight-recorder capacity in epochs; 0 disables recording *and*
        /// the per-shard telemetry walk (shard.telemetry is derived from
        /// this, not set directly). The recorder is service API of record,
        /// like IngestStats: it works under LOCBLE_OBS=OFF.
        std::size_t flight_recorder_epochs{64};
        /// Epochs the status() rates and staleness quantiles roll over
        /// (capped by what the recorder holds).
        std::size_t status_window_epochs{16};
        StatusThresholds status{};
    };

    /// `envaware` must be a trained model when the session config enables
    /// EnvAware; the service keeps the copy alive for all shards.
    explicit TrackingService(const Config& cfg,
                             std::optional<core::EnvAware> envaware = std::nullopt);
    ~TrackingService();

    TrackingService(const TrackingService&) = delete;
    TrackingService& operator=(const TrackingService&) = delete;

    /// Route one event to its client's shard ingest buffer. Driver thread;
    /// legal while an epoch is in flight (the event lands in the buffer the
    /// *next* epoch will drain).
    void submit(const Event& e);
    /// Route a batch in order.
    void submit(const std::vector<Event>& events);

    /// Swap every shard's ingest buffers, apply eviction decisions, and
    /// launch the shard workers; returns the epoch index now in flight.
    /// With a single worker thread the epoch completes inline before
    /// returning (end_epoch is then a no-op). Throws std::logic_error if an
    /// epoch is already in flight.
    std::uint64_t begin_epoch();

    /// Barrier: wait for every shard worker launched by begin_epoch().
    /// No-op when no epoch is in flight.
    void end_epoch();

    /// begin_epoch() + end_epoch(): the phase-separated driver loop.
    std::uint64_t run_epoch();

    bool epoch_in_flight() const { return in_flight_; }

    /// Merged, globally (client, beacon)-sorted view as of the last epoch
    /// barrier. Both modes reset the dirty baseline: the next incremental
    /// snapshot reports changes since this call. Throws std::logic_error
    /// while an epoch is in flight.
    ServiceSnapshot snapshot(SnapshotMode mode = SnapshotMode::full);

    /// Live merged ingest/lifecycle accounting (includes events submitted
    /// since the last swap). Throws std::logic_error while an epoch is in
    /// flight.
    IngestStats stats() const;

    /// The epoch flight recorder (empty and disabled when
    /// Config::flight_recorder_epochs == 0). Driver thread, quiescent point
    /// — same discipline as snapshot().
    const FlightRecorder& flight_recorder() const { return recorder_; }

    /// Rolling-window health report over the last status_window_epochs
    /// recorded epochs (all-zero, health ok, when the recorder is disabled
    /// or nothing has been recorded). Throws std::logic_error while an
    /// epoch is in flight.
    ServiceStatus status() const;

    /// Newest accepted event timestamp service-wide: the event-time clock
    /// that batch closing and idle eviction run on.
    double horizon() const { return horizon_; }

    /// Change the shard count between epochs. Thanks to the consistent
    /// rendezvous assignment only ~1/n of the fleet migrates; results are
    /// unchanged — the canonical snapshot stream continues exactly as if
    /// the service had run at the new shard count from the start of time
    /// (modulo nothing: the contract is bit-identity, property-tested).
    /// Throws std::logic_error while an epoch is in flight.
    void resize_shards(unsigned shards);

    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
    unsigned threads() const { return threads_; }

private:
    IngestStats merged_stats(bool barrier_view) const;
    /// Assemble and push this epoch's flight record (called at the barrier:
    /// inline at the end of begin_epoch() when there is no pool, otherwise
    /// from end_epoch() after every worker joined).
    void finalize_epoch_record();

    Config cfg_;
    std::optional<core::EnvAware> envaware_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::optional<runtime::ThreadPool> pool_;
    unsigned threads_{1};
    std::uint64_t epoch_{0};
    double horizon_{0.0};
    bool has_horizon_{false};
    /// Horizon captured at the last begin_epoch(): what snapshots report.
    double epoch_horizon_{0.0};
    bool in_flight_{false};
    std::vector<std::future<void>> inflight_;
    std::atomic<std::size_t> next_shard_{0};
    /// Stats of shards dissolved by resize_shards().
    IngestStats retired_ingest_;
    IngestStats retired_epoch_;
    FlightRecorder recorder_;
    /// Merged barrier stats when the previous record was finalized — the
    /// baseline per-epoch deltas subtract from (monotone across
    /// resize_shards thanks to the retired totals).
    IngestStats last_record_stats_;
    std::chrono::steady_clock::time_point epoch_t0_;  ///< ND wall timing only
};

}  // namespace locble::serve
