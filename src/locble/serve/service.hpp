#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "locble/core/envaware.hpp"
#include "locble/runtime/thread_pool.hpp"
#include "locble/serve/event.hpp"
#include "locble/serve/shard.hpp"
#include "locble/serve/stats.hpp"

namespace locble::serve {

/// One (client, beacon) row of a service snapshot.
struct BeaconEstimate {
    ClientId client{0};
    BeaconId beacon{0};
    bool has_fit{false};
    core::LocationFit fit{};
    std::size_t samples_used{0};
    std::size_t samples_seen{0};
    int regression_restarts{0};
    int resets{0};
    double last_event_t{0.0};
    bool has_cluster{false};
    core::ClusterCalibration cluster{};
};

/// Point-in-time view of the service at an epoch boundary: every live
/// tracking session's latest estimate, sorted globally by (client, beacon)
/// so the order carries no trace of the sharding.
struct ServiceSnapshot {
    std::uint64_t epoch{0};
    double horizon{0.0};
    IngestStats stats{};
    std::vector<BeaconEstimate> estimates;
};

/// Canonical text form of a snapshot: fixed field order, one row per
/// estimate, doubles printed with %.17g (round-trip exact). Two runs of the
/// same event stream must produce byte-identical canonical text whatever
/// their shard/thread counts — the determinism suite diffs these strings.
std::string canonical_text(const ServiceSnapshot& snap);

/// Sharded multi-client tracking service (the serve tentpole).
///
/// Sessions are sharded by a stable hash of the client id (shard_of);
/// a shard owns its clients exclusively, so the epoch hot path takes no
/// locks. The caller alternates two phases:
///
///   submit(events...);   // ingest phase: route into bounded queues
///   run_epoch();         // epoch phase: shards drain in parallel
///   snapshot();          // optional: merged, globally sorted view
///
/// submit() and snapshot() must not overlap run_epoch(); the epoch barrier
/// (ThreadPool::run_indexed) is the only synchronization the design needs.
/// Under that contract the service is deterministic end to end: estimates,
/// stats, canonical snapshots and deterministic obs metrics are
/// bit-identical for any (shards, threads) combination — 1 shard on
/// 1 thread equals 8 shards on 8 threads (docs/SERVING.md spells out why).
class TrackingService {
public:
    struct Config {
        /// Number of shards (0 is taken as 1). More shards means finer
        /// parallelism; results never change.
        unsigned shards{1};
        /// Worker threads driving shard epochs: 0 means one per shard,
        /// otherwise capped at the shard count. 1 runs epochs inline on the
        /// calling thread with no pool at all.
        unsigned threads{1};
        Shard::Config shard{};
    };

    /// `envaware` must be a trained model when the session config enables
    /// EnvAware; the service keeps the copy alive for all shards.
    explicit TrackingService(const Config& cfg,
                             std::optional<core::EnvAware> envaware = std::nullopt);

    TrackingService(const TrackingService&) = delete;
    TrackingService& operator=(const TrackingService&) = delete;

    /// Route one event to its client's shard queue (ingest phase only).
    void submit(const Event& e);
    /// Route a batch in order (ingest phase only).
    void submit(const std::vector<Event>& events);

    /// Drain every shard up to the current horizon — in parallel when the
    /// service has more than one thread — and return the epoch index just
    /// completed. Blocks until every shard finished (barrier).
    std::uint64_t run_epoch();

    /// Merged, globally (client, beacon)-sorted view of every live session
    /// (call between epochs).
    ServiceSnapshot snapshot() const;

    /// Merged ingest/lifecycle accounting (call between epochs).
    IngestStats stats() const;

    /// Newest accepted event timestamp service-wide: the event-time clock
    /// that batch closing and idle eviction run on.
    double horizon() const { return horizon_; }

    unsigned shards() const { return static_cast<unsigned>(shards_.size()); }
    unsigned threads() const { return threads_; }

private:
    Config cfg_;
    std::optional<core::EnvAware> envaware_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::optional<runtime::ThreadPool> pool_;
    unsigned threads_{1};
    std::uint64_t epoch_{0};
    double horizon_{0.0};
    bool has_horizon_{false};
};

}  // namespace locble::serve
