#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "locble/obs/quantile.hpp"
#include "locble/serve/stats.hpp"

namespace locble::serve {

/// One shard's slice of an epoch flight record. The event-time counts are
/// deterministic *given the shard count* (each is a pure function of that
/// shard's event stream) but naturally vary with it — a record at 4 shards
/// splits the same totals four ways — and `wall_us` is wall-clock, so
/// per-shard rows live under the "nd" key of the JSON dump and never enter
/// cross-shard-count determinism comparisons.
struct ShardEpochRecord {
    std::uint64_t events_drained{0};   ///< events the worker consumed this epoch
    std::uint64_t clients_visited{0};  ///< clients processed (incl. open-batch revisits)
    std::uint64_t sessions_live{0};    ///< live sessions at epoch end
    std::uint64_t sessions_no_fit{0};  ///< live sessions without a location fit
    double wall_us{0.0};               ///< wall-clock shard epoch duration (ND)
};

/// One epoch of service history as the flight recorder keeps it.
///
/// Everything except `wall_epoch_us` and the per-shard rows is event-time
/// data merged by u64 sum / sketch-bucket sum / max — byte-identical for
/// any shard/thread count. `delta` is this epoch's increment of the merged
/// IngestStats (u64 subtraction of consecutive barrier views, exact).
/// Staleness is the deterministic definition the ISSUE fixes: service
/// horizon minus the session's last solved-into event timestamp, per live
/// session, at the epoch barrier.
struct EpochRecord {
    std::uint64_t epoch{0};
    double horizon{0.0};
    IngestStats delta{};
    /// Rows the snapshot taken after this epoch emitted; back-filled by
    /// TrackingService::snapshot() via note_snapshot_rows (0 until then).
    std::uint64_t snapshot_rows{0};
    std::uint64_t sessions_live{0};
    std::uint64_t sessions_no_fit{0};
    /// Per-session staleness, seconds; quantiles via .quantile(q), exact
    /// maximum via .max().
    obs::QuantileSketch staleness_s;
    double wall_epoch_us{0.0};  ///< wall-clock begin->barrier duration (ND)
    std::vector<ShardEpochRecord> shards;
};

/// Fixed-capacity ring of per-epoch records — the service's black box.
///
/// Owned and written by TrackingService on the driver thread (records are
/// finalized at the epoch barrier, so shard telemetry is read quiescently);
/// reads require the same driver-thread/quiescent discipline as the rest of
/// the service surface. Capacity 0 disables recording entirely — push() is
/// a no-op and the service skips the per-shard telemetry walk.
class FlightRecorder {
public:
    FlightRecorder() = default;
    explicit FlightRecorder(std::size_t capacity) : capacity_(capacity) {}

    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }
    /// Records currently held (<= capacity).
    std::size_t size() const { return ring_.size(); }
    /// Epochs ever pushed, including those the ring has since evicted.
    std::uint64_t epochs_recorded() const { return total_pushed_; }

    void push(EpochRecord rec);

    /// Held records, oldest first.
    std::vector<EpochRecord> records() const;
    /// Newest record, or nullptr when empty.
    const EpochRecord* latest() const;

    /// Attach a snapshot's row count to the record of `epoch` (no-op when
    /// that epoch has already been evicted or was never recorded).
    void note_snapshot_rows(std::uint64_t epoch, std::uint64_t rows);

    void clear();

    /// Versioned JSON dump, oldest record first. Deterministic fields are
    /// top-level per record; wall-clock durations and the per-shard rows
    /// are grouped under each record's "nd" key so a consumer diffing
    /// across shard counts knows exactly what to exclude. Doubles print
    /// %.17g (round-trip exact).
    std::string to_json() const;

private:
    std::size_t capacity_{0};
    std::vector<EpochRecord> ring_;
    std::size_t next_{0};  ///< ring slot the next push overwrites (once full)
    std::uint64_t total_pushed_{0};
};

}  // namespace locble::serve
