#include "locble/serve/tracking_session.hpp"

#include <cmath>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::serve {

TrackingSession::TrackingSession(const Config& cfg, const core::EnvAware* envaware,
                                 IngestStats* stats)
    : cfg_(cfg), stats_(stats), anf_(cfg.pipeline.anf), solver_(cfg.pipeline.solver),
      session_(solver_) {
    if (cfg_.pipeline.use_envaware) {
        if (envaware == nullptr || !envaware->trained())
            throw std::invalid_argument(
                "TrackingSession: use_envaware requires a trained EnvAware");
        env_ = *envaware;  // own copy: the regime tracker is per-session state
        env_->reset_stream();
    }
}

double TrackingSession::pose_lag_s() const {
    return cfg_.pipeline.use_anf ? anf_.group_delay_s() : 0.0;
}

void TrackingSession::on_adv(double t, double rssi_dbm, double p, double q) {
    if (!started_) {
        started_ = true;
        batch_end_ = t + cfg_.pipeline.batch_seconds;
    }
    while (t > batch_end_) {
        flush_batch();
        batch_end_ += cfg_.pipeline.batch_seconds;
    }
    // Causal ANF: one pass per sample, never revisited (the offline
    // pipeline zero-phase filters the whole capture instead).
    const double denoised = cfg_.pipeline.use_anf ? anf_.process(rssi_dbm) : rssi_dbm;
    core::FusedSample fused;
    fused.t = t;
    fused.p = p;
    fused.q = q;
    fused.rssi = denoised;
    fused.segment = segment_;
    batch_raw_.push_back(rssi_dbm);
    batch_fused_.push_back(fused);
    ++samples_seen_;
    last_event_t_ = t;
    snap_dirty_ = true;  // samples_seen / last_event_t are snapshot fields
}

void TrackingSession::finish_epoch(double horizon) {
    while (started_ && horizon > batch_end_) {
        flush_batch();
        batch_end_ += cfg_.pipeline.batch_seconds;
    }
    if (dirty_ && !cfg_.solve_per_flush) solve_now();
}

void TrackingSession::reset_regression() {
    session_.reset();
    segment_ = 0;
    restarts_ = 0;
    samples_used_ = 0;
    has_fit_ = false;
    has_cluster_ = false;
    saw_blocked_ = false;
    band_min_ = 10.0;
    band_max_ = 0.0;
    ++resets_;
    epoch_changed_ = true;
    snap_dirty_ = true;
    if (stats_ != nullptr) ++stats_->sessions_reset;
    LOCBLE_COUNT("serve.sessions.reset", 1);
}

void TrackingSession::flush_batch() {
    if (batch_raw_.empty()) return;
    if (stats_ != nullptr) ++stats_->batches_flushed;
    LOCBLE_COUNT("serve.batches", 1);
    LOCBLE_HISTOGRAM("serve.batch.samples", batch_raw_.size(), 2.0, 4.0, 8.0, 16.0,
                     32.0, 64.0);
    diag_.batch_samples.push_back(batch_raw_.size());

    // EnvAware sees the raw batch (it learns from fluctuation statistics
    // the filter erases); a regime flip only restarts the regression when
    // the received level actually jumped — same rule as the offline
    // pipeline (core/pipeline.cpp).
    bool restart = false;
    if (cfg_.pipeline.use_envaware && env_ && batch_raw_.size() >= 4) {
        const auto obs = env_->observe(batch_raw_);
        diag_.envaware_windows += 1;
        if (obs.window_class != channel::PropagationClass::los) saw_blocked_ = true;
        regime_ = obs.regime;
        restart = obs.changed;
    }
    if (regime_ && cfg_.pipeline.use_regime_bands) {
        const auto band = core::exponent_band_for(*regime_);
        band_min_ = std::min(band_min_, band.first);
        band_max_ = std::max(band_max_, band.second);
    }
    double batch_mean = 0.0;
    for (const double v : batch_raw_) batch_mean += v;
    batch_mean /= static_cast<double>(batch_raw_.size());
    const bool level_jumped =
        have_prev_batch_ && std::abs(batch_mean - prev_batch_mean_) > 4.0;
    prev_batch_mean_ = batch_mean;
    have_prev_batch_ = true;

    if (restart && level_jumped && cfg_.pipeline.restart_on_change) {
        if (cfg_.reset_on_env_change) {
            // Lifecycle policy: forget the old environment's regression
            // entirely (allocation-free — Session::reset keeps capacity).
            reset_regression();
        } else {
            ++segment_;
            ++restarts_;
            snap_dirty_ = true;
            LOCBLE_COUNT("serve.regression_restarts", 1);
        }
    }
    if (cfg_.max_session_samples > 0 &&
        session_.size() + batch_fused_.size() > cfg_.max_session_samples)
        reset_regression();

    for (auto& s : batch_fused_) s.segment = segment_;
    session_.add(batch_fused_);
    dirty_ = true;

    batch_raw_.clear();
    batch_fused_.clear();
    if (cfg_.solve_per_flush) solve_now();
}

void TrackingSession::solve_now() {
    core::SolveHints hints;
    // The regime's exponent band applies only while one regime covered the
    // whole (current) regression; mixed-regime data keeps the full range.
    if (cfg_.pipeline.use_regime_bands && band_max_ > band_min_ && restarts_ == 0)
        hints.exponent_band = {{band_min_, band_max_}};
    if (cfg_.pipeline.gamma_prior_dbm) {
        double below = cfg_.pipeline.gamma_prior_below_db;
        if (saw_blocked_ && cfg_.pipeline.use_regime_bands) below += 14.0;
        hints.gamma_band_dbm = {*cfg_.pipeline.gamma_prior_dbm - below,
                                *cfg_.pipeline.gamma_prior_dbm +
                                    cfg_.pipeline.gamma_prior_above_db};
    }

    core::SolveDiagnostics sd;
    if (stats_ != nullptr) ++stats_->solves;
    LOCBLE_COUNT("serve.solves", 1);
    if (session_.solve_into(fit_, hints, &sd)) {
        has_fit_ = true;
        samples_used_ = session_.size();
        epoch_changed_ = true;
        snap_dirty_ = true;
    }
    diag_.solver_calls += 1;
    diag_.solver_candidates += sd.exponent_candidates;
    diag_.solver_failures += sd.candidate_failures;
    diag_.solver_multistarts += sd.multistart_runs;
    diag_.solver_warm_starts += sd.warm_starts;
    if (!sd.converged) diag_.convergence_failures += 1;
    dirty_ = false;
}

locble::TimeSeries TrackingSession::rss_series() const {
    locble::TimeSeries out;
    out.reserve(session_.size());
    for (const auto& s : session_.samples()) out.push_back({s.t, s.rssi});
    return out;
}

}  // namespace locble::serve
