#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "locble/core/clustering.hpp"
#include "locble/core/envaware.hpp"
#include "locble/core/location_solver.hpp"
#include "locble/core/pipeline.hpp"
#include "locble/dsp/anf.hpp"
#include "locble/serve/stats.hpp"

namespace locble::serve {

/// Streaming per-(client, beacon) tracking chain: causal ANF denoising,
/// per-batch EnvAware regime tracking, and an incremental warm-started
/// LocationSolver::Session — the online counterpart of the offline
/// core::LocBle pipeline (Sec. 5.3, Algorithm 1).
///
/// Two deliberate differences from the offline pipeline, documented in
/// docs/SERVING.md: the ANF runs causally (a service cannot zero-phase
/// filter the future), so each denoised sample is paired with the pose
/// `Anf::group_delay_s()` earlier; and the solver re-solve is deferred to
/// the end of the epoch instead of running at every batch flush, so one
/// warm-started solve amortizes over every event the epoch delivered —
/// the serve layer's batching win.
///
/// Everything here is driven by event-stream time, never the wall clock,
/// and by exactly one shard thread at a time, so a session's whole history
/// is a pure function of its input events — identical whatever the shard
/// or thread count.
class TrackingSession {
public:
    struct Config {
        /// Stage configuration shared with the offline pipeline: ANF,
        /// solver, batch cadence, EnvAware/regime switches, Gamma prior.
        core::LocBle::Config pipeline{};
        /// Lifecycle policy for a debounced regime change with a real level
        /// jump: false splits the regression into a new environment segment
        /// (Algo. 1's per-segment Gamma, the offline pipeline's behavior);
        /// true resets the solver session outright and starts a fresh
        /// regression from the new environment (buffer capacity is kept, so
        /// the reset is allocation-free).
        bool reset_on_env_change{false};
        /// Solve at every batch flush (the offline pipeline's cadence)
        /// instead of once per epoch. Costs roughly one extra solve per
        /// flushed batch; only worth it when estimates must not lag an
        /// epoch behind the freshest batch.
        bool solve_per_flush{false};
        /// When > 0, a session whose accumulated regression exceeds this
        /// many samples is reset (counted in `resets`) before the next
        /// batch is added — bounds per-session memory on endless streams.
        std::size_t max_session_samples{0};
    };

    /// `envaware` must be a trained model when cfg.pipeline.use_envaware is
    /// set; the session keeps its own copy (the regime tracker carries
    /// per-session streaming state). When `stats` is non-null the session
    /// bumps the shard's batches_flushed / solves / sessions_reset counters
    /// there, so the totals survive the session's own eviction.
    TrackingSession(const Config& cfg, const core::EnvAware* envaware,
                    IngestStats* stats = nullptr);

    TrackingSession(const TrackingSession&) = delete;
    TrackingSession& operator=(const TrackingSession&) = delete;

    /// Feed one advertisement: raw RSSI plus the relative displacement
    /// (p, q) = target - observer at the pose-pairing time (the caller
    /// already compensated the ANF group delay). Flushes every batch whose
    /// window closed before `t`.
    void on_adv(double t, double rssi_dbm, double p, double q);

    /// Close out the epoch at event-time `horizon`: flush every batch whose
    /// window has passed, then (unless solve_per_flush already did) run one
    /// warm-started incremental solve over everything accumulated.
    void finish_epoch(double horizon);

    /// Pair poses this many seconds before the advertisement timestamp —
    /// the causal ANF chain's group delay (0 when the ANF is disabled).
    double pose_lag_s() const;

    bool has_fit() const { return has_fit_; }
    const core::LocationFit& fit() const { return fit_; }
    std::size_t samples_used() const { return samples_used_; }
    std::size_t samples_seen() const { return samples_seen_; }
    int regression_restarts() const { return restarts_; }
    int resets() const { return resets_; }
    double last_event_t() const { return last_event_t_; }
    const core::LocateResult::Diagnostics& diagnostics() const { return diag_; }

    /// The accumulated (denoised) RSS stream of the current regression —
    /// the trend signal the clustering stage compares across co-located
    /// beacons. Timestamped like the input events.
    locble::TimeSeries rss_series() const;

    bool has_cluster() const { return has_cluster_; }
    const core::ClusterCalibration& cluster() const { return cluster_; }
    void set_cluster(const core::ClusterCalibration& c) {
        cluster_ = c;
        has_cluster_ = true;
        snap_dirty_ = true;
    }

    /// Did finish_epoch()/on_adv() change the fit since the last
    /// epoch_changed() reset? The shard uses this to re-run clustering only
    /// for clients that actually moved.
    bool take_epoch_changed() {
        const bool c = epoch_changed_;
        epoch_changed_ = false;
        return c;
    }

    /// Does the session still hold samples in an un-flushed batch window?
    /// The shard uses this to keep visiting otherwise-idle clients until
    /// their last open batch has closed and solved.
    bool has_open_batch() const { return !batch_raw_.empty(); }

    /// Snapshot dirty tracking (incremental snapshots, docs/SERVING.md):
    /// `snapshot_dirty()` is true when any field of the session's snapshot
    /// row changed since the last time a snapshot cleared it; the shard's
    /// per-epoch dirty list dedupes entries with `dirty_listed()`.
    bool snapshot_dirty() const { return snap_dirty_; }
    bool dirty_listed() const { return dirty_listed_; }
    void mark_dirty_listed() { dirty_listed_ = true; }
    void clear_snapshot_dirty() {
        snap_dirty_ = false;
        dirty_listed_ = false;
    }

    /// Re-point the shard-stats sink after a shard migration
    /// (TrackingService::resize_shards); counters already accumulated stay
    /// with the old shard's totals, which the service retires.
    void rebind_stats(IngestStats* stats) { stats_ = stats; }

private:
    void flush_batch();
    void solve_now();
    void reset_regression();

    Config cfg_;
    IngestStats* stats_{nullptr};
    dsp::Anf anf_;
    std::optional<core::EnvAware> env_;
    core::LocationSolver solver_;
    core::LocationSolver::Session session_;

    bool started_{false};
    double batch_end_{0.0};
    double last_event_t_{0.0};
    std::vector<double> batch_raw_;
    std::vector<core::FusedSample> batch_fused_;

    int segment_{0};
    int restarts_{0};
    int resets_{0};
    std::optional<channel::PropagationClass> regime_;
    double band_min_{10.0}, band_max_{0.0};
    bool saw_blocked_{false};
    double prev_batch_mean_{0.0};
    bool have_prev_batch_{false};

    bool dirty_{false};
    bool epoch_changed_{false};
    // A fresh session has a row to publish, so it is born snapshot-dirty.
    bool snap_dirty_{true};
    bool dirty_listed_{false};
    bool has_fit_{false};
    core::LocationFit fit_;
    std::size_t samples_used_{0};
    std::size_t samples_seen_{0};
    core::LocateResult::Diagnostics diag_;

    bool has_cluster_{false};
    core::ClusterCalibration cluster_;
};

}  // namespace locble::serve
