#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace locble::obs {

/// One recorded event: either a completed span (Chrome trace_event "X",
/// complete event) or a counter sample ("C", rendered by Perfetto as a
/// stepped load graph — queue depth, live sessions). Timestamps are
/// microseconds since the tracer was started — trial-relative, never
/// wall-clock — so two traces of the same run line up event-for-event in
/// Perfetto no matter when they were recorded.
struct TraceEvent {
    const char* name;  ///< must be a string literal (spans pass their name through)
    double ts_us;
    double dur_us;     ///< span duration; unused for counters
    std::uint32_t tid;
    char phase{'X'};   ///< 'X' complete span, 'C' counter sample
    double value{0.0}; ///< counter sample value; unused for spans
};

/// Span tracer with per-thread buffers.
///
/// Spans are recorded through the RAII ScopedSpan (or the LOCBLE_SPAN macro
/// in obs.hpp, which compiles away under LOCBLE_OBS=0). While the tracer is
/// disabled, a span's constructor does a single relaxed load and nothing
/// else. Buffers are merged and sorted at serialization time; to_json()
/// emits the Chrome trace_event JSON array format, loadable in Perfetto or
/// chrome://tracing.
///
/// Like the metrics registry, to_json()/write()/reset() require a
/// quiescent point (no spans currently open or being recorded).
class Tracer {
public:
    /// Process-wide tracer used by ScopedSpan / LOCBLE_SPAN.
    static Tracer& global();

    Tracer();
    ~Tracer();
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    /// Enable recording and reset the epoch: all later timestamps are
    /// relative to this instant.
    void start();
    void stop() { enabled_.store(false, std::memory_order_relaxed); }
    /// Discard every recorded event (tracer stays enabled/disabled as-is).
    void reset();

    /// Microseconds since start(); what recorded timestamps are made of.
    double now_us() const;

    void record(const char* name, double ts_us, double dur_us);

    /// Record a counter sample ("C" phase) at the current trace time — the
    /// LOCBLE_TRACE_COUNTER macro's backend. No-op while disabled.
    void counter(const char* name, double value);

    std::size_t event_count() const;

    /// {"traceEvents":[...]} with events sorted by (tid, ts) — the format
    /// chrome://tracing and Perfetto load directly.
    std::string to_json() const;

    /// Write to_json() to `path`; throws std::runtime_error on IO failure.
    void write(const std::string& path) const;

private:
    struct Buffer {
        std::uint32_t tid;
        std::vector<TraceEvent> events;
    };

    Buffer& local_buffer();

    std::atomic<bool> enabled_{false};
    std::uint64_t generation_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
    std::uint32_t next_tid_{0};
};

/// RAII span: records one complete ("X") event on the global tracer from
/// construction to destruction. `name` must outlive the tracer's next
/// serialization — pass string literals.
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name) {
        Tracer& tracer = Tracer::global();
        if (tracer.enabled()) {
            name_ = name;
            start_us_ = tracer.now_us();
        }
    }
    ~ScopedSpan() {
        if (name_) {
            Tracer& tracer = Tracer::global();
            const double end_us = tracer.now_us();
            tracer.record(name_, start_us_, end_us - start_us_);
        }
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    const char* name_{nullptr};
    double start_us_{0.0};
};

}  // namespace locble::obs
