#pragma once

// locble::obs — pipeline-wide instrumentation with zero-cost-when-off
// guarantees.
//
// Two independent switches:
//   - compile time: build with LOCBLE_OBS=0 (CMake option LOCBLE_OBS=OFF)
//     and every LOCBLE_* macro below expands to nothing — no registry
//     lookups, no branches, no clock reads anywhere in the hot path;
//   - run time: with LOCBLE_OBS=1 (the default) instrumentation still does
//     nothing until obs::Registry::global().set_enabled(true) (metrics)
//     and/or obs::Tracer::global().start() (spans). Disabled cost is one
//     relaxed atomic load + branch per macro site.
//
// Metric names are dot-separated, lowercase: <module>.<what>[.<detail>]
// (e.g. "solver.exponent_candidates", "scanner.received.ch37"). Span names
// follow the same convention. The full catalog lives in
// docs/OBSERVABILITY.md.

#include "locble/obs/metrics.hpp"
#include "locble/obs/trace.hpp"

#ifndef LOCBLE_OBS
#define LOCBLE_OBS 1
#endif

#if LOCBLE_OBS

#define LOCBLE_OBS_CONCAT2(a, b) a##b
#define LOCBLE_OBS_CONCAT(a, b) LOCBLE_OBS_CONCAT2(a, b)

/// RAII span on the global tracer; a statement, e.g. LOCBLE_SPAN("solver.solve");
#define LOCBLE_SPAN(name_literal) \
    ::locble::obs::ScopedSpan LOCBLE_OBS_CONCAT(locble_obs_span_, __LINE__)(name_literal)

/// Add `n` to a (deterministic) counter. The handle registers on first
/// enabled pass through the site and is reused afterwards.
#define LOCBLE_COUNT(name_literal, n)                                             \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::Counter locble_obs_h =                    \
                locble_obs_r.counter(name_literal);                               \
            locble_obs_h.add(static_cast<std::uint64_t>(n));                      \
        }                                                                         \
    } while (0)

/// Counter whose value depends on scheduling (excluded from bench JSON).
#define LOCBLE_COUNT_ND(name_literal, n)                                          \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::Counter locble_obs_h =                    \
                locble_obs_r.counter(name_literal, /*deterministic=*/false);      \
            locble_obs_h.add(static_cast<std::uint64_t>(n));                      \
        }                                                                         \
    } while (0)

/// High-water-mark gauge whose value depends on scheduling (queue depth...).
#define LOCBLE_GAUGE_MAX_ND(name_literal, v)                                      \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::GaugeMax locble_obs_h =                   \
                locble_obs_r.gauge_max(name_literal, /*deterministic=*/false);    \
            locble_obs_h.record(static_cast<double>(v));                          \
        }                                                                         \
    } while (0)

/// Record into a fixed-bucket histogram; trailing args are the inclusive
/// upper bucket edges, fixed at the first enabled pass.
#define LOCBLE_HISTOGRAM(name_literal, v, ...)                                    \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::Histogram locble_obs_h =                  \
                locble_obs_r.histogram(name_literal,                              \
                                       std::vector<double>{__VA_ARGS__});         \
            locble_obs_h.record(static_cast<double>(v));                          \
        }                                                                         \
    } while (0)

/// Record into an exact fixed-resolution quantile sketch (deterministic:
/// merge is per-bucket u64 sum, so p50/p95/p99 from the merged sketch are
/// byte-identical for any thread count). `upper`/`resolution` fix the
/// uniform bucketing at the first enabled pass and must match at every
/// site sharing the name. Only for *event-time* values (staleness, queue
/// residency); wall-clock quantiles are ND by nature and stay out of bench
/// JSON per the PR-2 rules.
#define LOCBLE_QUANTILE(name_literal, v, upper, resolution)                       \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::Quantile locble_obs_h =                   \
                locble_obs_r.quantile(name_literal, (upper), (resolution));       \
            locble_obs_h.record(static_cast<double>(v));                          \
        }                                                                         \
    } while (0)

/// Chrome-trace counter sample ("C" phase event) on the global tracer:
/// Perfetto renders the series as a load graph alongside the spans (queue
/// depth, live sessions). Traces are for humans — not part of the
/// determinism contract.
#define LOCBLE_TRACE_COUNTER(name_literal, v)                                     \
    do {                                                                          \
        ::locble::obs::Tracer& locble_obs_t = ::locble::obs::Tracer::global();    \
        if (locble_obs_t.enabled())                                               \
            locble_obs_t.counter(name_literal, static_cast<double>(v));           \
    } while (0)

/// Scheduling-dependent histogram (excluded from bench JSON), e.g. the
/// per-worker task-count distribution.
#define LOCBLE_HISTOGRAM_ND(name_literal, v, ...)                                 \
    do {                                                                          \
        ::locble::obs::Registry& locble_obs_r = ::locble::obs::Registry::global();\
        if (locble_obs_r.enabled()) {                                             \
            static const ::locble::obs::Histogram locble_obs_h =                  \
                locble_obs_r.histogram(name_literal,                              \
                                       std::vector<double>{__VA_ARGS__},          \
                                       /*deterministic=*/false);                  \
            locble_obs_h.record(static_cast<double>(v));                          \
        }                                                                         \
    } while (0)

#else  // !LOCBLE_OBS — every instrumentation site compiles away entirely.

// sizeof keeps the operands syntactically used (no -Wunused warnings on
// values only fed to instrumentation) without ever evaluating them.
#define LOCBLE_SPAN(name_literal) ((void)0)
#define LOCBLE_COUNT(name_literal, n) ((void)sizeof(n))
#define LOCBLE_COUNT_ND(name_literal, n) ((void)sizeof(n))
#define LOCBLE_GAUGE_MAX_ND(name_literal, v) ((void)sizeof(v))
#define LOCBLE_HISTOGRAM(name_literal, v, ...) ((void)sizeof(v))
#define LOCBLE_HISTOGRAM_ND(name_literal, v, ...) ((void)sizeof(v))
#define LOCBLE_QUANTILE(name_literal, v, upper, resolution) ((void)sizeof(v))
#define LOCBLE_TRACE_COUNTER(name_literal, v) ((void)sizeof(v))

#endif  // LOCBLE_OBS
