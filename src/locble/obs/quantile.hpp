#pragma once

#include <cstdint>
#include <vector>

namespace locble::obs {

/// Shared bucketing math of the exact fixed-resolution quantile sketch —
/// one set of functions used by QuantileSketch, the registry's Quantile
/// metric and the bench-report serializer, so every consumer derives the
/// same quantile from the same buckets.
///
/// The domain (0, upper] is split into `resolution` uniform buckets; bucket
/// i covers (edge(i-1), edge(i)] with edge(i) = upper * (i+1) / resolution.
/// Values <= 0 land in bucket 0, values > upper — and NaN — land in the
/// overflow bucket (index == resolution). Reported quantiles are bucket
/// *upper edges* (nearest-rank), so they are conservative by at most one
/// bucket width and saturate at `upper` once the overflow bucket is
/// reached: size the bound so the tail of interest sits inside it.

/// Bucket index of `v` (0..resolution, the last being overflow).
std::uint32_t sketch_bucket(double v, double upper, std::uint32_t resolution);

/// Inclusive upper edge of `bucket`; `upper` for the overflow bucket.
double sketch_edge(std::uint32_t bucket, double upper, std::uint32_t resolution);

/// Nearest-rank quantile over merged bucket counts (`buckets.size()` must
/// be resolution + 1). Returns 0 when the sketch is empty. Deterministic:
/// a pure function of the u64 counts and the fixed (upper, resolution), so
/// merged sketches yield byte-identical quantiles whatever the thread or
/// shard count that produced them.
double sketch_quantile(const std::vector<std::uint64_t>& buckets, double upper,
                       double q);

/// Exact fixed-resolution streaming quantile sketch.
///
/// Unlike GK/t-digest style summaries, this sketch is *exact over its
/// bucketing*: recording is a u64 increment, merging is a per-bucket u64
/// sum, and every quantile is a pure function of the merged counts — all
/// order-invariant, so quantiles over event-time metrics (staleness, queue
/// residency) are byte-identical across shard/thread counts. That is the
/// property the PR-2 determinism contract needs; wall-clock quantiles stay
/// out of it (they are ND by nature, whatever the sketch).
///
/// A default-constructed sketch is empty and unconfigured; record() on it
/// is a no-op. merge() adopts the other sketch's configuration when this
/// one is unconfigured and requires matching configurations otherwise.
class QuantileSketch {
public:
    QuantileSketch() = default;
    QuantileSketch(double upper, std::uint32_t resolution);

    bool configured() const { return resolution_ > 0; }
    double upper_bound() const { return upper_; }
    std::uint32_t resolution() const { return resolution_; }

    void record(double v);
    /// Per-bucket u64 sum; throws std::logic_error on configuration
    /// mismatch (an unconfigured side adopts the other's configuration).
    void merge(const QuantileSketch& other);

    std::uint64_t count() const { return count_; }
    double max() const { return count_ > 0 ? max_ : 0.0; }
    /// Nearest-rank quantile (bucket upper edge); 0 when empty.
    double quantile(double q) const;
    /// resolution + 1 counts, last = overflow; empty when unconfigured.
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }

    void reset();

private:
    double upper_{0.0};
    std::uint32_t resolution_{0};
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_{0};
    double max_{0.0};  ///< exact max (merge by max: order-invariant)
};

}  // namespace locble::obs
