#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace locble::obs {

/// What a metric measures and how per-thread shards merge:
///   - counter:   monotonically increasing u64, merge = sum (exact, so the
///                merged value is independent of thread count/scheduling);
///   - gauge_max: high-water mark double, merge = max (order-invariant);
///   - histogram: fixed-bucket u64 counts, merge = per-bucket sum;
///   - quantile:  exact fixed-resolution quantile sketch (obs/quantile.hpp),
///                merge = per-bucket sum, so p50/p95/p99 read from the
///                merged sketch are byte-identical for any thread count.
enum class MetricKind { counter, gauge_max, histogram, quantile };

/// One merged metric as returned by Registry::snapshot().
///
/// Deliberately integer-centric: counters and bucket counts merge by exact
/// u64 addition and gauge_max by max, so every field here is bit-identical
/// whatever the thread count. Histograms track a double `sum` for human
/// summaries (mean), but because float addition is order-sensitive across
/// shards, `sum` is NOT part of the determinism contract and is excluded
/// from bench JSON output.
struct MetricSnapshot {
    std::string name;
    MetricKind kind{MetricKind::counter};
    /// False for metrics whose *values* depend on scheduling (queue depth,
    /// per-worker task counts). Non-deterministic metrics are shown in
    /// console summaries but never serialized into BENCH_*.json.
    bool deterministic{true};
    std::uint64_t count{0};             ///< counter value / histogram|quantile sample count
    double value{0.0};                  ///< gauge_max value (0 when never set)
    double sum{0.0};                    ///< histogram sample sum (display only)
    std::vector<std::uint64_t> buckets; ///< histogram/quantile counts; last = overflow
    std::vector<double> bounds;         ///< histogram inclusive upper edges
    double upper_bound{0.0};            ///< quantile sketch domain bound
};

/// Nearest-rank quantile of a MetricKind::quantile snapshot — a pure
/// function of the merged u64 buckets and the fixed sketch configuration,
/// so it inherits the buckets' thread-count invariance. 0 when empty.
double snapshot_quantile(const MetricSnapshot& m, double q);

class Registry;

/// Cheap value handles bound to one registered metric. Copyable; safe to
/// keep in function-local statics. All record operations are no-ops while
/// the owning registry is disabled.
class Counter {
public:
    Counter() = default;
    void add(std::uint64_t n = 1) const;

private:
    friend class Registry;
    Counter(Registry* reg, std::uint32_t cell) : reg_(reg), cell_(cell) {}
    Registry* reg_{nullptr};
    std::uint32_t cell_{0};
};

class GaugeMax {
public:
    GaugeMax() = default;
    void record(double v) const;

private:
    friend class Registry;
    GaugeMax(Registry* reg, std::uint32_t value_cell, std::uint32_t set_cell)
        : reg_(reg), value_cell_(value_cell), set_cell_(set_cell) {}
    Registry* reg_{nullptr};
    std::uint32_t value_cell_{0};
    std::uint32_t set_cell_{0};
};

class Histogram {
public:
    Histogram() = default;
    /// Buckets have inclusive upper edges; v > last edge lands in the
    /// overflow bucket, as does NaN (which contributes 0 to the sum so one
    /// bad sample cannot poison the display mean).
    void record(double v) const;

private:
    friend class Registry;
    Histogram(Registry* reg, std::uint32_t bucket_base, std::vector<double> bounds,
              std::uint32_t sum_cell)
        : reg_(reg), bucket_base_(bucket_base), bounds_(std::move(bounds)),
          sum_cell_(sum_cell) {}
    Registry* reg_{nullptr};
    std::uint32_t bucket_base_{0};
    std::vector<double> bounds_;  ///< private copy: bucket search without locking
    std::uint32_t sum_cell_{0};
};

class Quantile {
public:
    Quantile() = default;
    /// Record into the sketch's uniform buckets (obs/quantile.hpp bucketing:
    /// v <= 0 in bucket 0, v > upper and NaN in the overflow bucket).
    void record(double v) const;

private:
    friend class Registry;
    Quantile(Registry* reg, std::uint32_t bucket_base, double upper,
             std::uint32_t resolution)
        : reg_(reg), bucket_base_(bucket_base), upper_(upper),
          resolution_(resolution) {}
    Registry* reg_{nullptr};
    std::uint32_t bucket_base_{0};
    double upper_{0.0};          ///< private copy: bucketing without locking
    std::uint32_t resolution_{0};
};

/// Sharded metrics registry.
///
/// Each recording thread writes into its own shard (plain cells, owner
/// thread only), so the hot path takes no locks; registration and snapshot
/// take a mutex. Merging walks metrics in registration order and shards in
/// their registration order, but every merge operation (u64 sum, double
/// max) is order-invariant, so snapshot values are bit-identical for any
/// thread count — the property the PR-1 determinism contract needs.
/// snapshot()/reset() must be called at a quiescent point (no concurrent
/// recording); the bench harness calls them only after all trials joined.
///
/// Registering an existing name returns a handle to the same metric (the
/// kind must match). Instruments record only while `enabled()` — the
/// runtime half of the zero-cost toggle; the compile-time half is the
/// LOCBLE_OBS macro in obs.hpp, which removes call sites entirely.
class Registry {
public:
    /// Process-wide registry used by the LOCBLE_* instrumentation macros.
    static Registry& global();

    Registry();
    ~Registry();
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    Counter counter(const std::string& name, bool deterministic = true);
    GaugeMax gauge_max(const std::string& name, bool deterministic = true);
    Histogram histogram(const std::string& name, std::vector<double> bounds,
                        bool deterministic = true);
    /// Exact fixed-resolution quantile sketch over (0, upper]; re-registering
    /// an existing name requires the same (upper, resolution).
    Quantile quantile(const std::string& name, double upper,
                      std::uint32_t resolution, bool deterministic = true);

    /// Merged view of every registered metric, sorted by name (name order
    /// is stable across runs even when racing threads register in different
    /// orders). Quiescent point required.
    std::vector<MetricSnapshot> snapshot() const;

    /// Zero every cell in every shard (metrics stay registered). Quiescent
    /// point required.
    void reset();

private:
    friend class Counter;
    friend class GaugeMax;
    friend class Histogram;
    friend class Quantile;

    struct Shard {
        std::vector<std::uint64_t> u64;
        std::vector<double> f64;
    };

    struct Desc {
        std::string name;
        MetricKind kind;
        bool deterministic;
        std::uint32_t u64_base;   ///< counter cell / first histogram bucket
        std::uint32_t u64_cells;  ///< cells in the u64 plane
        std::uint32_t f64_base;   ///< gauge value / histogram sum
        std::uint32_t f64_cells;
        std::vector<double> bounds;
        double upper{0.0};        ///< quantile sketch domain bound
    };

    /// The calling thread's shard, created (and sized to the current cell
    /// planes) on first use.
    Shard& local_shard();
    /// Grow `shard` to cover cells registered after its creation.
    void ensure_capacity(Shard& shard) const;
    const Desc* find_locked(const std::string& name) const;

    std::atomic<bool> enabled_{false};
    std::uint64_t generation_;  ///< distinguishes this instance in TLS caches

    mutable std::mutex mutex_;
    std::vector<Desc> descs_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::uint32_t u64_cells_{0};
    std::uint32_t f64_cells_{0};
};

/// Human-readable one-line-per-metric dump (used by locble_cli and the
/// bench console summary). Includes non-deterministic metrics.
std::string format_summary(const std::vector<MetricSnapshot>& metrics);

}  // namespace locble::obs
