#include "locble/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "locble/obs/quantile.hpp"

namespace locble::obs {

namespace {

/// One TLS entry per (thread, registry) pair. The generation check makes a
/// cached pointer to a destroyed registry harmless even if a new registry
/// is later allocated at the same address.
struct TlsEntry {
    const void* reg;
    std::uint64_t generation;
    void* shard;
};
thread_local std::vector<TlsEntry> tls_shards;

std::atomic<std::uint64_t> g_registry_generation{1};

}  // namespace

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

Registry::Registry()
    : generation_(g_registry_generation.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry::Shard& Registry::local_shard() {
    for (const auto& e : tls_shards)
        if (e.reg == this && e.generation == generation_)
            return *static_cast<Shard*>(e.shard);
    auto owned = std::make_unique<Shard>();
    Shard* shard = owned.get();
    {
        const std::lock_guard lock(mutex_);
        shard->u64.resize(u64_cells_, 0);
        shard->f64.resize(f64_cells_, 0.0);
        shards_.push_back(std::move(owned));
    }
    tls_shards.push_back({this, generation_, shard});
    return *shard;
}

void Registry::ensure_capacity(Shard& shard) const {
    const std::lock_guard lock(mutex_);
    if (shard.u64.size() < u64_cells_) shard.u64.resize(u64_cells_, 0);
    if (shard.f64.size() < f64_cells_) shard.f64.resize(f64_cells_, 0.0);
}

const Registry::Desc* Registry::find_locked(const std::string& name) const {
    for (const auto& d : descs_)
        if (d.name == name) return &d;
    return nullptr;
}

Counter Registry::counter(const std::string& name, bool deterministic) {
    const std::lock_guard lock(mutex_);
    if (const Desc* d = find_locked(name)) {
        if (d->kind != MetricKind::counter)
            throw std::logic_error("obs: '" + name + "' registered with another kind");
        return Counter(this, d->u64_base);
    }
    Desc d{name, MetricKind::counter, deterministic, u64_cells_, 1, 0, 0, {}};
    u64_cells_ += 1;
    descs_.push_back(std::move(d));
    return Counter(this, descs_.back().u64_base);
}

GaugeMax Registry::gauge_max(const std::string& name, bool deterministic) {
    const std::lock_guard lock(mutex_);
    if (const Desc* d = find_locked(name)) {
        if (d->kind != MetricKind::gauge_max)
            throw std::logic_error("obs: '" + name + "' registered with another kind");
        return GaugeMax(this, d->f64_base, d->u64_base);
    }
    Desc d{name, MetricKind::gauge_max, deterministic, u64_cells_, 1, f64_cells_, 1, {}};
    u64_cells_ += 1;  // "was set" flag, so an untouched gauge reports 0
    f64_cells_ += 1;
    descs_.push_back(std::move(d));
    return GaugeMax(this, descs_.back().f64_base, descs_.back().u64_base);
}

Histogram Registry::histogram(const std::string& name, std::vector<double> bounds,
                              bool deterministic) {
    if (bounds.empty()) throw std::invalid_argument("obs: histogram needs bounds");
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        throw std::invalid_argument("obs: histogram bounds must be sorted");
    const std::lock_guard lock(mutex_);
    if (const Desc* d = find_locked(name)) {
        if (d->kind != MetricKind::histogram)
            throw std::logic_error("obs: '" + name + "' registered with another kind");
        return Histogram(this, d->u64_base, d->bounds, d->f64_base);
    }
    const auto n = static_cast<std::uint32_t>(bounds.size());
    Desc d{name,       MetricKind::histogram, deterministic, u64_cells_, n + 1,
           f64_cells_, 1,                     std::move(bounds)};
    u64_cells_ += n + 1;  // n bounded buckets + overflow
    f64_cells_ += 1;      // sum (display only)
    descs_.push_back(std::move(d));
    return Histogram(this, descs_.back().u64_base, descs_.back().bounds,
                     descs_.back().f64_base);
}

Quantile Registry::quantile(const std::string& name, double upper,
                            std::uint32_t resolution, bool deterministic) {
    if (resolution == 0)
        throw std::invalid_argument("obs: quantile needs resolution > 0");
    if (!(upper > 0.0))
        throw std::invalid_argument("obs: quantile needs upper > 0");
    const std::lock_guard lock(mutex_);
    if (const Desc* d = find_locked(name)) {
        if (d->kind != MetricKind::quantile)
            throw std::logic_error("obs: '" + name + "' registered with another kind");
        if (d->upper != upper || d->u64_cells != resolution + 1)
            throw std::logic_error("obs: '" + name +
                                   "' registered with another sketch configuration");
        return Quantile(this, d->u64_base, d->upper, d->u64_cells - 1);
    }
    Desc d{name, MetricKind::quantile, deterministic, u64_cells_, resolution + 1,
           0,    0,                    {},            upper};
    u64_cells_ += resolution + 1;  // resolution bounded buckets + overflow
    descs_.push_back(std::move(d));
    return Quantile(this, descs_.back().u64_base, upper, resolution);
}

void Counter::add(std::uint64_t n) const {
    if (!reg_ || !reg_->enabled()) return;
    Registry::Shard& shard = reg_->local_shard();
    if (cell_ >= shard.u64.size()) reg_->ensure_capacity(shard);
    shard.u64[cell_] += n;
}

void GaugeMax::record(double v) const {
    if (!reg_ || !reg_->enabled()) return;
    Registry::Shard& shard = reg_->local_shard();
    if (value_cell_ >= shard.f64.size() || set_cell_ >= shard.u64.size())
        reg_->ensure_capacity(shard);
    if (shard.u64[set_cell_] == 0 || v > shard.f64[value_cell_])
        shard.f64[value_cell_] = v;
    shard.u64[set_cell_] += 1;
}

void Histogram::record(double v) const {
    if (!reg_ || !reg_->enabled()) return;
    Registry::Shard& shard = reg_->local_shard();
    const auto n_bounds = static_cast<std::uint32_t>(bounds_.size());
    if (bucket_base_ + n_bounds >= shard.u64.size() || sum_cell_ >= shard.f64.size())
        reg_->ensure_capacity(shard);
    // NaN falls into the overflow bucket and adds nothing to the sum.
    std::uint32_t bucket = n_bounds;
    if (!std::isnan(v)) {
        shard.f64[sum_cell_] += v;
        const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
        if (it != bounds_.end())
            bucket = static_cast<std::uint32_t>(it - bounds_.begin());
    }
    shard.u64[bucket_base_ + bucket] += 1;
}

void Quantile::record(double v) const {
    if (!reg_ || !reg_->enabled()) return;
    Registry::Shard& shard = reg_->local_shard();
    if (bucket_base_ + resolution_ >= shard.u64.size()) reg_->ensure_capacity(shard);
    shard.u64[bucket_base_ + sketch_bucket(v, upper_, resolution_)] += 1;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
    const std::lock_guard lock(mutex_);
    std::vector<MetricSnapshot> out;
    out.reserve(descs_.size());
    for (const Desc& d : descs_) {
        MetricSnapshot m;
        m.name = d.name;
        m.kind = d.kind;
        m.deterministic = d.deterministic;
        m.bounds = d.bounds;
        switch (d.kind) {
            case MetricKind::counter:
                for (const auto& s : shards_)
                    if (d.u64_base < s->u64.size()) m.count += s->u64[d.u64_base];
                break;
            case MetricKind::gauge_max: {
                bool seen = false;
                for (const auto& s : shards_) {
                    if (d.u64_base >= s->u64.size() || s->u64[d.u64_base] == 0) continue;
                    if (!seen || s->f64[d.f64_base] > m.value) m.value = s->f64[d.f64_base];
                    m.count += s->u64[d.u64_base];
                    seen = true;
                }
                break;
            }
            case MetricKind::histogram: {
                m.buckets.assign(d.bounds.size() + 1, 0);
                for (const auto& s : shards_) {
                    if (d.u64_base + d.u64_cells > s->u64.size()) continue;
                    for (std::uint32_t i = 0; i < d.u64_cells; ++i)
                        m.buckets[i] += s->u64[d.u64_base + i];
                    m.sum += s->f64[d.f64_base];
                }
                for (const std::uint64_t b : m.buckets) m.count += b;
                break;
            }
            case MetricKind::quantile: {
                m.upper_bound = d.upper;
                m.buckets.assign(d.u64_cells, 0);
                for (const auto& s : shards_) {
                    if (d.u64_base + d.u64_cells > s->u64.size()) continue;
                    for (std::uint32_t i = 0; i < d.u64_cells; ++i)
                        m.buckets[i] += s->u64[d.u64_base + i];
                }
                for (const std::uint64_t b : m.buckets) m.count += b;
                break;
            }
        }
        out.push_back(std::move(m));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
    return out;
}

void Registry::reset() {
    const std::lock_guard lock(mutex_);
    for (const auto& s : shards_) {
        std::fill(s->u64.begin(), s->u64.end(), 0);
        std::fill(s->f64.begin(), s->f64.end(), 0.0);
    }
}

double snapshot_quantile(const MetricSnapshot& m, double q) {
    return sketch_quantile(m.buckets, m.upper_bound, q);
}

std::string format_summary(const std::vector<MetricSnapshot>& metrics) {
    std::string out;
    char line[256];
    for (const auto& m : metrics) {
        switch (m.kind) {
            case MetricKind::counter:
                std::snprintf(line, sizeof line, "  %-36s %llu\n", m.name.c_str(),
                              static_cast<unsigned long long>(m.count));
                break;
            case MetricKind::gauge_max:
                std::snprintf(line, sizeof line, "  %-36s max %.3g (%llu records)\n",
                              m.name.c_str(), m.value,
                              static_cast<unsigned long long>(m.count));
                break;
            case MetricKind::quantile:
                std::snprintf(line, sizeof line,
                              "  %-36s n=%llu p50=%.3g p95=%.3g p99=%.3g\n",
                              m.name.c_str(),
                              static_cast<unsigned long long>(m.count),
                              snapshot_quantile(m, 0.50), snapshot_quantile(m, 0.95),
                              snapshot_quantile(m, 0.99));
                break;
            case MetricKind::histogram: {
                const double mean =
                    m.count > 0 ? m.sum / static_cast<double>(m.count) : 0.0;
                std::snprintf(line, sizeof line,
                              "  %-36s n=%llu mean=%.3g buckets=[", m.name.c_str(),
                              static_cast<unsigned long long>(m.count), mean);
                out += line;
                for (std::size_t i = 0; i < m.buckets.size(); ++i) {
                    std::snprintf(line, sizeof line, "%s%llu", i ? " " : "",
                                  static_cast<unsigned long long>(m.buckets[i]));
                    out += line;
                }
                out += "]\n";
                continue;
            }
        }
        out += line;
    }
    return out;
}

}  // namespace locble::obs
