#include "locble/obs/quantile.hpp"

#include <cmath>
#include <stdexcept>

namespace locble::obs {

std::uint32_t sketch_bucket(double v, double upper, std::uint32_t resolution) {
    if (resolution == 0) return 0;
    if (std::isnan(v) || v > upper) return resolution;  // overflow
    if (v <= 0.0) return 0;
    // Smallest i with v <= upper * (i+1) / resolution. The final clamp
    // covers v == upper rounding up one past the last bounded bucket.
    const double scaled = std::ceil(v * static_cast<double>(resolution) / upper);
    auto i = static_cast<std::uint32_t>(scaled) - 1;
    return i < resolution ? i : resolution - 1;
}

double sketch_edge(std::uint32_t bucket, double upper, std::uint32_t resolution) {
    if (resolution == 0 || bucket >= resolution) return upper;  // saturates
    return upper * static_cast<double>(bucket + 1) /
           static_cast<double>(resolution);
}

double sketch_quantile(const std::vector<std::uint64_t>& buckets, double upper,
                       double q) {
    if (buckets.empty()) return 0.0;
    std::uint64_t count = 0;
    for (const std::uint64_t b : buckets) count += b;
    if (count == 0) return 0.0;
    const auto resolution = static_cast<std::uint32_t>(buckets.size() - 1);
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0) rank = 1;
    std::uint64_t cum = 0;
    for (std::uint32_t i = 0; i < buckets.size(); ++i) {
        cum += buckets[i];
        if (cum >= rank) return sketch_edge(i, upper, resolution);
    }
    return upper;  // unreachable: cum == count >= rank by the end
}

QuantileSketch::QuantileSketch(double upper, std::uint32_t resolution)
    : upper_(upper), resolution_(resolution) {
    if (resolution == 0)
        throw std::invalid_argument("obs: quantile sketch needs resolution > 0");
    if (!(upper > 0.0))
        throw std::invalid_argument("obs: quantile sketch needs upper > 0");
    buckets_.assign(resolution_ + 1, 0);
}

void QuantileSketch::record(double v) {
    if (!configured()) return;
    buckets_[sketch_bucket(v, upper_, resolution_)] += 1;
    ++count_;
    if (!std::isnan(v) && (count_ == 1 || v > max_)) max_ = v;
}

void QuantileSketch::merge(const QuantileSketch& other) {
    if (!other.configured()) return;
    if (!configured()) {
        *this = other;
        return;
    }
    if (upper_ != other.upper_ || resolution_ != other.resolution_)
        throw std::logic_error("obs: merging quantile sketches with different "
                               "configurations");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_ > 0 && (count_ == 0 || other.max_ > max_)) max_ = other.max_;
    count_ += other.count_;
}

double QuantileSketch::quantile(double q) const {
    return sketch_quantile(buckets_, upper_, q);
}

void QuantileSketch::reset() {
    for (auto& b : buckets_) b = 0;
    count_ = 0;
    max_ = 0.0;
}

}  // namespace locble::obs
