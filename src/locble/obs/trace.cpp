#include "locble/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace locble::obs {

namespace {

struct TlsEntry {
    const void* tracer;
    std::uint64_t generation;
    void* buffer;
};
thread_local std::vector<TlsEntry> tls_buffers;

std::atomic<std::uint64_t> g_tracer_generation{1};

std::string format_us(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return buf;
}

}  // namespace

Tracer& Tracer::global() {
    static Tracer instance;
    return instance;
}

Tracer::Tracer()
    : generation_(g_tracer_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

void Tracer::start() {
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::reset() {
    const std::lock_guard lock(mutex_);
    for (const auto& b : buffers_) b->events.clear();
}

double Tracer::now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                     epoch_)
        .count();
}

Tracer::Buffer& Tracer::local_buffer() {
    for (const auto& e : tls_buffers)
        if (e.tracer == this && e.generation == generation_)
            return *static_cast<Buffer*>(e.buffer);
    auto owned = std::make_unique<Buffer>();
    Buffer* buffer = owned.get();
    {
        const std::lock_guard lock(mutex_);
        buffer->tid = next_tid_++;
        buffers_.push_back(std::move(owned));
    }
    tls_buffers.push_back({this, generation_, buffer});
    return *buffer;
}

void Tracer::record(const char* name, double ts_us, double dur_us) {
    if (!enabled()) return;
    Buffer& buffer = local_buffer();
    buffer.events.push_back({name, ts_us, dur_us, buffer.tid, 'X', 0.0});
}

void Tracer::counter(const char* name, double value) {
    if (!enabled()) return;
    Buffer& buffer = local_buffer();
    buffer.events.push_back({name, now_us(), 0.0, buffer.tid, 'C', value});
}

std::size_t Tracer::event_count() const {
    const std::lock_guard lock(mutex_);
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->events.size();
    return n;
}

std::string Tracer::to_json() const {
    std::vector<TraceEvent> events;
    {
        const std::lock_guard lock(mutex_);
        for (const auto& b : buffers_)
            events.insert(events.end(), b->events.begin(), b->events.end());
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         if (a.tid != b.tid) return a.tid < b.tid;
                         if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                         return a.dur_us > b.dur_us;  // parents before children
                     });
    std::string out = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent& e = events[i];
        if (i) out += ",";
        out += "\n  {\"name\":\"";
        out += e.name;
        out += "\",\"cat\":\"locble\",\"ph\":\"";
        out += e.phase;
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"ts\":" + format_us(e.ts_us);
        if (e.phase == 'C') {
            char val[40];
            std::snprintf(val, sizeof val, "%g", e.value);
            out += ",\"args\":{\"value\":";
            out += val;
            out += "}";
        } else {
            out += ",\"dur\":" + format_us(e.dur_us);
        }
        out += "}";
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

void Tracer::write(const std::string& path) const {
    std::ofstream file(path, std::ios::trunc);
    if (!file) throw std::runtime_error("obs: cannot write trace to " + path);
    file << to_json();
}

}  // namespace locble::obs
