#include "locble/motion/step_detector.hpp"

#include <algorithm>
#include <cmath>

#include "locble/common/stats.hpp"
#include "locble/dsp/moving_average.hpp"

namespace locble::motion {

StepDetection StepDetector::detect(const locble::TimeSeries& accel_vertical) const {
    StepDetection out;
    if (accel_vertical.size() < 3) return out;

    const std::vector<double> raw = locble::values_of(accel_vertical);
    const auto half_window = static_cast<std::size_t>(
        std::max(1.0, cfg_.smooth_window_s * cfg_.sample_rate_hz / 2.0));
    const std::vector<double> smooth = locble::dsp::centered_moving_average(raw, half_window);

    // Robust amplitude scale: use a high quantile of the positive part so a
    // mostly idle trace with a short walk still thresholds on the walk.
    std::vector<double> positive;
    positive.reserve(smooth.size());
    for (double v : smooth)
        if (v > 0.0) positive.push_back(v);
    if (positive.empty()) return out;
    const double amplitude = locble::quantile(positive, 0.9);
    const double threshold =
        std::max(cfg_.threshold_fraction * amplitude, cfg_.min_amplitude);

    const auto hood = static_cast<std::size_t>(
        std::max(1.0, cfg_.neighborhood_s * cfg_.sample_rate_hz));
    double last_step_t = -1e9;
    std::vector<double> step_times;
    for (std::size_t i = 0; i < smooth.size(); ++i) {
        if (smooth[i] < threshold) continue;
        const std::size_t lo = i >= hood ? i - hood : 0;
        const std::size_t hi = std::min(i + hood, smooth.size() - 1);
        bool is_peak = true;
        for (std::size_t j = lo; j <= hi && is_peak; ++j)
            if (smooth[j] > smooth[i]) is_peak = false;
        if (!is_peak) continue;
        const double t = accel_vertical[i].t;
        if (t - last_step_t < cfg_.min_step_interval_s) continue;
        step_times.push_back(t);
        last_step_t = t;
    }

    if (step_times.empty()) return out;

    // Step frequency from inter-peak spacing; the first step borrows the
    // following interval (it has no predecessor).
    for (std::size_t k = 0; k < step_times.size(); ++k) {
        double interval;
        if (step_times.size() == 1)
            interval = 1.0 / cfg_.gait.frequency_for_speed(1.0);  // fallback
        else if (k == 0)
            interval = step_times[1] - step_times[0];
        else
            interval = step_times[k] - step_times[k - 1];
        // Pauses between walking bouts produce long intervals; clamp to a
        // plausible gait band before converting to a length.
        const double f = std::clamp(1.0 / std::max(interval, 1e-3), 1.2, 3.0);
        Step step;
        step.t = step_times[k];
        step.length_m = cfg_.gait.length_for_frequency(f);
        out.total_distance_m += step.length_m;
        out.steps.push_back(step);
    }
    if (out.steps.size() >= 2) {
        const double span = out.steps.back().t - out.steps.front().t;
        if (span > 0.0)
            out.mean_frequency_hz = static_cast<double>(out.steps.size() - 1) / span;
    }
    return out;
}

}  // namespace locble::motion
