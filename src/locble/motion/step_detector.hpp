#pragma once

#include <vector>

#include "locble/common/timeseries.hpp"
#include "locble/imu/imu_synth.hpp"

namespace locble::motion {

/// One detected step.
struct Step {
    double t{0.0};        ///< peak time (middle of the gait cycle)
    double length_m{0.0}; ///< inferred step length
};

/// Step detection result.
struct StepDetection {
    std::vector<Step> steps;
    double total_distance_m{0.0};
    double mean_frequency_hz{0.0};
};

/// Accelerometer step counter following Sec. 5.2.1: smooth with a moving
/// average, then detect gait-cycle peaks with a voting rule (a sample wins
/// when it is the maximum of its neighborhood, exceeds an adaptive
/// amplitude threshold, and respects a refractory gap to the previous
/// step). Step length comes from the step frequency via the shared
/// GaitModel.
class StepDetector {
public:
    struct Config {
        double sample_rate_hz{100.0};
        double smooth_window_s{0.15};     ///< moving-average width
        double neighborhood_s{0.25};      ///< peak voting neighborhood (each side)
        double min_step_interval_s{0.30}; ///< refractory period (max ~3.3 Hz gait)
        double threshold_fraction{0.45};  ///< of the trace's robust amplitude
        double min_amplitude{0.35};       ///< absolute floor (m/s^2), rejects idle noise
        locble::imu::GaitModel gait{};
    };

    StepDetector() : StepDetector(Config{}) {}
    explicit StepDetector(const Config& cfg) : cfg_(cfg) {}

    /// Detect steps over a full accelerometer capture (vertical axis).
    StepDetection detect(const locble::TimeSeries& accel_vertical) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::motion
