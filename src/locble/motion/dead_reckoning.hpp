#pragma once

#include <vector>

#include "locble/common/timeseries.hpp"
#include "locble/common/vec2.hpp"
#include "locble/imu/imu_synth.hpp"
#include "locble/motion/step_detector.hpp"
#include "locble/motion/turn_detector.hpp"

namespace locble::motion {

/// A timestamped position along the reconstructed walk, in the observer
/// coordinate frame (origin at start, +x along the initial heading).
struct TimedPosition {
    double t{0.0};
    locble::Vec2 position{};
};

/// The motion tracker's output: the dead-reckoned path plus the detections
/// it was assembled from.
struct MotionEstimate {
    std::vector<TimedPosition> path;  ///< starts at (0,0), time-ordered
    StepDetection steps;
    std::vector<Turn> turns;

    /// Interpolated position at time `t` (clamped to the path's ends).
    /// Throws std::logic_error when the path is empty.
    locble::Vec2 position_at(double t) const;
    double total_distance() const { return steps.total_distance_m; }
};

/// Pedestrian dead reckoning in the observer frame (Sec. 5.2): steps from
/// the accelerometer advance the position along the current heading; the
/// heading starts at 0 (the observer frame's +x axis *is* the initial
/// walking direction) and changes only at detected turns, so indoor
/// magnetic fluctuation between turns cannot bend the path.
///
/// `snap_right_angles` implements the paper's practical refinement: when
/// the user is instructed to make right-angle turns during the L-shaped
/// measurement, detected angles near +-90deg snap exactly to +-90deg.
class DeadReckoner {
public:
    struct Config {
        StepDetector::Config step{};
        TurnDetector::Config turn{};
        bool snap_right_angles{false};
        double snap_tolerance_rad{0.35};  ///< ~20 deg window around +-90 deg
    };

    DeadReckoner() : DeadReckoner(Config{}) {}
    explicit DeadReckoner(const Config& cfg) : cfg_(cfg) {}

    /// Reconstruct the walk from a raw IMU capture.
    MotionEstimate track(const locble::imu::ImuTrace& imu) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

}  // namespace locble::motion
