#pragma once

#include "locble/common/timeseries.hpp"

namespace locble::motion {

/// Complementary gyro/magnetometer heading filter (Sec. 5.2.2's sensor
/// pairing, as a continuous estimator).
///
/// The magnetometer is absolute but fluctuates indoors; the gyroscope is
/// smooth but drifts. The classic complementary filter integrates the gyro
/// and leaks toward the magnetic heading with time constant `tau`:
///
///   heading += gyro_z * dt;  heading += (mag - heading) * dt / tau
///
/// The turn detector uses raw bumps + short-window magnetic deltas (the
/// paper's method); this filter serves consumers that want a continuous
/// heading stream, e.g. navigation display or the moving-target frame
/// alignment.
class ComplementaryHeadingFilter {
public:
    struct Config {
        double tau_s{8.0};  ///< magnetometer leak time constant
    };

    ComplementaryHeadingFilter() : ComplementaryHeadingFilter(Config{}) {}
    explicit ComplementaryHeadingFilter(const Config& cfg) : cfg_(cfg) {}

    /// Update with one synchronized sample pair; returns the fused heading
    /// (wrapped to (-pi, pi]).
    double update(double t, double gyro_z, double mag_heading);

    /// Fuse whole gyro/magnetometer streams (timestamps must match).
    /// Throws std::invalid_argument on length mismatch or empty input.
    locble::TimeSeries fuse(const locble::TimeSeries& gyro_z,
                            const locble::TimeSeries& mag_heading) const;

    double heading() const { return heading_; }
    void reset();

private:
    Config cfg_;
    double heading_{0.0};
    double last_t_{0.0};
    bool initialized_{false};
};

}  // namespace locble::motion
