#include "locble/motion/dead_reckoning.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace locble::motion {

locble::Vec2 MotionEstimate::position_at(double t) const {
    if (path.empty()) throw std::logic_error("MotionEstimate: empty path");
    if (t <= path.front().t) return path.front().position;
    if (t >= path.back().t) return path.back().position;
    for (std::size_t i = 1; i < path.size(); ++i) {
        if (t <= path[i].t) {
            const auto& a = path[i - 1];
            const auto& b = path[i];
            const double f = b.t > a.t ? (t - a.t) / (b.t - a.t) : 1.0;
            return a.position + (b.position - a.position) * f;
        }
    }
    return path.back().position;
}

MotionEstimate DeadReckoner::track(const locble::imu::ImuTrace& imu) const {
    MotionEstimate out;
    out.steps = StepDetector(cfg_.step).detect(imu.accel_vertical);
    out.turns = TurnDetector(cfg_.turn).detect(imu.gyro_z, imu.mag_heading);

    if (cfg_.snap_right_angles) {
        for (auto& turn : out.turns) {
            constexpr double kRight = std::numbers::pi / 2.0;
            if (std::abs(std::abs(turn.angle_rad) - kRight) <= cfg_.snap_tolerance_rad)
                turn.angle_rad = std::copysign(kRight, turn.angle_rad);
        }
    }

    // Walk the steps forward, applying each turn's heading change once the
    // step stream passes the turn's midpoint.
    double heading = 0.0;
    std::size_t next_turn = 0;
    locble::Vec2 pos{0.0, 0.0};
    const double start_t = imu.accel_vertical.empty() ? 0.0 : imu.accel_vertical.front().t;
    out.path.push_back({start_t, pos});
    for (const auto& step : out.steps.steps) {
        while (next_turn < out.turns.size() &&
               0.5 * (out.turns[next_turn].t_begin + out.turns[next_turn].t_end) <=
                   step.t) {
            heading = locble::wrap_angle(heading + out.turns[next_turn].angle_rad);
            ++next_turn;
        }
        pos += locble::unit_from_angle(heading) * step.length_m;
        out.path.push_back({step.t, pos});
    }
    // Apply any trailing turns so position_at() past the last step stays put
    // but the final heading is consistent for navigation use.
    const double end_t = imu.accel_vertical.empty() ? start_t : imu.accel_vertical.back().t;
    if (out.path.back().t < end_t) out.path.push_back({end_t, pos});
    return out;
}

}  // namespace locble::motion
