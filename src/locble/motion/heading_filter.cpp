#include "locble/motion/heading_filter.hpp"

#include <algorithm>
#include <stdexcept>

#include "locble/common/vec2.hpp"

namespace locble::motion {

double ComplementaryHeadingFilter::update(double t, double gyro_z,
                                          double mag_heading) {
    if (!initialized_) {
        heading_ = locble::wrap_angle(mag_heading);
        last_t_ = t;
        initialized_ = true;
        return heading_;
    }
    const double dt = std::max(t - last_t_, 0.0);
    last_t_ = t;
    heading_ = locble::wrap_angle(heading_ + gyro_z * dt);
    // Leak toward the magnetometer along the short way around the circle.
    const double err = locble::angle_diff(mag_heading, heading_);
    heading_ = locble::wrap_angle(heading_ + err * std::min(dt / cfg_.tau_s, 1.0));
    return heading_;
}

locble::TimeSeries ComplementaryHeadingFilter::fuse(
    const locble::TimeSeries& gyro_z, const locble::TimeSeries& mag_heading) const {
    if (gyro_z.size() != mag_heading.size())
        throw std::invalid_argument("ComplementaryHeadingFilter: stream size mismatch");
    if (gyro_z.empty())
        throw std::invalid_argument("ComplementaryHeadingFilter: empty streams");
    ComplementaryHeadingFilter filter(cfg_);
    locble::TimeSeries out;
    out.reserve(gyro_z.size());
    for (std::size_t i = 0; i < gyro_z.size(); ++i)
        out.push_back({gyro_z[i].t,
                       filter.update(gyro_z[i].t, gyro_z[i].value,
                                     mag_heading[i].value)});
    return out;
}

void ComplementaryHeadingFilter::reset() {
    heading_ = 0.0;
    last_t_ = 0.0;
    initialized_ = false;
}

}  // namespace locble::motion
