#include "locble/motion/turn_detector.hpp"

#include <cmath>
#include <stdexcept>

#include "locble/common/vec2.hpp"
#include "locble/dsp/moving_average.hpp"

namespace locble::motion {

double mean_heading(const locble::TimeSeries& mag_heading, double t0, double t1) {
    double sx = 0.0, sy = 0.0;
    std::size_t n = 0;
    for (const auto& s : mag_heading) {
        if (s.t < t0 || s.t > t1) continue;
        sx += std::cos(s.value);
        sy += std::sin(s.value);
        ++n;
    }
    if (n == 0) throw std::invalid_argument("mean_heading: empty window");
    return std::atan2(sy, sx);
}

std::vector<Turn> TurnDetector::detect(const locble::TimeSeries& gyro_z,
                                       const locble::TimeSeries& mag_heading) const {
    std::vector<Turn> out;
    if (gyro_z.size() < 3 || mag_heading.empty()) return out;

    const auto half_window = static_cast<std::size_t>(
        std::max(1.0, cfg_.smooth_window_s * cfg_.sample_rate_hz / 2.0));
    const std::vector<double> smooth =
        locble::dsp::centered_moving_average(locble::values_of(gyro_z), half_window);

    bool in_bump = false;
    double bump_start = 0.0;
    for (std::size_t i = 0; i < smooth.size(); ++i) {
        const double mag = std::abs(smooth[i]);
        const double t = gyro_z[i].t;
        const bool last = i + 1 == smooth.size();
        if (!in_bump && mag >= cfg_.enter_threshold) {
            in_bump = true;
            bump_start = t;
        } else if (in_bump && (mag <= cfg_.exit_threshold || last)) {
            in_bump = false;
            const double bump_end = t;
            if (bump_end - bump_start < cfg_.min_duration_s) continue;
            // Heading just before vs just after the bump.
            const double before_t0 = bump_start - cfg_.heading_window_s;
            const double after_t1 = bump_end + cfg_.heading_window_s;
            double h0, h1;
            try {
                h0 = mean_heading(mag_heading, before_t0, bump_start);
                h1 = mean_heading(mag_heading, bump_end, after_t1);
            } catch (const std::invalid_argument&) {
                continue;  // bump at the trace edge without heading context
            }
            const double angle = locble::angle_diff(h1, h0);
            if (std::abs(angle) < cfg_.min_angle_rad) continue;
            out.push_back({bump_start, bump_end, angle});
        }
    }
    return out;
}

}  // namespace locble::motion
