#pragma once

#include <vector>

#include "locble/common/timeseries.hpp"

namespace locble::motion {

/// One detected turn.
struct Turn {
    double t_begin{0.0};
    double t_end{0.0};
    double angle_rad{0.0};  ///< signed; + is counter-clockwise
};

/// Gyroscope + magnetometer turn detection (Sec. 5.2.2): the gyroscope
/// identifies the "bump" (an interval of sustained yaw rate, found with a
/// hysteresis threshold), and the magnetic heading difference across the
/// bump gives the turn angle — the magnetometer drifts indoors but is
/// accurate over the bump's short duration.
class TurnDetector {
public:
    struct Config {
        double sample_rate_hz{100.0};
        double smooth_window_s{0.2};     ///< gyro smoothing before thresholding
        double enter_threshold{0.45};    ///< rad/s to start a bump
        double exit_threshold{0.18};     ///< rad/s to end a bump (hysteresis)
        double min_duration_s{0.15};     ///< reject twitches
        double min_angle_rad{0.12};      ///< reject sub-7deg corrections
        double heading_window_s{0.4};    ///< heading averaging span at each side
    };

    TurnDetector() : TurnDetector(Config{}) {}
    explicit TurnDetector(const Config& cfg) : cfg_(cfg) {}

    /// `gyro_z` yaw rate, `mag_heading` wrapped heading (radians); both
    /// sampled on the same clock (timestamps may differ).
    std::vector<Turn> detect(const locble::TimeSeries& gyro_z,
                             const locble::TimeSeries& mag_heading) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

/// Circular mean of headings in [t0, t1]; used to read the magnetometer
/// just before/after a bump. Throws std::invalid_argument when the window
/// contains no samples.
double mean_heading(const locble::TimeSeries& mag_heading, double t0, double t1);

}  // namespace locble::motion
