#include "locble/ble/pdu.hpp"

#include <cstdio>
#include <stdexcept>

namespace locble::ble {

bool is_connectable(PduType type) {
    switch (type) {
        case PduType::adv_ind:
        case PduType::adv_direct_ind:
            return true;
        default:
            return false;
    }
}

std::string DeviceAddress::str() const {
    char buf[18];
    std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                  bytes[2], bytes[3], bytes[4], bytes[5]);
    return buf;
}

DeviceAddress DeviceAddress::from_string(const std::string& s) {
    DeviceAddress a;
    unsigned v[6];
    if (std::sscanf(s.c_str(), "%2x:%2x:%2x:%2x:%2x:%2x", &v[0], &v[1], &v[2], &v[3],
                    &v[4], &v[5]) != 6)
        throw std::runtime_error("DeviceAddress: bad format '" + s + "'");
    for (int i = 0; i < 6; ++i) a.bytes[i] = static_cast<std::uint8_t>(v[i]);
    return a;
}

DeviceAddress DeviceAddress::from_id(std::uint64_t id) {
    // Mix so small consecutive ids do not produce near-identical addresses.
    std::uint64_t h = id * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
    DeviceAddress a;
    for (int i = 0; i < 6; ++i) a.bytes[i] = static_cast<std::uint8_t>(h >> (8 * i));
    a.bytes[0] |= 0xC0;  // static random address prefix
    return a;
}

std::vector<std::uint8_t> AdvertisingPdu::serialize() const {
    if (payload.size() > 31)
        throw std::runtime_error("AdvertisingPdu: payload exceeds 31 bytes");
    std::vector<std::uint8_t> out;
    out.reserve(2 + 6 + payload.size());
    std::uint8_t header = static_cast<std::uint8_t>(type) & 0x0F;
    if (tx_addr_random) header |= 0x40;  // TxAdd bit
    out.push_back(header);
    out.push_back(static_cast<std::uint8_t>(6 + payload.size()));
    out.insert(out.end(), address.bytes.begin(), address.bytes.end());
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

AdvertisingPdu AdvertisingPdu::parse(const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < 8) throw std::runtime_error("AdvertisingPdu: truncated header");
    AdvertisingPdu pdu;
    pdu.type = static_cast<PduType>(bytes[0] & 0x0F);
    pdu.tx_addr_random = (bytes[0] & 0x40) != 0;
    const std::uint8_t length = bytes[1];
    if (length < 6 || length > 37)
        throw std::runtime_error("AdvertisingPdu: bad length field");
    if (bytes.size() != static_cast<std::size_t>(length) + 2)
        throw std::runtime_error("AdvertisingPdu: length/size mismatch");
    std::copy(bytes.begin() + 2, bytes.begin() + 8, pdu.address.bytes.begin());
    pdu.payload.assign(bytes.begin() + 8, bytes.end());
    return pdu;
}

std::vector<AdStructure> parse_ad_structures(const std::vector<std::uint8_t>& payload) {
    std::vector<AdStructure> out;
    std::size_t i = 0;
    while (i < payload.size()) {
        const std::uint8_t len = payload[i];
        if (len == 0) throw std::runtime_error("AD structure: zero length");
        if (i + 1 + len > payload.size())
            throw std::runtime_error("AD structure: truncated");
        AdStructure ad;
        ad.type = payload[i + 1];
        ad.data.assign(payload.begin() + static_cast<long>(i) + 2,
                       payload.begin() + static_cast<long>(i) + 1 + len);
        out.push_back(std::move(ad));
        i += 1 + len;
    }
    return out;
}

std::vector<std::uint8_t> build_ad_payload(const std::vector<AdStructure>& structures) {
    std::vector<std::uint8_t> out;
    for (const auto& ad : structures) {
        if (ad.data.size() + 1 > 255)
            throw std::runtime_error("AD structure: data too long");
        out.push_back(static_cast<std::uint8_t>(ad.data.size() + 1));
        out.push_back(ad.type);
        out.insert(out.end(), ad.data.begin(), ad.data.end());
    }
    if (out.size() > 31)
        throw std::runtime_error("AdvData payload exceeds 31 bytes");
    return out;
}

}  // namespace locble::ble
