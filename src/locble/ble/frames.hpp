#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "locble/ble/pdu.hpp"

namespace locble::ble {

/// 128-bit proximity UUID.
struct Uuid128 {
    std::array<std::uint8_t, 16> bytes{};

    bool operator==(const Uuid128&) const = default;
    auto operator<=>(const Uuid128&) const = default;

    std::string str() const;  ///< canonical 8-4-4-4-12 form
    static Uuid128 from_string(const std::string& s);  ///< throws on bad format
    static Uuid128 from_id(std::uint64_t id);          ///< deterministic sim UUID
};

/// Apple iBeacon advertisement content.
struct IBeaconFrame {
    Uuid128 uuid{};
    std::uint16_t major{0};
    std::uint16_t minor{0};
    /// Calibrated RSSI at 1 m, dBm (two's complement on air).
    std::int8_t measured_power{-59};
};

/// Google Eddystone-UID advertisement content.
struct EddystoneUidFrame {
    /// Calibrated TX power at 0 m, dBm.
    std::int8_t tx_power{-20};
    std::array<std::uint8_t, 10> namespace_id{};
    std::array<std::uint8_t, 6> instance_id{};
};

/// AltBeacon (open spec) advertisement content.
struct AltBeaconFrame {
    std::uint16_t manufacturer_id{0x0118};  ///< Radius Networks
    std::array<std::uint8_t, 20> beacon_id{};
    std::int8_t reference_rssi{-59};  ///< calibrated RSSI at 1 m
    std::uint8_t mfg_reserved{0};
};

/// Encode each frame as a complete AdvData payload (flags + vendor AD),
/// ready to drop into an AdvertisingPdu.
std::vector<std::uint8_t> encode_ibeacon(const IBeaconFrame& frame);
std::vector<std::uint8_t> encode_eddystone_uid(const EddystoneUidFrame& frame);
std::vector<std::uint8_t> encode_altbeacon(const AltBeaconFrame& frame);

/// Decode an AdvData payload; nullopt when the payload is well-formed BLE
/// but not this beacon format. Throws std::runtime_error on malformed AD
/// structures.
std::optional<IBeaconFrame> decode_ibeacon(const std::vector<std::uint8_t>& payload);
std::optional<EddystoneUidFrame> decode_eddystone_uid(
    const std::vector<std::uint8_t>& payload);
std::optional<AltBeaconFrame> decode_altbeacon(const std::vector<std::uint8_t>& payload);

/// The beacon frame families the simulator can emit.
enum class BeaconFormat { ibeacon, eddystone_uid, altbeacon };

/// Build a full non-connectable advertising PDU for beacon `id` in the given
/// format, with the calibrated 1 m power field set to `measured_power_dbm`.
AdvertisingPdu make_beacon_pdu(std::uint64_t id, BeaconFormat format,
                               int measured_power_dbm);

/// Extract the calibrated power field from any supported beacon payload;
/// nullopt if the payload is not a recognized beacon frame.
std::optional<int> beacon_measured_power(const std::vector<std::uint8_t>& payload);

}  // namespace locble::ble
