#include "locble/ble/frames.hpp"

#include <cstdio>
#include <stdexcept>

namespace locble::ble {

namespace {

constexpr std::uint16_t kAppleCompanyId = 0x004C;
constexpr std::uint8_t kIBeaconType = 0x02;
constexpr std::uint8_t kIBeaconLength = 0x15;  // 21 bytes follow
constexpr std::uint16_t kEddystoneServiceUuid = 0xFEAA;
constexpr std::uint8_t kEddystoneUidFrameType = 0x00;
constexpr std::uint16_t kAltBeaconCode = 0xBEAC;

AdStructure flags_ad() {
    // LE General Discoverable, BR/EDR not supported.
    return {kAdTypeFlags, {0x06}};
}

}  // namespace

std::string Uuid128::str() const {
    char buf[37];
    std::snprintf(buf, sizeof buf,
                  "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-"
                  "%02x%02x%02x%02x%02x%02x",
                  bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6],
                  bytes[7], bytes[8], bytes[9], bytes[10], bytes[11], bytes[12],
                  bytes[13], bytes[14], bytes[15]);
    return buf;
}

Uuid128 Uuid128::from_string(const std::string& s) {
    Uuid128 u;
    if (s.size() != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-')
        throw std::runtime_error("Uuid128: bad format '" + s + "'");
    std::size_t byte = 0;
    for (std::size_t i = 0; i < s.size() && byte < 16;) {
        if (s[i] == '-') {
            ++i;
            continue;
        }
        const auto hex = [&](char c) -> int {
            if (c >= '0' && c <= '9') return c - '0';
            if (c >= 'a' && c <= 'f') return c - 'a' + 10;
            if (c >= 'A' && c <= 'F') return c - 'A' + 10;
            throw std::runtime_error("Uuid128: bad hex digit");
        };
        u.bytes[byte++] = static_cast<std::uint8_t>(hex(s[i]) * 16 + hex(s[i + 1]));
        i += 2;
    }
    return u;
}

Uuid128 Uuid128::from_id(std::uint64_t id) {
    Uuid128 u;
    std::uint64_t h = id;
    for (int word = 0; word < 2; ++word) {
        h = h * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull;
        std::uint64_t v = h ^ (h >> 29);
        for (int i = 0; i < 8; ++i)
            u.bytes[word * 8 + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return u;
}

std::vector<std::uint8_t> encode_ibeacon(const IBeaconFrame& frame) {
    AdStructure mfg;
    mfg.type = kAdTypeManufacturerData;
    mfg.data = {static_cast<std::uint8_t>(kAppleCompanyId & 0xFF),
                static_cast<std::uint8_t>(kAppleCompanyId >> 8), kIBeaconType,
                kIBeaconLength};
    mfg.data.insert(mfg.data.end(), frame.uuid.bytes.begin(), frame.uuid.bytes.end());
    mfg.data.push_back(static_cast<std::uint8_t>(frame.major >> 8));
    mfg.data.push_back(static_cast<std::uint8_t>(frame.major & 0xFF));
    mfg.data.push_back(static_cast<std::uint8_t>(frame.minor >> 8));
    mfg.data.push_back(static_cast<std::uint8_t>(frame.minor & 0xFF));
    mfg.data.push_back(static_cast<std::uint8_t>(frame.measured_power));
    return build_ad_payload({flags_ad(), mfg});
}

std::optional<IBeaconFrame> decode_ibeacon(const std::vector<std::uint8_t>& payload) {
    for (const auto& ad : parse_ad_structures(payload)) {
        if (ad.type != kAdTypeManufacturerData || ad.data.size() != 25) continue;
        const std::uint16_t company =
            static_cast<std::uint16_t>(ad.data[0] | (ad.data[1] << 8));
        if (company != kAppleCompanyId || ad.data[2] != kIBeaconType ||
            ad.data[3] != kIBeaconLength)
            continue;
        IBeaconFrame f;
        std::copy(ad.data.begin() + 4, ad.data.begin() + 20, f.uuid.bytes.begin());
        f.major = static_cast<std::uint16_t>((ad.data[20] << 8) | ad.data[21]);
        f.minor = static_cast<std::uint16_t>((ad.data[22] << 8) | ad.data[23]);
        f.measured_power = static_cast<std::int8_t>(ad.data[24]);
        return f;
    }
    return std::nullopt;
}

std::vector<std::uint8_t> encode_eddystone_uid(const EddystoneUidFrame& frame) {
    AdStructure svc;
    svc.type = kAdTypeServiceData16;
    svc.data = {static_cast<std::uint8_t>(kEddystoneServiceUuid & 0xFF),
                static_cast<std::uint8_t>(kEddystoneServiceUuid >> 8),
                kEddystoneUidFrameType, static_cast<std::uint8_t>(frame.tx_power)};
    svc.data.insert(svc.data.end(), frame.namespace_id.begin(),
                    frame.namespace_id.end());
    svc.data.insert(svc.data.end(), frame.instance_id.begin(), frame.instance_id.end());
    svc.data.push_back(0x00);  // RFU
    svc.data.push_back(0x00);  // RFU
    return build_ad_payload({flags_ad(), svc});
}

std::optional<EddystoneUidFrame> decode_eddystone_uid(
    const std::vector<std::uint8_t>& payload) {
    for (const auto& ad : parse_ad_structures(payload)) {
        if (ad.type != kAdTypeServiceData16 || ad.data.size() < 20) continue;
        const std::uint16_t uuid =
            static_cast<std::uint16_t>(ad.data[0] | (ad.data[1] << 8));
        if (uuid != kEddystoneServiceUuid || ad.data[2] != kEddystoneUidFrameType)
            continue;
        EddystoneUidFrame f;
        f.tx_power = static_cast<std::int8_t>(ad.data[3]);
        std::copy(ad.data.begin() + 4, ad.data.begin() + 14, f.namespace_id.begin());
        std::copy(ad.data.begin() + 14, ad.data.begin() + 20, f.instance_id.begin());
        return f;
    }
    return std::nullopt;
}

std::vector<std::uint8_t> encode_altbeacon(const AltBeaconFrame& frame) {
    AdStructure mfg;
    mfg.type = kAdTypeManufacturerData;
    mfg.data = {static_cast<std::uint8_t>(frame.manufacturer_id & 0xFF),
                static_cast<std::uint8_t>(frame.manufacturer_id >> 8),
                static_cast<std::uint8_t>(kAltBeaconCode >> 8),
                static_cast<std::uint8_t>(kAltBeaconCode & 0xFF)};
    mfg.data.insert(mfg.data.end(), frame.beacon_id.begin(), frame.beacon_id.end());
    mfg.data.push_back(static_cast<std::uint8_t>(frame.reference_rssi));
    mfg.data.push_back(frame.mfg_reserved);
    return build_ad_payload({mfg});
}

std::optional<AltBeaconFrame> decode_altbeacon(const std::vector<std::uint8_t>& payload) {
    for (const auto& ad : parse_ad_structures(payload)) {
        if (ad.type != kAdTypeManufacturerData || ad.data.size() != 26) continue;
        const std::uint16_t code =
            static_cast<std::uint16_t>((ad.data[2] << 8) | ad.data[3]);
        if (code != kAltBeaconCode) continue;
        AltBeaconFrame f;
        f.manufacturer_id = static_cast<std::uint16_t>(ad.data[0] | (ad.data[1] << 8));
        std::copy(ad.data.begin() + 4, ad.data.begin() + 24, f.beacon_id.begin());
        f.reference_rssi = static_cast<std::int8_t>(ad.data[24]);
        f.mfg_reserved = ad.data[25];
        return f;
    }
    return std::nullopt;
}

AdvertisingPdu make_beacon_pdu(std::uint64_t id, BeaconFormat format,
                               int measured_power_dbm) {
    AdvertisingPdu pdu;
    pdu.type = PduType::adv_nonconn_ind;
    pdu.address = DeviceAddress::from_id(id);
    const auto power = static_cast<std::int8_t>(measured_power_dbm);
    switch (format) {
        case BeaconFormat::ibeacon: {
            IBeaconFrame f;
            f.uuid = Uuid128::from_id(id);
            f.major = static_cast<std::uint16_t>(id >> 16);
            f.minor = static_cast<std::uint16_t>(id & 0xFFFF);
            f.measured_power = power;
            pdu.payload = encode_ibeacon(f);
            break;
        }
        case BeaconFormat::eddystone_uid: {
            EddystoneUidFrame f;
            f.tx_power = power;
            const Uuid128 u = Uuid128::from_id(id);
            std::copy(u.bytes.begin(), u.bytes.begin() + 10, f.namespace_id.begin());
            std::copy(u.bytes.begin() + 10, u.bytes.begin() + 16, f.instance_id.begin());
            pdu.payload = encode_eddystone_uid(f);
            break;
        }
        case BeaconFormat::altbeacon: {
            AltBeaconFrame f;
            const Uuid128 u = Uuid128::from_id(id);
            std::copy(u.bytes.begin(), u.bytes.end(), f.beacon_id.begin());
            f.beacon_id[16] = static_cast<std::uint8_t>(id >> 24);
            f.beacon_id[17] = static_cast<std::uint8_t>(id >> 16);
            f.beacon_id[18] = static_cast<std::uint8_t>(id >> 8);
            f.beacon_id[19] = static_cast<std::uint8_t>(id);
            f.reference_rssi = power;
            pdu.payload = encode_altbeacon(f);
            break;
        }
    }
    return pdu;
}

std::optional<int> beacon_measured_power(const std::vector<std::uint8_t>& payload) {
    if (auto ib = decode_ibeacon(payload)) return ib->measured_power;
    if (auto ab = decode_altbeacon(payload)) return ab->reference_rssi;
    if (auto ed = decode_eddystone_uid(payload)) return ed->tx_power;
    return std::nullopt;
}

}  // namespace locble::ble
