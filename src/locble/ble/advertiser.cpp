#include "locble/ble/advertiser.hpp"

namespace locble::ble {

Advertiser::Advertiser(std::uint64_t id, const AdvertiserProfile& profile)
    : id_(id), profile_(profile),
      pdu_(make_beacon_pdu(id, profile.format, profile.measured_power_dbm)) {}

std::vector<Transmission> Advertiser::transmissions(double t0, double t1,
                                                    locble::Rng& rng) const {
    std::vector<Transmission> out;
    constexpr double kInterChannelGap = 0.0004;  // ~400 us between channels
    double t = t0 + rng.uniform(0.0, profile_.interval_s);  // unsynchronized start
    while (t < t1) {
        for (std::size_t c = 0; c < kAdvChannels.size(); ++c) {
            const double tx_time = t + static_cast<double>(c) * kInterChannelGap;
            if (tx_time >= t1) break;
            out.push_back({tx_time, kAdvChannels[c], id_, pdu_});
        }
        // advDelay: 0-10 ms pseudo-random per spec.
        t += profile_.interval_s + rng.uniform(0.0, 0.010);
    }
    return out;
}

AdvertiserProfile estimote_profile() {
    AdvertiserProfile p;
    p.name = "Estimote";
    p.interval_s = 0.1;
    p.tx_power_dbm = -4.0;
    p.measured_power_dbm = -62;
    p.tx_power_jitter_db = 0.25;
    p.format = BeaconFormat::ibeacon;
    return p;
}

AdvertiserProfile radbeacon_profile() {
    AdvertiserProfile p;
    p.name = "RadBeacon";
    p.interval_s = 0.1;
    p.tx_power_dbm = -3.0;
    p.measured_power_dbm = -61;
    p.tx_power_jitter_db = 0.3;
    p.format = BeaconFormat::altbeacon;
    return p;
}

AdvertiserProfile ios_device_profile() {
    AdvertiserProfile p;
    p.name = "iOS device";
    // Smart devices pack the antenna tighter (Sec. 7.6.3): slightly noisier
    // transmit chain.
    p.interval_s = 0.1;
    p.tx_power_dbm = -6.0;
    p.measured_power_dbm = -65;
    p.tx_power_jitter_db = 0.8;
    p.format = BeaconFormat::ibeacon;
    return p;
}

}  // namespace locble::ble
