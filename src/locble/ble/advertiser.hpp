#pragma once

#include <cstdint>
#include <vector>

#include "locble/ble/frames.hpp"
#include "locble/ble/pdu.hpp"
#include "locble/common/rng.hpp"

namespace locble::ble {

/// One on-air transmission of an advertising PDU on one channel.
struct Transmission {
    double t{0.0};  ///< seconds
    AdvChannel channel{AdvChannel::ch37};
    std::uint64_t advertiser_id{0};
    AdvertisingPdu pdu;
};

/// Hardware profile of a beacon — captures the chipset differences Fig. 14
/// measures (dedicated beacons vs smart-device-integrated beacons).
struct AdvertiserProfile {
    std::string name{"generic"};
    double interval_s{0.1};       ///< advertising interval (10 Hz, Sec. 7.2)
    double tx_power_dbm{0.0};     ///< radiated power
    int measured_power_dbm{-59};  ///< calibrated 1 m RSSI carried in the frame
    double tx_power_jitter_db{0.3};  ///< per-packet transmit power wobble
    BeaconFormat format{BeaconFormat::ibeacon};
};

/// Simulated BLE beacon advertiser.
///
/// Each advertising event transmits the same PDU on channels 37, 38, 39 in
/// the fixed hop sequence with ~0.4 ms spacing; events are separated by the
/// advertising interval plus the spec's 0-10 ms pseudo-random advDelay.
class Advertiser {
public:
    Advertiser(std::uint64_t id, const AdvertiserProfile& profile);

    /// All transmissions in [t0, t1). Deterministic for a given Rng state.
    std::vector<Transmission> transmissions(double t0, double t1, locble::Rng& rng) const;

    std::uint64_t id() const { return id_; }
    const AdvertiserProfile& profile() const { return profile_; }
    const AdvertisingPdu& pdu() const { return pdu_; }

private:
    std::uint64_t id_;
    AdvertiserProfile profile_;
    AdvertisingPdu pdu_;
};

/// Ready-made profiles mirroring the paper's targets (Sec. 7.2, Fig. 14).
AdvertiserProfile estimote_profile();
AdvertiserProfile radbeacon_profile();
AdvertiserProfile ios_device_profile();

}  // namespace locble::ble
