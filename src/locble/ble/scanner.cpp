#include "locble/ble/scanner.hpp"

#include <cmath>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::ble {

Scanner::Scanner(const Config& cfg) : cfg_(cfg) {
    if (cfg.scan_interval_s <= 0.0)
        throw std::invalid_argument("Scanner: scan interval must be positive");
    if (cfg.scan_window_s <= 0.0 || cfg.scan_window_s > cfg.scan_interval_s)
        throw std::invalid_argument("Scanner: window must lie in (0, interval]");
}

std::vector<ScanReport> Scanner::receive(const std::vector<Transmission>& transmissions,
                                         locble::Rng& rng) const {
    LOCBLE_SPAN("scanner.receive");
    std::vector<ScanReport> out;
    if (transmissions.empty()) return out;
    // Local tallies flushed once per call keep the per-packet loop free of
    // instrumentation branches.
    std::uint64_t received_per_ch[3] = {0, 0, 0};
    std::uint64_t duty_missed = 0, off_channel = 0, crc_lost = 0;
    const double t0 = transmissions.front().t;
    for (const auto& tx : transmissions) {
        // Which scan interval does this transmission land in, and where?
        const double rel = tx.t - t0;
        const auto slot = static_cast<std::int64_t>(std::floor(rel / cfg_.scan_interval_s));
        const double in_slot = rel - static_cast<double>(slot) * cfg_.scan_interval_s;
        if (in_slot > cfg_.scan_window_s) {  // radio idle (duty cycling)
            ++duty_missed;
            continue;
        }
        // Channel rotation: one advertising channel per interval.
        const auto listening = kAdvChannels[static_cast<std::size_t>(slot % 3)];
        if (listening != tx.channel) {
            ++off_channel;
            continue;
        }
        if (rng.chance(cfg_.receiver.loss_probability)) {  // CRC/interference
            ++crc_lost;
            continue;
        }
        ++received_per_ch[static_cast<std::size_t>(tx.channel) -
                          static_cast<std::size_t>(AdvChannel::ch37)];
        out.push_back({tx.t, tx.channel, tx.advertiser_id, tx.pdu.address, tx.pdu.payload});
    }
    LOCBLE_COUNT("scanner.received.ch37", received_per_ch[0]);
    LOCBLE_COUNT("scanner.received.ch38", received_per_ch[1]);
    LOCBLE_COUNT("scanner.received.ch39", received_per_ch[2]);
    LOCBLE_COUNT("scanner.missed.duty_cycle", duty_missed);
    LOCBLE_COUNT("scanner.missed.off_channel", off_channel);
    LOCBLE_COUNT("scanner.lost.crc", crc_lost);
    return out;
}

ReceiverProfile iphone5s_receiver() {
    ReceiverProfile r;
    r.name = "iPhone 5s";
    r.rssi_offset_db = 0.0;
    r.rssi_noise_db = 1.4;
    r.quantization_db = 1.0;
    r.loss_probability = 0.10;
    return r;
}

ReceiverProfile nexus5x_receiver() {
    ReceiverProfile r;
    r.name = "Nexus 5x";
    r.rssi_offset_db = -6.0;
    r.rssi_noise_db = 1.8;
    r.quantization_db = 1.0;
    r.loss_probability = 0.16;
    return r;
}

ReceiverProfile nexus6_receiver() {
    ReceiverProfile r;
    r.name = "Moto Nexus 6";
    r.rssi_offset_db = 4.0;
    r.rssi_noise_db = 1.6;
    r.quantization_db = 1.0;
    r.loss_probability = 0.13;
    return r;
}

}  // namespace locble::ble
