#include "locble/ble/scanner.hpp"

#include <cmath>
#include <stdexcept>

namespace locble::ble {

Scanner::Scanner(const Config& cfg) : cfg_(cfg) {
    if (cfg.scan_interval_s <= 0.0)
        throw std::invalid_argument("Scanner: scan interval must be positive");
    if (cfg.scan_window_s <= 0.0 || cfg.scan_window_s > cfg.scan_interval_s)
        throw std::invalid_argument("Scanner: window must lie in (0, interval]");
}

std::vector<ScanReport> Scanner::receive(const std::vector<Transmission>& transmissions,
                                         locble::Rng& rng) const {
    std::vector<ScanReport> out;
    if (transmissions.empty()) return out;
    const double t0 = transmissions.front().t;
    for (const auto& tx : transmissions) {
        // Which scan interval does this transmission land in, and where?
        const double rel = tx.t - t0;
        const auto slot = static_cast<std::int64_t>(std::floor(rel / cfg_.scan_interval_s));
        const double in_slot = rel - static_cast<double>(slot) * cfg_.scan_interval_s;
        if (in_slot > cfg_.scan_window_s) continue;  // radio idle (duty cycling)
        // Channel rotation: one advertising channel per interval.
        const auto listening = kAdvChannels[static_cast<std::size_t>(slot % 3)];
        if (listening != tx.channel) continue;
        if (rng.chance(cfg_.receiver.loss_probability)) continue;  // CRC/interference
        out.push_back({tx.t, tx.channel, tx.advertiser_id, tx.pdu.address, tx.pdu.payload});
    }
    return out;
}

ReceiverProfile iphone5s_receiver() {
    ReceiverProfile r;
    r.name = "iPhone 5s";
    r.rssi_offset_db = 0.0;
    r.rssi_noise_db = 1.4;
    r.quantization_db = 1.0;
    r.loss_probability = 0.10;
    return r;
}

ReceiverProfile nexus5x_receiver() {
    ReceiverProfile r;
    r.name = "Nexus 5x";
    r.rssi_offset_db = -6.0;
    r.rssi_noise_db = 1.8;
    r.quantization_db = 1.0;
    r.loss_probability = 0.16;
    return r;
}

ReceiverProfile nexus6_receiver() {
    ReceiverProfile r;
    r.name = "Moto Nexus 6";
    r.rssi_offset_db = 4.0;
    r.rssi_noise_db = 1.6;
    r.quantization_db = 1.0;
    r.loss_probability = 0.13;
    return r;
}

}  // namespace locble::ble
