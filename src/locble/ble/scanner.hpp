#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "locble/ble/advertiser.hpp"
#include "locble/common/rng.hpp"

namespace locble::ble {

/// One delivered scan report — what a smartphone BLE API (CoreBluetooth /
/// BluetoothLeScanner) hands to the application. RSSI is filled in later by
/// the channel model; the scanner itself only decides *which* transmissions
/// are heard.
struct ScanReport {
    double t{0.0};
    AdvChannel channel{AdvChannel::ch37};
    std::uint64_t advertiser_id{0};
    DeviceAddress address{};
    std::vector<std::uint8_t> payload;
};

/// Receiver chipset profile — models the per-phone RSSI offsets and
/// quantization Fig. 2 shows, and the BCM4334-class +-5 dB accuracy from
/// Sec. 2.4.
struct ReceiverProfile {
    std::string name{"generic"};
    double rssi_offset_db{0.0};    ///< systematic chipset offset
    double rssi_noise_db{1.5};     ///< measurement noise std (CMOS/thermal)
    double quantization_db{1.0};   ///< RSSI reporting step
    double loss_probability{0.1};  ///< CRC/interference packet loss
};

/// Simulated BLE scanner with interval/window duty cycling and channel
/// rotation.
///
/// The scanner listens on one advertising channel at a time, rotating
/// channels every scan interval; a transmission is heard when it lands
/// inside the scan window on the listened channel and survives random loss.
class Scanner {
public:
    struct Config {
        double scan_interval_s{0.1};
        double scan_window_s{0.1};  ///< == interval -> continuous scanning
        ReceiverProfile receiver{};
    };

    explicit Scanner(const Config& cfg);

    /// Filter `transmissions` (must be time-sorted) down to delivered scan
    /// reports. Deterministic given the Rng state.
    std::vector<ScanReport> receive(const std::vector<Transmission>& transmissions,
                                    locble::Rng& rng) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

/// Receiver profiles for the phones in Fig. 2.
ReceiverProfile iphone5s_receiver();
ReceiverProfile nexus5x_receiver();
ReceiverProfile nexus6_receiver();

}  // namespace locble::ble
