#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace locble::ble {

/// BLE advertising channel indices. Advertising hops over the three
/// dedicated 2 MHz channels 37/38/39 in a fixed sequence (Sec. 2.2).
enum class AdvChannel : std::uint8_t { ch37 = 37, ch38 = 38, ch39 = 39 };

constexpr std::array<AdvChannel, 3> kAdvChannels{AdvChannel::ch37, AdvChannel::ch38,
                                                 AdvChannel::ch39};

/// Advertising-channel PDU types (BLE 4.2 spec Vol 6 Part B 2.3); the low
/// 4 bits of the PDU header. The type determines connectability — the
/// property LocBLE inspects to target non-connectable beacons.
enum class PduType : std::uint8_t {
    adv_ind = 0x0,          ///< connectable undirected
    adv_direct_ind = 0x1,   ///< connectable directed
    adv_nonconn_ind = 0x2,  ///< non-connectable undirected (beacons)
    scan_req = 0x3,
    scan_rsp = 0x4,
    connect_req = 0x5,
    adv_scan_ind = 0x6,     ///< scannable undirected
};

/// Whether a PDU type accepts connections. Non-connectable beacons extend
/// battery life; LocBLE locates those (Sec. 2.2).
bool is_connectable(PduType type);

/// 48-bit device address.
struct DeviceAddress {
    std::array<std::uint8_t, 6> bytes{};

    bool operator==(const DeviceAddress&) const = default;
    auto operator<=>(const DeviceAddress&) const = default;

    std::string str() const;                     ///< "aa:bb:cc:dd:ee:ff"
    static DeviceAddress from_string(const std::string& s);  ///< throws on bad format
    /// Deterministic pseudo-address derived from an integer id (for sims).
    static DeviceAddress from_id(std::uint64_t id);
};

/// An advertising-channel PDU: 2-byte header (type, TxAdd, length) + AdvA
/// + AdvData payload.
struct AdvertisingPdu {
    PduType type{PduType::adv_nonconn_ind};
    bool tx_addr_random{true};
    DeviceAddress address{};
    std::vector<std::uint8_t> payload;  ///< AdvData: sequence of AD structures

    /// Serialize to air format: header, AdvA, AdvData.
    std::vector<std::uint8_t> serialize() const;
    /// Parse from air format; throws std::runtime_error on truncated or
    /// inconsistent input (bad length byte, payload > 31 bytes).
    static AdvertisingPdu parse(const std::vector<std::uint8_t>& bytes);
};

/// One AD (advertising data) structure: length, type, data.
struct AdStructure {
    std::uint8_t type{0};
    std::vector<std::uint8_t> data;
};

/// Split an AdvData payload into AD structures; throws std::runtime_error
/// on malformed lengths.
std::vector<AdStructure> parse_ad_structures(const std::vector<std::uint8_t>& payload);

/// Concatenate AD structures back into an AdvData payload. Throws when the
/// result would exceed the legacy 31-byte advertising payload limit.
std::vector<std::uint8_t> build_ad_payload(const std::vector<AdStructure>& structures);

// Common AD types.
inline constexpr std::uint8_t kAdTypeFlags = 0x01;
inline constexpr std::uint8_t kAdTypeServiceData16 = 0x16;
inline constexpr std::uint8_t kAdTypeManufacturerData = 0xFF;

}  // namespace locble::ble
