#include "locble/core/proximity_assist.hpp"

#include <algorithm>

namespace locble::core {

ProximityAssist::Result ProximityAssist::refine(
    const LocationFit& fit, const locble::TimeSeries& recent_rss,
    const locble::Vec2& observer_position) const {
    Result out;
    out.location = fit.location;
    if (recent_rss.empty()) return out;

    out.proximity_range_m = ranger_.estimate_distance(recent_rss);
    out.zone = baseline::FixedModelRanger::zone_for(out.proximity_range_m);

    const locble::Vec2 offset = fit.location - observer_position;
    const double regression_range = offset.norm();
    // Engage only when both agree the target is close; a proximity reading
    // alone can be a fade, a close regression estimate alone can be a bias.
    if (regression_range > cfg_.engage_range_m ||
        out.proximity_range_m > cfg_.engage_range_m)
        return out;

    // Keep the regression's bearing, blend the range. Blend weight grows as
    // the proximity range shrinks (proximity is most trustworthy very close).
    const double closeness =
        1.0 - std::clamp(out.proximity_range_m / cfg_.engage_range_m, 0.0, 1.0);
    const double w = cfg_.max_blend * closeness;
    const double blended_range =
        (1.0 - w) * regression_range + w * out.proximity_range_m;
    const locble::Vec2 bearing =
        regression_range > 1e-9 ? offset / regression_range : locble::Vec2{1.0, 0.0};
    out.location = observer_position + bearing * blended_range;
    out.engaged = true;
    return out;
}

}  // namespace locble::core
