#pragma once

#include <optional>

#include "locble/baseline/ranging.hpp"
#include "locble/common/timeseries.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {

/// Last-metre refinement (Sec. 9.2, implemented future work).
///
/// The paper observes that "Bluetooth proximity actually demonstrates fairly
/// good accuracy within 2 m" and proposes folding it into LocBLE to push
/// sub-metre. This module does that: when the recent RSS indicates the
/// immediate/near zone and the regression estimate also places the target
/// close, the estimate's *radial* distance is blended toward the
/// proximity-derived range (bearing is kept — proximity carries none).
class ProximityAssist {
public:
    struct Config {
        /// Blending starts when both estimates agree the target is within
        /// this range.
        double engage_range_m{2.5};
        /// Weight of the proximity range at 0 m, decaying linearly to 0 at
        /// engage_range_m (close in, proximity is the better ranger).
        double max_blend{0.7};
        baseline::FixedModelRanger::Config ranger{};
    };

    ProximityAssist() : ProximityAssist(Config{}) {}
    explicit ProximityAssist(const Config& cfg) : cfg_(cfg), ranger_(cfg.ranger) {}

    struct Result {
        locble::Vec2 location;   ///< refined location (observer frame)
        bool engaged{false};     ///< whether proximity was blended in
        double proximity_range_m{0.0};
        baseline::ProximityZone zone{baseline::ProximityZone::unknown};
    };

    /// Refine `fit` using the tail of the RSS stream, with the observer's
    /// current position (observer frame) as the range origin. Returns the
    /// original location untouched when out of the engage range.
    Result refine(const LocationFit& fit, const locble::TimeSeries& recent_rss,
                  const locble::Vec2& observer_position) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    baseline::FixedModelRanger ranger_;
};

}  // namespace locble::core
