#pragma once

#include <cstdint>
#include <vector>

#include "locble/common/timeseries.hpp"
#include "locble/common/vec2.hpp"
#include "locble/core/dtw.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {

/// One beacon participating in multi-beacon calibration: its preprocessed
/// RSS sequence and its independently estimated location fit.
struct ClusterCandidate {
    std::uint64_t id{0};
    locble::TimeSeries rss;
    LocationFit fit;
};

/// Result of the clustering calibration (Algo. 2).
struct ClusterCalibration {
    locble::Vec2 calibrated;  ///< confidence-weighted position
    double combined_confidence{0.0};
    std::vector<std::uint64_t> members;  ///< beacons whose RSS matched the target's
    std::size_t rejected{0};             ///< candidates DTW voted out
};

/// Multi-beacon clustering calibration (Sec. 6).
///
/// Co-located beacons see the same geometry during the observer's L-shaped
/// walk, so their RSS *trends* match; the matcher low-passes and
/// differentiates each sequence (removing device-specific offsets), aligns
/// candidates onto the target's timestamps, and runs the LB-gated segmented
/// DTW vote. Estimates from the clustered beacons are then combined with
/// normalized confidence weights (Algo. 2's probabilistic weighting).
class ClusteringCalibrator {
public:
    struct Config {
        SegmentedDtwMatcher::Config dtw{};
        std::size_t smooth_half_window{4};  ///< pre-differentiation smoothing
        /// Differences are taken over this many samples rather than one:
        /// at 10 Hz a 5-sample stride spans 0.5 s, long enough for the
        /// walking-induced trend to clear the smoothed noise floor.
        std::size_t diff_stride{5};
        /// Sec. 6's precondition is "multiple beacons with similar location
        /// estimation (or located nearby)": a neighbor whose own fit lands
        /// farther than this from the target's fit is not a cluster
        /// candidate, regardless of DTW.
        double max_candidate_distance_m{3.0};
    };

    ClusteringCalibrator() : ClusteringCalibrator(Config{}) {}
    explicit ClusteringCalibrator(const Config& cfg) : cfg_(cfg), matcher_(cfg.dtw) {}

    /// Calibrate the target's estimate using neighboring beacons. The
    /// target itself always participates in the weighted sum.
    ClusterCalibration calibrate(const ClusterCandidate& target,
                                 const std::vector<ClusterCandidate>& neighbors) const;

    /// The trend signal the DTW matcher actually compares: RSS resampled on
    /// `times`, smoothed, differenced over `stride` samples, then z-scored
    /// so chipset offsets and amplitude differences drop out and only the
    /// *shape* of the trend is compared (exposed for tests/bench).
    static std::vector<double> trend_signal(const locble::TimeSeries& rss,
                                            const std::vector<double>& times,
                                            std::size_t smooth_half_window,
                                            std::size_t stride);

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
    SegmentedDtwMatcher matcher_;
};

}  // namespace locble::core
