#include "locble/core/location_solver3.hpp"

#include <algorithm>
#include <cmath>

#include "locble/common/linalg.hpp"
#include "locble/common/stats.hpp"

namespace locble::core {

namespace {

constexpr double kLog10 = 2.302585092994046;

double predict_rssi3(const locble::Vec3& location, double exponent, double gamma_dbm,
                     const FusedSample3& s) {
    const double dx = location.x + s.p;
    const double dy = location.y + s.q;
    const double dz = location.z + s.r;
    const double l = std::max(std::sqrt(dx * dx + dy * dy + dz * dz), 0.1);
    return gamma_dbm - 10.0 * exponent * std::log10(l);
}

/// Projected Gauss-Newton over (x, h, z, Gamma) at fixed exponent; z is
/// frozen when the walk carries no vertical excitation.
void refine3(const std::vector<FusedSample3>& samples, double exponent,
             locble::Vec3& location, double& gamma, bool solve_z, double gamma_min,
             double gamma_max) {
    constexpr int kIterations = 14;
    const std::size_t dim = solve_z ? 4 : 3;
    double x = location.x, h = location.y, z = location.z, g = gamma;
    for (int it = 0; it < kIterations; ++it) {
        locble::Matrix jtj(dim, std::vector<double>(dim, 0.0));
        std::vector<double> jtr(dim, 0.0);
        for (const auto& s : samples) {
            const double dx = x + s.p;
            const double dy = h + s.q;
            const double dz = z + s.r;
            const double l2 = std::max(dx * dx + dy * dy + dz * dz, 0.01);
            const double pred = g - 5.0 * exponent * std::log10(l2);
            const double res = s.rssi - pred;
            const double c = -10.0 * exponent / kLog10;
            std::vector<double> jac(dim, 0.0);
            jac[0] = c * dx / l2;
            jac[1] = c * dy / l2;
            if (solve_z) {
                jac[2] = c * dz / l2;
                jac[3] = 1.0;
            } else {
                jac[2] = 1.0;
            }
            for (std::size_t a = 0; a < dim; ++a) {
                jtr[a] += jac[a] * res;
                for (std::size_t b = 0; b < dim; ++b) jtj[a][b] += jac[a] * jac[b];
            }
        }
        const double damping = 1e-6 + (it < 3 ? 0.1 : 0.0);
        for (std::size_t a = 0; a < dim; ++a)
            jtj[a][a] = jtj[a][a] * (1.0 + damping) + 1e-9;
        std::vector<double> delta;
        try {
            delta = locble::solve_linear(std::move(jtj), std::move(jtr));
        } catch (const std::exception&) {
            break;
        }
        x += delta[0];
        h += delta[1];
        double step = std::abs(delta[0]) + std::abs(delta[1]);
        if (solve_z) {
            z += delta[2];
            g = std::clamp(g + delta[3], gamma_min, gamma_max);
            step += std::abs(delta[2]) + std::abs(delta[3]);
        } else {
            g = std::clamp(g + delta[2], gamma_min, gamma_max);
            step += std::abs(delta[2]);
        }
        if (step < 1e-6) break;
    }
    location = {x, h, z};
    gamma = g;
}

}  // namespace

ResidualStats residual_stats3(const std::vector<FusedSample3>& samples,
                              const locble::Vec3& location, double exponent,
                              double gamma_dbm) {
    ResidualStats out;
    if (samples.empty()) return out;
    std::vector<double> residuals;
    residuals.reserve(samples.size());
    for (const auto& s : samples)
        residuals.push_back(s.rssi - predict_rssi3(location, exponent, gamma_dbm, s));
    out.mean_db = locble::mean(residuals);
    out.stddev_db = std::sqrt(locble::variance(residuals));
    double ss = 0.0;
    for (double r : residuals) ss += r * r;
    out.rms_db = std::sqrt(ss / static_cast<double>(residuals.size()));
    const double sigma = std::max(out.stddev_db, 1e-6);
    out.confidence = std::exp(-(out.mean_db * out.mean_db) / (2.0 * sigma * sigma));
    return out;
}

std::optional<LocationFit3> LocationSolver3::solve(
    const std::vector<FusedSample3>& samples, const SolveHints& hints) const {
    if (samples.size() < cfg_.base.min_samples) return std::nullopt;

    // Vertical observability: does the walk move in z at all?
    double rmin = samples.front().r, rmax = samples.front().r;
    for (const auto& s : samples) {
        rmin = std::min(rmin, s.r);
        rmax = std::max(rmax, s.r);
    }
    const bool solve_z = (rmax - rmin) >= cfg_.min_vertical_spread;

    // Seed from the 2-D stack on the horizontal projection.
    std::vector<FusedSample> flat;
    flat.reserve(samples.size());
    for (const auto& s : samples)
        flat.push_back({s.t, s.p, s.q, s.rssi, s.segment});
    const LocationSolver solver2(cfg_.base);
    const auto seed = solver2.solve(flat, hints);
    if (!seed) return std::nullopt;

    double gamma_min = cfg_.base.gamma_min_dbm;
    double gamma_max = cfg_.base.gamma_max_dbm;
    if (hints.gamma_band_dbm) {
        gamma_min = std::max(gamma_min, hints.gamma_band_dbm->first);
        gamma_max = std::min(gamma_max, hints.gamma_band_dbm->second);
    }

    LocationFit3 fit;
    fit.exponent = seed->exponent;
    fit.z_observable = solve_z;
    double best_rms = 1e300;
    // z is only weakly coupled; try a few starting heights and keep the best.
    const double z_starts[] = {0.0, 1.0, -1.0, 2.0};
    for (double z0 : z_starts) {
        locble::Vec3 loc{seed->location, z0};
        double g = std::clamp(seed->gamma_dbm, gamma_min, gamma_max);
        refine3(samples, seed->exponent, loc, g, solve_z, gamma_min, gamma_max);
        const ResidualStats st = residual_stats3(samples, loc, seed->exponent, g);
        if (st.rms_db < best_rms) {
            best_rms = st.rms_db;
            fit.location = loc;
            fit.gamma_dbm = g;
            fit.residual_db = st.rms_db;
            fit.confidence = st.confidence;
        }
        if (!solve_z) break;  // z frozen: every start is identical
    }
    if (best_rms >= 1e300) return std::nullopt;
    if (fit.location.xy().norm() > cfg_.base.max_range_m) return std::nullopt;
    return fit;
}

}  // namespace locble::core
