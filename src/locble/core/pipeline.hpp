#pragma once

#include <optional>
#include <vector>

#include "locble/common/timeseries.hpp"
#include "locble/core/envaware.hpp"
#include "locble/core/location_solver.hpp"
#include "locble/dsp/anf.hpp"
#include "locble/motion/dead_reckoning.hpp"

namespace locble::core {

/// Output of one LocBLE measurement (Algo. 1's return value).
struct LocateResult {
    /// Stage-level accounting for one locate() call, populated on every run
    /// regardless of the locble::obs build/runtime switches — library users
    /// get solver and batching insight without linking the tracer.
    struct Diagnostics {
        int solver_calls{0};         ///< regression solves (one per flushed batch)
        int solver_candidates{0};    ///< exponent grid points evaluated in total
        int solver_failures{0};      ///< grid points rejected (degenerate/implausible)
        int solver_multistarts{0};   ///< solves that needed the multi-start fallback
        int solver_warm_starts{0};   ///< grid points seeded from a previous flush
        int convergence_failures{0}; ///< solves that returned no fit at all
        int envaware_windows{0};     ///< batches EnvAware classified
        std::vector<std::size_t> batch_samples;  ///< RSS samples per Algo. 1 batch
    };

    std::optional<LocationFit> fit;  ///< nullopt when no regression converged
    int regression_restarts{0};      ///< environment changes that reset the fit
    std::size_t samples_used{0};     ///< samples in the final regression
    std::vector<channel::PropagationClass> window_classes;  ///< per-batch EnvAware output
    Diagnostics diagnostics;
};

/// The LocBLE estimation pipeline (Sec. 5.3, Algorithm 1): batches RSS,
/// classifies the environment per batch (EnvAware), denoises with ANF,
/// matches RSS to dead-reckoned movement by timestamp, and maintains the
/// elliptical regression — restarting it when the environment changes.
class LocBle {
public:
    struct Config {
        dsp::Anf::Config anf{};
        LocationSolver::Config solver{};
        double batch_seconds{2.0};   ///< Algo. 1 collects 2-3 s batches
        bool use_anf{true};          ///< ablation switch (Fig. 5)
        bool use_envaware{true};     ///< ablation switch (Fig. 5)
        /// Calibrated 1 m RSSI read from the target's beacon frame (iBeacon
        /// measured power / Eddystone txPower); when set, Gamma is searched
        /// in [prior - below, prior + above]. The band is asymmetric:
        /// fading, blockage and body shadowing only ever *lower* the
        /// received level relative to calibration.
        std::optional<double> gamma_prior_dbm;
        double gamma_prior_below_db{5.0};
        double gamma_prior_above_db{3.0};
        /// Diagnostics/ablation: let EnvAware's regime constrain the
        /// exponent band and widen the Gamma band (the Sec. 4.1 coupling).
        bool use_regime_bands{true};
        /// Diagnostics/ablation: restart the regression when the regime
        /// changes (Algo. 1 line 13).
        bool restart_on_change{true};
    };

    /// `envaware` must be trained when cfg.use_envaware is true; pass
    /// std::nullopt to run without environment recognition.
    LocBle(const Config& cfg, std::optional<EnvAware> envaware);
    explicit LocBle(const Config& cfg) : LocBle(cfg, std::nullopt) {}

    /// Locate a stationary target from the observer's RSS capture and
    /// dead-reckoned movement. RSS timestamps and the motion estimate must
    /// share a clock.
    LocateResult locate(const locble::TimeSeries& raw_rss,
                        const motion::MotionEstimate& observer) const;

    /// Locate a *moving* target: the target transfers its own motion
    /// estimate after the measurement (Sec. 5). `target_frame_rotation` is
    /// the target's initial magnetic heading minus the observer's, which
    /// aligns the two dead-reckoning frames through the shared compass
    /// reference.
    LocateResult locate(const locble::TimeSeries& raw_rss,
                        const motion::MotionEstimate& observer,
                        const motion::MotionEstimate& target,
                        double target_frame_rotation) const;

    const Config& config() const { return cfg_; }

private:
    LocateResult run(const locble::TimeSeries& raw_rss,
                     const motion::MotionEstimate& observer,
                     const motion::MotionEstimate* target,
                     double target_frame_rotation) const;

    Config cfg_;
    std::optional<EnvAware> envaware_;
    LocationSolver solver_;
};

/// Rotate a dead-reckoned path by `angle` radians (frame alignment for the
/// moving-target mode).
motion::MotionEstimate rotate_motion(const motion::MotionEstimate& m, double angle);

}  // namespace locble::core
