#pragma once

#include <optional>
#include <vector>

#include "locble/common/vec3.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {

/// One fused 3-D measurement: relative displacement (p, q, r) between the
/// target and observer plus the denoised RSS, as in the 2-D FusedSample but
/// with a vertical component.
struct FusedSample3 {
    double t{0.0};
    double p{0.0};
    double q{0.0};
    double r{0.0};  ///< relative z displacement (m)
    double rssi{0.0};
    int segment{0};
};

/// 3-D fit (Sec. 9.3's extension, implemented): target position in the
/// observer frame with z relative to the phone's starting height.
struct LocationFit3 {
    locble::Vec3 location;
    double exponent{2.0};
    double gamma_dbm{-59.0};
    double residual_db{0.0};
    double confidence{0.0};
    /// z is only observable when the walk had vertical excitation; when it
    /// did not, the solver pins z to 0 and reports this flag.
    bool z_observable{false};
};

/// 3-D location estimator: the 2-D elliptical-regression/Gauss-Newton stack
/// lifted by one dimension. The 2-D solve on the horizontal projection
/// seeds (x, h); z starts at 0 and is released only when the walk's
/// vertical spread crosses `min_vertical_spread`.
class LocationSolver3 {
public:
    struct Config {
        LocationSolver::Config base{};
        /// Minimum spread of r (m) before z is treated as observable —
        /// raising the phone overhead and to the knee spans ~1 m.
        double min_vertical_spread{0.5};
    };

    LocationSolver3() : LocationSolver3(Config{}) {}
    explicit LocationSolver3(const Config& cfg) : cfg_(cfg) {}

    std::optional<LocationFit3> solve(const std::vector<FusedSample3>& samples,
                                      const SolveHints& hints = {}) const;

    const Config& config() const { return cfg_; }

private:
    Config cfg_;
};

/// Residual statistics of a 3-D model against samples.
ResidualStats residual_stats3(const std::vector<FusedSample3>& samples,
                              const locble::Vec3& location, double exponent,
                              double gamma_dbm);

}  // namespace locble::core
