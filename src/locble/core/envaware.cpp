#include "locble/core/envaware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "locble/channel/fading.hpp"
#include "locble/channel/propagation.hpp"
#include "locble/core/features.hpp"
#include "locble/obs/obs.hpp"

namespace locble::core {

void EnvAware::train(const ml::Dataset& features) {
    features.validate();
    scaler_.fit(features);
    ml::LinearSvm svm(cfg_.svm);
    svm.fit(scaler_.transform(features));
    svm_ = std::move(svm);
}

channel::PropagationClass EnvAware::classify(std::span<const double> rss_window) const {
    if (!trained()) throw std::logic_error("EnvAware: classify before train");
    const auto features = extract_env_features_vec(rss_window);
    const auto cls = static_cast<channel::PropagationClass>(
        svm_.predict(scaler_.transform(features)));
    switch (cls) {
        case channel::PropagationClass::los: LOCBLE_COUNT("envaware.class.los", 1); break;
        case channel::PropagationClass::plos: LOCBLE_COUNT("envaware.class.plos", 1); break;
        case channel::PropagationClass::nlos: LOCBLE_COUNT("envaware.class.nlos", 1); break;
    }
    return cls;
}

EnvAware::Observation EnvAware::observe(std::span<const double> rss_window) {
    LOCBLE_COUNT("envaware.windows", 1);
    Observation obs{};
    obs.window_class = classify(rss_window);
    if (!regime_) {
        regime_ = obs.window_class;
        obs.regime = *regime_;
        return obs;
    }
    if (obs.window_class == *regime_) {
        pending_.reset();
        pending_count_ = 0;
    } else {
        if (pending_ && *pending_ == obs.window_class) {
            ++pending_count_;
        } else {
            pending_ = obs.window_class;
            pending_count_ = 1;
        }
        // "Abrupt environmental changes" (Sec. 4.1) — a two-class jump such
        // as NLOS -> LOS — flip immediately; adjacent-class drift waits out
        // the debounce so one passer-by cannot reset the regression.
        const int jump = std::abs(static_cast<int>(obs.window_class) -
                                  static_cast<int>(*regime_));
        const int needed = jump >= 2 ? 1 : cfg_.change_debounce;
        if (pending_count_ >= needed) {
            regime_ = *pending_;
            pending_.reset();
            pending_count_ = 0;
            obs.changed = true;
            LOCBLE_COUNT("envaware.regime_changes", 1);
        }
    }
    obs.regime = *regime_;
    return obs;
}

void EnvAware::reset_stream() {
    regime_.reset();
    pending_.reset();
    pending_count_ = 0;
}

ml::Dataset generate_env_dataset(const EnvDatasetConfig& cfg, locble::Rng& rng) {
    ml::Dataset out;
    const auto window_samples =
        static_cast<std::size_t>(cfg.window_seconds * cfg.sample_rate_hz);
    const double dt = 1.0 / cfg.sample_rate_hz;

    for (int label = 0; label < 3; ++label) {
        const auto cls = static_cast<channel::PropagationClass>(label);
        const channel::PropagationParams params = channel::params_for(cls);
        for (int trace = 0; trace < cfg.traces_per_class; ++trace) {
            channel::FadingProcess fading(params.rician_k_db,
                                          params.coherence_distance_m, rng.fork());
            channel::ShadowingProcess shadowing(params.shadowing_sigma_db,
                                                params.shadowing_decorrelation_m,
                                                rng.fork());
            const channel::LogDistanceModel base{cfg.gamma_dbm, params.exponent};
            double d = rng.uniform(cfg.min_distance_m, cfg.max_distance_m);
            // The collector walks around in front of the (possibly blocked)
            // beacon: distance random-walks, motion decorrelates fading.
            const double speed = rng.uniform(0.4, 1.3);
            std::vector<double> window;
            window.reserve(window_samples);
            const auto total =
                static_cast<std::size_t>(cfg.trace_seconds * cfg.sample_rate_hz);
            for (std::size_t i = 0; i < total; ++i) {
                const double moved = speed * dt;
                d += rng.gaussian(0.0, moved);  // meandering walk
                d = std::clamp(d, cfg.min_distance_m, cfg.max_distance_m);
                window.push_back(channel::rssi_from_class(base, d, params, fading,
                                                          shadowing, moved));
                if (window.size() == window_samples) {
                    out.add(extract_env_features_vec(window), label);
                    window.clear();
                }
            }
        }
    }
    return out;
}

ml::ClassificationReport evaluate_envaware(EnvAware& env, const ml::Dataset& data,
                                           double test_fraction, locble::Rng& rng) {
    auto [train, test] = ml::train_test_split(data, test_fraction, rng);
    env.train(train);
    std::vector<int> predicted;
    predicted.reserve(test.size());
    for (const auto& row : test.x)
        predicted.push_back(env.svm().predict(env.scaler().transform(row)));
    return ml::evaluate_classification(test.y, predicted);
}

}  // namespace locble::core
