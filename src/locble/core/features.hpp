#pragma once

#include <array>
#include <span>
#include <vector>

namespace locble::core {

/// Dimensionality of the EnvAware feature vector. Sec. 4.1 builds it from
/// window statistics — mean, variance, skewness plus the five-number
/// summary (min, Q1, median, Q3, max) — and calls the result "the
/// standardized 9 values"; kurtosis completes the count (see DESIGN.md).
inline constexpr std::size_t kEnvFeatureDims = 9;

/// Extract the EnvAware feature vector from one RSS window (1-2 s of
/// samples). Standardization happens later, in the trained scaler. Throws
/// std::invalid_argument when the window is empty.
std::array<double, kEnvFeatureDims> extract_env_features(std::span<const double> window);

/// Convenience: as a std::vector for the ml:: dataset types.
std::vector<double> extract_env_features_vec(std::span<const double> window);

}  // namespace locble::core
