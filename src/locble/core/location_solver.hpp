#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "locble/channel/pathloss.hpp"
#include "locble/common/vec2.hpp"

namespace locble::core {

/// One fused measurement: the relative displacement between target and
/// observer at the moment an RSS sample arrived (Sec. 5's p_i = b_i - a_i,
/// q_i = d_i - c_i) plus the (denoised) RSS value.
struct FusedSample {
    double t{0.0};
    double p{0.0};     ///< relative x displacement (m)
    double q{0.0};     ///< relative y displacement (m)
    double rssi{0.0};  ///< dBm, after ANF
    /// Environment segment (EnvAware regime) this sample was captured in.
    /// The paper's model RS = Gamma(e) - 10 n(e) log10(l) has environment-
    /// dependent parameters; the solver shares (x, h) across segments and
    /// fits one Gamma per segment, which absorbs blockage insertion loss.
    int segment{0};
};

/// The 0.1 m distance floor of the dB model, expressed on the squared
/// distance both hot callers already have.
inline constexpr double kMinDistanceSq = 0.01;

/// The paper's Eq. 1 path-loss model in the dB domain, evaluated on the
/// *squared* target-observer distance: Gamma - 5 n log10(max(l^2, 0.01)).
/// This is the single definition shared by RSS prediction, residual
/// scoring and the Gauss-Newton refinement.
inline double predict_rssi_db(double gamma_dbm, double exponent, double dist_sq) {
    return gamma_dbm - 5.0 * exponent * std::log10(std::max(dist_sq, kMinDistanceSq));
}

/// The solver's output: the target's location in the observer frame plus
/// the jointly estimated propagation parameters.
struct LocationFit {
    locble::Vec2 location;      ///< (x, h): target position at measurement start
    double exponent{2.0};       ///< estimated path-loss exponent n(e)
    double gamma_dbm{-59.0};    ///< Gamma(e) of the latest environment segment
    /// Gamma per environment segment (size >= 1; last == gamma_dbm).
    std::vector<double> segment_gammas{};
    double residual_db{0.0};    ///< RMS of dB-domain residuals
    double confidence{0.0};     ///< Sec. 5 estimation confidence in (0, 1]
    bool ambiguous{false};      ///< 1-D motion: sign of location.y unresolved
};

/// Optional constraints a caller can hand the solver:
///   - EnvAware's propagation class narrows the plausible exponent band
///     (the "adjust the location estimation" coupling of Sec. 4.1);
///   - the calibrated 1 m power carried in every beacon frame (iBeacon
///     measured power / Eddystone txPower) bounds Gamma.
struct SolveHints {
    std::optional<std::pair<double, double>> exponent_band;
    std::optional<std::pair<double, double>> gamma_band_dbm;
};

/// Exponent band for a recognized propagation class.
std::pair<double, double> exponent_band_for(channel::PropagationClass cls);

/// Per-solve work/convergence accounting, filled by LocationSolver::solve
/// when the caller passes a sink. This is the library-level mirror of the
/// locble::obs solver metrics: users get stage insight from a plain struct
/// without enabling (or even compiling) the tracer.
struct SolveDiagnostics {
    int exponent_candidates{0};  ///< Eq. 5 grid points evaluated
    int candidate_failures{0};   ///< grid points rejected (degenerate or implausible)
    int multistart_runs{0};      ///< grid points that fell back to multi-start GN
    int warm_starts{0};          ///< grid points seeded from a previous flush's fit
    bool converged{false};       ///< a fit was returned
};

/// Reusable scratch and incremental per-exponent state for LocationSolver.
///
/// All buffers grow on first use ("warm-up") and are then reused: a solve
/// with a workspace that has already seen inputs of the same or larger
/// size performs zero heap allocations. Treat the contents as opaque —
/// only LocationSolver reads them.
class SolverWorkspace {
public:
    SolverWorkspace() = default;

    /// Forget all incremental state (cached rho powers, warm fits, sample
    /// aggregates). Buffer capacity is retained — including each grid
    /// point's rho cache, which the next solve resets in place — so
    /// subsequent solves stay allocation-free.
    void invalidate() {
        grid_valid = false;
        agg_count = 0;
        seg_k = 1;
        q_min = q_max = 0.0;
        rssi_sum = 0.0;
    }

    /// Number of buffer (re)allocations since construction. Stable across
    /// two identical solves == the zero-allocation guarantee held.
    std::uint64_t grow_events() const { return grow_events_; }

private:
    friend class LocationSolver;

    /// Incremental state for one exponent grid point, kept valid across
    /// batch flushes of an append-only sample stream.
    struct GridPoint {
        double n{0.0};            ///< exponent value of this grid point
        double eta{0.0};          ///< 10^(-1/(5n))
        double rho_scale{0.0};    ///< running max of rho (conditioning)
        std::size_t rho_count{0}; ///< samples folded into `rho` so far
        bool rho_bad{false};      ///< sticky: a rho was nonfinite or <= 0
        std::vector<double> rho;  ///< cached rho_i = eta^rssi_i powers
        // Incremental linear-seed state: raw (unscaled) normal-equation
        // sums of the Eq. 3 design rows, folded append-only; conditioning
        // scales are applied to the m x m aggregate at solve time, so each
        // flush pays O(new samples) + O(m^3) instead of O(all samples).
        std::size_t ls_count{0};  ///< samples folded into the sums
        bool ls_lateral{false};   ///< row shape (m = 4 vs 3) the sums use
        double ls_ata[16]{};      ///< upper-triangle raw A^T A sums
        double ls_atb[4]{};      ///< raw A^T y sums
        double ls_max[4]{};      ///< running per-column |entry| max
        // Warm-start state (coarse_to_fine mode only).
        bool has_fit{false};
        locble::Vec2 warm_loc;
        std::vector<double> warm_gammas;
    };

    /// A surviving exponent candidate (the per-fit gammas live in
    /// `best_gammas`, only kept for the winning candidate).
    struct CandidateSlot {
        double exponent{0.0};
        locble::Vec2 loc;       ///< reported location (|y| under ambiguity)
        locble::Vec2 raw_loc;   ///< pre-disambiguation GN fixed point (warm seed)
        double score{1e300};
        double confidence{0.0};
        double residual_db{0.0};
        int grid_idx{-1};
        bool ambiguous{false};
        bool multistart{false};
    };

    template <class Vec>
    void ensure_size(Vec& v, std::size_t n) {
        if (v.capacity() < n) ++grow_events_;
        v.resize(n);
    }

    // Grid identity: the incremental state is valid only while the
    // enumerated exponent grid is unchanged.
    bool grid_valid{false};
    double grid_n_min{0.0}, grid_n_max{0.0}, grid_step{0.0};
    std::vector<GridPoint> grid;

    // Append-only sample aggregates (bitwise equal to the cold-start
    // full-pass values because they are the same left-to-right folds).
    std::size_t agg_count{0};
    int seg_k{1};
    double q_min{0.0}, q_max{0.0};
    double rssi_sum{0.0};

    // Flat scratch for the linear seed (m <= 4, fixed arrays).
    double ata[16]{}, atb[4]{}, beta[4]{};

    // Flat scratch for Gauss-Newton (dim = 2 + segment count).
    std::vector<double> jtj, jtr, delta;
    std::vector<double> gam_cur, gam_best, gam_sum;
    std::vector<int> gam_cnt;
    std::vector<double> resid;

    // Per-solve candidate set (for argmin + model averaging).
    std::vector<CandidateSlot> candidates;
    std::vector<double> best_gammas;
    std::vector<std::uint8_t> evaluated;  ///< per grid point, current solve

    std::uint64_t grow_events_{0};
};

/// Elliptical-regression location estimator (Sec. 5).
///
/// For a candidate exponent n, the path-loss law becomes linear in
/// (A, C, D, G) after substituting rho_i = eta^{RS_i} with
/// eta = 10^{-1/(5n)}:
///
///   A (p^2 + q^2) + C p + D q + G = rho,   A = 1/eps, C = 2x/eps,
///                                          D = 2h/eps, G = (x^2+h^2)/eps
///
/// The solver grid-searches n (Eq. 5), solving the least-squares system at
/// each candidate and scoring it by the dB-domain residual; the target is
/// read off as (C/2A, D/2A) and Gamma as 5 n log10(1/A).
///
/// Hot-path design (docs/PERFORMANCE.md): all kernels run allocation-free
/// on a SolverWorkspace, and a Session makes the per-batch re-solve of the
/// pipeline incremental — rho powers and sample aggregates are folded in
/// once per new sample per grid point instead of rebuilt from scratch.
class LocationSolver {
public:
    /// Exponent grid traversal strategy (Eq. 5).
    enum class SearchMode {
        /// Evaluate every grid point. Incremental solves are bit-identical
        /// to cold-start solves.
        exhaustive,
        /// Scan at 2x the grid step, then hill-descend on the fine grid
        /// around the argmin; previous-flush fits warm-start Gauss-Newton.
        /// Roughly 2-4x faster per solve, within tolerance of exhaustive.
        coarse_to_fine,
    };

    struct Config {
        double exponent_min{1.2};
        double exponent_max{6.0};
        double exponent_step{0.05};  ///< grid resolution for Eq. 5's search
        std::size_t min_samples{8};
        /// Below this spread (m) the q dimension is considered degenerate
        /// and the 1-D (ambiguous) model is fit instead.
        double min_lateral_spread{0.35};
        /// Physical plausibility bounds on candidate fits: BLE beacons are
        /// receivable within ~15 m indoors (Sec. 2.2), and the 1 m power
        /// offset of any real transmitter/receiver pair lies in a known
        /// band. Candidates outside are discarded during the Eq. 5 search.
        double max_range_m{25.0};
        double gamma_min_dbm{-90.0};
        double gamma_max_dbm{-30.0};
        /// Ablation switches for the estimator design choices documented in
        /// DESIGN.md (defaults are the measured-best configuration).
        bool use_wls{true};              ///< 1/rho row weighting of the linear seed
        bool use_gn_refinement{true};    ///< dB-domain Gauss-Newton polish
        bool use_model_averaging{false};  ///< average near-optimal exponents (measured
                                          ///  counterproductive once GN refinement
                                          ///  exists; kept for the ablation bench)
        SearchMode search_mode{SearchMode::exhaustive};
    };

    LocationSolver() : LocationSolver(Config{}) {}
    explicit LocationSolver(const Config& cfg) : cfg_(cfg) {}

    /// Full 2-D fit over (typically L-shaped) movement data. Returns
    /// nullopt when there are too few samples or every candidate exponent
    /// yields a degenerate system. `hints` (optional) narrows the exponent
    /// and Gamma search regions; `diag` (optional) receives per-solve
    /// work/convergence accounting.
    std::optional<LocationFit> solve(const std::vector<FusedSample>& samples,
                                     const SolveHints& hints = {},
                                     SolveDiagnostics* diag = nullptr) const;

    /// Cold solve into caller-provided workspace and output storage.
    /// Performs zero heap allocations once `ws` and `out.segment_gammas`
    /// have warmed up to the problem size. Returns false when no fit
    /// converged (`out` is left untouched in that case).
    bool solve(const std::vector<FusedSample>& samples, const SolveHints& hints,
               SolveDiagnostics* diag, SolverWorkspace& ws, LocationFit& out) const;

    /// Incremental warm-started regression over an append-only sample
    /// stream — the pipeline's per-batch re-solve. Each solve() folds only
    /// the samples added since the previous solve into the per-exponent
    /// state (rho powers, aggregates) and, in coarse_to_fine mode, seeds
    /// Gauss-Newton from the previous flush's fit per grid point.
    ///
    /// Contract: in SearchMode::exhaustive a Session solve is bit-identical
    /// to a cold-start solve over the same accumulated samples; in
    /// coarse_to_fine it is within tolerance (see docs/PERFORMANCE.md).
    class Session {
    public:
        explicit Session(const LocationSolver& solver) : solver_(&solver) {}

        /// Forget all samples and incremental state while keeping every
        /// buffer's capacity — the evict-and-recreate path of long-running
        /// services (locble::serve): a reset-then-refilled Session solves
        /// allocation-free and stays bit-identical to a cold solve over the
        /// same samples (exhaustive mode).
        void reset() {
            samples_.clear();
            ws_.invalidate();
        }

        /// Alias of reset(), kept for symmetry with container APIs.
        void clear() { reset(); }

        void add(const FusedSample& s) { samples_.push_back(s); }
        void add(const std::vector<FusedSample>& batch) {
            samples_.insert(samples_.end(), batch.begin(), batch.end());
        }

        const std::vector<FusedSample>& samples() const { return samples_; }
        std::size_t size() const { return samples_.size(); }

        std::optional<LocationFit> solve(const SolveHints& hints = {},
                                         SolveDiagnostics* diag = nullptr) {
            LocationFit out;
            if (!solver_->solve_impl(samples_.data(), samples_.size(), hints, diag,
                                     ws_, out, /*incremental=*/true))
                return std::nullopt;
            return out;
        }

        /// Zero-allocation variant: the result is written into `out`
        /// (reusing its segment_gammas capacity). Returns false when no
        /// fit converged.
        bool solve_into(LocationFit& out, const SolveHints& hints = {},
                        SolveDiagnostics* diag = nullptr) {
            return solver_->solve_impl(samples_.data(), samples_.size(), hints, diag,
                                       ws_, out, /*incremental=*/true);
        }

        SolverWorkspace& workspace() { return ws_; }

    private:
        const LocationSolver* solver_;
        SolverWorkspace ws_;
        std::vector<FusedSample> samples_;
    };

    /// The paper's explicit disambiguation (Sec. 5.1): fit each leg of an
    /// L-shaped walk independently (each is 1-D and symmetric about its own
    /// axis), rotate both candidate pairs into the observer frame, and pick
    /// the pair of candidates that agree. `leg2_origin`/`leg2_heading`
    /// place the second leg's local frame inside the observer frame.
    static std::optional<LocationFit> resolve_l_shape(
        const LocationFit& leg1, const LocationFit& leg2,
        const locble::Vec2& leg2_origin, double leg2_heading);

    const Config& config() const { return cfg_; }

private:
    /// The one solve kernel behind every public entry point. `incremental`
    /// keeps the workspace's per-exponent state; a cold solve resets it
    /// first, which makes cold == incremental bitwise by construction.
    bool solve_impl(const FusedSample* samples, std::size_t count,
                    const SolveHints& hints, SolveDiagnostics* diag,
                    SolverWorkspace& ws, LocationFit& out, bool incremental) const;

    /// Evaluate one exponent grid point (linear seed + GN refinement, or a
    /// warm-started GN when `warm` is true); returns false on failure.
    bool evaluate_grid_point(SolverWorkspace& ws, SolverWorkspace::GridPoint& gp,
                             const FusedSample* samples, std::size_t count,
                             bool lateral_ok, double gamma_min, double gamma_max,
                             int k, double mean_rssi, bool warm,
                             SolverWorkspace::CandidateSlot& slot) const;

    Config cfg_;
};

/// Residual diagnostics backing the confidence number (Sec. 5): mean and
/// std of deltaRS = RS - RS_hat, and confidence = exp(-mu^2 / (2 sigma^2)).
struct ResidualStats {
    double mean_db{0.0};
    double stddev_db{0.0};
    double rms_db{0.0};
    double confidence{0.0};
};

/// Evaluate a fitted model against samples.
ResidualStats residual_stats(const std::vector<FusedSample>& samples,
                             const locble::Vec2& location, double exponent,
                             double gamma_dbm);

}  // namespace locble::core
