#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "locble/channel/pathloss.hpp"
#include "locble/common/vec2.hpp"

namespace locble::core {

/// One fused measurement: the relative displacement between target and
/// observer at the moment an RSS sample arrived (Sec. 5's p_i = b_i - a_i,
/// q_i = d_i - c_i) plus the (denoised) RSS value.
struct FusedSample {
    double t{0.0};
    double p{0.0};     ///< relative x displacement (m)
    double q{0.0};     ///< relative y displacement (m)
    double rssi{0.0};  ///< dBm, after ANF
    /// Environment segment (EnvAware regime) this sample was captured in.
    /// The paper's model RS = Gamma(e) - 10 n(e) log10(l) has environment-
    /// dependent parameters; the solver shares (x, h) across segments and
    /// fits one Gamma per segment, which absorbs blockage insertion loss.
    int segment{0};
};

/// The solver's output: the target's location in the observer frame plus
/// the jointly estimated propagation parameters.
struct LocationFit {
    locble::Vec2 location;      ///< (x, h): target position at measurement start
    double exponent{2.0};       ///< estimated path-loss exponent n(e)
    double gamma_dbm{-59.0};    ///< Gamma(e) of the latest environment segment
    /// Gamma per environment segment (size >= 1; last == gamma_dbm).
    std::vector<double> segment_gammas{};
    double residual_db{0.0};    ///< RMS of dB-domain residuals
    double confidence{0.0};     ///< Sec. 5 estimation confidence in (0, 1]
    bool ambiguous{false};      ///< 1-D motion: sign of location.y unresolved
};

/// Optional constraints a caller can hand the solver:
///   - EnvAware's propagation class narrows the plausible exponent band
///     (the "adjust the location estimation" coupling of Sec. 4.1);
///   - the calibrated 1 m power carried in every beacon frame (iBeacon
///     measured power / Eddystone txPower) bounds Gamma.
struct SolveHints {
    std::optional<std::pair<double, double>> exponent_band;
    std::optional<std::pair<double, double>> gamma_band_dbm;
};

/// Exponent band for a recognized propagation class.
std::pair<double, double> exponent_band_for(channel::PropagationClass cls);

/// Per-solve work/convergence accounting, filled by LocationSolver::solve
/// when the caller passes a sink. This is the library-level mirror of the
/// locble::obs solver metrics: users get stage insight from a plain struct
/// without enabling (or even compiling) the tracer.
struct SolveDiagnostics {
    int exponent_candidates{0};  ///< Eq. 5 grid points evaluated
    int candidate_failures{0};   ///< grid points rejected (degenerate or implausible)
    int multistart_runs{0};      ///< grid points that fell back to multi-start GN
    bool converged{false};       ///< a fit was returned
};

/// Elliptical-regression location estimator (Sec. 5).
///
/// For a candidate exponent n, the path-loss law becomes linear in
/// (A, C, D, G) after substituting rho_i = eta^{RS_i} with
/// eta = 10^{-1/(5n)}:
///
///   A (p^2 + q^2) + C p + D q + G = rho,   A = 1/eps, C = 2x/eps,
///                                          D = 2h/eps, G = (x^2+h^2)/eps
///
/// The solver grid-searches n (Eq. 5), solving the least-squares system at
/// each candidate and scoring it by the dB-domain residual; the target is
/// read off as (C/2A, D/2A) and Gamma as 5 n log10(1/A).
class LocationSolver {
public:
    struct Config {
        double exponent_min{1.2};
        double exponent_max{6.0};
        double exponent_step{0.05};  ///< grid resolution for Eq. 5's search
        std::size_t min_samples{8};
        /// Below this spread (m) the q dimension is considered degenerate
        /// and the 1-D (ambiguous) model is fit instead.
        double min_lateral_spread{0.35};
        /// Physical plausibility bounds on candidate fits: BLE beacons are
        /// receivable within ~15 m indoors (Sec. 2.2), and the 1 m power
        /// offset of any real transmitter/receiver pair lies in a known
        /// band. Candidates outside are discarded during the Eq. 5 search.
        double max_range_m{25.0};
        double gamma_min_dbm{-90.0};
        double gamma_max_dbm{-30.0};
        /// Ablation switches for the estimator design choices documented in
        /// DESIGN.md (defaults are the measured-best configuration).
        bool use_wls{true};              ///< 1/rho row weighting of the linear seed
        bool use_gn_refinement{true};    ///< dB-domain Gauss-Newton polish
        bool use_model_averaging{false};  ///< average near-optimal exponents (measured
                                          ///  counterproductive once GN refinement
                                          ///  exists; kept for the ablation bench)
    };

    LocationSolver() : LocationSolver(Config{}) {}
    explicit LocationSolver(const Config& cfg) : cfg_(cfg) {}

    /// Full 2-D fit over (typically L-shaped) movement data. Returns
    /// nullopt when there are too few samples or every candidate exponent
    /// yields a degenerate system. `hints` (optional) narrows the exponent
    /// and Gamma search regions; `diag` (optional) receives per-solve
    /// work/convergence accounting.
    std::optional<LocationFit> solve(const std::vector<FusedSample>& samples,
                                     const SolveHints& hints = {},
                                     SolveDiagnostics* diag = nullptr) const;

    /// The paper's explicit disambiguation (Sec. 5.1): fit each leg of an
    /// L-shaped walk independently (each is 1-D and symmetric about its own
    /// axis), rotate both candidate pairs into the observer frame, and pick
    /// the pair of candidates that agree. `leg2_origin`/`leg2_heading`
    /// place the second leg's local frame inside the observer frame.
    static std::optional<LocationFit> resolve_l_shape(
        const LocationFit& leg1, const LocationFit& leg2,
        const locble::Vec2& leg2_origin, double leg2_heading);

    const Config& config() const { return cfg_; }

private:
    struct Candidate {
        LocationFit fit;
        double score{1e300};
        bool multistart{false};  ///< linear seed failed; multi-start GN produced this
    };

    /// One least-squares pass at a fixed exponent; nullopt when the linear
    /// system is singular or produces a non-physical A <= 0.
    std::optional<Candidate> fit_at_exponent(const std::vector<FusedSample>& samples,
                                             double exponent, bool lateral_ok,
                                             double gamma_min, double gamma_max) const;

    Config cfg_;
};

/// Residual diagnostics backing the confidence number (Sec. 5): mean and
/// std of deltaRS = RS - RS_hat, and confidence = exp(-mu^2 / (2 sigma^2)).
struct ResidualStats {
    double mean_db{0.0};
    double stddev_db{0.0};
    double rms_db{0.0};
    double confidence{0.0};
};

/// Evaluate a fitted model against samples.
ResidualStats residual_stats(const std::vector<FusedSample>& samples,
                             const locble::Vec2& location, double exponent,
                             double gamma_dbm);

}  // namespace locble::core
