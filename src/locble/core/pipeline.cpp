#include "locble/core/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "locble/obs/obs.hpp"

namespace locble::core {

LocBle::LocBle(const Config& cfg, std::optional<EnvAware> envaware)
    : cfg_(cfg), envaware_(std::move(envaware)), solver_(cfg.solver) {
    if (cfg_.use_envaware && (!envaware_ || !envaware_->trained()))
        throw std::invalid_argument("LocBle: use_envaware requires a trained EnvAware");
}

motion::MotionEstimate rotate_motion(const motion::MotionEstimate& m, double angle) {
    motion::MotionEstimate out = m;
    for (auto& tp : out.path) tp.position = tp.position.rotated(angle);
    return out;
}

LocateResult LocBle::locate(const locble::TimeSeries& raw_rss,
                            const motion::MotionEstimate& observer) const {
    return run(raw_rss, observer, nullptr, 0.0);
}

LocateResult LocBle::locate(const locble::TimeSeries& raw_rss,
                            const motion::MotionEstimate& observer,
                            const motion::MotionEstimate& target,
                            double target_frame_rotation) const {
    const motion::MotionEstimate aligned = rotate_motion(target, target_frame_rotation);
    return run(raw_rss, observer, &aligned, 0.0);
}

LocateResult LocBle::run(const locble::TimeSeries& raw_rss,
                         const motion::MotionEstimate& observer,
                         const motion::MotionEstimate* target,
                         double /*target_frame_rotation*/) const {
    LOCBLE_SPAN("pipeline.locate");
    LocateResult result;
    if (raw_rss.empty()) return result;
    LOCBLE_COUNT("pipeline.locate_calls", 1);
    LOCBLE_COUNT("pipeline.samples_in", raw_rss.size());

    // ANF runs offline (zero-phase) over the recorded capture; EnvAware
    // sees raw batches (it learns from the raw fluctuation statistics the
    // filter would erase).
    const dsp::Anf anf(cfg_.anf);
    locble::TimeSeries denoised_series;
    if (cfg_.use_anf) denoised_series = anf.process_offline(raw_rss);
    std::optional<EnvAware> env = envaware_;  // private streaming state
    if (env) env->reset_stream();

    // One regression shared across the walk; a regime change opens a new
    // environment *segment* (Algo. 1's "new regression"): the solver keeps
    // (x, h) common and fits Gamma per segment, so blockage insertion loss
    // is absorbed without discarding geometry. The Session makes the
    // per-batch re-solve incremental: each flush folds only the new batch
    // into the per-exponent solver state instead of rebuilding it from the
    // whole accumulated stream.
    LocationSolver::Session session(solver_);
    std::optional<LocationFit> last_fit;
    std::size_t last_fit_samples = 0;
    int segment = 0;
    std::optional<channel::PropagationClass> regime;
    double band_min = 10.0, band_max = 0.0;  // union of regime bands seen
    bool saw_blocked = false;  // any non-LoS window so far (running, not rescanned)
    double prev_batch_mean = 0.0;
    bool have_prev_batch = false;

    const double t0 = raw_rss.front().t;
    double batch_end = t0 + cfg_.batch_seconds;
    std::vector<double> batch_raw;
    std::vector<FusedSample> batch_fused;

    auto flush_batch = [&]() {
        if (batch_raw.empty()) return;
        LOCBLE_COUNT("pipeline.batches", 1);
        result.diagnostics.batch_samples.push_back(batch_raw.size());
        bool restart = false;
        if (cfg_.use_envaware && env && batch_raw.size() >= 4) {
            const auto obs = env->observe(batch_raw);
            result.diagnostics.envaware_windows += 1;
            result.window_classes.push_back(obs.window_class);
            if (obs.window_class != channel::PropagationClass::los) saw_blocked = true;
            regime = obs.regime;
            restart = obs.changed;
        }
        if (regime && cfg_.use_regime_bands) {
            const auto band = exponent_band_for(*regime);
            band_min = std::min(band_min, band.first);
            band_max = std::max(band_max, band.second);
        }
        double batch_mean = 0.0;
        for (double v : batch_raw) batch_mean += v;
        batch_mean /= static_cast<double>(batch_raw.size());
        // A classifier flip only opens a new segment when the received
        // level actually moved (real insertion-loss change); spurious
        // reclassifications must not fragment the regression.
        const bool level_jumped =
            have_prev_batch && std::abs(batch_mean - prev_batch_mean) > 4.0;
        prev_batch_mean = batch_mean;
        have_prev_batch = true;
        if (restart && level_jumped && cfg_.restart_on_change) {
            ++segment;
            ++result.regression_restarts;
            LOCBLE_COUNT("pipeline.regression_restarts", 1);
        }
        for (auto& s : batch_fused) s.segment = segment;
        session.add(batch_fused);

        SolveHints hints;
        // The regime's exponent band is applied only when a single regime
        // covered the whole walk; mixed-regime data keeps the full range
        // (the union band measured worse than either constraint).
        if (cfg_.use_regime_bands && band_max > band_min &&
            result.regression_restarts == 0)
            hints.exponent_band = {{band_min, band_max}};
        if (cfg_.gamma_prior_dbm) {
            // Blockage shows up as insertion loss the log-distance model has
            // no term for; per-segment Gammas absorb it, so the band must
            // open downward when any blocked regime was seen (glass/body
            // ~3-8 dB, concrete or metal 8-15 dB below calibration).
            double below = cfg_.gamma_prior_below_db;
            if (saw_blocked && cfg_.use_regime_bands) below += 14.0;
            hints.gamma_band_dbm = {*cfg_.gamma_prior_dbm - below,
                                    *cfg_.gamma_prior_dbm + cfg_.gamma_prior_above_db};
        }

        SolveDiagnostics sd;
        if (auto fit = session.solve(hints, &sd)) {
            last_fit = std::move(fit);
            last_fit_samples = session.size();
        }
        auto& diag = result.diagnostics;
        diag.solver_calls += 1;
        diag.solver_candidates += sd.exponent_candidates;
        diag.solver_failures += sd.candidate_failures;
        diag.solver_multistarts += sd.multistart_runs;
        diag.solver_warm_starts += sd.warm_starts;
        if (!sd.converged) diag.convergence_failures += 1;
        batch_raw.clear();
        batch_fused.clear();
    };

    for (std::size_t i = 0; i < raw_rss.size(); ++i) {
        const auto& s = raw_rss[i];
        while (s.t > batch_end) {
            flush_batch();
            batch_end += cfg_.batch_seconds;
        }
        const double denoised = cfg_.use_anf ? denoised_series[i].value : s.value;
        // Match movement to the RSS sample by timestamp (Algo. 1 line 8).
        const locble::Vec2 obs_pos = observer.position_at(s.t);
        locble::Vec2 tgt_pos{0.0, 0.0};
        if (target) tgt_pos = target->position_at(s.t);
        FusedSample fused;
        fused.t = s.t;
        fused.p = tgt_pos.x - obs_pos.x;
        fused.q = tgt_pos.y - obs_pos.y;
        fused.rssi = denoised;
        batch_raw.push_back(s.value);
        batch_fused.push_back(fused);
    }
    flush_batch();

    result.fit = last_fit;
    result.samples_used = last_fit_samples;
    if (!result.fit) LOCBLE_COUNT("pipeline.no_fix", 1);
    return result;
}

}  // namespace locble::core
