#pragma once

#include <optional>
#include <span>
#include <vector>

#include "locble/channel/pathloss.hpp"
#include "locble/common/rng.hpp"
#include "locble/ml/dataset.hpp"
#include "locble/ml/metrics.hpp"
#include "locble/ml/svm.hpp"

namespace locble::core {

/// EnvAware — RSS-only recognition of the propagation environment
/// (Sec. 4.1).
///
/// A linear SVM over standardized window statistics classifies each 1-2 s
/// RSS window as LOS / p-LOS / NLOS; a debounced regime tracker decides
/// when the environment has *changed*, which tells the location pipeline to
/// restart its regression (Algo. 1, lines 10-13).
class EnvAware {
public:
    struct Config {
        Config() {
            // The 9-dim standardized feature space needs a soft margin on
            // the wide side; C=10 measured best on the synthetic corpus.
            svm.c = 10.0;
            svm.max_epochs = 400;
        }
        ml::LinearSvm::Config svm{};
        /// Windows that must agree before a regime change is declared; one
        /// outlier window (a person walking through) should not reset the
        /// regression.
        int change_debounce{2};
    };

    EnvAware() : EnvAware(Config{}) {}
    explicit EnvAware(const Config& cfg) : cfg_(cfg) {}

    /// Fit the scaler + SVM on labeled feature windows (labels are
    /// PropagationClass values as ints).
    void train(const ml::Dataset& features);

    /// Classify one RSS window (raw dBm values).
    channel::PropagationClass classify(std::span<const double> rss_window) const;

    /// Streaming interface: classify the window and report whether the
    /// environment regime changed (after debouncing).
    struct Observation {
        channel::PropagationClass window_class;
        channel::PropagationClass regime;
        bool changed{false};
    };
    Observation observe(std::span<const double> rss_window);

    /// Reset the streaming regime state (new measurement session).
    void reset_stream();

    bool trained() const { return svm_.fitted(); }
    const ml::LinearSvm& svm() const { return svm_; }
    const ml::StandardScaler& scaler() const { return scaler_; }

private:
    Config cfg_;
    ml::StandardScaler scaler_;
    ml::LinearSvm svm_;
    std::optional<channel::PropagationClass> regime_;
    std::optional<channel::PropagationClass> pending_;
    int pending_count_{0};
};

/// Synthetic labeled training/evaluation data for EnvAware.
///
/// The paper collected phone traces in staged LOS / p-LOS / NLOS setups
/// (walking in front of glass/wood/human vs concrete/metal blockage) and
/// cut them into 2 s windows. This generator reproduces that protocol on
/// the channel simulator: per trace it draws a distance and walk speed,
/// synthesizes the class-conditional RSS stream, and emits one feature row
/// per window.
struct EnvDatasetConfig {
    int traces_per_class{80};
    double sample_rate_hz{10.0};
    double trace_seconds{12.0};
    double window_seconds{2.0};
    /// The paper's collection stages the blocker a few metres from the
    /// walker, so distances stay moderate; that keeps the class-dependent
    /// attenuation visible in the window mean.
    double min_distance_m{2.0};
    double max_distance_m{7.0};
    double gamma_dbm{-59.0};
};

ml::Dataset generate_env_dataset(const EnvDatasetConfig& cfg, locble::Rng& rng);

/// Train-on-split evaluation convenience used by tests and the EnvAware
/// bench: returns the held-out classification report.
ml::ClassificationReport evaluate_envaware(EnvAware& env, const ml::Dataset& data,
                                           double test_fraction, locble::Rng& rng);

}  // namespace locble::core
