#include "locble/core/features.hpp"

#include "locble/common/stats.hpp"

namespace locble::core {

std::array<double, kEnvFeatureDims> extract_env_features(
    std::span<const double> window) {
    const locble::WindowSummary s = locble::summarize(window);
    return {s.mean, s.variance, s.skewness, s.min, s.q1,
            s.median, s.q3, s.max, s.kurtosis};
}

std::vector<double> extract_env_features_vec(std::span<const double> window) {
    const auto f = extract_env_features(window);
    return {f.begin(), f.end()};
}

}  // namespace locble::core
