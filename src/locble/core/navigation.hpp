#pragma once

#include "locble/common/vec2.hpp"

namespace locble::core {

/// One navigation instruction (what LocBLE's navigation mode renders as the
/// on-screen arrow, Sec. 7.1).
struct Guidance {
    double distance_m{0.0};      ///< straight-line distance to the estimate
    double bearing_rad{0.0};     ///< turn required relative to current heading
    bool arrived{false};
};

/// Dead-reckoning navigator toward a measured target estimate (Sec. 7.3).
///
/// The observer frame is fixed at the measurement's start; as the user
/// walks, their dead-reckoned pose is compared against the stored estimate
/// to produce distance + turn instructions. The estimate can be refreshed
/// whenever a new measurement completes en route (Fig. 12(b)'s improving
/// accuracy while approaching).
class Navigator {
public:
    explicit Navigator(const locble::Vec2& target_estimate, double arrive_radius_m = 0.5)
        : target_(target_estimate), arrive_radius_(arrive_radius_m) {}

    Guidance guide(const locble::Vec2& current_position, double current_heading) const;

    /// Replace the target estimate (mid-route re-measurement).
    void update_target(const locble::Vec2& target_estimate) { target_ = target_estimate; }
    const locble::Vec2& target() const { return target_; }

private:
    locble::Vec2 target_;
    double arrive_radius_;
};

}  // namespace locble::core
