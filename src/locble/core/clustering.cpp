#include "locble/core/clustering.hpp"

#include <algorithm>
#include <cmath>

#include "locble/dsp/moving_average.hpp"

namespace locble::core {

std::vector<double> ClusteringCalibrator::trend_signal(
    const locble::TimeSeries& rss, const std::vector<double>& times,
    std::size_t smooth_half_window, std::size_t stride) {
    // Align to the reference clock first (devices sample at different,
    // drifting rates), then smooth, then difference over `stride` samples
    // so absolute RSSI offsets between chipsets drop out while the walking
    // trend clears the noise floor.
    const locble::TimeSeries aligned = locble::resample_at(rss, times);
    const std::vector<double> smooth = locble::dsp::centered_moving_average(
        locble::values_of(aligned), smooth_half_window);
    std::vector<double> diff;
    if (stride == 0 || smooth.size() <= stride) return diff;
    diff.reserve(smooth.size() - stride);
    for (std::size_t i = stride; i < smooth.size(); ++i)
        diff.push_back(smooth[i] - smooth[i - stride]);
    // Z-score: the matcher compares trend *shape*; two flat noise traces
    // normalize to unit-variance noise and keep a large DTW distance.
    double mean = 0.0;
    for (double v : diff) mean += v;
    mean /= static_cast<double>(diff.size());
    double var = 0.0;
    for (double v : diff) var += (v - mean) * (v - mean);
    var /= static_cast<double>(diff.size());
    const double sd = std::sqrt(var);
    constexpr double kMinSpread = 1e-9;
    for (double& v : diff) v = sd > kMinSpread ? (v - mean) / sd : 0.0;
    return diff;
}

ClusterCalibration ClusteringCalibrator::calibrate(
    const ClusterCandidate& target, const std::vector<ClusterCandidate>& neighbors) const {
    ClusterCalibration out;
    const std::vector<double> times = locble::times_of(target.rss);
    const std::vector<double> target_trend =
        trend_signal(target.rss, times, cfg_.smooth_half_window, cfg_.diff_stride);

    std::vector<const ClusterCandidate*> cluster{&target};
    out.members.push_back(target.id);
    for (const auto& nb : neighbors) {
        if (nb.rss.size() < 2) {
            ++out.rejected;
            continue;
        }
        if (locble::Vec2::distance(nb.fit.location, target.fit.location) >
            cfg_.max_candidate_distance_m) {
            ++out.rejected;
            continue;
        }
        const std::vector<double> trend =
            trend_signal(nb.rss, times, cfg_.smooth_half_window, cfg_.diff_stride);
        const auto result = matcher_.match(target_trend, trend);
        if (result.matched) {
            cluster.push_back(&nb);
            out.members.push_back(nb.id);
        } else {
            ++out.rejected;
        }
    }

    // Confidence-weighted sum of candidate positions (Algo. 2 lines 12-15).
    double weight_sum = 0.0;
    locble::Vec2 acc{0.0, 0.0};
    for (const auto* c : cluster) {
        const double w = std::max(c->fit.confidence, 1e-6);
        acc += c->fit.location * w;
        weight_sum += w;
    }
    out.calibrated = acc / weight_sum;
    // The combined estimate is at least as trustworthy as the best member.
    double best = 0.0;
    for (const auto* c : cluster) best = std::max(best, c->fit.confidence);
    out.combined_confidence = best;
    return out;
}

}  // namespace locble::core
