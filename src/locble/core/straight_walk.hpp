#pragma once

#include <optional>

#include "locble/common/vec2.hpp"
#include "locble/core/location_solver.hpp"

namespace locble::core {

/// Straight-walk measurement with navigation-time disambiguation
/// (Sec. 9.2, implemented future work).
///
/// The L-shaped walk exists only to break the left/right symmetry of a 1-D
/// measurement. The paper proposes letting the user "just walk straight and
/// leave the symmetry problem to the navigation stage: during the last turn
/// in navigation, we will know whether the observer is in a correct
/// direction and correct him accordingly."
///
/// This tracker holds both mirror hypotheses of an ambiguous fit and
/// retires one as soon as fresh evidence (a second measurement from a new
/// pose, or an RSS trend while walking toward one hypothesis) contradicts
/// it.
class MirrorHypothesisTracker {
public:
    /// Start from an ambiguous fit in the observer frame (h >= 0 by the
    /// solver's convention). Throws std::invalid_argument if the fit is not
    /// ambiguous.
    explicit MirrorHypothesisTracker(const LocationFit& ambiguous_fit);

    /// Both live hypotheses (1 or 2 entries).
    std::vector<locble::Vec2> hypotheses() const;

    bool resolved() const { return !right_alive_ || !left_alive_; }

    /// The surviving location; the +h mirror when still unresolved (so a
    /// caller can always navigate toward *something*).
    locble::Vec2 best() const;

    /// Evidence: a later (unambiguous or ambiguous) fit taken from a pose
    /// whose local frame is placed at `origin` with `heading` in the
    /// original observer frame. The mirror farther from the new estimate
    /// dies when the gap between hypotheses is discriminative.
    void update_with_fit(const LocationFit& fit, const locble::Vec2& origin,
                         double heading);

    /// Evidence: the observer walked `moved` metres toward `walked_toward`
    /// (one of the hypotheses) and the smoothed RSS changed by
    /// `rss_delta_db`. Walking toward the true target raises RSS; a falling
    /// RSS kills the hypothesis being approached.
    void update_with_rss_trend(const locble::Vec2& walked_toward, double moved_m,
                               double rss_delta_db);

private:
    locble::Vec2 right_;  ///< (x, +h)
    locble::Vec2 left_;   ///< (x, -h)
    bool right_alive_{true};
    bool left_alive_{true};
};

}  // namespace locble::core
