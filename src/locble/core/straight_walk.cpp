#include "locble/core/straight_walk.hpp"

#include <cmath>
#include <stdexcept>

namespace locble::core {

MirrorHypothesisTracker::MirrorHypothesisTracker(const LocationFit& ambiguous_fit) {
    if (!ambiguous_fit.ambiguous)
        throw std::invalid_argument(
            "MirrorHypothesisTracker: fit is already unambiguous");
    right_ = ambiguous_fit.location;
    left_ = {ambiguous_fit.location.x, -ambiguous_fit.location.y};
    // A target on the walk line has no mirror to resolve.
    if (std::abs(ambiguous_fit.location.y) < 1e-9) left_alive_ = false;
}

std::vector<locble::Vec2> MirrorHypothesisTracker::hypotheses() const {
    std::vector<locble::Vec2> out;
    if (right_alive_) out.push_back(right_);
    if (left_alive_) out.push_back(left_);
    return out;
}

locble::Vec2 MirrorHypothesisTracker::best() const {
    if (right_alive_) return right_;
    return left_;
}

void MirrorHypothesisTracker::update_with_fit(const LocationFit& fit,
                                              const locble::Vec2& origin,
                                              double heading) {
    if (resolved()) return;
    // Bring the new fit's candidates into the original observer frame.
    std::vector<locble::Vec2> candidates{origin + fit.location.rotated(heading)};
    if (fit.ambiguous)
        candidates.push_back(
            origin +
            locble::Vec2{fit.location.x, -fit.location.y}.rotated(heading));

    auto nearest_gap = [&](const locble::Vec2& h) {
        double best = 1e300;
        for (const auto& c : candidates)
            best = std::min(best, locble::Vec2::distance(h, c));
        return best;
    };
    const double gap_right = nearest_gap(right_);
    const double gap_left = nearest_gap(left_);
    // Only discriminate when the evidence clearly prefers one mirror; a new
    // measurement equidistant from both carries no sign information.
    const double margin = 0.25 * locble::Vec2::distance(right_, left_) + 0.3;
    if (gap_right + margin < gap_left) left_alive_ = false;
    if (gap_left + margin < gap_right) right_alive_ = false;
}

void MirrorHypothesisTracker::update_with_rss_trend(
    const locble::Vec2& walked_toward, double moved_m, double rss_delta_db) {
    if (resolved() || moved_m < 0.5) return;
    // Walking a metre toward the true target must raise RSS (log-distance);
    // a clear drop while approaching a hypothesis falsifies it.
    constexpr double kClearDropDb = 1.5;
    if (rss_delta_db > -kClearDropDb) return;
    const double to_right = locble::Vec2::distance(walked_toward, right_);
    const double to_left = locble::Vec2::distance(walked_toward, left_);
    if (to_right < to_left)
        right_alive_ = false;
    else
        left_alive_ = false;
    // Never kill the last hypothesis.
    if (!right_alive_ && !left_alive_) right_alive_ = true;
}

}  // namespace locble::core
