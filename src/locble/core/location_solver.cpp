#include "locble/core/location_solver.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "locble/common/linalg.hpp"
#include "locble/common/stats.hpp"
#include "locble/obs/obs.hpp"

namespace locble::core {

namespace {

constexpr double kLog10 = 2.302585092994046;

int segment_count(const std::vector<FusedSample>& samples) {
    int k = 1;
    for (const auto& s : samples) k = std::max(k, s.segment + 1);
    return k;
}

double predict_rssi_seg(const locble::Vec2& location, double exponent,
                        const std::vector<double>& gammas, const FusedSample& s) {
    const double dx = location.x + s.p;
    const double dy = location.y + s.q;
    const double l = std::max(std::sqrt(dx * dx + dy * dy), 0.1);
    const double g = gammas[static_cast<std::size_t>(
        std::min<int>(s.segment, static_cast<int>(gammas.size()) - 1))];
    return g - 10.0 * exponent * std::log10(l);
}

/// Gauss-Newton refinement of (x, h, Gamma_1..Gamma_k) at fixed exponent,
/// minimizing the dB-domain residual — the maximum-likelihood objective
/// under Gaussian RSS noise, with one power offset per environment segment
/// (the paper's Gamma(e)). Gammas are projected into [gamma_min, gamma_max]
/// each step.
void refine_fit_db(const std::vector<FusedSample>& samples, double exponent,
                   locble::Vec2& location, std::vector<double>& gammas,
                   double gamma_min, double gamma_max) {
    constexpr int kIterations = 12;
    const std::size_t k = gammas.size();
    const std::size_t dim = 2 + k;
    double x = location.x, h = location.y;

    for (int it = 0; it < kIterations; ++it) {
        locble::Matrix jtj(dim, std::vector<double>(dim, 0.0));
        std::vector<double> jtr(dim, 0.0);
        for (const auto& s : samples) {
            const double dx = x + s.p;
            const double dy = h + s.q;
            const double l2 = std::max(dx * dx + dy * dy, 0.01);
            const auto seg = static_cast<std::size_t>(
                std::min<int>(s.segment, static_cast<int>(k) - 1));
            const double pred =
                gammas[seg] - 5.0 * exponent * std::log10(l2) / 1.0;
            const double r = s.rssi - pred;
            const double c = -10.0 * exponent / kLog10;
            std::vector<double> jac(dim, 0.0);
            jac[0] = c * dx / l2;
            jac[1] = c * dy / l2;
            jac[2 + seg] = 1.0;
            for (std::size_t a = 0; a < dim; ++a) {
                if (jac[a] == 0.0) continue;
                jtr[a] += jac[a] * r;
                for (std::size_t b = 0; b < dim; ++b)
                    jtj[a][b] += jac[a] * jac[b];
            }
        }
        // Levenberg damping keeps early steps conservative; a small ridge
        // also guards segments with very few samples.
        const double damping = 1e-6 + (it < 3 ? 0.1 : 0.0);
        for (std::size_t a = 0; a < dim; ++a) jtj[a][a] = jtj[a][a] * (1.0 + damping) + 1e-9;

        std::vector<double> delta;
        try {
            delta = locble::solve_linear(std::move(jtj), std::move(jtr));
        } catch (const std::exception&) {
            break;
        }
        x += delta[0];
        h += delta[1];
        double step = std::abs(delta[0]) + std::abs(delta[1]);
        for (std::size_t s = 0; s < k; ++s) {
            gammas[s] = std::clamp(gammas[s] + delta[2 + s], gamma_min, gamma_max);
            step += std::abs(delta[2 + s]);
        }
        if (step < 1e-6) break;
    }
    location = {x, h};
}

/// Residual statistics with per-segment gammas.
ResidualStats residual_stats_seg(const std::vector<FusedSample>& samples,
                                 const locble::Vec2& location, double exponent,
                                 const std::vector<double>& gammas) {
    ResidualStats out;
    if (samples.empty()) return out;
    std::vector<double> residuals;
    residuals.reserve(samples.size());
    for (const auto& s : samples)
        residuals.push_back(s.rssi - predict_rssi_seg(location, exponent, gammas, s));
    out.mean_db = locble::mean(residuals);
    out.stddev_db = std::sqrt(locble::variance(residuals));
    double ss = 0.0;
    for (double r : residuals) ss += r * r;
    out.rms_db = std::sqrt(ss / static_cast<double>(residuals.size()));
    const double sigma = std::max(out.stddev_db, 1e-6);
    out.confidence = std::exp(-(out.mean_db * out.mean_db) / (2.0 * sigma * sigma));
    return out;
}

/// Initialize per-segment gammas from a single-gamma seed: each segment's
/// offset is the mean residual of its samples under the seed parameters.
std::vector<double> init_segment_gammas(const std::vector<FusedSample>& samples,
                                        const locble::Vec2& location, double exponent,
                                        double gamma_seed, int k, double gamma_min,
                                        double gamma_max) {
    std::vector<double> sum(k, 0.0);
    std::vector<int> count(k, 0);
    const std::vector<double> seed_vec{gamma_seed};
    for (const auto& s : samples) {
        const int seg = std::min(s.segment, k - 1);
        FusedSample tmp = s;
        tmp.segment = 0;
        sum[seg] += s.rssi - predict_rssi_seg(location, exponent, seed_vec, tmp);
        count[seg] += 1;
    }
    std::vector<double> gammas(k, gamma_seed);
    for (int s = 0; s < k; ++s) {
        if (count[s] > 0) gammas[s] += sum[s] / count[s];
        gammas[s] = std::clamp(gammas[s], gamma_min, gamma_max);
    }
    return gammas;
}

}  // namespace

ResidualStats residual_stats(const std::vector<FusedSample>& samples,
                             const locble::Vec2& location, double exponent,
                             double gamma_dbm) {
    return residual_stats_seg(samples, location, exponent, {gamma_dbm});
}

std::pair<double, double> exponent_band_for(channel::PropagationClass cls) {
    switch (cls) {
        case channel::PropagationClass::los: return {1.6, 2.4};
        case channel::PropagationClass::plos: return {2.1, 3.1};
        case channel::PropagationClass::nlos: return {2.7, 4.2};
    }
    return {1.2, 6.0};
}

std::optional<LocationSolver::Candidate> LocationSolver::fit_at_exponent(
    const std::vector<FusedSample>& samples, double exponent, bool lateral_ok,
    double gamma_min, double gamma_max) const {
    const int k = segment_count(samples);

    // --- Linear elliptical seed (paper Eq. 3) on all samples with a single
    // Gamma; rho is exponential in RSS, so dB noise becomes multiplicative.
    // Weighting rows by 1/rho_i minimizes relative error — the first-order
    // equivalent of fitting in the dB domain, in the same linear form.
    const double eta = std::pow(10.0, -1.0 / (5.0 * exponent));
    std::vector<double> rho(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        rho[i] = std::pow(eta, samples[i].rssi);
        if (!(rho[i] > 0.0) || !std::isfinite(rho[i])) return std::nullopt;
    }
    double rho_scale = 0.0;
    for (double r : rho) rho_scale = std::max(rho_scale, r);
    locble::Matrix x;
    std::vector<double> y;
    x.reserve(samples.size());
    y.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto& s = samples[i];
        // Plain LS (ablation) keeps the paper's raw Eq. 3 rows (scaled for
        // conditioning only); WLS divides each row by rho_i.
        const double w = cfg_.use_wls ? 1.0 / rho[i] : 1.0 / rho_scale;
        if (lateral_ok)
            x.push_back({(s.p * s.p + s.q * s.q) * w, s.p * w, s.q * w, w});
        else
            x.push_back({s.p * s.p * w, s.p * w, w});
        y.push_back(cfg_.use_wls ? 1.0 : rho[i] / rho_scale);
    }

    std::vector<double> beta;
    bool linear_seed_ok = true;
    try {
        beta = locble::least_squares(x, y);
    } catch (const std::exception&) {
        linear_seed_ok = false;
    }
    if (linear_seed_ok && !(beta[0] > 0.0)) linear_seed_ok = false;  // eps = 1/A > 0

    // Plausibility screen: discard non-physical attempts so a noise-
    // favoured exponent cannot launch the target outside radio range.
    const auto plausible = [&](const locble::Vec2& loc,
                               const std::vector<double>& gammas) {
        if (loc.norm() > cfg_.max_range_m) return false;
        for (double g : gammas)
            if (g < gamma_min - 1e-9 || g > gamma_max + 1e-9) return false;
        return true;
    };

    // Gather refined attempts and keep the best *plausible* one: the linear
    // seed when it exists, plus multi-start Gauss-Newton from the
    // level-implied range when it does not (weak quadratic excitation makes
    // the linear system lose the sign of A) or when its refinement ran away.
    double best_rms = 1e300;
    locble::Vec2 best_loc;
    std::vector<double> best_gammas;
    const auto consider = [&](locble::Vec2 loc, double gamma_seed) {
        auto gammas = init_segment_gammas(samples, loc, exponent, gamma_seed, k,
                                          gamma_min, gamma_max);
        if (cfg_.use_gn_refinement)
            refine_fit_db(samples, exponent, loc, gammas, gamma_min, gamma_max);
        if (!plausible(loc, gammas)) return;
        const ResidualStats st = residual_stats_seg(samples, loc, exponent, gammas);
        if (st.rms_db < best_rms) {
            best_rms = st.rms_db;
            best_loc = loc;
            best_gammas = std::move(gammas);
        }
    };

    double gamma_seed = 0.5 * (gamma_min + gamma_max);
    if (linear_seed_ok) {
        const double a = beta[0];
        const double eps = 1.0 / a;
        gamma_seed = std::clamp(5.0 * exponent * std::log10(eps), gamma_min, gamma_max);
        if (lateral_ok) {
            consider({beta[1] / (2.0 * a), beta[2] / (2.0 * a)}, gamma_seed);
        } else {
            const double x0 = beta[1] / (2.0 * a);
            const double g = beta[2];
            const double h2 = g * eps - x0 * x0;
            consider({x0, std::sqrt(std::max(h2, 0.0))}, gamma_seed);
        }
    }
    bool used_multistart = false;
    if (best_rms >= 1e300) {
        used_multistart = true;
        double mean_rssi = 0.0;
        for (const auto& s : samples) mean_rssi += s.rssi;
        mean_rssi /= static_cast<double>(samples.size());
        const double d0 = std::clamp(
            std::pow(10.0, (gamma_seed - mean_rssi) / (10.0 * exponent)), 0.5,
            cfg_.max_range_m);
        constexpr int kBearings = 8;
        for (int b = 0; b < kBearings; ++b) {
            const double angle = 2.0 * std::numbers::pi * b / kBearings;
            consider(locble::unit_from_angle(angle) * d0, gamma_seed);
        }
    }
    if (best_rms >= 1e300) return std::nullopt;

    LocationFit fit;
    fit.exponent = exponent;
    fit.location = best_loc;
    fit.segment_gammas = std::move(best_gammas);
    fit.ambiguous = !lateral_ok;
    if (fit.ambiguous) fit.location.y = std::abs(fit.location.y);
    fit.gamma_dbm = fit.segment_gammas.back();

    const ResidualStats stats =
        residual_stats_seg(samples, fit.location, fit.exponent, fit.segment_gammas);
    fit.residual_db = stats.rms_db;
    fit.confidence = stats.confidence;
    return Candidate{fit, stats.rms_db, used_multistart};
}

std::optional<LocationFit> LocationSolver::solve(const std::vector<FusedSample>& samples,
                                                 const SolveHints& hints,
                                                 SolveDiagnostics* diag) const {
    LOCBLE_SPAN("solver.solve");
    LOCBLE_COUNT("solver.solve_calls", 1);
    if (diag) *diag = SolveDiagnostics{};
    if (samples.size() < cfg_.min_samples) {
        LOCBLE_COUNT("solver.too_few_samples", 1);
        return std::nullopt;
    }

    // Is there usable lateral (q) excitation, or is the walk effectively 1-D?
    double qmin = samples.front().q, qmax = samples.front().q;
    for (const auto& s : samples) {
        qmin = std::min(qmin, s.q);
        qmax = std::max(qmax, s.q);
    }
    const bool lateral_ok = (qmax - qmin) >= cfg_.min_lateral_spread;

    double n_min = cfg_.exponent_min;
    double n_max = cfg_.exponent_max;
    if (hints.exponent_band) {
        n_min = std::max(n_min, hints.exponent_band->first);
        n_max = std::min(n_max, hints.exponent_band->second);
    }
    double gamma_min = cfg_.gamma_min_dbm;
    double gamma_max = cfg_.gamma_max_dbm;
    if (hints.gamma_band_dbm) {
        gamma_min = std::max(gamma_min, hints.gamma_band_dbm->first);
        gamma_max = std::min(gamma_max, hints.gamma_band_dbm->second);
    }

    std::optional<Candidate> best;
    std::vector<Candidate> candidates;
    int grid_points = 0, failures = 0, multistarts = 0;
    for (double n = n_min; n <= n_max + 1e-9; n += cfg_.exponent_step) {
        ++grid_points;
        auto cand = fit_at_exponent(samples, n, lateral_ok, gamma_min, gamma_max);
        if (!cand) {
            ++failures;
            continue;
        }
        if (cand->multistart) ++multistarts;
        candidates.push_back(*cand);
        if (!best || cand->score < best->score) best = cand;
    }
    LOCBLE_COUNT("solver.exponent_candidates", grid_points);
    LOCBLE_COUNT("solver.candidate_failures", failures);
    LOCBLE_COUNT("solver.multistart_runs", multistarts);
    if (diag) {
        diag->exponent_candidates = grid_points;
        diag->candidate_failures = failures;
        diag->multistart_runs = multistarts;
        diag->converged = best.has_value();
    }
    if (!best) {
        LOCBLE_COUNT("solver.convergence_failures", 1);
        return std::nullopt;
    }
    LOCBLE_HISTOGRAM("solver.residual_db", best->fit.residual_db, 0.5, 1.0, 2.0, 3.0,
                     4.0, 6.0, 8.0, 12.0);

    // The residual is nearly flat across neighbouring exponents; averaging
    // the near-optimal candidates (within 15% of the best residual) damps
    // the jitter a hard argmin would inherit from noise.
    if (!cfg_.use_model_averaging) return best->fit;

    locble::Vec2 loc_acc{0.0, 0.0};
    double n_acc = 0.0, weight_acc = 0.0;
    for (const auto& c : candidates) {
        if (c.score > best->score * 1.15 + 1e-9) continue;
        if (c.fit.ambiguous != best->fit.ambiguous) continue;
        const double w = 1.0 / std::max(c.score, 1e-6);
        loc_acc += c.fit.location * w;
        n_acc += c.fit.exponent * w;
        weight_acc += w;
    }
    LocationFit fit = best->fit;
    if (weight_acc > 0.0) {
        fit.location = loc_acc / weight_acc;
        fit.exponent = n_acc / weight_acc;
        const ResidualStats stats = residual_stats_seg(samples, fit.location,
                                                       fit.exponent, fit.segment_gammas);
        fit.residual_db = stats.rms_db;
        fit.confidence = stats.confidence;
    }
    return fit;
}

std::optional<LocationFit> LocationSolver::resolve_l_shape(
    const LocationFit& leg1, const LocationFit& leg2, const locble::Vec2& leg2_origin,
    double leg2_heading) {
    // Each ambiguous leg fit yields two mirror candidates in its own frame.
    const auto candidates_of = [](const LocationFit& fit) {
        std::vector<locble::Vec2> out{fit.location};
        if (fit.ambiguous) out.push_back({fit.location.x, -fit.location.y});
        return out;
    };
    // Leg 1's frame *is* the observer frame. Leg 2 candidates must be
    // rotated/translated out of the second leg's local frame.
    std::vector<locble::Vec2> c1 = candidates_of(leg1);
    std::vector<locble::Vec2> c2;
    for (const auto& c : candidates_of(leg2))
        c2.push_back(leg2_origin + c.rotated(leg2_heading));

    double best_gap = 1e300;
    locble::Vec2 best_point;
    for (const auto& a : c1) {
        for (const auto& b : c2) {
            const double gap = locble::Vec2::distance(a, b);
            if (gap < best_gap) {
                best_gap = gap;
                best_point = (a + b) * 0.5;
            }
        }
    }
    if (best_gap >= 1e300) return std::nullopt;

    LocationFit out;
    out.location = best_point;
    // Blend the per-leg parameter estimates, weighting by confidence.
    const double w1 = std::max(leg1.confidence, 1e-6);
    const double w2 = std::max(leg2.confidence, 1e-6);
    out.exponent = (leg1.exponent * w1 + leg2.exponent * w2) / (w1 + w2);
    out.gamma_dbm = (leg1.gamma_dbm * w1 + leg2.gamma_dbm * w2) / (w1 + w2);
    out.segment_gammas = {out.gamma_dbm};
    out.residual_db = 0.5 * (leg1.residual_db + leg2.residual_db);
    out.confidence = std::min(leg1.confidence, leg2.confidence);
    out.ambiguous = false;
    return out;
}

}  // namespace locble::core
